#!/usr/bin/env python3
"""Persistent Fault Analysis walkthrough (Zhang et al., the paper's ref [12]).

Runs the *offline* half of ExplFrame in isolation: a single bit of the AES
S-box is faulted (as a Rowhammer flip would), the victim encrypts random
plaintexts, and the missing-value statistics collapse the key space until
the full AES-128 master key falls out.  No DRAM simulation involved —
this shows the cryptanalysis on its own.

Run:  python examples/aes_pfa_attack.py

CLI equivalent:  python -m repro pfa --cipher aes --fault-index 118 --bit 3
(same offline recovery; --key picks the key, --cipher present swaps the
target cipher)
"""

import math

import numpy as np

from repro.ciphers.aes import AES, expand_key
from repro.ciphers.aes_tables import AES_SBOX
from repro.ciphers.batch import aes128_encrypt_batch, random_plaintexts
from repro.ciphers.faults import FaultSpec, apply_fault, fault_summary
from repro.pfa.pfa import (
    PfaState,
    expected_remaining_candidates,
    invert_key_schedule_128,
    recover_k10_known_fault,
)


def main() -> None:
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")  # FIPS-197 example key
    spec = FaultSpec(index=0x42, bit=3)
    faulty_sbox = apply_fault(AES_SBOX, spec)
    summary = fault_summary(AES_SBOX, faulty_sbox)
    v_star = AES_SBOX[spec.index]

    print("fault model: one persistent bit flip in the in-memory S-box")
    print(f"  S[{spec.index:#04x}]: {v_star:#04x} -> {faulty_sbox[spec.index]:#04x}")
    print(f"  value now missing from SubBytes outputs: {summary['missing_values']}")
    print(f"  value now appearing twice:               {summary['doubled_values']}")

    rng = np.random.default_rng(0)
    state = PfaState()
    print("\nkey-space collapse (16 bytes x missing-value candidates):")
    print(f"  {'ciphertexts':>12}  {'measured bits':>14}  {'expected bits':>14}")
    for checkpoint in (100, 250, 500, 1000, 1500, 2000, 2500, 3000):
        state.update(
            aes128_encrypt_batch(
                random_plaintexts(checkpoint - state.total, rng), key, faulty_sbox
            )
        )
        expected = 16 * math.log2(expected_remaining_candidates(checkpoint))
        print(f"  {state.total:>12}  {state.log2_keyspace():>14.1f}  {expected:>14.1f}")
        if state.is_unique():
            break

    assert state.is_unique(), "collect more ciphertexts"
    candidates = recover_k10_known_fault(state, v_star)
    k10 = bytes(values[0] for values in candidates)
    master = invert_key_schedule_128(k10)

    print(f"\nround-10 key: {k10.hex()}")
    print(f"  (truth:     {expand_key(key)[10].hex()})")
    print(f"master key:   {master.hex()}")
    print(f"  (truth:     {key.hex()})")
    print(f"KEY RECOVERED: {master == key} after {state.total} faulty ciphertexts")

    # Sanity: the recovered key really decrypts.
    ct = AES(key).encrypt_block(b"attack at dawn!!")
    assert AES(master).decrypt_block(ct) == b"attack at dawn!!"
    print("recovered key verified against a known plaintext/ciphertext pair")


if __name__ == "__main__":
    main()
