#!/usr/bin/env python3
"""Rowhammer templating survey: map a module's vulnerable cells.

Templates a buffer on a simulated vulnerable module and reports the flip
population the way a Rowhammer characterisation study would: yield per
GiB, direction split (true vs anti cells), in-page offset spread, and a
repeatability check across repeated hammer rounds.  Also demonstrates the
two negative controls: hammering without clflush (cache absorbs it) and
hammering cross-bank pairs (row buffer absorbs it).

Run:  python examples/templating_survey.py

CLI equivalent:  python -m repro template --buffer-mib 8 --show 5
(--density scales weak cells per row)
"""

from collections import Counter

from repro import Machine, MachineConfig, TemplatorConfig, Templator
from repro.sim.units import MIB, PAGE_SIZE


def main() -> None:
    machine = Machine(MachineConfig.vulnerable(seed=11))
    kernel = machine.kernel
    attacker = kernel.spawn("surveyor", cpu=0)
    config = TemplatorConfig(buffer_bytes=8 * MIB, rounds=650_000, batch_pairs=8)
    templator = Templator(kernel, attacker.pid, config)

    print(f"templating {config.buffer_bytes // MIB} MiB, {config.rounds} rounds/pair...")
    result = templator.run()
    print(f"  pairs hammered: {result.pairs_hammered}")
    print(f"  distinct flips: {result.flips_found}  ({result.flips_per_gib:.0f}/GiB)")
    print(f"  simulated time: {result.elapsed_ns / 1e9:.2f} s")

    directions = Counter(
        "0->1" if template.flips_to_one else "1->0" for template in result.templates
    )
    print(f"  direction split: {dict(directions)} (anti vs true cells)")

    bits = Counter(template.bit for template in result.templates)
    print(f"  bit positions:   {dict(sorted(bits.items()))}")

    quarter = Counter(template.page_offset // 1024 for template in result.templates)
    print(f"  page quarter:    {dict(sorted(quarter.items()))} (flips spread over pages)")

    # Repeatability: the property Section VI of the paper relies on.
    template = result.templates[0]
    pattern = 0x00 if template.flips_to_one else 0xFF
    hits = 0
    rounds = 5
    for _ in range(rounds):
        kernel.mem_write(attacker.pid, template.byte_va, bytes([pattern]))
        templator.hammerer.hammer_pair(*template.aggressor_vas)
        byte = kernel.mem_read(attacker.pid, template.byte_va, 1)[0]
        hits += bool(byte & (1 << template.bit)) == template.flips_to_one
    print(f"  repeatability:   first template re-flipped {hits}/{rounds} rounds")

    # Negative control 1: no clflush, no flips.
    va_a, va_b = template.aggressor_vas
    no_flush = templator.hammerer.hammer_without_flush(va_a, va_b)
    print(f"  without clflush: {no_flush.activations} activations "
          f"(cache absorbs the loop) -> hammering requires flushing")

    # Negative control 2: an invulnerable module yields nothing.
    clean_machine = Machine(MachineConfig.invulnerable(seed=11))
    clean_attacker = clean_machine.kernel.spawn("surveyor", cpu=0)
    clean = Templator(
        clean_machine.kernel,
        clean_attacker.pid,
        TemplatorConfig(buffer_bytes=2 * MIB, rounds=650_000, batch_pairs=8),
    ).run()
    print(f"  invulnerable module control: {clean.flips_found} flips")


if __name__ == "__main__":
    main()
