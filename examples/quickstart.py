#!/usr/bin/env python3
"""Quickstart: the full ExplFrame attack in ~20 lines.

Builds a simulated machine with a Rowhammer-vulnerable DRAM module, runs
the complete attack chain (template -> steer via the page frame cache ->
re-hammer -> persistent fault analysis) against an AES-128 victim, and
prints the recovered key next to the truth.

Run:  python examples/quickstart.py

CLI equivalent:  python -m repro attack --seed 7
(add --json for the machine-readable report, --campaign N for repeated
attempts, --scenario duet for a multi-tenant victim — docs/SCENARIOS.md)
"""

from repro import ExplFrameAttack, ExplFrameConfig, Machine, MachineConfig, TemplatorConfig
from repro.sim.units import MIB


def main() -> None:
    machine = Machine(MachineConfig.vulnerable(seed=7))
    attack = ExplFrameAttack(
        machine,
        config=ExplFrameConfig(
            templator=TemplatorConfig(buffer_bytes=8 * MIB, batch_pairs=8)
        ),
    )
    print("running ExplFrame (template -> steer -> re-hammer -> PFA)...")
    result = attack.run()

    print(f"  flips templated .......... {result.templated_flips}")
    print(f"  steering succeeded ....... {result.steering_success}")
    print(f"  victim S-box faulted ..... {result.fault_in_table}")
    print(f"  faulty ciphertexts used .. {result.faulty_ciphertexts}")
    print(f"  attacker syscalls ........ {result.syscalls_total}")
    print(f"  true key ................. {result.true_key.hex()}")
    recovered = result.recovered_key.hex() if result.recovered_key else "-"
    print(f"  recovered key ............ {recovered}")
    print(f"  KEY RECOVERED: {result.key_recovered}")


if __name__ == "__main__":
    main()
