#!/usr/bin/env python3
"""What stops ExplFrame?  A defense-by-defense evaluation.

Runs the same attack against machines differing in exactly one defence:

1. baseline         — vulnerable DDR3-era module, stock allocator;
2. sound DRAM       — no disturbance-prone cells (the only *complete* fix);
3. 2x refresh       — industry's first Rowhammer response (insufficient);
4. 16x refresh      — aggressive refresh (effective, costly);
5. TRR (4 entries)  — DDR4-era in-DRAM mitigation vs double-sided pairs;
6. FIFO pcp         — a hypothetical allocator change killing the steering
                      side channel rather than the fault mechanism.

Run:  python examples/defense_evaluation.py   (takes a few minutes)

CLI equivalent:  none single-flag; the pieces compose as
`python -m repro attack --campaign 8 --fork-from-template --workers 4`
per machine variant (defence knobs live in MachineConfig, not CLI flags)
"""

from repro import ExplFrameAttack, ExplFrameConfig, Machine, MachineConfig, TemplatorConfig
from repro.dram.flipmodel import FlipModelConfig
from repro.dram.geometry import DRAMGeometry
from repro.dram.timing import DRAMTiming
from repro.dram.trr import TrrConfig
from repro.mm.pcp import PcpConfig
from repro.sim.units import MIB

TEMPLATOR = TemplatorConfig(buffer_bytes=8 * MIB, rounds=650_000, batch_pairs=16)
VULNERABLE = FlipModelConfig.highly_vulnerable()


def build(name, **overrides):
    config = MachineConfig(
        seed=7,
        geometry=DRAMGeometry.small(),
        flip_model=overrides.pop("flip_model", VULNERABLE),
        timing=overrides.pop("timing", DRAMTiming.ddr3_1600()),
        trr=overrides.pop("trr", TrrConfig.disabled()),
        pcp=overrides.pop("pcp", PcpConfig()),
    )
    assert not overrides, overrides
    return name, Machine(config)


def main() -> None:
    machines = [
        build("baseline (no defence)"),
        build("sound DRAM (no weak cells)", flip_model=FlipModelConfig.invulnerable()),
        build("2x refresh rate", timing=DRAMTiming.fast_refresh(2)),
        build("16x refresh rate", timing=DRAMTiming.fast_refresh(16)),
        build("TRR, 4-entry tracker", trr=TrrConfig.ddr4_like(tracker_entries=4, threshold=15_000)),
        build("FIFO page frame cache", pcp=PcpConfig(discipline="fifo")),
    ]
    print(f"{'defence':<28} {'flips':>6} {'steered':>8} {'faulted':>8} {'key':>5}")
    print("-" * 60)
    for name, machine in machines:
        result = ExplFrameAttack(
            machine, config=ExplFrameConfig(templator=TEMPLATOR, max_campaigns=2)
        ).run()
        print(
            f"{name:<28} {result.templated_flips:>6} "
            f"{'yes' if result.steering_success else 'no':>8} "
            f"{'yes' if result.fault_in_table else 'no':>8} "
            f"{'YES' if result.key_recovered else 'no':>5}"
        )
    # Detection, as opposed to prevention: the watchdog sees the attack's
    # activation signature on the baseline machine.
    from repro.defense import HammerWatchdog, WatchdogConfig

    baseline = machines[0][1]
    watchdog = HammerWatchdog(WatchdogConfig(threshold_per_window=100_000))
    watchdog.scan(baseline.kernel.ledger)
    hottest = max(
        (baseline.kernel.ledger.max_per_window(pid), pid)
        for pid in baseline.kernel.tasks
    )
    print(
        f"\ndetection (baseline machine): watchdog flagged pids "
        f"{sorted(watchdog.flagged_pids())} — hottest task peaked at "
        f"{hottest[0]:,} activations in one refresh window"
    )

    print(
        "\nreading:\n"
        "  - sound DRAM and TRR remove the fault mechanism outright here;\n"
        "  - 2x refresh does nothing (a hammer burst fits in 32 ms) and even\n"
        "    16x only thins the flip population - enough weak cells remain\n"
        "    in a large templating buffer to find one usable flip;\n"
        "  - the FIFO cache defeats steering only while the cache holds\n"
        "    other frames; an attacker whose allocations have just drained\n"
        "    it (as templating does) still gets deterministic reuse, so a\n"
        "    cache-discipline change alone is NOT a reliable defence.\n"
        "  (compare benchmarks A1-A3 for the controlled versions)"
    )


if __name__ == "__main__":
    main()
