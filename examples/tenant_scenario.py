#!/usr/bin/env python3
"""Multi-tenant steering: fault one tenant amid noisy neighbours.

The other examples give the attacker a private victim.  Here the machine
is a small multi-tenant server instead: three tenants with independent
encryption request streams (built with `TenantSpec`, the programmatic
form of a scenario JSON file), and the attacker steers the flippy frame
against *one* of them while the rest churn the page frame cache.  The
orchestrator retries steering attempts that background traffic ruins —
exactly what `python -m repro attack --scenario ...` does.

Run:  python examples/tenant_scenario.py

CLI equivalent:  python -m repro attack --seed 3 --scenario duet
(or --scenario my_scenario.json; the JSON printed below is the file
format — every knob is documented in docs/SCENARIOS.md)
"""

import json

from repro import ExplFrameAttack, ExplFrameConfig, Machine, MachineConfig, TemplatorConfig
from repro.attack.orchestrator import AttackOrchestrator, OrchestratorConfig
from repro.sim.units import MIB
from repro.workload import Scenario, TenantSpec, WorkloadEngine

SCENARIO = Scenario(
    name="three-tenants",
    target="carol",
    tenants=(
        # The target: AES-128 on cpu 0 (the attack shares its CPU — the
        # paper's same-page-frame-cache requirement).
        TenantSpec(name="carol", cipher="aes", request_rate_hz=40.0, cpu=0),
        # A noisy neighbour on the *same* CPU: every request maps fresh
        # scratch pages and frees the previous request's, so it can
        # capture the staged frame mid-window.
        TenantSpec(
            name="dave", cipher="present", request_rate_hz=12.0, burst=2, cpu=0
        ),
        # Background load on the other CPU: irrelevant to steering (its
        # allocations hit cpu 1's frame cache) but real encryption work.
        TenantSpec(name="erin", cipher="aes", key_bits=256, request_rate_hz=20.0, cpu=1),
    ),
)


def main() -> None:
    print("scenario file form (save as .json and pass via --scenario):")
    print(json.dumps(SCENARIO.to_dict(), indent=2))

    machine = Machine(MachineConfig.vulnerable(seed=3))
    workload = WorkloadEngine(machine, SCENARIO)
    workload.start()
    attack = ExplFrameAttack(
        machine,
        config=ExplFrameConfig(
            templator=TemplatorConfig(buffer_bytes=4 * MIB, batch_pairs=8)
        ),
        tenant_workload=workload,
    )
    orchestrator = AttackOrchestrator(attack, OrchestratorConfig())

    print("\nrunning ExplFrame against tenant 'carol' (2 noisy neighbours)...")
    report = orchestrator.run()

    print("\ntenant traffic during the attack:")
    for name, stats in workload.summary().items():
        print(
            f"  {name:<6} [{stats['role']:<6}] {stats['cipher']}-{stats['key_bits']}"
            f"  issued={stats['issued']:<5} served={stats['served']:<5}"
            f" dropped={stats['dropped']}"
        )

    print(f"\n  stage attempts ........... {report.attempts}")
    print(f"  target tenant ............ {report.target_tenant}")
    print(f"  background tenants ....... {report.background_tenants}")
    print(f"  true key ................. {workload.target_key.hex()}")
    print(f"  recovered key ............ {report.recovered_key or '-'}")
    print(f"  KEY RECOVERED: {report.success}")


if __name__ == "__main__":
    main()
