#!/usr/bin/env python3
"""Page-frame-cache steering, step by step (paper Section V).

Walks the protocol with instrumented prints so each kernel-level effect is
visible: where the attacker's frame goes when munmapped, why the victim's
next small allocation receives exactly that frame, and the three failure
modes the paper warns about (different CPU, sleeping attacker, interposed
noise).

Run:  python examples/steering_demo.py

CLI equivalent:  python -m repro steer --trials 50
(success-rate trials over the same protocol; --cross-cpu / --sleep /
--noise N reproduce the three failure modes, and
`python -m repro attack --scenario duet` runs steering against live
multi-tenant noise — docs/SCENARIOS.md)
"""

from repro import Machine, MachineConfig
from repro.sim.units import PAGE_SIZE


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    machine = Machine(MachineConfig.small(seed=5))
    kernel = machine.kernel

    banner("1. attacker maps and touches a buffer on CPU 0")
    attacker = kernel.spawn("attacker", cpu=0)
    buffer_va = kernel.sys_mmap(attacker.pid, 16 * PAGE_SIZE)
    for index in range(16):
        kernel.mem_write(attacker.pid, buffer_va + index * PAGE_SIZE, b"\xaa")
    print(f"attacker rss: {attacker.mm.rss_pages} pages")

    banner("2. attacker munmaps one chosen page")
    staged_va = buffer_va + 7 * PAGE_SIZE
    staged_pfn = kernel.pfn_of(attacker.pid, staged_va)
    kernel.sys_munmap(attacker.pid, staged_va, PAGE_SIZE)
    zone = machine.node.zone_of_pfn(staged_pfn)
    print(f"staged frame pfn={staged_pfn:#x}")
    print(f"hot end of CPU 0's page frame cache ({zone.name}): {zone.pcp(0).peek_hot():#x}")
    assert zone.pcp(0).peek_hot() == staged_pfn

    banner("3. co-resident victim makes a small allocation")
    victim = kernel.spawn("victim", cpu=0)
    victim_va = kernel.sys_mmap(victim.pid, PAGE_SIZE)
    kernel.mem_write(victim.pid, victim_va, b"secret-key-bytes")
    landed = kernel.pfn_of(victim.pid, victim_va)
    print(f"victim's frame pfn={landed:#x} -> steered: {landed == staged_pfn}")

    banner("4. failure mode: victim on the OTHER cpu")
    attacker2 = kernel.spawn("attacker2", cpu=0)
    va2 = kernel.sys_mmap(attacker2.pid, PAGE_SIZE)
    kernel.mem_write(attacker2.pid, va2, b"\xbb")
    staged2 = kernel.pfn_of(attacker2.pid, va2)
    kernel.sys_munmap(attacker2.pid, va2, PAGE_SIZE)
    other_victim = kernel.spawn("victim-cpu1", cpu=1)
    other_va = kernel.sys_mmap(other_victim.pid, PAGE_SIZE)
    kernel.mem_write(other_victim.pid, other_va, b"x")
    landed2 = kernel.pfn_of(other_victim.pid, other_va)
    print(f"staged={staged2:#x}, cross-cpu victim got {landed2:#x} -> steered: {landed2 == staged2}")

    banner("5. failure mode: attacker sleeps (pcp drained)")
    from repro import SteeringProtocol, SteeringTrialConfig

    protocol = SteeringProtocol(machine)
    awake = protocol.success_rate(10, SteeringTrialConfig())
    asleep = protocol.success_rate(10, SteeringTrialConfig(attacker_sleeps=True))
    print(f"steering success over 10 trials, attacker stays active: {awake:.0%}")
    print(f"steering success over 10 trials, attacker sleeps:       {asleep:.0%}")
    print('-> the paper: "the adversarial process must remain active"')

    banner("6. why the attacker cannot just read PFNs (Linux >= 4.0)")
    entry = kernel.pagemap(attacker.pid).read(buffer_va)
    print(
        f"unprivileged pagemap read: present={entry.present}, pfn={entry.pfn} "
        f"(zeroed without CAP_SYS_ADMIN) -> the page frame cache side channel "
        f"is what makes the unprivileged attack possible"
    )


if __name__ == "__main__":
    main()
