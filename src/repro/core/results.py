"""Result records returned by the attack stages.

These are the structured outputs the benchmarks aggregate into the
experiment tables; every field is plain data so results can be compared,
printed and serialised without touching live machine state.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class FlipTemplate:
    """One flippable bit found during templating, attacker's view.

    Everything is expressed in the attacker's *virtual* frame of reference
    (she cannot see physical addresses): the VA of the containing page, the
    byte offset and bit inside it, the flip direction, and the aggressor
    pair that produced it.
    """

    page_va: int
    page_offset: int
    bit: int
    flips_to_one: bool
    aggressor_vas: tuple[int, int]

    @property
    def byte_va(self) -> int:
        """VA of the byte containing the flip."""
        return self.page_va + self.page_offset

    def to_dict(self) -> dict:
        """Plain-data form (attackers persist template banks between runs)."""
        return {
            "page_va": self.page_va,
            "page_offset": self.page_offset,
            "bit": self.bit,
            "flips_to_one": self.flips_to_one,
            "aggressor_vas": list(self.aggressor_vas),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FlipTemplate":
        """Inverse of :meth:`to_dict`."""
        return cls(
            page_va=data["page_va"],
            page_offset=data["page_offset"],
            bit=data["bit"],
            flips_to_one=data["flips_to_one"],
            aggressor_vas=tuple(data["aggressor_vas"]),
        )


@dataclass
class TemplatingResult:
    """Outcome of a templating scan over the attacker's buffer."""

    buffer_bytes: int
    rounds_per_pair: int
    pairs_hammered: int
    templates: list[FlipTemplate] = field(default_factory=list)
    elapsed_ns: int = 0

    @property
    def flips_found(self) -> int:
        """Number of distinct flippable bits discovered."""
        return len(self.templates)

    @property
    def flips_per_gib(self) -> float:
        """Yield normalised to flips per GiB of templated memory."""
        gib = self.buffer_bytes / (1024**3)
        return self.flips_found / gib if gib else 0.0


@dataclass
class SteeringResult:
    """Outcome of one page-frame-cache steering round."""

    steered_pfn: int
    victim_pfns: list[int]
    success: bool
    victim_request_pages: int
    same_cpu: bool
    noise_pages: int = 0

    @property
    def landing_index(self) -> int | None:
        """Position of the steered frame within the victim's allocation."""
        try:
            return self.victim_pfns.index(self.steered_pfn)
        except ValueError:
            return None


@dataclass
class EndToEndResult:
    """Outcome of a full ExplFrame run against a cipher victim."""

    templated_flips: int
    steering_success: bool
    fault_in_table: bool
    faulty_ciphertexts: int
    key_recovered: bool
    recovered_key: bytes | None
    true_key: bytes
    hammer_rounds_total: int
    syscalls_total: int
    log2_keyspace_after_pfa: float | None = None
    sim_time_ns: int = 0

    @property
    def success(self) -> bool:
        """True only when the full chain through key recovery worked."""
        return self.key_recovered

    @property
    def sim_time_seconds(self) -> float:
        """Simulated machine time the whole attack consumed."""
        return self.sim_time_ns / 1e9
