"""Whole-machine configuration.

One frozen dataclass collects every substrate's knobs, with presets for
the shapes the experiments use.  Everything is seeded from one integer, so
a :class:`~repro.core.machine.Machine` is a pure function of its config.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.dram.cache import CpuCacheConfig
from repro.dram.flipmodel import FlipModelConfig
from repro.dram.ecc import EccConfig
from repro.dram.geometry import DRAMGeometry
from repro.dram.timing import DRAMTiming
from repro.dram.trr import TrrConfig
from repro.defense.watchdog import WatchdogConfig
from repro.mm.pcp import PcpConfig
from repro.mm.zone import ZoneLayout
from repro.sim.errors import ConfigError


@dataclass(frozen=True)
class MachineConfig:
    """Every tunable of the simulated machine, in one place."""

    seed: int = 0
    num_cpus: int = 2
    num_nodes: int = 1
    geometry: DRAMGeometry = field(default_factory=DRAMGeometry.default)
    timing: DRAMTiming = field(default_factory=DRAMTiming.ddr3_1600)
    flip_model: FlipModelConfig = field(default_factory=FlipModelConfig)
    trr: TrrConfig = field(default_factory=TrrConfig.disabled)
    ecc: EccConfig = field(default_factory=EccConfig.disabled)
    mapping: str = "xor"
    zone_layout: ZoneLayout = field(default_factory=ZoneLayout)
    pcp: PcpConfig = field(default_factory=PcpConfig)
    cache: CpuCacheConfig = field(default_factory=CpuCacheConfig)
    #: Keep the per-machine MetricsRegistry live.  The registry is cheap
    #: enough to leave on (see docs/OBSERVABILITY.md); benchmarks flip
    #: this off to measure instrumentation overhead (experiment A7).
    metrics_enabled: bool = True
    #: How recurring behaviours (DRAM refresh, kswapd, scheduler ticks,
    #: watchdog scans) advance.  ``"events"`` — the only supported value —
    #: dispatches them through the machine's
    #: :class:`~repro.sim.events.EventScheduler`.  The legacy ``"polled"``
    #: inline-check core was retired after bench_t8 proved the two
    #: bit-identical; the field remains so old configs fail with a clear
    #: message instead of silently building a different machine.
    timed_core: str = "events"
    #: Attach an event-driven ANVIL-style hammering watchdog (None = off).
    watchdog: WatchdogConfig | None = None

    def __post_init__(self) -> None:
        if self.num_cpus <= 0:
            raise ConfigError(f"num_cpus must be positive, got {self.num_cpus}")
        if self.num_nodes <= 0:
            raise ConfigError(f"num_nodes must be positive, got {self.num_nodes}")
        if self.num_cpus % self.num_nodes:
            raise ConfigError(
                f"num_cpus ({self.num_cpus}) must divide evenly over "
                f"num_nodes ({self.num_nodes})"
            )
        if self.mapping not in ("linear", "xor"):
            raise ConfigError(f"mapping must be 'linear' or 'xor', got {self.mapping!r}")
        if self.timed_core != "events":
            raise ConfigError(
                f"timed_core {self.timed_core!r} is not supported: the 'polled' "
                "core was retired (the event core is bit-identical and is now "
                "the only control path) — drop the timed_core override"
            )

    def with_seed(self, seed: int) -> "MachineConfig":
        """The same machine shape under a different seed (for trial sweeps)."""
        return replace(self, seed=seed)

    # -- presets ---------------------------------------------------------------

    @classmethod
    def small(cls, seed: int = 0) -> "MachineConfig":
        """64 MiB machine for fast tests."""
        return cls(seed=seed, geometry=DRAMGeometry.small())

    @classmethod
    def default(cls, seed: int = 0) -> "MachineConfig":
        """The standard 256 MiB experiment machine."""
        return cls(seed=seed)

    @classmethod
    def vulnerable(cls, seed: int = 0) -> "MachineConfig":
        """A module with a dense weak-cell population (fast templating)."""
        return cls(seed=seed, flip_model=FlipModelConfig.highly_vulnerable())

    @classmethod
    def invulnerable(cls, seed: int = 0) -> "MachineConfig":
        """A module with no weak cells (negative control)."""
        return cls(seed=seed, flip_model=FlipModelConfig.invulnerable())
