"""Public API: machine construction and the high-level attack driver.

Typical use::

    from repro.core import Machine, MachineConfig
    from repro.attack import ExplFrameAttack

    machine = Machine(MachineConfig.vulnerable(seed=7))
    result = ExplFrameAttack(machine).run()
    assert result.key_recovered
"""

from repro.core.config import MachineConfig
from repro.core.machine import Machine, MachineSnapshot
from repro.core.results import (
    EndToEndResult,
    SteeringResult,
    TemplatingResult,
)

__all__ = [
    "EndToEndResult",
    "Machine",
    "MachineConfig",
    "MachineSnapshot",
    "SteeringResult",
    "TemplatingResult",
]
