"""Machine assembly: wire every substrate together from one config.

Besides construction, this module owns the machine's *lifecycle*
operations: driving the event scheduler (:meth:`Machine.run_until` /
:meth:`Machine.step`) and cloning warm state
(:meth:`Machine.snapshot` / :meth:`Machine.fork`) so campaigns and
sweeps can fan out from one templated machine instead of rebuilding
and re-templating per attempt.
"""

from __future__ import annotations

import copy
import pickle

from repro.core.config import MachineConfig
from repro.defense.watchdog import HammerWatchdog
from repro.dram.cache import CpuCache
from repro.dram.controller import MemoryController
from repro.dram.mapping import make_mapping
from repro.mm.allocator import ZonedPageFrameAllocator
from repro.mm.node import NumaNode
from repro.mm.page import FrameTable
from repro.mm.reclaim import Kswapd
from repro.obs import NOOP_OBS, Observability
from repro.os.kernel import Kernel
from repro.os.scheduler import Scheduler
from repro.sim.clock import SimClock
from repro.sim.events import EventBus, EventScheduler
from repro.sim.rng import RngStreams
from repro.sim.units import PAGE_SIZE


def _rebind_extras(extras, obs) -> None:
    """Re-attach a fresh observability hub to forked companion objects."""
    if extras is None:
        return
    if isinstance(extras, (list, tuple)):
        for item in extras:
            _rebind_extras(item, obs)
        return
    if isinstance(extras, dict):
        for item in extras.values():
            _rebind_extras(item, obs)
        return
    bind = getattr(extras, "bind_obs", None)
    if callable(bind):
        bind(obs)


class MachineSnapshot:
    """A frozen deep copy of a machine (plus companions) at one instant.

    The snapshot is decoupled from the live machine — the original can
    keep running — and :meth:`fork` stamps out any number of independent
    machines from it.  The observability hub is *not* part of the state:
    it is excluded during the copy and every fork gets a fresh one, so
    metrics/traces never alias between forks.
    """

    def __init__(self, machine: "Machine", extras=None):
        memo = {id(machine.obs): NOOP_OBS}
        self._state = copy.deepcopy((machine, extras), memo)

    def fork(self, seed: int | None = None) -> tuple["Machine", object]:
        """A fresh, independent (machine, extras) pair from the snapshot.

        With ``seed`` the fork's RNG streams are re-keyed, giving it an
        independent but reproducible random future; its materialised
        state (weak-cell map, memory contents, allocator lists, pending
        events) is untouched — hardware does not change identity when an
        experiment re-rolls its dice.
        """
        memo = {id(NOOP_OBS): NOOP_OBS}
        machine, extras = copy.deepcopy(self._state, memo)
        machine._rebind_obs()
        _rebind_extras(extras, machine.obs)
        if seed is not None:
            machine.rng.reseed(seed)
        return machine, extras

    def to_bytes(self) -> bytes:
        """Serialise the frozen state for shipping to worker processes.

        The snapshot holds no live observability hub (the copy swapped
        it for :data:`NOOP_OBS`, which pickles as the singleton), no open
        files and no threads, so the pickled form is self-contained:
        ``from_bytes`` in any process yields a snapshot whose forks are
        byte-identical to forks taken in the parent (docs/CAMPAIGNS.md).
        """
        return pickle.dumps(self._state, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "MachineSnapshot":
        """Rehydrate a snapshot previously serialised with :meth:`to_bytes`."""
        snapshot = cls.__new__(cls)
        snapshot._state = pickle.loads(blob)
        return snapshot


class Machine:
    """A complete simulated computer: DRAM, allocators, kernel, CPUs.

    Deterministic: two machines built from equal configs behave
    identically, including the weak-cell map of their DRAM.
    """

    def __init__(self, config: MachineConfig | None = None):
        self.config = config or MachineConfig()
        self.rng = RngStreams(self.config.seed)
        self.clock = SimClock()
        self.obs = Observability(
            self.clock, metrics_enabled=self.config.metrics_enabled
        )

        # The event core.  With timed_core="events" every recurring
        # behaviour (refresh, kswapd, scheduler ticks, watchdog scans,
        # chaos hooks) routes through one scheduler + bus; "polled" keeps
        # the legacy inline checks and leaves both as None.
        if self.config.timed_core == "events":
            self.events = EventScheduler(self.clock)
            self.bus = EventBus()
        else:
            self.events = None
            self.bus = None

        geometry = self.config.geometry
        self.mapping = make_mapping(self.config.mapping, geometry)
        self.controller = MemoryController(
            geometry=geometry,
            mapping=self.mapping,
            timing=self.config.timing,
            flip_config=self.config.flip_model,
            rng=self.rng,
            clock=self.clock,
            trr_config=self.config.trr,
            ecc_config=self.config.ecc,
            events=self.events,
        )
        self.cache = CpuCache(self.config.cache)

        total_pages = geometry.total_bytes // PAGE_SIZE
        self.frames = FrameTable(total_pages)
        num_nodes = self.config.num_nodes
        # Pages that don't divide evenly across nodes are truncated: each
        # node manages exactly node_pages, and the tail (like a firmware
        # hole) stays outside every node.
        node_pages = total_pages // num_nodes
        self.unmanaged_bytes = geometry.total_bytes - node_pages * PAGE_SIZE * num_nodes
        self.nodes = [
            NumaNode(
                node_id=index,
                frames=self.frames,
                total_bytes=node_pages * PAGE_SIZE,
                num_cpus=self.config.num_cpus,
                layout=self.config.zone_layout,
                pcp_config=self.config.pcp,
                base_pfn=index * node_pages,
            )
            for index in range(num_nodes)
        ]
        managed = sum(node.total_pages for node in self.nodes) * PAGE_SIZE
        assert managed + self.unmanaged_bytes == geometry.total_bytes, (
            f"per-node byte accounting broken: {managed} managed + "
            f"{self.unmanaged_bytes} unmanaged != {geometry.total_bytes} total"
        )
        self.node = self.nodes[0]
        self.kswapd = Kswapd()
        if self.events is not None:
            self.kswapd.bind_events(self.events)
        cpus_per_node = self.config.num_cpus // num_nodes
        cpu_to_node = [cpu // cpus_per_node for cpu in range(self.config.num_cpus)]
        self.allocator = ZonedPageFrameAllocator(
            self.nodes, self.kswapd, cpu_to_node=cpu_to_node if num_nodes > 1 else None
        )
        self.scheduler = Scheduler(self.config.num_cpus)
        if self.events is not None:
            self.scheduler.bind_events(self.events)
        self.kernel = Kernel(
            allocator=self.allocator,
            controller=self.controller,
            cache=self.cache,
            clock=self.clock,
            scheduler=self.scheduler,
            kswapd=self.kswapd,
            events=self.events,
            bus=self.bus,
        )
        self.watchdog = (
            HammerWatchdog(self.config.watchdog) if self.config.watchdog else None
        )
        if self.watchdog is not None and self.events is not None:
            self.watchdog.bind_events(self.events, self.kernel.ledger)

        self._bind_obs_chain()

    # -- observability ---------------------------------------------------------

    def _bind_obs_chain(self) -> None:
        """(Re-)attach every component to the machine's current hub."""
        self.controller.bind_obs(self.obs)
        self.allocator.bind_obs(self.obs)
        self.scheduler.bind_obs(self.obs)
        self.kernel.bind_obs(self.obs)
        self.kswapd.bind_obs(self.obs)
        if self.events is not None:
            self.events.bind_obs(self.obs)
            self.bus.bind_obs(self.obs)
        if self.watchdog is not None:
            self.watchdog.bind_obs(self.obs)
        if self.kernel.chaos is not None:
            self.kernel.chaos.bind_obs(self.obs)
        self._register_cache_metrics()

    def _rebind_obs(self) -> None:
        """Give a forked machine its own fresh observability hub."""
        self.obs = Observability(
            self.clock, metrics_enabled=self.config.metrics_enabled
        )
        self._bind_obs_chain()

    def _register_cache_metrics(self) -> None:
        """CPU-cache counters, sourced at snapshot time (hot path untouched)."""
        metrics = self.obs.metrics
        hits = metrics.gauge(
            "cpu_cache.hits", unit="accesses", help="CPU cache hits"
        )
        misses = metrics.gauge(
            "cpu_cache.misses", unit="accesses", help="CPU cache misses"
        )
        flushes = metrics.gauge(
            "cpu_cache.flushes", unit="lines", help="clflush evictions"
        )
        sim_now = metrics.gauge(
            "sim.clock_ns", unit="ns", help="current simulated time"
        )
        cache, clock = self.cache, self.clock

        def _collect() -> None:
            hits.set(cache.hits)
            misses.set(cache.misses)
            flushes.set(cache.flushes)
            sim_now.set(clock.now_ns)

        metrics.add_collector(_collect)

    # -- the event loop --------------------------------------------------------

    def run_until(self, target_ns: int) -> int:
        """Advance simulated time to ``target_ns``, firing due events.

        Returns the number of events dispatched (0 in polled mode, where
        this degenerates to a plain clock advance).
        """
        if self.events is not None:
            return self.events.run_until(target_ns)
        self.clock.advance_to(target_ns)
        return 0

    def step(self) -> int | None:
        """Advance to the next scheduled event and fire it.

        Returns the firing time, or None when idle (or in polled mode).
        """
        if self.events is None:
            return None
        return self.events.step()

    # -- snapshot / fork -------------------------------------------------------

    def snapshot(self, extras=None) -> MachineSnapshot:
        """Freeze the machine (and optional companion objects) for forking.

        ``extras`` rides along through the same deep copy, so objects
        holding machine references (an attack mid-pipeline, templated
        candidates) stay consistent with the copied machine.
        """
        return MachineSnapshot(self, extras)

    def fork(self, seed: int | None = None) -> "Machine":
        """An independent deep copy of this machine, optionally re-seeded.

        One-shot convenience over :meth:`snapshot`; to stamp out many
        forks, take one snapshot and fork it repeatedly.
        """
        machine, _ = MachineSnapshot(self).fork(seed=seed)
        return machine

    @property
    def num_cpus(self) -> int:
        """Number of simulated CPUs."""
        return self.config.num_cpus

    def stats(self) -> dict[str, dict]:
        """One snapshot of every subsystem's counters."""
        return {
            "dram": self.controller.stats(),
            "trr": self.controller.trr_stats(),
            "ecc": self.controller.ecc_stats(),
            "allocator": self.allocator.stats(),
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "flushes": self.cache.flushes,
            },
            "kernel": vars(self.kernel.stats).copy(),
            "clock_ns": {"now": self.clock.now_ns},
            "events": (
                self.events.stats()
                if self.events is not None
                else {"scheduled": 0, "dispatched": 0, "cancelled": 0, "pending": 0}
            ),
        }

    def __repr__(self) -> str:
        return (
            f"Machine(seed={self.config.seed}, cpus={self.num_cpus}, "
            f"dram={self.config.geometry})"
        )
