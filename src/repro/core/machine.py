"""Machine assembly: wire every substrate together from one config."""

from __future__ import annotations

from repro.core.config import MachineConfig
from repro.dram.cache import CpuCache
from repro.dram.controller import MemoryController
from repro.dram.mapping import make_mapping
from repro.mm.allocator import ZonedPageFrameAllocator
from repro.mm.node import NumaNode
from repro.mm.page import FrameTable
from repro.mm.reclaim import Kswapd
from repro.obs import Observability
from repro.os.kernel import Kernel
from repro.os.scheduler import Scheduler
from repro.sim.clock import SimClock
from repro.sim.rng import RngStreams
from repro.sim.units import PAGE_SIZE


class Machine:
    """A complete simulated computer: DRAM, allocators, kernel, CPUs.

    Deterministic: two machines built from equal configs behave
    identically, including the weak-cell map of their DRAM.
    """

    def __init__(self, config: MachineConfig | None = None):
        self.config = config or MachineConfig()
        self.rng = RngStreams(self.config.seed)
        self.clock = SimClock()
        self.obs = Observability(
            self.clock, metrics_enabled=self.config.metrics_enabled
        )

        geometry = self.config.geometry
        self.mapping = make_mapping(self.config.mapping, geometry)
        self.controller = MemoryController(
            geometry=geometry,
            mapping=self.mapping,
            timing=self.config.timing,
            flip_config=self.config.flip_model,
            rng=self.rng,
            clock=self.clock,
            trr_config=self.config.trr,
            ecc_config=self.config.ecc,
        )
        self.cache = CpuCache(self.config.cache)

        total_pages = geometry.total_bytes // PAGE_SIZE
        self.frames = FrameTable(total_pages)
        num_nodes = self.config.num_nodes
        node_pages = total_pages // num_nodes
        if node_pages * PAGE_SIZE * num_nodes != geometry.total_bytes:
            node_pages = total_pages // num_nodes  # truncate the remainder
        self.nodes = [
            NumaNode(
                node_id=index,
                frames=self.frames,
                total_bytes=node_pages * PAGE_SIZE,
                num_cpus=self.config.num_cpus,
                layout=self.config.zone_layout,
                pcp_config=self.config.pcp,
                base_pfn=index * node_pages,
            )
            for index in range(num_nodes)
        ]
        self.node = self.nodes[0]
        self.kswapd = Kswapd()
        cpus_per_node = self.config.num_cpus // num_nodes
        cpu_to_node = [cpu // cpus_per_node for cpu in range(self.config.num_cpus)]
        self.allocator = ZonedPageFrameAllocator(
            self.nodes, self.kswapd, cpu_to_node=cpu_to_node if num_nodes > 1 else None
        )
        self.scheduler = Scheduler(self.config.num_cpus)
        self.kernel = Kernel(
            allocator=self.allocator,
            controller=self.controller,
            cache=self.cache,
            clock=self.clock,
            scheduler=self.scheduler,
            kswapd=self.kswapd,
        )

        self.controller.bind_obs(self.obs)
        self.allocator.bind_obs(self.obs)
        self.scheduler.bind_obs(self.obs)
        self.kernel.bind_obs(self.obs)
        self._register_cache_metrics()

    def _register_cache_metrics(self) -> None:
        """CPU-cache counters, sourced at snapshot time (hot path untouched)."""
        metrics = self.obs.metrics
        hits = metrics.gauge(
            "cpu_cache.hits", unit="accesses", help="CPU cache hits"
        )
        misses = metrics.gauge(
            "cpu_cache.misses", unit="accesses", help="CPU cache misses"
        )
        flushes = metrics.gauge(
            "cpu_cache.flushes", unit="lines", help="clflush evictions"
        )
        sim_now = metrics.gauge(
            "sim.clock_ns", unit="ns", help="current simulated time"
        )
        cache, clock = self.cache, self.clock

        def _collect() -> None:
            hits.set(cache.hits)
            misses.set(cache.misses)
            flushes.set(cache.flushes)
            sim_now.set(clock.now_ns)

        metrics.add_collector(_collect)

    @property
    def num_cpus(self) -> int:
        """Number of simulated CPUs."""
        return self.config.num_cpus

    def stats(self) -> dict[str, dict]:
        """One snapshot of every subsystem's counters."""
        return {
            "dram": self.controller.stats(),
            "trr": self.controller.trr_stats(),
            "ecc": self.controller.ecc_stats(),
            "allocator": self.allocator.stats(),
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "flushes": self.cache.flushes,
            },
            "kernel": vars(self.kernel.stats).copy(),
            "clock_ns": {"now": self.clock.now_ns},
        }

    def __repr__(self) -> str:
        return (
            f"Machine(seed={self.config.seed}, cpus={self.num_cpus}, "
            f"dram={self.config.geometry})"
        )
