"""Machine assembly: wire every substrate together from one config.

Besides construction, this module owns the machine's *lifecycle*
operations: driving the event scheduler (:meth:`Machine.run_until` /
:meth:`Machine.step`) and cloning warm state
(:meth:`Machine.snapshot` / :meth:`Machine.fork`) so campaigns and
sweeps can fan out from one templated machine instead of rebuilding
and re-templating per attempt.
"""

from __future__ import annotations

import io
import pickle

from repro.core.config import MachineConfig
from repro.defense.watchdog import HammerWatchdog
from repro.dram.cache import CpuCache
from repro.dram.controller import MemoryController
from repro.dram.mapping import make_mapping
from repro.dram.memory import PhysicalMemory
from repro.mm.allocator import ZonedPageFrameAllocator
from repro.mm.node import NumaNode
from repro.mm.page import FrameTable
from repro.mm.reclaim import Kswapd
from repro.obs import NOOP_OBS, Observability
from repro.os.kernel import Kernel
from repro.os.scheduler import Scheduler
from repro.sim.clock import SimClock
from repro.sim.events import EventBus, EventScheduler
from repro.sim.rng import RngStreams
from repro.sim.units import PAGE_SIZE


def _rebind_extras(extras, obs) -> None:
    """Re-attach a fresh observability hub to forked companion objects."""
    if extras is None:
        return
    if isinstance(extras, (list, tuple)):
        for item in extras:
            _rebind_extras(item, obs)
        return
    if isinstance(extras, dict):
        for item in extras.values():
            _rebind_extras(item, obs)
        return
    bind = getattr(extras, "bind_obs", None)
    if callable(bind):
        bind(obs)


class _SnapshotPickler(pickle.Pickler):
    """Pickler that detaches the two pieces a snapshot must not copy.

    The live observability hub is replaced by :data:`NOOP_OBS` (forks get a
    fresh hub), and the machine's CoW frame table is swapped for a
    persistent reference so the page payloads are *shared* with the
    snapshot instead of being serialised into it.
    """

    def __init__(self, file, obs, frames):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._obs_id = id(obs)
        self._frames_id = id(frames)

    def persistent_id(self, obj):
        if id(obj) == self._obs_id:
            return "obs"
        if id(obj) == self._frames_id:
            return "frames"
        return None


class _SnapshotUnpickler(pickle.Unpickler):
    """Counterpart of :class:`_SnapshotPickler` for forking/rehydration."""

    def __init__(self, file, frames):
        super().__init__(file)
        self._frames = frames

    def persistent_load(self, pid):
        if pid == "obs":
            return NOOP_OBS
        if pid == "frames":
            # The fork co-owns every frozen frame payload; it privatises a
            # frame only when it first writes to it (copy-on-write).
            return PhysicalMemory.bump_refs(self._frames)
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


class MachineSnapshot:
    """A frozen copy of a machine (plus companions) at one instant.

    The snapshot is decoupled from the live machine — the original can
    keep running — and :meth:`fork` stamps out any number of independent
    machines from it.  Freezing serialises the (small) object graph once
    and becomes a co-owner of the machine's materialised DRAM frames, so
    neither the snapshot nor its forks copy page payloads: forks share
    them copy-on-write, making fork() O(1) in module size.

    The observability hub is *not* part of the state: it is detached
    during serialisation and every fork gets a fresh one, so
    metrics/traces never alias between forks.  The weak-cell memo caches
    ride outside the frozen blob and are shared by reference across
    forks — they are pure functions of the build seed.
    """

    def __init__(self, machine: "Machine", extras=None):
        memory = machine.controller.memory
        live_frames = memory._frames
        self._frames = memory.share_frames()
        weak = machine.controller.weak_cells
        self._weak_memo = weak._memo
        self._pop_memo = weak._pop_memo
        buffer = io.BytesIO()
        _SnapshotPickler(buffer, machine.obs, live_frames).dump((machine, extras))
        self._blob = buffer.getvalue()

    def __del__(self):
        frames = getattr(self, "_frames", None)
        if frames:
            PhysicalMemory.release_frames(frames)

    def fork(self, seed: int | None = None) -> tuple["Machine", object]:
        """A fresh, independent (machine, extras) pair from the snapshot.

        With ``seed`` the fork's RNG streams are re-keyed, giving it an
        independent but reproducible random future; its materialised
        state (weak-cell map, memory contents, allocator lists, pending
        events) is untouched — hardware does not change identity when an
        experiment re-rolls its dice.
        """
        machine, extras = _SnapshotUnpickler(io.BytesIO(self._blob), self._frames).load()
        weak = machine.controller.weak_cells
        weak._memo = self._weak_memo
        weak._pop_memo = self._pop_memo
        machine._rebind_obs()
        _rebind_extras(extras, machine.obs)
        if seed is not None:
            machine.rng.reseed(seed)
        return machine, extras

    def to_bytes(self) -> bytes:
        """Serialise the frozen state for shipping to worker processes.

        The snapshot holds no live observability hub (serialisation swapped
        it for :data:`NOOP_OBS`, which pickles as the singleton), no open
        files and no threads, so the result is self-contained: the CoW
        frame table travels as one packed payload, and ``from_bytes`` in
        any process yields a snapshot whose forks are byte-identical to
        forks taken in the parent (docs/CAMPAIGNS.md).
        """
        pfns, payload = PhysicalMemory.pack_frames(self._frames)
        return pickle.dumps(
            {"pfns": pfns, "payload": payload, "blob": self._blob},
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "MachineSnapshot":
        """Rehydrate a snapshot previously serialised with :meth:`to_bytes`."""
        state = pickle.loads(blob)
        snapshot = cls.__new__(cls)
        snapshot._frames = PhysicalMemory.unpack_frames(state["pfns"], state["payload"])
        # Memo caches are regenerated on demand in the receiving process.
        snapshot._weak_memo = {}
        snapshot._pop_memo = {}
        snapshot._blob = state["blob"]
        return snapshot


class Machine:
    """A complete simulated computer: DRAM, allocators, kernel, CPUs.

    Deterministic: two machines built from equal configs behave
    identically, including the weak-cell map of their DRAM.
    """

    def __init__(self, config: MachineConfig | None = None):
        self.config = config or MachineConfig()
        self.rng = RngStreams(self.config.seed)
        self.clock = SimClock()
        self.obs = Observability(
            self.clock, metrics_enabled=self.config.metrics_enabled
        )

        # The event core: every recurring behaviour (refresh, kswapd,
        # scheduler ticks, watchdog scans, chaos hooks) routes through one
        # scheduler + bus.  The legacy timed_core="polled" inline-check
        # path was retired; MachineConfig rejects it with a pointer here.
        self.events = EventScheduler(self.clock)
        self.bus = EventBus()

        geometry = self.config.geometry
        self.mapping = make_mapping(self.config.mapping, geometry)
        self.controller = MemoryController(
            geometry=geometry,
            mapping=self.mapping,
            timing=self.config.timing,
            flip_config=self.config.flip_model,
            rng=self.rng,
            clock=self.clock,
            trr_config=self.config.trr,
            ecc_config=self.config.ecc,
            events=self.events,
        )
        self.cache = CpuCache(self.config.cache)

        total_pages = geometry.total_bytes // PAGE_SIZE
        self.frames = FrameTable(total_pages)
        num_nodes = self.config.num_nodes
        # Pages that don't divide evenly across nodes are truncated: each
        # node manages exactly node_pages, and the tail (like a firmware
        # hole) stays outside every node.
        node_pages = total_pages // num_nodes
        self.unmanaged_bytes = geometry.total_bytes - node_pages * PAGE_SIZE * num_nodes
        self.nodes = [
            NumaNode(
                node_id=index,
                frames=self.frames,
                total_bytes=node_pages * PAGE_SIZE,
                num_cpus=self.config.num_cpus,
                layout=self.config.zone_layout,
                pcp_config=self.config.pcp,
                base_pfn=index * node_pages,
            )
            for index in range(num_nodes)
        ]
        managed = sum(node.total_pages for node in self.nodes) * PAGE_SIZE
        assert managed + self.unmanaged_bytes == geometry.total_bytes, (
            f"per-node byte accounting broken: {managed} managed + "
            f"{self.unmanaged_bytes} unmanaged != {geometry.total_bytes} total"
        )
        self.node = self.nodes[0]
        self.kswapd = Kswapd()
        self.kswapd.bind_events(self.events)
        cpus_per_node = self.config.num_cpus // num_nodes
        cpu_to_node = [cpu // cpus_per_node for cpu in range(self.config.num_cpus)]
        self.allocator = ZonedPageFrameAllocator(
            self.nodes, self.kswapd, cpu_to_node=cpu_to_node if num_nodes > 1 else None
        )
        self.scheduler = Scheduler(self.config.num_cpus)
        self.scheduler.bind_events(self.events)
        self.kernel = Kernel(
            allocator=self.allocator,
            controller=self.controller,
            cache=self.cache,
            clock=self.clock,
            scheduler=self.scheduler,
            kswapd=self.kswapd,
            events=self.events,
            bus=self.bus,
        )
        self.watchdog = (
            HammerWatchdog(self.config.watchdog) if self.config.watchdog else None
        )
        if self.watchdog is not None:
            self.watchdog.bind_events(self.events, self.kernel.ledger)

        self._bind_obs_chain()

    # -- observability ---------------------------------------------------------

    def _bind_obs_chain(self) -> None:
        """(Re-)attach every component to the machine's current hub."""
        self.controller.bind_obs(self.obs)
        self.allocator.bind_obs(self.obs)
        self.scheduler.bind_obs(self.obs)
        self.kernel.bind_obs(self.obs)
        self.kswapd.bind_obs(self.obs)
        self.events.bind_obs(self.obs)
        self.bus.bind_obs(self.obs)
        if self.watchdog is not None:
            self.watchdog.bind_obs(self.obs)
        if self.kernel.chaos is not None:
            self.kernel.chaos.bind_obs(self.obs)
        self.cache.bind_obs(self.obs)
        self._register_cache_metrics()

    def _rebind_obs(self) -> None:
        """Give a forked machine its own fresh observability hub."""
        self.obs = Observability(
            self.clock, metrics_enabled=self.config.metrics_enabled
        )
        self._bind_obs_chain()

    def _register_cache_metrics(self) -> None:
        """CPU-cache counters, sourced at snapshot time (hot path untouched)."""
        metrics = self.obs.metrics
        hits = metrics.gauge(
            "cpu_cache.hits", unit="accesses", help="CPU cache hits"
        )
        misses = metrics.gauge(
            "cpu_cache.misses", unit="accesses", help="CPU cache misses"
        )
        flushes = metrics.gauge(
            "cpu_cache.flushes", unit="lines", help="clflush evictions"
        )
        sim_now = metrics.gauge(
            "sim.clock_ns", unit="ns", help="current simulated time"
        )
        cache, clock = self.cache, self.clock

        def _collect() -> None:
            hits.set(cache.hits)
            misses.set(cache.misses)
            flushes.set(cache.flushes)
            sim_now.set(clock.now_ns)

        metrics.add_collector(_collect)

    # -- the event loop --------------------------------------------------------

    def run_until(self, target_ns: int) -> int:
        """Advance simulated time to ``target_ns``, firing due events.

        Returns the number of events dispatched.
        """
        return self.events.run_until(target_ns)

    def step(self) -> int | None:
        """Advance to the next scheduled event and fire it.

        Returns the firing time, or None when idle.
        """
        return self.events.step()

    # -- snapshot / fork -------------------------------------------------------

    def snapshot(self, extras=None) -> MachineSnapshot:
        """Freeze the machine (and optional companion objects) for forking.

        ``extras`` rides along through the same deep copy, so objects
        holding machine references (an attack mid-pipeline, templated
        candidates) stay consistent with the copied machine.
        """
        return MachineSnapshot(self, extras)

    def fork(self, seed: int | None = None) -> "Machine":
        """An independent deep copy of this machine, optionally re-seeded.

        One-shot convenience over :meth:`snapshot`; to stamp out many
        forks, take one snapshot and fork it repeatedly.
        """
        machine, _ = MachineSnapshot(self).fork(seed=seed)
        return machine

    @property
    def num_cpus(self) -> int:
        """Number of simulated CPUs."""
        return self.config.num_cpus

    def stats(self) -> dict[str, dict]:
        """One snapshot of every subsystem's counters."""
        return {
            "dram": self.controller.stats(),
            "trr": self.controller.trr_stats(),
            "ecc": self.controller.ecc_stats(),
            "allocator": self.allocator.stats(),
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "flushes": self.cache.flushes,
            },
            "kernel": vars(self.kernel.stats).copy(),
            "clock_ns": {"now": self.clock.now_ns},
            "events": self.events.stats(),
        }

    def __repr__(self) -> str:
        return (
            f"Machine(seed={self.config.seed}, cpus={self.num_cpus}, "
            f"dram={self.config.geometry})"
        )
