"""Vectorised AES-128 encryption for fault-analysis sweeps.

Persistent Fault Analysis consumes thousands of ciphertexts per data
point; the pure-Python block cipher would dominate every benchmark.  This
module encrypts whole batches with NumPy — same state layout, same round
structure, same pluggable S-box as :mod:`repro.ciphers.aes` — and the test
suite cross-checks it block-for-block against the scalar implementation.
"""

from __future__ import annotations

import numpy as np

from repro.ciphers.aes import expand_key
from repro.ciphers.aes_tables import AES_SBOX, SHIFT_ROWS_PERM, gf_mul

_MUL2 = np.array([gf_mul(x, 2) for x in range(256)], dtype=np.uint8)
_MUL3 = np.array([gf_mul(x, 3) for x in range(256)], dtype=np.uint8)
_SHIFT = np.array(SHIFT_ROWS_PERM, dtype=np.intp)


def _mix_columns(state: np.ndarray) -> np.ndarray:
    """MixColumns over an (N, 16) column-major state array."""
    cols = state.reshape(-1, 4, 4)  # (N, column, row)
    a0 = cols[:, :, 0]
    a1 = cols[:, :, 1]
    a2 = cols[:, :, 2]
    a3 = cols[:, :, 3]
    mixed = np.empty_like(cols)
    mixed[:, :, 0] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
    mixed[:, :, 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
    mixed[:, :, 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
    mixed[:, :, 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]
    return mixed.reshape(-1, 16)


def aes128_encrypt_batch(
    plaintexts: np.ndarray | list[bytes],
    key: bytes,
    sbox: bytes = AES_SBOX,
) -> np.ndarray:
    """Encrypt many AES-128 blocks at once.

    ``plaintexts`` is an (N, 16) uint8 array or a list of 16-byte blocks;
    the result is an (N, 16) uint8 array of ciphertexts.  ``sbox`` may be a
    faulty table — the key schedule still uses the clean S-box, matching
    the persistent-fault timeline (keys expanded before the fault lands).
    """
    if isinstance(plaintexts, list):
        data = np.frombuffer(b"".join(plaintexts), dtype=np.uint8).reshape(-1, 16).copy()
    else:
        data = np.asarray(plaintexts, dtype=np.uint8)
        if data.ndim != 2 or data.shape[1] != 16:
            raise ValueError(f"plaintexts must be (N, 16), got {data.shape}")
        data = data.copy()
    if len(key) != 16:
        raise ValueError(f"this fast path is AES-128 only; key of {len(key)} bytes")
    if len(sbox) != 256:
        raise ValueError(f"S-box must be 256 bytes, got {len(sbox)}")

    round_keys = [
        np.frombuffer(rk, dtype=np.uint8) for rk in expand_key(key)
    ]
    sbox_np = np.frombuffer(bytes(sbox), dtype=np.uint8)

    state = data ^ round_keys[0]
    for round_index in range(1, 10):
        state = sbox_np[state]
        state = state[:, _SHIFT]
        state = _mix_columns(state)
        state ^= round_keys[round_index]
    state = sbox_np[state]
    state = state[:, _SHIFT]
    state ^= round_keys[10]
    return state


def random_plaintexts(count: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform random (count, 16) plaintext array."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    return rng.integers(0, 256, size=(count, 16), dtype=np.uint8)
