"""AES-128/192/256, byte-oriented, with a pluggable S-box source.

The implementation is deliberately the *table-lookup* style the fault-
analysis literature attacks: SubBytes reads a 256-byte table on every
block.  The table comes from a provider callable, which in the experiments
is a view of a page inside a simulated victim process — so a persistent
DRAM fault in that page corrupts every subsequent encryption, exactly the
fault model of Persistent Fault Analysis (Zhang et al., TCHES 2018).

State layout is the FIPS-197 column-major order: flat index ``r + 4*c``.
Blocks and keys are ``bytes``; round keys are expanded once (with a chosen
S-box, by default the clean one) and reused.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.ciphers.aes_tables import (
    AES_INV_SBOX,
    AES_RCON,
    AES_SBOX,
    INV_SHIFT_ROWS_PERM,
    SHIFT_ROWS_PERM,
    gf_mul,
)

SBoxProvider = Callable[[], bytes]


class InvalidKeySize(ValueError):
    """Key length is not 16, 24 or 32 bytes."""


_ROUNDS = {16: 10, 24: 12, 32: 14}


def expand_key(key: bytes, sbox: bytes = AES_SBOX) -> list[bytes]:
    """FIPS-197 key expansion; returns ``rounds + 1`` 16-byte round keys.

    The S-box is a parameter so experiments can model a fault landing
    *before* key expansion; by default the clean table is used (round keys
    are normally computed once at startup, before the attacker hammers).
    """
    if len(key) not in _ROUNDS:
        raise InvalidKeySize(f"key must be 16/24/32 bytes, got {len(key)}")
    nk = len(key) // 4
    rounds = _ROUNDS[len(key)]
    words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
    for i in range(nk, 4 * (rounds + 1)):
        temp = list(words[i - 1])
        if i % nk == 0:
            temp = temp[1:] + temp[:1]  # RotWord
            temp = [sbox[b] for b in temp]  # SubWord
            temp[0] ^= AES_RCON[i // nk - 1]
        elif nk > 6 and i % nk == 4:
            temp = [sbox[b] for b in temp]
        words.append([a ^ b for a, b in zip(words[i - nk], temp)])
    round_keys = []
    for r in range(rounds + 1):
        chunk = words[4 * r : 4 * r + 4]
        round_keys.append(bytes(b for word in chunk for b in word))
    return round_keys


def _mix_single_column(col: list[int]) -> list[int]:
    a0, a1, a2, a3 = col
    return [
        gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3,
        a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3,
        a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3),
        gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2),
    ]


def _inv_mix_single_column(col: list[int]) -> list[int]:
    a0, a1, a2, a3 = col
    return [
        gf_mul(a0, 14) ^ gf_mul(a1, 11) ^ gf_mul(a2, 13) ^ gf_mul(a3, 9),
        gf_mul(a0, 9) ^ gf_mul(a1, 14) ^ gf_mul(a2, 11) ^ gf_mul(a3, 13),
        gf_mul(a0, 13) ^ gf_mul(a1, 9) ^ gf_mul(a2, 14) ^ gf_mul(a3, 11),
        gf_mul(a0, 11) ^ gf_mul(a1, 13) ^ gf_mul(a2, 9) ^ gf_mul(a3, 14),
    ]


# MixColumns is hot; precompute the xtime tables once.
_MUL2 = bytes(gf_mul(x, 2) for x in range(256))
_MUL3 = bytes(gf_mul(x, 3) for x in range(256))


class AES:
    """One AES context: expanded round keys plus an S-box source."""

    def __init__(
        self,
        key: bytes,
        sbox_provider: SBoxProvider | None = None,
        key_schedule_sbox: bytes = AES_SBOX,
    ):
        self.key = bytes(key)
        self.rounds = _ROUNDS.get(len(self.key))
        if self.rounds is None:
            raise InvalidKeySize(f"key must be 16/24/32 bytes, got {len(key)}")
        self.round_keys = expand_key(self.key, key_schedule_sbox)
        self._sbox_provider = sbox_provider or (lambda: AES_SBOX)

    def current_sbox(self) -> bytes:
        """Fetch the S-box from the provider (may be faulty)."""
        sbox = self._sbox_provider()
        if len(sbox) != 256:
            raise ValueError(f"S-box must be 256 bytes, got {len(sbox)}")
        return sbox

    # -- encryption ------------------------------------------------------------

    def encrypt_block(
        self,
        plaintext: bytes,
        transient_fault: tuple[int, int] | None = None,
    ) -> bytes:
        """Encrypt one 16-byte block with the provider's current S-box.

        ``transient_fault`` is an optional ``(position, xor_mask)`` applied
        to the state immediately before the final SubBytes — the classic
        last-round DFA fault model, used by the baseline analysis.
        """
        if len(plaintext) != 16:
            raise ValueError(f"block must be 16 bytes, got {len(plaintext)}")
        sbox = self.current_sbox()
        state = [p ^ k for p, k in zip(plaintext, self.round_keys[0])]
        for round_index in range(1, self.rounds):
            state = [sbox[b] for b in state]
            state = [state[SHIFT_ROWS_PERM[i]] for i in range(16)]
            mixed = []
            for c in range(4):
                a0, a1, a2, a3 = state[4 * c : 4 * c + 4]
                mixed += [
                    _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3,
                    a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3,
                    a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3],
                    _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3],
                ]
            key = self.round_keys[round_index]
            state = [b ^ k for b, k in zip(mixed, key)]
        # Final round: no MixColumns.
        if transient_fault is not None:
            position, mask = transient_fault
            if not 0 <= position < 16:
                raise ValueError(f"fault position {position} out of range [0, 16)")
            state = list(state)
            state[position] ^= mask & 0xFF
        state = [sbox[b] for b in state]
        state = [state[SHIFT_ROWS_PERM[i]] for i in range(16)]
        return bytes(b ^ k for b, k in zip(state, self.round_keys[self.rounds]))

    # -- decryption (always with the clean inverse table) -------------------------

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        """Decrypt one block using the clean inverse S-box.

        Decryption exists for correctness tests; the fault experiments only
        ever need encryption (the attacker sees ciphertexts).
        """
        if len(ciphertext) != 16:
            raise ValueError(f"block must be 16 bytes, got {len(ciphertext)}")
        state = [c ^ k for c, k in zip(ciphertext, self.round_keys[self.rounds])]
        state = [state[INV_SHIFT_ROWS_PERM[i]] for i in range(16)]
        state = [AES_INV_SBOX[b] for b in state]
        for round_index in range(self.rounds - 1, 0, -1):
            key = self.round_keys[round_index]
            state = [b ^ k for b, k in zip(state, key)]
            unmixed = []
            for c in range(4):
                unmixed += _inv_mix_single_column(state[4 * c : 4 * c + 4])
            state = [unmixed[INV_SHIFT_ROWS_PERM[i]] for i in range(16)]
            state = [AES_INV_SBOX[b] for b in state]
        return bytes(b ^ k for b, k in zip(state, self.round_keys[0]))

    def encrypt_many(self, plaintexts: list[bytes]) -> list[bytes]:
        """Encrypt a list of blocks, re-reading the S-box once per block."""
        return [self.encrypt_block(p) for p in plaintexts]


def mix_columns_reference(state: list[int]) -> list[int]:
    """Reference MixColumns over a flat column-major state (for tests)."""
    out = []
    for c in range(4):
        out += _mix_single_column(state[4 * c : 4 * c + 4])
    return out
