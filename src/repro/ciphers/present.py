"""PRESENT-80/128 (Bogdanov et al., CHES 2007).

A second block cipher for the fault experiments: 64-bit blocks, 31 rounds,
a single 4-bit S-box applied sixteen times per round, and a bit
permutation.  Like the AES context, the S-box comes from a provider
callable so a memory-resident table can be faulted persistently.

The S-box here is stored nibble-per-byte (16 bytes) so a single DRAM bit
flip corrupts exactly one S-box entry, mirroring the AES setup.
"""

from __future__ import annotations

from collections.abc import Callable

PRESENT_SBOX = bytes(
    [0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2]
)

# pLayer: output bit P(i) takes input bit i.
_PLAYER = tuple(
    63 if i == 63 else (16 * i) % 63 for i in range(64)
)

NibbleProvider = Callable[[], bytes]


def p_layer(state: int) -> int:
    """The PRESENT bit permutation over a 64-bit state."""
    out = 0
    for i in range(64):
        if (state >> i) & 1:
            out |= 1 << _PLAYER[i]
    return out


_INV_PLAYER = [0] * 64
for _i in range(64):
    _INV_PLAYER[_PLAYER[_i]] = _i


def inv_p_layer(state: int) -> int:
    """Inverse of :func:`p_layer`."""
    out = 0
    for i in range(64):
        if (state >> i) & 1:
            out |= 1 << _INV_PLAYER[i]
    return out


def _permute(state: int) -> int:
    return p_layer(state)


class Present:
    """One PRESENT context: round keys plus an S-box source."""

    ROUNDS = 31

    def __init__(self, key: bytes, sbox_provider: NibbleProvider | None = None):
        if len(key) not in (10, 16):
            raise ValueError(f"PRESENT key must be 10 (80-bit) or 16 (128-bit) bytes")
        self.key = bytes(key)
        self._sbox_provider = sbox_provider or (lambda: PRESENT_SBOX)
        # Round keys are derived with the clean S-box (computed at startup,
        # before any fault lands), matching the persistent-fault timeline.
        if len(key) == 10:
            self.round_keys = self._schedule_80(int.from_bytes(key, "big"))
        else:
            self.round_keys = self._schedule_128(int.from_bytes(key, "big"))

    def _schedule_80(self, register: int) -> list[int]:
        keys = []
        for round_index in range(1, self.ROUNDS + 2):
            keys.append(register >> 16)
            register = ((register << 61) | (register >> 19)) & ((1 << 80) - 1)
            top = PRESENT_SBOX[register >> 76]
            register = (top << 76) | (register & ((1 << 76) - 1))
            register ^= round_index << 15
        return keys

    def _schedule_128(self, register: int) -> list[int]:
        keys = []
        for round_index in range(1, self.ROUNDS + 2):
            keys.append(register >> 64)
            register = ((register << 61) | (register >> 67)) & ((1 << 128) - 1)
            top2 = (
                (PRESENT_SBOX[register >> 124] << 4)
                | PRESENT_SBOX[(register >> 120) & 0xF]
            )
            register = (top2 << 120) | (register & ((1 << 120) - 1))
            register ^= round_index << 62
        return keys

    def current_sbox(self) -> bytes:
        """Fetch the (possibly faulty) 16-entry S-box."""
        sbox = self._sbox_provider()
        if len(sbox) != 16:
            raise ValueError(f"PRESENT S-box must be 16 bytes, got {len(sbox)}")
        return sbox

    def encrypt_block(self, plaintext: bytes) -> bytes:
        """Encrypt one 8-byte block."""
        if len(plaintext) != 8:
            raise ValueError(f"block must be 8 bytes, got {len(plaintext)}")
        sbox = self.current_sbox()
        state = int.from_bytes(plaintext, "big")
        for round_index in range(self.ROUNDS):
            state ^= self.round_keys[round_index]
            substituted = 0
            for nibble in range(16):
                value = (state >> (4 * nibble)) & 0xF
                substituted |= (sbox[value] & 0xF) << (4 * nibble)
            state = _permute(substituted)
        state ^= self.round_keys[self.ROUNDS]
        return state.to_bytes(8, "big")

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        """Decrypt one block (clean S-box; for correctness tests)."""
        if len(ciphertext) != 8:
            raise ValueError(f"block must be 8 bytes, got {len(ciphertext)}")
        inv_sbox = bytearray(16)
        for index, value in enumerate(PRESENT_SBOX):
            inv_sbox[value] = index
        inv_player = [0] * 64
        for i in range(64):
            inv_player[_PLAYER[i]] = i
        state = int.from_bytes(ciphertext, "big")
        state ^= self.round_keys[self.ROUNDS]
        for round_index in range(self.ROUNDS - 1, -1, -1):
            unpermuted = 0
            for i in range(64):
                if (state >> i) & 1:
                    unpermuted |= 1 << inv_player[i]
            state = 0
            for nibble in range(16):
                value = (unpermuted >> (4 * nibble)) & 0xF
                state |= inv_sbox[value] << (4 * nibble)
            state ^= self.round_keys[round_index]
        return state.to_bytes(8, "big")
