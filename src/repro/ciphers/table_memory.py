"""Memory-resident S-boxes and the cipher victim process.

This is where the cipher meets the simulated machine.  A
:class:`MemorySBox` is a window onto a few hundred bytes of a task's
address space; the cipher reads its substitution table through it on every
use, so a DRAM disturbance flip in the backing frame becomes a *persistent
cipher fault* — the fault model of Zhang et al.'s Persistent Fault
Analysis, and the end goal of the paper's attack.

:class:`CipherVictim` wraps the whole victim life cycle the paper
describes: a process sharing the attacker's CPU that, at a moment the
attacker influences, makes a small allocation (its table page), stores its
S-box there, and then encrypts on request.  The allocation deliberately
happens in a separate step from process creation so experiments can stage
the page-frame-cache state in between.
"""

from __future__ import annotations

import numpy as np

from repro.ciphers.aes import AES
from repro.ciphers.aes_tables import AES_SBOX
from repro.ciphers.aes_ttable import AES_TE_TABLES, AesTTable
from repro.ciphers.batch import aes128_encrypt_batch, random_plaintexts
from repro.ciphers.present import PRESENT_SBOX, Present
from repro.os.kernel import Kernel
from repro.sim.errors import ConfigError, FaultError
from repro.sim.units import PAGE_SIZE

# Default in-page offset of the S-box.  In a real binary the table sits at
# a fixed, attacker-knowable offset of a .rodata/.data page (the ELF layout
# is public); any value works as long as attacker and victim agree.
DEFAULT_TABLE_OFFSET = 0x680


class MemorySBox:
    """A substitution table stored in a simulated task's memory."""

    def __init__(self, kernel: Kernel, pid: int, va: int, size: int):
        if size <= 0 or size > PAGE_SIZE:
            raise ConfigError(f"table size {size} must be in (0, {PAGE_SIZE}]")
        self.kernel = kernel
        self.pid = pid
        self.va = va
        self.size = size
        self._reference: bytes | None = None

    def install(self, table: bytes) -> None:
        """Write the table into memory (first touch allocates the frame)."""
        if len(table) != self.size:
            raise ConfigError(f"table must be {self.size} bytes, got {len(table)}")
        self.kernel.mem_write(self.pid, self.va, table)
        self._reference = bytes(table)

    def read(self) -> bytes:
        """Fetch the table as the cipher would see it right now."""
        return self.kernel.mem_read(self.pid, self.va, self.size)

    def provider(self):
        """A zero-argument callable for the cipher constructors."""
        return self.read

    def is_intact(self) -> bool:
        """True when the in-memory table still equals what was installed."""
        if self._reference is None:
            raise FaultError("table was never installed")
        return self.read() == self._reference

    def corrupted_entries(self) -> list[tuple[int, int, int]]:
        """(index, expected, actual) for every corrupted table byte."""
        if self._reference is None:
            raise FaultError("table was never installed")
        current = self.read()
        return [
            (index, expected, actual)
            for index, (expected, actual) in enumerate(zip(self._reference, current))
            if expected != actual
        ]

    @property
    def pfn(self) -> int:
        """Ground-truth frame number of the table page (instrumentation)."""
        return self.kernel.pfn_of(self.pid, self.va)


class CipherVictim:
    """A victim process encrypting with memory-resident tables.

    Three implementations are available:

    * ``"aes"`` — AES-128/192/256 with a 256-byte S-box in one page;
    * ``"present"`` — PRESENT with its 16-byte nibble table in one page;
    * ``"aes_ttable"`` — the classic T-table AES-128: the 4 KiB Te0..Te3
      block fills the victim's *first* table page and the last-round
      S-box sits in a *second* page.  Faulting the S-box requires the
      steered frame to arrive as the victim's second allocation — the
      multi-page steering case ExplFrame handles by staging two frames.
    """

    CIPHERS = ("aes", "present", "aes_ttable")

    def __init__(
        self,
        kernel: Kernel,
        key: bytes,
        cpu: int | None = None,
        cipher: str = "aes",
        table_offset: int = DEFAULT_TABLE_OFFSET,
        name: str = "victim",
    ):
        if cipher not in self.CIPHERS:
            raise ConfigError(f"cipher must be one of {self.CIPHERS}, got {cipher!r}")
        self.kernel = kernel
        self.cipher_kind = cipher
        self.key = bytes(key)
        self.table_offset = table_offset
        self.task = kernel.spawn(name, cpu=cpu)
        self.sbox: MemorySBox | None = None
        self._te_va: int | None = None
        self._context: AES | Present | AesTTable | None = None
        self.encryptions = 0

    @property
    def pid(self) -> int:
        """Victim's pid."""
        return self.task.pid

    @property
    def table_size(self) -> int:
        """Size of the (last-round) substitution table stored in memory."""
        return 16 if self.cipher_kind == "present" else 256

    def _read_te(self) -> bytes:
        return self.kernel.mem_read(self.pid, self._te_va, 4096)

    def allocate_table_page(self) -> int:
        """The victim's small allocation(s): map and populate its tables.

        Returns the PFN holding the (last-round) S-box — the quantity the
        steering experiments score.  The round keys were already derived
        (clean) when the process started; only the in-memory tables are
        exposed to later faults.
        """
        if self.sbox is not None:
            raise ConfigError("table page already allocated")
        if self.cipher_kind == "aes_ttable":
            base_va = self.kernel.sys_mmap(self.pid, 2 * PAGE_SIZE, name="cipher-tables")
            self._te_va = base_va
            # First touch: the Te block fills page 0 exactly.
            self.kernel.mem_write(self.pid, self._te_va, AES_TE_TABLES)
            # Second touch: the last-round S-box in page 1.
            table_va = base_va + PAGE_SIZE + self.table_offset
            self.sbox = MemorySBox(self.kernel, self.pid, table_va, 256)
            self.sbox.install(AES_SBOX)
            self._context = AesTTable(
                self.key,
                te_provider=self._read_te,
                sbox_provider=self.sbox.provider(),
            )
            return self.sbox.pfn
        base_va = self.kernel.sys_mmap(self.pid, PAGE_SIZE, name="cipher-table")
        table_va = base_va + self.table_offset
        self.sbox = MemorySBox(self.kernel, self.pid, table_va, self.table_size)
        clean = AES_SBOX if self.cipher_kind == "aes" else PRESENT_SBOX
        self.sbox.install(clean)
        if self.cipher_kind == "aes":
            self._context = AES(self.key, sbox_provider=self.sbox.provider())
        else:
            self._context = Present(self.key, sbox_provider=self.sbox.provider())
        return self.sbox.pfn

    def _require_ready(self):
        if self.sbox is None or self._context is None:
            raise ConfigError("victim has not allocated its table page yet")

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt one block, reading the table from memory."""
        self._require_ready()
        self.encryptions += 1
        return self._context.encrypt_block(plaintext)

    def encrypt_batch(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Encrypt ``count`` random blocks (AES variants), vectorised.

        The tables are read from memory once for the batch — valid while
        no new fault lands mid-batch, which the experiment protocols
        ensure by hammering only between batches.  For the T-table victim
        the vectorised path is mathematically identical *only while the
        Te block is clean*, which is verified here (a Te fault falls back
        to the exact scalar implementation).
        """
        self._require_ready()
        if self.cipher_kind == "present":
            raise ConfigError("batch encryption is implemented for AES only")
        if self.cipher_kind == "aes_ttable" and self._read_te() != AES_TE_TABLES:
            plaintexts = random_plaintexts(count, rng)
            self.encryptions += count
            return np.frombuffer(
                b"".join(self._context.encrypt_block(bytes(p)) for p in plaintexts),
                dtype=np.uint8,
            ).reshape(-1, 16)
        sbox = self.sbox.read()
        plaintexts = random_plaintexts(count, rng)
        self.encryptions += count
        return aes128_encrypt_batch(plaintexts, self.key, sbox)

    def table_is_faulty(self) -> bool:
        """True once the in-memory table differs from the clean one."""
        self._require_ready()
        return not self.sbox.is_intact()
