"""T-table AES-128: the classic software implementation under attack.

Production AES software (pre-AES-NI OpenSSL and friends) merges SubBytes,
ShiftRows and MixColumns into four 1 KiB lookup tables Te0..Te3 of 32-bit
words, with a plain S-box (often called Te4) for the final round.  The
whole working set is five tables in ordinary data pages — exactly the
target surface of a persistent memory fault.

Fault behaviour, which the tests pin down:

* a fault in the **last-round S-box** gives the canonical PFA setting:
  one ciphertext-byte value becomes impossible and the key falls out
  (same analysis as :mod:`repro.pfa.pfa`);
* a fault in **Te0..Te3** corrupts inner rounds: ciphertexts are wrong,
  but the final-round statistics stay uniform, so the missing-value
  analysis never converges — the attacker must land her flip in the
  last-round table's page, which is why ExplFrame templates for a
  specific in-page offset range.

Tables are generated from the same GF(2^8) arithmetic as the scalar
implementation and both are cross-checked against FIPS-197 vectors.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.ciphers.aes import expand_key
from repro.ciphers.aes_tables import AES_SBOX, gf_mul

TableProvider = Callable[[], bytes]


def generate_te_tables() -> bytes:
    """Te0..Te3 as 4096 bytes (4 tables x 256 big-endian 32-bit words).

    ``Te0[x]`` holds the MixColumns contribution of a substituted row-0
    byte: ``(2s, s, s, 3s)``; Te1..Te3 are its byte rotations.
    """
    te0 = []
    for x in range(256):
        s = AES_SBOX[x]
        word = (gf_mul(s, 2) << 24) | (s << 16) | (s << 8) | gf_mul(s, 3)
        te0.append(word)

    def rotate_right_8(word: int) -> int:
        """Byte-rotate a 32-bit word right (Te(i+1) from Te(i))."""
        return ((word >> 8) | ((word & 0xFF) << 24)) & 0xFFFFFFFF

    tables = [te0]
    for _ in range(3):
        tables.append([rotate_right_8(word) for word in tables[-1]])
    out = bytearray()
    for table in tables:
        for word in table:
            out += word.to_bytes(4, "big")
    return bytes(out)


AES_TE_TABLES = generate_te_tables()


def _parse_te(raw: bytes) -> list[list[int]]:
    if len(raw) != 4096:
        raise ValueError(f"Te tables must be 4096 bytes, got {len(raw)}")
    tables = []
    for index in range(4):
        base = index * 1024
        tables.append(
            [
                int.from_bytes(raw[base + 4 * i : base + 4 * i + 4], "big")
                for i in range(256)
            ]
        )
    return tables


class AesTTable:
    """AES-128 encryption through Te0..Te3 plus a last-round S-box.

    Both table sets come from providers, so either can live in (and be
    faulted through) simulated memory.  Only encryption is implemented —
    the fault experiments never need the inverse cipher.
    """

    def __init__(
        self,
        key: bytes,
        te_provider: TableProvider | None = None,
        sbox_provider: TableProvider | None = None,
    ):
        if len(key) != 16:
            raise ValueError(f"T-table context is AES-128 only; key of {len(key)} bytes")
        self.key = bytes(key)
        self.round_key_words = [
            [int.from_bytes(rk[4 * c : 4 * c + 4], "big") for c in range(4)]
            for rk in expand_key(self.key)
        ]
        self._te_provider = te_provider or (lambda: AES_TE_TABLES)
        self._sbox_provider = sbox_provider or (lambda: AES_SBOX)

    def encrypt_block(self, plaintext: bytes) -> bytes:
        """Encrypt one block with the providers' current tables."""
        if len(plaintext) != 16:
            raise ValueError(f"block must be 16 bytes, got {len(plaintext)}")
        te0, te1, te2, te3 = _parse_te(self._te_provider())
        sbox = self._sbox_provider()
        if len(sbox) != 256:
            raise ValueError(f"S-box must be 256 bytes, got {len(sbox)}")

        columns = [
            int.from_bytes(plaintext[4 * c : 4 * c + 4], "big")
            ^ self.round_key_words[0][c]
            for c in range(4)
        ]
        for round_index in range(1, 10):
            rk = self.round_key_words[round_index]
            columns = [
                te0[columns[c] >> 24]
                ^ te1[(columns[(c + 1) % 4] >> 16) & 0xFF]
                ^ te2[(columns[(c + 2) % 4] >> 8) & 0xFF]
                ^ te3[columns[(c + 3) % 4] & 0xFF]
                ^ rk[c]
                for c in range(4)
            ]
        rk = self.round_key_words[10]
        final = [
            (
                (sbox[columns[c] >> 24] << 24)
                | (sbox[(columns[(c + 1) % 4] >> 16) & 0xFF] << 16)
                | (sbox[(columns[(c + 2) % 4] >> 8) & 0xFF] << 8)
                | sbox[columns[(c + 3) % 4] & 0xFF]
            )
            ^ rk[c]
            for c in range(4)
        ]
        return b"".join(word.to_bytes(4, "big") for word in final)

    def encrypt_many(self, plaintexts: list[bytes]) -> list[bytes]:
        """Encrypt a list of blocks (tables re-read once per block)."""
        return [self.encrypt_block(p) for p in plaintexts]
