"""Block ciphers with memory-resident lookup tables.

The DATE title of the paper — *fault analysis of block ciphers* — needs
ciphers whose S-boxes live in ordinary data pages, because that is what a
persistent Rowhammer fault corrupts.  This package provides:

* full AES-128/192/256 (:mod:`repro.ciphers.aes`), with the S-box
  generated from GF(2^8) arithmetic rather than pasted constants;
* a NumPy batch encryptor (:mod:`repro.ciphers.batch`) for the
  ciphertext-hungry persistent-fault-analysis sweeps;
* PRESENT-80/128 (:mod:`repro.ciphers.present`) as a second, lightweight
  cipher exercising the same fault model;
* :mod:`repro.ciphers.table_memory` — S-boxes resident in a simulated
  task's pages, read through the kernel on use, so DRAM bit flips become
  persistent cipher faults;
* :mod:`repro.ciphers.faults` — direct software fault injection for
  experiments that study the analysis in isolation.
"""

from repro.ciphers.aes import AES, InvalidKeySize
from repro.ciphers.aes_tables import AES_SBOX, AES_INV_SBOX, generate_sbox
from repro.ciphers.aes_ttable import AES_TE_TABLES, AesTTable, generate_te_tables
from repro.ciphers.batch import aes128_encrypt_batch
from repro.ciphers.faults import FaultSpec, apply_fault, diff_sboxes
from repro.ciphers.present import Present
from repro.ciphers.table_memory import CipherVictim, MemorySBox

__all__ = [
    "AES",
    "AES_INV_SBOX",
    "AES_SBOX",
    "AES_TE_TABLES",
    "AesTTable",
    "CipherVictim",
    "generate_te_tables",
    "FaultSpec",
    "InvalidKeySize",
    "MemorySBox",
    "Present",
    "aes128_encrypt_batch",
    "apply_fault",
    "diff_sboxes",
    "generate_sbox",
]
