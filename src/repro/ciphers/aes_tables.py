"""AES constant tables, generated from first principles.

The S-box is computed — multiplicative inverse in GF(2^8) modulo the AES
polynomial, followed by the affine transform — rather than pasted in, so
tests can verify the generator against the two published anchor values
(S[0x00] = 0x63, S[0x53] = 0xED) and trust the rest.
"""

from __future__ import annotations

AES_POLY = 0x11B  # x^8 + x^4 + x^3 + x + 1


def gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the AES polynomial."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= AES_POLY
        b >>= 1
    return result


def gf_pow(a: int, n: int) -> int:
    """Raise ``a`` to the ``n``-th power in GF(2^8)."""
    result = 1
    base = a
    while n:
        if n & 1:
            result = gf_mul(result, base)
        base = gf_mul(base, base)
        n >>= 1
    return result


def gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2^8); 0 maps to 0 by AES convention."""
    if a == 0:
        return 0
    # The multiplicative group has order 255, so a^-1 = a^254.
    return gf_pow(a, 254)


def _affine(x: int) -> int:
    """The AES affine transform over GF(2)^8."""
    result = 0
    for bit in range(8):
        value = (
            (x >> bit)
            ^ (x >> ((bit + 4) % 8))
            ^ (x >> ((bit + 5) % 8))
            ^ (x >> ((bit + 6) % 8))
            ^ (x >> ((bit + 7) % 8))
            ^ (0x63 >> bit)
        ) & 1
        result |= value << bit
    return result


def generate_sbox() -> bytes:
    """The AES S-box: affine(inverse(x)) for every byte value."""
    return bytes(_affine(gf_inverse(x)) for x in range(256))


def invert_sbox(sbox: bytes) -> bytes:
    """Inverse table of any bijective 256-byte S-box."""
    if len(sbox) != 256 or len(set(sbox)) != 256:
        raise ValueError("S-box must be a bijection over 256 byte values")
    inverse = bytearray(256)
    for index, value in enumerate(sbox):
        inverse[value] = index
    return bytes(inverse)


def generate_rcon(count: int = 10) -> tuple[int, ...]:
    """Round constants: successive powers of 2 in GF(2^8)."""
    rcon = []
    value = 1
    for _ in range(count):
        rcon.append(value)
        value = gf_mul(value, 2)
    return tuple(rcon)


AES_SBOX = generate_sbox()
AES_INV_SBOX = invert_sbox(AES_SBOX)
AES_RCON = generate_rcon(14)

# ShiftRows as a permutation of the flat, column-major state: the byte at
# output position i comes from input position SHIFT_ROWS_PERM[i].
# Column-major layout: state[r + 4*c] for row r, column c; row r rotates
# left by r.
SHIFT_ROWS_PERM = tuple((i + 4 * (i % 4)) % 16 for i in range(16))
INV_SHIFT_ROWS_PERM = tuple(SHIFT_ROWS_PERM.index(i) for i in range(16))
