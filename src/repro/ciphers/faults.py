"""Software fault injection for analysis-only experiments.

The end-to-end attack induces faults through DRAM, but the fault-analysis
experiments (T5 and the PFA unit tests) need precise, repeatable faults
without a whole machine.  These helpers flip chosen bits of a table copy
and describe the difference between tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.errors import ConfigError


@dataclass(frozen=True)
class FaultSpec:
    """A single-bit persistent fault in a substitution table.

    ``index`` is the table entry, ``bit`` the bit to flip (0 = LSB).  This
    matches what one Rowhammer flip in the table page does.
    """

    index: int
    bit: int

    def __post_init__(self) -> None:
        if self.bit < 0 or self.bit > 7:
            raise ConfigError(f"bit {self.bit} out of range [0, 7]")
        if self.index < 0:
            raise ConfigError(f"index must be non-negative, got {self.index}")

    def apply_to_byte(self, value: int) -> int:
        """The faulted value of a table byte."""
        return value ^ (1 << self.bit)


def apply_fault(table: bytes, spec: FaultSpec) -> bytes:
    """A copy of ``table`` with the fault applied."""
    if spec.index >= len(table):
        raise ConfigError(f"index {spec.index} outside table of {len(table)} entries")
    faulty = bytearray(table)
    faulty[spec.index] = spec.apply_to_byte(faulty[spec.index])
    return bytes(faulty)


def diff_sboxes(clean: bytes, faulty: bytes) -> list[tuple[int, int, int]]:
    """(index, clean value, faulty value) for every differing entry."""
    if len(clean) != len(faulty):
        raise ConfigError("tables must have equal length")
    return [
        (index, c, f)
        for index, (c, f) in enumerate(zip(clean, faulty))
        if c != f
    ]


def fault_summary(clean: bytes, faulty: bytes) -> dict[str, object]:
    """Describe a fault the way PFA needs it.

    For a single corrupted entry ``j``: the value ``v_star = clean[j]`` no
    longer appears in the table's image (it becomes *missing* from
    SubBytes outputs) and ``v_prime = faulty[j]`` now appears twice.
    """
    diffs = diff_sboxes(clean, faulty)
    return {
        "corrupted_entries": len(diffs),
        "diffs": diffs,
        "missing_values": sorted(set(clean) - set(faulty)),
        "doubled_values": sorted(
            v for v in set(faulty) if list(faulty).count(v) == 2
        ),
    }
