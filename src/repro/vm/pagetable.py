"""Four-level x86-64 page tables.

Virtual addresses are the canonical 48-bit kind: four 9-bit indices (PML4,
PDPT, PD, PT) over a 12-bit page offset.  Tables are dictionaries — sparse,
like real tables allocated on demand — and entries carry the present /
writable / user bits the simulated kernel checks on access.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.errors import ConfigError, SegmentationFault
from repro.sim.units import PAGE_SHIFT

_LEVEL_BITS = 9
_LEVELS = 4
_INDEX_MASK = (1 << _LEVEL_BITS) - 1
VA_BITS = PAGE_SHIFT + _LEVELS * _LEVEL_BITS  # 48


def split_va(va: int) -> tuple[int, int, int, int, int]:
    """Split a canonical VA into (pml4, pdpt, pd, pt, offset) indices."""
    check_canonical(va)
    offset = va & ((1 << PAGE_SHIFT) - 1)
    page = va >> PAGE_SHIFT
    pt = page & _INDEX_MASK
    pd = (page >> _LEVEL_BITS) & _INDEX_MASK
    pdpt = (page >> (2 * _LEVEL_BITS)) & _INDEX_MASK
    pml4 = (page >> (3 * _LEVEL_BITS)) & _INDEX_MASK
    return pml4, pdpt, pd, pt, offset


def check_canonical(va: int) -> None:
    """Reject addresses outside the 48-bit user range."""
    if not 0 <= va < (1 << VA_BITS):
        raise ConfigError(f"virtual address {va:#x} not canonical (48-bit user)")


@dataclass
class PageTableEntry:
    """A leaf PTE: physical frame number plus permission bits."""

    pfn: int
    writable: bool = True
    user: bool = True
    accessed: bool = False
    dirty: bool = False


class PageTable:
    """One address space's four-level translation tree."""

    def __init__(self) -> None:
        self._root: dict[int, dict] = {}
        self.mapped_pages = 0

    # -- mapping -----------------------------------------------------------

    def map(self, va: int, pfn: int, writable: bool = True, user: bool = True) -> None:
        """Install a leaf mapping for the page containing ``va``."""
        pml4, pdpt, pd, pt, _ = split_va(va)
        if pfn < 0:
            raise ConfigError(f"pfn must be non-negative, got {pfn}")
        level3 = self._root.setdefault(pml4, {})
        level2 = level3.setdefault(pdpt, {})
        level1 = level2.setdefault(pd, {})
        if pt in level1:
            raise ConfigError(f"va {va:#x} already mapped (pfn {level1[pt].pfn:#x})")
        level1[pt] = PageTableEntry(pfn=pfn, writable=writable, user=user)
        self.mapped_pages += 1

    def unmap(self, va: int) -> int:
        """Remove the mapping of the page containing ``va``; returns its pfn."""
        pml4, pdpt, pd, pt, _ = split_va(va)
        try:
            level1 = self._root[pml4][pdpt][pd]
            entry = level1.pop(pt)
        except KeyError:
            raise SegmentationFault(f"unmap of unmapped va {va:#x}", address=va) from None
        self.mapped_pages -= 1
        # Prune empty intermediate tables, like free_pgtables would.
        if not level1:
            del self._root[pml4][pdpt][pd]
            if not self._root[pml4][pdpt]:
                del self._root[pml4][pdpt]
                if not self._root[pml4]:
                    del self._root[pml4]
        return entry.pfn

    # -- lookup -------------------------------------------------------------

    def entry(self, va: int) -> PageTableEntry | None:
        """The leaf PTE for ``va``, or None if not present."""
        pml4, pdpt, pd, pt, _ = split_va(va)
        try:
            return self._root[pml4][pdpt][pd][pt]
        except KeyError:
            return None

    def translate(self, va: int, write: bool = False) -> int:
        """Translate ``va`` to a physical byte address.

        Sets the accessed (and, for writes, dirty) bits like the MMU would.
        Raises :class:`SegmentationFault` when unmapped, and also when a
        write hits a read-only mapping.
        """
        entry = self.entry(va)
        if entry is None:
            raise SegmentationFault(f"no mapping for va {va:#x}", address=va)
        if write and not entry.writable:
            raise SegmentationFault(f"write to read-only page at va {va:#x}", address=va)
        entry.accessed = True
        if write:
            entry.dirty = True
        return (entry.pfn << PAGE_SHIFT) | (va & ((1 << PAGE_SHIFT) - 1))

    def is_mapped(self, va: int) -> bool:
        """True if the page containing ``va`` has a present PTE."""
        return self.entry(va) is not None

    def walk(self):
        """Yield (page-aligned va, PageTableEntry) for every mapping."""
        for pml4, level3 in sorted(self._root.items()):
            for pdpt, level2 in sorted(level3.items()):
                for pd, level1 in sorted(level2.items()):
                    for pt, entry in sorted(level1.items()):
                        va = (
                            ((pml4 << (3 * _LEVEL_BITS))
                             | (pdpt << (2 * _LEVEL_BITS))
                             | (pd << _LEVEL_BITS)
                             | pt)
                            << PAGE_SHIFT
                        )
                        yield va, entry

    def __len__(self) -> int:
        return self.mapped_pages
