"""Virtual memory: page tables, VMAs, address spaces and pagemap.

Implements the virtual-memory side of the paper's Section II: fixed-size
pages mapped to physical frames through multi-level page tables, plus the
``/proc/<pid>/pagemap`` interface whose privilege gating (PFNs hidden from
non-CAP_SYS_ADMIN readers since Linux 4.0) motivates the whole attack.
"""

from repro.vm.address_space import AddressSpace
from repro.vm.pagemap import Pagemap, PagemapEntry
from repro.vm.pagetable import PageTable
from repro.vm.vma import Protection, VMA, VmaFlags

__all__ = [
    "AddressSpace",
    "PageTable",
    "Pagemap",
    "PagemapEntry",
    "Protection",
    "VMA",
    "VmaFlags",
]
