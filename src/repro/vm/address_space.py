"""Per-process address spaces (``mm_struct``).

An address space owns a sorted set of VMAs and a page table.  It is pure
bookkeeping: the policy side of demand paging (which zone, which CPU's
page frame cache) lives in :class:`repro.os.kernel.Kernel`, which calls
back into this class to install and remove translations.

``mmap`` here reserves virtual space only; physical frames are attached
later through :meth:`attach_frame` when the kernel handles the first-touch
fault.  ``munmap`` detaches and returns the frames that were actually
populated, so the kernel can give them back to the allocator — in the
attack those are exactly the frames that land on the attacker CPU's page
frame cache.
"""

from __future__ import annotations

from repro.sim.errors import ConfigError, SegmentationFault
from repro.sim.units import PAGE_SIZE, page_align_up
from repro.vm.pagetable import PageTable
from repro.vm.vma import Protection, VMA, VmaFlags

# Default top of the downward-growing mmap region (just a convention; any
# canonical address works).
MMAP_TOP = 0x7FFF_0000_0000


class AddressSpace:
    """VMAs + page table + RSS accounting for one task."""

    def __init__(self, mmap_top: int = MMAP_TOP):
        self.page_table = PageTable()
        self._vmas: list[VMA] = []  # kept sorted by start
        self._mmap_cursor = mmap_top
        self.rss_pages = 0  # resident (frame-backed) pages
        self.total_faults = 0

    # -- VMA bookkeeping -----------------------------------------------------

    @property
    def vmas(self) -> tuple[VMA, ...]:
        """Current areas, sorted by start address."""
        return tuple(self._vmas)

    def vma_at(self, va: int) -> VMA | None:
        """The VMA containing ``va``, or None."""
        for vma in self._vmas:
            if vma.contains(va):
                return vma
        return None

    def _insert_vma(self, vma: VMA) -> None:
        for existing in self._vmas:
            if existing.overlaps(vma.start, vma.end):
                raise ConfigError(f"VMA {vma} overlaps existing {existing}")
        self._vmas.append(vma)
        self._vmas.sort(key=lambda v: v.start)

    def virtual_pages(self) -> int:
        """Total pages reserved across all VMAs (VSZ)."""
        return sum(vma.pages for vma in self._vmas)

    # -- mmap / munmap ------------------------------------------------------------

    def mmap(
        self,
        length: int,
        prot: Protection = Protection.rw(),
        flags: VmaFlags = VmaFlags.ANONYMOUS,
        fixed_addr: int | None = None,
        name: str = "anon",
    ) -> VMA:
        """Reserve ``length`` bytes of virtual space; returns the new VMA.

        Without ``fixed_addr`` the area is carved downward from the mmap
        cursor, like the kernel's top-down mmap layout.
        """
        if length <= 0:
            raise ConfigError(f"mmap length must be positive, got {length}")
        length = page_align_up(length)
        if fixed_addr is not None:
            start = fixed_addr
        else:
            start = self._mmap_cursor - length
        vma = VMA(start=start, end=start + length, prot=prot, flags=flags, name=name)
        self._insert_vma(vma)
        if fixed_addr is None:
            self._mmap_cursor = start
        return vma

    def munmap(self, addr: int, length: int) -> list[tuple[int, int]]:
        """Release [addr, addr+length); returns detached (va, pfn) pairs.

        Only the pages that were actually populated appear in the result —
        the caller (the kernel) frees those frames to the allocator.
        Unmapping a range with no VMA at all is an error, matching the
        spirit of the attack protocol where every munmap is deliberate.
        """
        if length <= 0:
            raise ConfigError(f"munmap length must be positive, got {length}")
        end = addr + page_align_up(length)
        touched = [vma for vma in self._vmas if vma.overlaps(addr, end)]
        if not touched:
            raise SegmentationFault(
                f"munmap of unmapped range [{addr:#x}, {end:#x})", address=addr
            )
        detached: list[tuple[int, int]] = []
        for vma in touched:
            self._vmas.remove(vma)
            for remnant in vma.split(addr, end):
                self._vmas.append(remnant)
            lo = max(vma.start, addr)
            hi = min(vma.end, end)
            for va in range(lo, hi, PAGE_SIZE):
                if self.page_table.is_mapped(va):
                    pfn = self.page_table.unmap(va)
                    self.rss_pages -= 1
                    detached.append((va, pfn))
        self._vmas.sort(key=lambda v: v.start)
        return detached

    # -- demand paging hooks ------------------------------------------------------

    def attach_frame(self, va: int, pfn: int) -> None:
        """Install the translation for a freshly allocated frame."""
        vma = self.vma_at(va)
        if vma is None:
            raise SegmentationFault(f"fault outside any VMA at {va:#x}", address=va)
        writable = bool(vma.prot & Protection.WRITE)
        self.page_table.map(va & ~(PAGE_SIZE - 1), pfn, writable=writable)
        self.rss_pages += 1
        self.total_faults += 1

    def resident_pfns(self) -> list[int]:
        """PFNs of every resident page, in VA order."""
        return [entry.pfn for _, entry in self.page_table.walk()]

    def mapped_va_of_pfn(self, pfn: int) -> int | None:
        """Reverse lookup: the VA mapping ``pfn``, or None."""
        for va, entry in self.page_table.walk():
            if entry.pfn == pfn:
                return va
        return None

    def __repr__(self) -> str:
        return (
            f"AddressSpace(vmas={len(self._vmas)}, "
            f"vsz={self.virtual_pages()}p, rss={self.rss_pages}p)"
        )
