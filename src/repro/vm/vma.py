"""Virtual memory areas.

A VMA is a contiguous, page-aligned interval of an address space with one
protection and one set of flags — the kernel's bookkeeping for what an
``mmap`` created.  Demand paging hinges on the distinction the paper makes
in Section V: mapping a VMA reserves *virtual* space only; physical frames
appear when pages are first touched ("the program must store some data
into the allocated pages, otherwise the physical page frames will not be
allocated").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.sim.errors import ConfigError
from repro.sim.units import PAGE_SIZE, is_page_aligned


class Protection(enum.Flag):
    """mmap protection bits."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    EXEC = enum.auto()

    @classmethod
    def rw(cls) -> "Protection":
        """The common PROT_READ | PROT_WRITE."""
        return cls.READ | cls.WRITE


class VmaFlags(enum.Flag):
    """mmap flags relevant to the simulation."""

    NONE = 0
    ANONYMOUS = enum.auto()
    POPULATE = enum.auto()  # MAP_POPULATE: fault every page in eagerly
    FIXED = enum.auto()


@dataclass(frozen=True)
class VMA:
    """A page-aligned [start, end) interval with protection and flags."""

    start: int
    end: int
    prot: Protection = Protection.rw()
    flags: VmaFlags = VmaFlags.ANONYMOUS
    name: str = "anon"

    def __post_init__(self) -> None:
        if not is_page_aligned(self.start) or not is_page_aligned(self.end):
            raise ConfigError(
                f"VMA bounds must be page aligned: [{self.start:#x}, {self.end:#x})"
            )
        if self.start >= self.end:
            raise ConfigError(f"empty or inverted VMA [{self.start:#x}, {self.end:#x})")

    @property
    def length(self) -> int:
        """Span in bytes."""
        return self.end - self.start

    @property
    def pages(self) -> int:
        """Span in pages."""
        return self.length // PAGE_SIZE

    def contains(self, va: int) -> bool:
        """True if ``va`` lies inside the area."""
        return self.start <= va < self.end

    def overlaps(self, start: int, end: int) -> bool:
        """True if the area intersects [start, end)."""
        return self.start < end and start < self.end

    def page_addresses(self):
        """Yield the page-aligned VA of every page in the area."""
        return range(self.start, self.end, PAGE_SIZE)

    def split(self, cut_start: int, cut_end: int) -> list["VMA"]:
        """Remove [cut_start, cut_end) from the area; return the remnants.

        Used by partial munmap: the result is zero, one or two VMAs keeping
        this one's protection, flags and name.
        """
        if not is_page_aligned(cut_start) or not is_page_aligned(cut_end):
            raise ConfigError("cut bounds must be page aligned")
        if not self.overlaps(cut_start, cut_end):
            return [self]
        remnants = []
        if self.start < cut_start:
            remnants.append(replace(self, end=cut_start))
        if cut_end < self.end:
            remnants.append(replace(self, start=cut_end))
        return remnants

    def __str__(self) -> str:
        bits = "".join(
            flag if present else "-"
            for flag, present in (
                ("r", bool(self.prot & Protection.READ)),
                ("w", bool(self.prot & Protection.WRITE)),
                ("x", bool(self.prot & Protection.EXEC)),
            )
        )
        return f"{self.start:#x}-{self.end:#x} {bits} {self.name}"
