"""The ``/proc/<pid>/pagemap`` interface with its privilege gate.

Section VI of the paper builds on a specific kernel policy: *"since Linux
4.0, only users with the CAP_SYS_ADMIN capability can get PFNs"* from
pagemap.  An unprivileged attacker therefore cannot locate her data in
physical memory — which is exactly why the page-frame-cache side channel
matters.  This module reproduces the interface and its gate so the
privileged baseline attack (which *does* read PFNs) and the unprivileged
ExplFrame attack can be compared on equal footing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.os.capabilities import Capability, CapabilitySet
from repro.sim.units import PAGE_SIZE


@dataclass(frozen=True)
class PagemapEntry:
    """One 64-bit pagemap record, decoded.

    ``pfn`` is 0 when the page is present but the reader lacks
    CAP_SYS_ADMIN — the post-4.0 kernel behaviour.
    """

    present: bool
    pfn: int
    soft_dirty: bool = False

    @property
    def pfn_visible(self) -> bool:
        """True when the record actually discloses the frame number."""
        return self.present and self.pfn != 0


class Pagemap:
    """Reader for one task's pagemap, gated by the *reader's* capabilities."""

    def __init__(self, address_space, reader_caps: CapabilitySet):
        self._mm = address_space
        self._caps = reader_caps

    def read(self, va: int) -> PagemapEntry:
        """The pagemap record for the page containing ``va``."""
        entry = self._mm.page_table.entry(va & ~(PAGE_SIZE - 1))
        if entry is None:
            return PagemapEntry(present=False, pfn=0)
        if not self._caps.has(Capability.CAP_SYS_ADMIN):
            return PagemapEntry(present=True, pfn=0, soft_dirty=entry.dirty)
        return PagemapEntry(present=True, pfn=entry.pfn, soft_dirty=entry.dirty)

    def read_range(self, va: int, length: int) -> list[PagemapEntry]:
        """Records for every page of [va, va+length)."""
        start = va & ~(PAGE_SIZE - 1)
        end = va + length
        return [self.read(addr) for addr in range(start, end, PAGE_SIZE)]
