"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the library's main entry points:

* ``attack``    — the full ExplFrame chain against an AES or PRESENT victim;
* ``steer``     — page-frame-cache steering trials with the paper's knobs;
* ``template``  — a Rowhammer templating survey of the simulated module;
* ``pfa``       — the offline persistent-fault-analysis demo (no machine);
* ``procfs``    — /proc-style views of a machine under a small workload.

Every command takes ``--seed``; equal seeds give identical output.
"""

from __future__ import annotations

import argparse
import sys

from repro.sim.units import MIB, PAGE_SIZE


def _add_seed(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=7, help="machine seed (default 7)")


def _emit_observability(machine, args, json_mode: bool) -> None:
    """Write ``--trace`` output and print the ``--metrics`` table.

    In JSON mode the metrics go into the report payload instead of a
    table, and the trace confirmation goes to stderr so stdout stays
    machine-parseable.
    """
    if args.trace:
        from repro import package_version

        tracer = machine.obs.tracer
        tracer.write(
            args.trace,
            fmt=args.trace_format,
            producer=f"repro {package_version()}",
        )
        stream = sys.stderr if json_mode else sys.stdout
        print(
            f"trace written to {args.trace} "
            f"({args.trace_format}, {len(tracer.records)} records, "
            f"{len(tracer.categories())} layers)",
            file=stream,
        )
    if args.metrics and not json_mode:
        print()
        print(machine.obs.metrics.render_table())


def _vulnerable_config(seed: int, density: float):
    from repro.core import MachineConfig
    from repro.dram.flipmodel import FlipModelConfig
    from repro.dram.geometry import DRAMGeometry

    return MachineConfig(
        seed=seed,
        geometry=DRAMGeometry.small(),
        flip_model=FlipModelConfig(
            weak_cells_per_row_mean=density,
            threshold_mean=150_000,
            threshold_sd=50_000,
            threshold_min=40_000,
        ),
    )


def _vulnerable_machine(seed: int, density: float):
    from repro.core import Machine

    return Machine(_vulnerable_config(seed, density))


def _load_scenario_arg(args):
    """``--scenario`` resolved to a Scenario, or None when not given."""
    if getattr(args, "scenario", None) is None:
        return None
    from repro.workload import load_scenario

    return load_scenario(args.scenario)


def _scenario_attack_knobs(args, scenario) -> tuple[str, int]:
    """(cipher, cpu) for the attack config; the scenario's target wins."""
    if scenario is None:
        return args.cipher, 0
    spec = scenario.target_spec
    return spec.cipher, 0 if spec.cpu is None else spec.cpu


def _print_workload(workload) -> None:
    """Per-tenant traffic lines for text-mode attack output."""
    if workload is None:
        return
    scenario = workload.scenario
    print(
        f"scenario:             {scenario.name} (target {scenario.target}, "
        f"{workload.background_count} background tenant(s))"
    )
    for name, row in sorted(workload.summary().items()):
        print(
            f"  {name:<12} {row['role']:<6} {row['cipher']}-{row['key_bits']} "
            f"@{row['rate_hz']:g} Hz  issued={row['issued']} "
            f"served={row['served']} dropped={row['dropped']}"
        )


def _apply_evict_knobs(args: argparse.Namespace, config):
    """Fold the evictframe-only CLI knobs into the modality config.

    The defaults mirror ``EvictFrameConfig``; passing either knob with a
    different modality is a configuration error rather than a silent
    no-op.
    """
    import dataclasses

    from repro.sim.errors import ConfigError

    if args.modality == "evictframe":
        return dataclasses.replace(
            config,
            evict_slack=args.evict_slack,
            evict_pattern=args.evict_pattern,
        )
    if args.evict_slack != 2 or args.evict_pattern != "sequential":
        raise ConfigError(
            "--evict-slack/--evict-pattern only apply to --modality evictframe"
        )
    return config


def cmd_attack(args: argparse.Namespace) -> int:
    """Run the full ExplFrame chain; exit code 0 iff the key was recovered.

    ``--modality`` selects the registered attack (docs/ATTACKS.md;
    default ``explframe``, the paper's).  With ``--chaos`` (or
    ``--orchestrate``) the run goes through the resilient
    :class:`AttackOrchestrator` — retries, simulated-time backoff,
    budgets — and prints an :class:`AttackRunReport` summary;
    ``--single-shot`` forces the bare pipeline even under chaos
    (explframe only — other modalities are orchestrator-driven).  Both
    paths exit non-zero when the run's goal is not reached.
    """
    from repro.attack.orchestrator import (
        AttackOrchestrator,
        OrchestratorConfig,
        RetryPolicy,
    )
    from repro.attack.registry import available_modalities, get_modality
    from repro.attack.templating import TemplatorConfig
    from repro.sim.chaos import ChaosEngine, chaos_profile
    from repro.sim.errors import ConfigError
    from repro.sim.units import SECOND

    if args.list_modalities:
        for name, description in available_modalities().items():
            print(f"{name:<12} {description}")
        return 0
    modality = get_modality(args.modality)
    if args.single_shot and args.modality != "explframe":
        raise ConfigError(
            "--single-shot only supports the explframe modality, "
            f"not {args.modality!r}"
        )

    scenario = _load_scenario_arg(args)
    if args.campaign:
        return _cmd_attack_campaign(args, scenario)

    machine = _vulnerable_machine(args.seed, args.density)
    if args.trace:
        machine.obs.tracer.enable()
    # A chaos engine is attached whenever chaos is requested, and also for
    # traced runs so the chaos layer always announces its plan in the
    # trace ("none" is the empty plan: the pump stays a no-op and the
    # simulation is bit-identical to an engine-less run).
    if args.chaos != "none" or args.trace:
        ChaosEngine(machine.kernel, chaos_profile(args.chaos, args.chaos_intensity))
    cipher, cpu = _scenario_attack_knobs(args, scenario)
    config = modality.make_config(
        cipher=cipher,
        cpu=cpu,
        templator=TemplatorConfig(
            buffer_bytes=args.buffer_mib * MIB, batch_pairs=16
        ),
        max_campaigns=args.campaigns,
    )
    config = _apply_evict_knobs(args, config)
    workload = None
    if scenario is not None:
        from repro.workload import WorkloadEngine

        workload = WorkloadEngine(machine, scenario)
        workload.start()
    attack = modality.build(machine, config=config, tenant_workload=workload)

    # --json reports the orchestrator's AttackRunReport, so it implies
    # orchestration (like --chaos); non-default modalities are always
    # orchestrated; --single-shot still wins (guarded above).
    orchestrate = (
        args.orchestrate
        or args.chaos != "none"
        or args.json
        or args.modality != "explframe"
    ) and not args.single_shot
    if orchestrate:
        retries = args.max_retries
        orchestrator = AttackOrchestrator(
            attack,
            OrchestratorConfig(
                deadline_ns=int(args.deadline * SECOND),
                campaign_budget=max(args.campaigns, 2 * config.max_campaigns),
                steer=RetryPolicy(max_attempts=retries),
                rehammer=RetryPolicy(max_attempts=retries, backoff_base_ns=20_000_000, backoff_factor=3.0),
                pfa=RetryPolicy(max_attempts=min(retries, 3), backoff_base_ns=1_000_000),
            ),
        )
        report = orchestrator.run()
        if args.json:
            import json

            payload = report.to_dict()
            payload["metrics"] = machine.obs.metrics.snapshot()
            if workload is not None:
                payload["workload"] = workload.summary()
            _emit_observability(machine, args, json_mode=True)
            print(json.dumps(payload, sort_keys=True, separators=(",", ":")))
            return 0 if report.success else 1
        spend = report.budget
        print(f"chaos profile:        {report.chaos_profile}")
        print(f"chaos events fired:   {len(report.chaos_events)}")
        print(f"stage attempts:       {report.attempts}")
        print(f"candidates tried:     {report.candidates_tried}")
        print(f"recoveries:           {len(report.recoveries)}")
        for action in report.recoveries:
            print(f"  - {action}")
        classes = ", ".join(report.failure_classes) or "-"
        print(f"failure classes:      {classes}")
        if report.final_failure is not None:
            print(
                f"final failure:        {report.final_failure.failure_class.value} "
                f"({report.final_failure.detail})"
            )
        print(
            f"budget spend:         {spend.sim_time_ns / 1e9:.2f} s sim of "
            f"{spend.deadline_ns / 1e9:.0f} s, {spend.campaigns} campaigns of "
            f"{spend.campaign_budget}"
        )
        _print_workload(workload)
        if report.modality != "explframe":
            print(f"modality:             {report.modality}")
        if report.modality != "explframe" and report.extra is not None:
            extra = report.extra
            print(
                f"bits recovered:       {extra['bits_recovered']} of "
                f"{extra['bits_targeted']} targeted"
            )
            if extra["accuracy"] is not None:
                print(f"bit accuracy:         {extra['accuracy']:.2%}")
            for bit in extra["bits"]:
                verdict = "ok" if bit["correct"] else "WRONG"
                print(
                    f"  entry {bit['entry']:#04x} bit {bit['bit']}: "
                    f"predicted {bit['predicted']} actual {bit['actual']} ({verdict})"
                )
            print(f"RUN SUCCEEDED:        {report.success}")
        else:
            print(f"true key:             {report.true_key}")
            print(f"recovered key:        {report.recovered_key or '-'}")
            print(f"KEY RECOVERED:        {report.success}")
        _emit_observability(machine, args, json_mode=False)
        return 0 if report.success else 1

    result = attack.run()
    _print_workload(workload)
    print(f"flips templated:      {result.templated_flips}")
    print(f"steering succeeded:   {result.steering_success}")
    print(f"table faulted:        {result.fault_in_table}")
    print(f"faulty ciphertexts:   {result.faulty_ciphertexts}")
    print(f"true key:             {result.true_key.hex()}")
    recovered = result.recovered_key.hex() if result.recovered_key else "-"
    print(f"recovered key:        {recovered}")
    if result.log2_keyspace_after_pfa:
        print(f"residual key bits:    {result.log2_keyspace_after_pfa:.0f}")
    print(f"KEY RECOVERED:        {result.key_recovered}")
    _emit_observability(machine, args, json_mode=False)
    return 0 if result.key_recovered else 1


def _cmd_attack_campaign(args: argparse.Namespace, scenario=None) -> int:
    """Run ``--campaign N`` orchestrated attempts; exit 0 iff all succeed.

    With ``--fork-from-template`` the machine is built and templated once
    and every attempt runs on an independent fork of that warm state;
    otherwise each attempt rebuilds from scratch (same reports, slower).
    ``--chaos`` derives a per-attempt plan from each attempt's seed, and
    ``--workers N`` fans the attempts out across a process pool — the
    report digest is identical for every worker count (docs/CAMPAIGNS.md).

    ``--checkpoint DIR`` routes execution through the campaign service:
    attempts are journaled as they complete, ``--resume`` continues an
    interrupted run, ``--shard i/N`` runs one interleaved partition, and
    ``--merge-shards`` folds completed shard journals into the serial
    digest.  ``--stream-out FILE`` additionally appends each report to
    FILE as a JSON line the moment it lands.
    """
    from repro.attack.orchestrator import AttackCampaign, OrchestratorConfig
    from repro.attack.registry import get_modality
    from repro.attack.templating import TemplatorConfig
    from repro.sim.errors import ConfigError
    from repro.sim.units import SECOND

    cipher, cpu = _scenario_attack_knobs(args, scenario)
    campaign = AttackCampaign(
        _vulnerable_config(args.seed, args.density),
        args.campaign,
        modality=args.modality,
        attack_config=_apply_evict_knobs(
            args,
            get_modality(args.modality).make_config(
                cipher=cipher,
                cpu=cpu,
                templator=TemplatorConfig(
                    buffer_bytes=args.buffer_mib * MIB, batch_pairs=16
                ),
                max_campaigns=args.campaigns,
            ),
        ),
        orchestrator_config=OrchestratorConfig(
            deadline_ns=int(args.deadline * SECOND),
        ),
        fork_from_template=args.fork_from_template,
        chaos_profile=args.chaos,
        chaos_intensity=args.chaos_intensity,
        workers=args.workers,
        pool_mode=args.pool_mode,
        scenario=scenario,
    )
    if args.checkpoint is None:
        for flag, name in (
            (args.resume, "--resume"),
            (args.shard != "0/1", "--shard"),
            (args.merge_shards, "--merge-shards"),
            (args.stream_out, "--stream-out"),
        ):
            if flag:
                raise ConfigError(f"{name} requires --checkpoint DIR")
        result = campaign.run()
    else:
        from repro.parallel.service import CampaignService, Shard, merge_shards

        if args.merge_shards:
            result = merge_shards(args.checkpoint, campaign=campaign)
        else:
            result = CampaignService(
                campaign,
                args.checkpoint,
                shard=Shard.parse(args.shard),
                resume=args.resume,
                stream_out=args.stream_out,
                window=args.window,
                worker_retries=args.worker_retries,
            ).run()
    if args.json:
        import json

        print(json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":")))
        return 0 if result.successes == result.attempts else 1
    if scenario is not None:
        print(
            f"scenario:             {scenario.name} (target {scenario.target}, "
            f"{len(scenario.tenants) - 1} background tenant(s))"
        )
    print(f"campaign mode:        {result.mode}")
    print(f"attempts:             {result.attempts}")
    print(f"successes:            {result.successes}")
    print(f"report digest:        {result.digest()}")
    if result.pool is not None:
        workers = result.pool.get("campaign.pool.workers", 1)
        mode = next(
            (key.split("mode=", 1)[1].rstrip("}")
             for key in result.pool if key.startswith("campaign.pool.mode{")),
            "serial",
        )
        print(f"pool:                 {workers} worker(s), {mode} dispatch")
    if result.service is not None:
        journaled = result.service["campaign.service.attempts_journaled"]
        resumed = result.service["campaign.service.attempts_resumed"]
        retries = result.service["campaign.service.worker_retries"]
        print(
            f"service:              {journaled} journaled, {resumed} resumed, "
            f"{retries} worker retr{'y' if retries == 1 else 'ies'}"
        )
        if args.checkpoint is not None:
            print(f"checkpoint:           {args.checkpoint}")
    if args.chaos != "none" and result.reports:
        fired = sum(len(report.chaos_events) for report in result.reports)
        print(f"chaos events fired:   {fired} across {result.attempts} attempts")
    for index, report in enumerate(result.reports):
        outcome = "ok" if report.success else "FAIL"
        print(
            f"  [{index}] {outcome}  seed={report.seed}  "
            f"stages={report.attempts}  "
            f"chaos={len(report.chaos_events)}  "
            f"sim={report.budget.sim_time_ns / 1e9:.2f}s"
        )
    return 0 if result.successes == result.attempts else 1


def cmd_steer(args: argparse.Namespace) -> int:
    """Measure steering success over trials with the requested knobs."""
    from repro.attack.steering import SteeringProtocol, SteeringTrialConfig
    from repro.core import Machine, MachineConfig

    machine = Machine(MachineConfig.small(seed=args.seed))
    protocol = SteeringProtocol(machine)
    config = SteeringTrialConfig(
        victim_request_pages=args.victim_pages,
        same_cpu=not args.cross_cpu,
        noise_pages=args.noise,
        attacker_sleeps=args.sleep,
    )
    rate = protocol.success_rate(args.trials, config)
    print(
        f"steering success: {rate:.0%} over {args.trials} trials "
        f"(victim={args.victim_pages}p, "
        f"{'cross' if args.cross_cpu else 'same'}-cpu, noise={args.noise}, "
        f"sleep={args.sleep})"
    )
    return 0


def cmd_template(args: argparse.Namespace) -> int:
    """Run one templating campaign and print its yield and templates."""
    from repro.attack.templating import Templator, TemplatorConfig

    machine = _vulnerable_machine(args.seed, args.density)
    attacker = machine.kernel.spawn("templator", cpu=0)
    templator = Templator(
        machine.kernel,
        attacker.pid,
        TemplatorConfig(buffer_bytes=args.buffer_mib * MIB, batch_pairs=16),
    )
    result = templator.run()
    print(f"buffer:        {args.buffer_mib} MiB")
    print(f"pairs:         {result.pairs_hammered}")
    print(f"flips:         {result.flips_found} ({result.flips_per_gib:.0f}/GiB)")
    print(f"sim time:      {result.elapsed_ns / 1e9:.2f} s")
    for template in result.templates[: args.show]:
        direction = "0->1" if template.flips_to_one else "1->0"
        print(
            f"  va={template.page_va:#x} offset={template.page_offset:#05x} "
            f"bit={template.bit} {direction}"
        )
    return 0


def cmd_pfa(args: argparse.Namespace) -> int:
    """Run the offline PFA demo against a software-faulted cipher."""
    if args.cipher == "aes":
        import numpy as np

        from repro.ciphers.aes_tables import AES_SBOX
        from repro.ciphers.batch import aes128_encrypt_batch, random_plaintexts
        from repro.ciphers.faults import FaultSpec, apply_fault
        from repro.pfa.pfa import (
            ciphertexts_to_unique_key,
            invert_key_schedule_128,
            recover_k10_known_fault,
        )

        key = bytes.fromhex(args.key) if args.key else bytes(range(16))
        faulty = apply_fault(AES_SBOX, FaultSpec(index=args.fault_index, bit=args.bit))
        rng = np.random.default_rng(args.seed)
        consumed, state = ciphertexts_to_unique_key(
            lambda n: aes128_encrypt_batch(random_plaintexts(n, rng), key, faulty),
            AES_SBOX[args.fault_index],
        )
        k10 = bytes(c[0] for c in recover_k10_known_fault(state, AES_SBOX[args.fault_index]))
        master = invert_key_schedule_128(k10)
        print(f"ciphertexts consumed: {consumed}")
        print(f"recovered master key: {master.hex()}")
        print(f"correct:              {master == key}")
        return 0 if master == key else 1

    import random as pyrandom

    from repro.ciphers.present import PRESENT_SBOX, Present
    from repro.pfa.pfa_present import ciphertexts_to_unique_k32, recover_k32_known_fault

    key = bytes.fromhex(args.key) if args.key else bytes(range(10))
    table = bytearray(PRESENT_SBOX)
    table[args.fault_index & 0xF] ^= 1 << (args.bit & 0x3)
    cipher = Present(key, sbox_provider=lambda: bytes(table))
    rng = pyrandom.Random(args.seed)
    pts = [bytes(rng.randrange(256) for _ in range(8)) for _ in range(2000)]
    consumed, state = ciphertexts_to_unique_k32(cipher.encrypt_block, lambda i: pts[i])
    k32 = recover_k32_known_fault(state, PRESENT_SBOX[args.fault_index & 0xF])
    truth = Present(key).round_keys[31]
    print(f"ciphertexts consumed: {consumed}")
    print(f"recovered K32:        {k32:016x}")
    print(f"correct:              {k32 == truth}")
    return 0 if k32 == truth else 1


def cmd_procfs(args: argparse.Namespace) -> int:
    """Render one /proc-style view of a machine under a small workload."""
    from repro.core import Machine, MachineConfig
    from repro.os import procfs

    machine = Machine(MachineConfig.small(seed=args.seed))
    kernel = machine.kernel
    task = kernel.spawn("workload", cpu=0)
    va = kernel.sys_mmap(task.pid, 64 * PAGE_SIZE, name="heap")
    for index in range(64):
        kernel.mem_write(task.pid, va + index * PAGE_SIZE, b"w")
    views = {
        "buddyinfo": lambda: procfs.buddyinfo(machine.node),
        "zoneinfo": lambda: procfs.zoneinfo(machine.node),
        "meminfo": lambda: procfs.meminfo(machine.node),
        "maps": lambda: procfs.maps(task),
        "status": lambda: procfs.status_memory(task),
        "pagetypeinfo": lambda: procfs.pagetypeinfo(machine.node),
    }
    print(views[args.view]())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser (one subcommand per entry point)."""
    from repro import package_version

    parser = argparse.ArgumentParser(
        prog="repro",
        description="ExplFrame reproduction: attacks and diagnostics on a simulated machine",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {package_version()}",
        help="print the package version and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    attack = sub.add_parser("attack", help="run the full ExplFrame attack")
    _add_seed(attack)
    attack.add_argument(
        "--modality",
        metavar="NAME",
        default="explframe",
        help="registered attack modality to run (default explframe; see "
        "--list-modalities and docs/ATTACKS.md)",
    )
    attack.add_argument(
        "--list-modalities",
        action="store_true",
        help="print the registered attack modalities and exit",
    )
    attack.add_argument(
        "--cipher", choices=["aes", "aes_ttable", "present"], default="aes"
    )
    attack.add_argument(
        "--evict-slack",
        type=int,
        default=2,
        metavar="N",
        help="evictframe only: eviction-set members beyond the cache's "
        "associativity (default 2)",
    )
    attack.add_argument(
        "--evict-pattern",
        choices=["sequential", "interleave"],
        default="sequential",
        help="evictframe only: per-round access order over aggressors and "
        "their eviction sets (default sequential)",
    )
    attack.add_argument(
        "--scenario",
        metavar="NAME|FILE",
        default=None,
        help="run against a multi-tenant victim workload: a preset name "
        "(single, duet, apartment-8) or a scenario JSON file "
        "(docs/SCENARIOS.md); the target tenant's cipher and CPU override "
        "--cipher",
    )
    attack.add_argument("--buffer-mib", type=int, default=8)
    attack.add_argument("--density", type=float, default=3.0, help="weak cells per row")
    attack.add_argument("--campaigns", type=int, default=4)
    attack.add_argument(
        "--campaign",
        type=int,
        default=0,
        metavar="N",
        help="run N orchestrated attempts as a campaign (0 = single run)",
    )
    attack.add_argument(
        "--fork-from-template",
        action="store_true",
        help="with --campaign: template once and fork a warm machine per attempt",
    )
    attack.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="with --campaign: run attempts on N worker processes "
        "(default 1 = in-process; the report digest is identical either way)",
    )
    attack.add_argument(
        "--pool-mode",
        choices=["ship", "rewarm"],
        default="ship",
        help="with --workers > 1 and --fork-from-template: ship the pickled "
        "warm snapshot to workers (default) or re-warm in each worker",
    )
    attack.add_argument(
        "--checkpoint",
        metavar="DIR",
        default=None,
        help="with --campaign: journal every attempt to DIR (crash-safe "
        "campaign service; see docs/CAMPAIGNS.md)",
    )
    attack.add_argument(
        "--resume",
        action="store_true",
        help="with --checkpoint: continue an interrupted campaign from the "
        "journal instead of refusing to touch it",
    )
    attack.add_argument(
        "--shard",
        metavar="I/N",
        default="0/1",
        help="with --checkpoint: run only attempt indices congruent to I "
        "mod N (default 0/1 = the whole campaign)",
    )
    attack.add_argument(
        "--merge-shards",
        action="store_true",
        help="with --checkpoint: merge completed shard journals in DIR "
        "into the serial campaign digest instead of running attempts",
    )
    attack.add_argument(
        "--stream-out",
        metavar="FILE",
        default=None,
        help="with --checkpoint: append each attempt report to FILE as a "
        "JSON line the moment it completes",
    )
    attack.add_argument(
        "--window",
        type=int,
        default=0,
        metavar="N",
        help="with --checkpoint: max attempts in flight over the pool "
        "(default 0 = 2x workers)",
    )
    attack.add_argument(
        "--worker-retries",
        type=int,
        default=2,
        metavar="N",
        help="with --checkpoint: times one attempt may be re-dispatched "
        "after its worker died (default 2)",
    )
    from repro.sim.chaos import CHAOS_PROFILES

    attack.add_argument(
        "--chaos",
        choices=CHAOS_PROFILES,
        default="none",
        help="inject a chaos profile (implies --orchestrate unless --single-shot)",
    )
    attack.add_argument(
        "--chaos-intensity", type=float, default=1.0, help="scale the chaos profile"
    )
    attack.add_argument(
        "--orchestrate",
        action="store_true",
        help="run under the resilient orchestrator (retries, budgets, forensics)",
    )
    attack.add_argument(
        "--single-shot",
        action="store_true",
        help="force the bare pipeline even when chaos is injected",
    )
    attack.add_argument(
        "--deadline",
        type=float,
        default=3600.0,
        help="orchestrator deadline in simulated seconds",
    )
    attack.add_argument(
        "--max-retries", type=int, default=4, help="per-stage retry attempts"
    )
    attack.add_argument(
        "--json",
        action="store_true",
        help="print the AttackRunReport as JSON (implies --orchestrate)",
    )
    attack.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="record a sim-time trace of the run to FILE",
    )
    attack.add_argument(
        "--trace-format",
        choices=["chrome", "jsonl"],
        default="chrome",
        help="trace file format: chrome://tracing JSON (default) or JSON-lines",
    )
    attack.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics table after the run",
    )
    attack.set_defaults(func=cmd_attack)

    steer = sub.add_parser("steer", help="steering success-rate trials")
    _add_seed(steer)
    steer.add_argument("--trials", type=int, default=10)
    steer.add_argument("--victim-pages", type=int, default=1)
    steer.add_argument("--cross-cpu", action="store_true")
    steer.add_argument("--noise", type=int, default=0)
    steer.add_argument("--sleep", action="store_true")
    steer.set_defaults(func=cmd_steer)

    template = sub.add_parser("template", help="Rowhammer templating survey")
    _add_seed(template)
    template.add_argument("--buffer-mib", type=int, default=4)
    template.add_argument("--density", type=float, default=3.0)
    template.add_argument("--show", type=int, default=5, help="templates to print")
    template.set_defaults(func=cmd_template)

    pfa = sub.add_parser("pfa", help="offline persistent fault analysis demo")
    _add_seed(pfa)
    pfa.add_argument("--cipher", choices=["aes", "present"], default="aes")
    pfa.add_argument("--key", default=None, help="hex key (default: fixed demo key)")
    pfa.add_argument("--fault-index", type=int, default=0x42)
    pfa.add_argument("--bit", type=int, default=3)
    pfa.set_defaults(func=cmd_pfa)

    proc = sub.add_parser("procfs", help="render /proc-style machine views")
    _add_seed(proc)
    proc.add_argument(
        "--view",
        choices=["buddyinfo", "zoneinfo", "meminfo", "maps", "status", "pagetypeinfo"],
        default="buddyinfo",
    )
    proc.set_defaults(func=cmd_procfs)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code.

    0 = success, 1 = the command ran but failed (e.g. key not recovered),
    2 = invalid arguments, configuration, or an unusable checkpoint.
    """
    from repro.sim.errors import CheckpointError, ConfigError, WorkerLostError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ConfigError, CheckpointError) as exc:
        print(f"{parser.prog}: error: {exc}", file=sys.stderr)
        return 2
    except WorkerLostError as exc:
        print(f"{parser.prog}: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
