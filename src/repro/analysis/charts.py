"""Plain-text charts for experiment outputs.

The benchmark tables live in text files; a small ASCII line chart next to
a table makes curve *shapes* (the thing this reproduction is graded on)
visible without any plotting dependency.
"""

from __future__ import annotations

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    """One-line bar rendering of a series (empty input -> empty string)."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = high - low
    if span == 0:
        return _BARS[4] * len(values)
    out = []
    for value in values:
        index = int((value - low) / span * (len(_BARS) - 1))
        out.append(_BARS[index])
    return "".join(out)


def ascii_chart(
    xs: list[float],
    ys: list[float],
    width: int = 60,
    height: int = 12,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """A monospace scatter/line chart of ``ys`` against ``xs``.

    Points are bucketed onto a ``width x height`` grid; the y axis is
    annotated with its min/max, the x axis with its endpoints.
    """
    if len(xs) != len(ys):
        raise ValueError(f"xs ({len(xs)}) and ys ({len(ys)}) differ in length")
    if not xs:
        raise ValueError("need at least one point")
    if width < 8 or height < 3:
        raise ValueError("chart too small to draw")
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_low) / x_span * (width - 1))
        row = int((y - y_low) / y_span * (height - 1))
        grid[height - 1 - row][col] = "*"

    label_width = max(len(f"{y_high:g}"), len(f"{y_low:g}"))
    lines = []
    if y_label:
        lines.append(y_label)
    for index, row in enumerate(grid):
        if index == 0:
            prefix = f"{y_high:g}".rjust(label_width)
        elif index == height - 1:
            prefix = f"{y_low:g}".rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    left = f"{x_low:g}"
    right = f"{x_high:g}"
    gap = max(1, width - len(left) - len(right))
    lines.append(" " * (label_width + 2) + left + " " * gap + right)
    if x_label:
        lines.append(" " * (label_width + 2) + x_label)
    return "\n".join(lines)
