"""Turn :class:`AttackRunReport` batches into success-vs-adversity tables.

The orchestrator's reports carry everything needed to answer the
robustness questions the chaos experiments ask: how often does the
attack survive a given adversity profile, what kills the runs that die,
and how many extra attempts does survival cost?  These helpers reduce a
batch of reports (typically one per seed) to those aggregates, and
render them with the shared table formatter so benchmark output stays
consistent.

Reports are duck-typed: anything with ``success``, ``failure_classes``,
``attempts``, ``candidates_tried``, ``recoveries`` and a ``budget`` that
has ``sim_time_ns`` works, so tests can feed lightweight stand-ins.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.tabulate import format_table


def survival_rate(reports: list) -> float:
    """Fraction of runs that recovered the key (0.0 for an empty batch)."""
    if not reports:
        return 0.0
    return sum(1 for report in reports if report.success) / len(reports)


def failure_breakdown(reports: list) -> dict[str, int]:
    """How many runs saw each failure class, sorted by frequency then name.

    A run counts once per *distinct* class it hit — the question is "what
    kinds of adversity did this run face", not "how many retries did it
    burn".
    """
    counts: Counter[str] = Counter()
    for report in reports:
        for failure_class in report.failure_classes:
            counts[failure_class] += 1
    return dict(sorted(counts.items(), key=lambda item: (-item[1], item[0])))


def attempts_to_success(reports: list) -> list[int]:
    """Stage attempts each *successful* run needed, in input order."""
    return [report.attempts for report in reports if report.success]


def mean_attempts(reports: list) -> float | None:
    """Mean stage attempts across successful runs (None if none succeeded)."""
    attempts = attempts_to_success(reports)
    if not attempts:
        return None
    return sum(attempts) / len(attempts)


def survival_summary(profile: str, reports: list) -> dict:
    """One profile's aggregate row, as plain data."""
    successes = [report for report in reports if report.success]
    return {
        "profile": profile,
        "runs": len(reports),
        "recovered": len(successes),
        "survival_rate": survival_rate(reports),
        "mean_attempts": mean_attempts(reports),
        "mean_candidates": (
            sum(r.candidates_tried for r in successes) / len(successes) if successes else None
        ),
        "total_recoveries": sum(len(r.recoveries) for r in reports),
        "failure_breakdown": failure_breakdown(reports),
    }


def survival_table(batches: dict[str, list], title: str = "Survival vs adversity") -> str:
    """Render one row per chaos profile from ``{profile: [reports]}``."""
    headers = [
        "profile",
        "runs",
        "recovered",
        "survival",
        "mean attempts",
        "recoveries",
        "failure classes",
    ]
    rows = []
    for profile, reports in batches.items():
        summary = survival_summary(profile, reports)
        attempts = summary["mean_attempts"]
        breakdown = summary["failure_breakdown"]
        rows.append(
            [
                profile,
                summary["runs"],
                summary["recovered"],
                f"{summary['survival_rate']:.0%}",
                "-" if attempts is None else f"{attempts:.1f}",
                summary["total_recoveries"],
                ", ".join(f"{name} x{count}" for name, count in breakdown.items()) or "-",
            ]
        )
    return format_table(headers, rows, title=title)
