"""Experiment harness utilities: sweeps, statistics and table rendering.

Used by ``benchmarks/`` to regenerate every table and figure of
EXPERIMENTS.md with consistent formatting and honest uncertainty
estimates.
"""

from repro.analysis.charts import ascii_chart, sparkline
from repro.analysis.stats import (
    binomial_ci,
    mean_and_ci,
    summarize_rates,
)
from repro.analysis.survival import (
    failure_breakdown,
    survival_rate,
    survival_summary,
    survival_table,
)
from repro.analysis.sweep import Sweep, SweepPoint
from repro.analysis.tabulate import format_table, write_results

__all__ = [
    "Sweep",
    "SweepPoint",
    "ascii_chart",
    "binomial_ci",
    "failure_breakdown",
    "sparkline",
    "format_table",
    "mean_and_ci",
    "summarize_rates",
    "survival_rate",
    "survival_summary",
    "survival_table",
    "write_results",
]
