"""Small statistics helpers for experiment reporting.

Success rates are binomial, so intervals come from the Wilson score
(well-behaved at 0% and 100%, unlike the normal approximation); scalar
measurements get a mean with a normal-approximation CI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def binomial_ci(successes: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} outside [0, {trials}]")
    p_hat = successes / trials
    denom = 1 + z * z / trials
    center = (p_hat + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return max(0.0, center - margin), min(1.0, center + margin)


def mean_and_ci(values: list[float], z: float = 1.96) -> tuple[float, float]:
    """(mean, half-width of the normal-approximation CI)."""
    if not values:
        raise ValueError("need at least one value")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, z * math.sqrt(variance / n)


@dataclass(frozen=True)
class RateSummary:
    """A success rate with its Wilson interval, print-ready."""

    successes: int
    trials: int
    rate: float
    ci_low: float
    ci_high: float

    def __str__(self) -> str:
        return (
            f"{self.rate:.2%} ({self.successes}/{self.trials}, "
            f"95% CI [{self.ci_low:.2%}, {self.ci_high:.2%}])"
        )


def summarize_rates(successes: int, trials: int) -> RateSummary:
    """Bundle a binomial outcome with its Wilson interval."""
    low, high = binomial_ci(successes, trials)
    return RateSummary(
        successes=successes,
        trials=trials,
        rate=successes / trials,
        ci_low=low,
        ci_high=high,
    )
