"""Plain-text table rendering and result persistence.

The benchmarks print each experiment's table to stdout *and* write it
under ``benchmarks/results/`` so the numbers survive pytest's output
capturing and can be diffed across runs.
"""

from __future__ import annotations

import os
from datetime import datetime, timezone


def format_table(
    headers: list[str],
    rows: list[list[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    if not headers:
        raise ValueError("need at least one column")
    cells = [[str(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells)) if cells else len(headers[col])
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def results_dir() -> str:
    """The benchmarks/results directory (created on demand)."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(__file__))))
    path = os.path.join(here, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def write_results(experiment_id: str, text: str, echo: bool = True) -> str:
    """Persist an experiment table; returns the file path written."""
    path = os.path.join(results_dir(), f"{experiment_id}.txt")
    stamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# experiment {experiment_id} — written {stamp}\n\n")
        handle.write(text)
        handle.write("\n")
    if echo:
        print(f"\n{text}\n[written to {path}]")
    return path
