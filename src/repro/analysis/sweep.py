"""Parameter sweeps over fresh or forked machines.

An experiment point is a function of a :class:`~repro.core.machine.Machine`
built from a per-trial seed; the sweep runs it over a parameter grid with
``trials`` independent seeds per point and collects the outcomes.

Two trial-machine strategies are available:

* **rebuild** (default) — a fresh machine per trial, each a pure
  function of its derived seed.  Points stay statistically independent
  and the whole sweep reproduces from the base seed.
* **fork** (``warm_fn=...``) — one warm machine is prepared (e.g. built
  and templated), snapshotted, and every trial receives an independent
  :meth:`~repro.core.machine.MachineSnapshot.fork` re-keyed with the
  trial seed.  The warm-up cost is paid once per sweep instead of once
  per trial; trial independence is preserved because forks share no
  mutable state.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.config import MachineConfig
from repro.core.machine import Machine
from repro.sim.rng import derive_seed


@dataclass
class SweepPoint:
    """One grid point: the parameter value and its per-trial outcomes."""

    parameter: object
    outcomes: list[object] = field(default_factory=list)

    def successes(self) -> int:
        """Count truthy outcomes (for success-rate experiments)."""
        return sum(1 for outcome in self.outcomes if outcome)

    @property
    def trials(self) -> int:
        """Number of trials run at this point."""
        return len(self.outcomes)


class Sweep:
    """Runs ``trial_fn(machine, parameter)`` over a grid of parameters.

    With ``warm_fn`` the sweep switches to fork mode: ``warm_fn(config)``
    must return a warm :class:`Machine` (built from the point's config,
    driven to whatever state the trials should start from), which is
    snapshotted once per grid point and forked per trial.

    With ``workers > 1`` grid points are dispatched across a process
    pool (:func:`repro.parallel.pool.run_sweep`) at point granularity —
    each point's seed chain is self-contained, so the outcomes are
    identical to the serial order regardless of worker count.  The
    callables and outcomes then cross process boundaries: use
    module-level functions and plain-data outcomes.
    """

    def __init__(
        self,
        base_config: MachineConfig,
        trial_fn: Callable[[Machine, object], object],
        name: str = "sweep",
        warm_fn: Callable[[MachineConfig], Machine] | None = None,
        workers: int = 1,
    ):
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        self.base_config = base_config
        self.trial_fn = trial_fn
        self.name = name
        self.warm_fn = warm_fn
        self.workers = workers

    def _trial_seed(self, parameter: object, trial: int) -> int:
        return derive_seed(
            self.base_config.seed, f"{self.name}/{parameter!r}/{trial}"
        )

    def _point_seed(self, parameter: object) -> int:
        return derive_seed(self.base_config.seed, f"{self.name}/{parameter!r}/warm")

    def run_point(self, parameter: object, trials: int) -> SweepPoint:
        """Run one grid point with independent machines."""
        if trials <= 0:
            raise ValueError(f"trials must be positive, got {trials}")
        point = SweepPoint(parameter=parameter)
        if self.warm_fn is not None:
            warm = self.warm_fn(
                self.base_config.with_seed(self._point_seed(parameter))
            )
            snapshot = warm.snapshot()
            for trial in range(trials):
                machine, _ = snapshot.fork(seed=self._trial_seed(parameter, trial))
                point.outcomes.append(self.trial_fn(machine, parameter))
            return point
        for trial in range(trials):
            config = self.base_config.with_seed(self._trial_seed(parameter, trial))
            machine = Machine(config)
            point.outcomes.append(self.trial_fn(machine, parameter))
        return point

    def run(self, parameters: list[object], trials: int) -> list[SweepPoint]:
        """Run the whole grid (on the worker pool when ``workers > 1``)."""
        if self.workers > 1 and len(parameters) > 1:
            from repro.parallel.pool import run_sweep

            return run_sweep(self, parameters, trials)
        return [self.run_point(parameter, trials) for parameter in parameters]
