"""Task (process) model.

A task owns an address space, a capability set, a CPU affinity mask and a
scheduler state.  Two states matter to the attack:

* ``RUNNING`` — the task is resident on its CPU; its frees feed that CPU's
  page frame cache and its small allocations drain it;
* ``SLEEPING`` — the paper warns the adversary must *not* sleep, because
  the page-frame-cache state it set up is lost while it is away (other
  work runs on the CPU and consumes/drains the cache).  The kernel
  realises this by draining the CPU's caches when a task goes to sleep.
"""

from __future__ import annotations

import enum

from repro.os.capabilities import CapabilitySet
from repro.sim.errors import ConfigError
from repro.vm.address_space import AddressSpace


class TaskState(enum.Enum):
    """Scheduler state of a task."""

    RUNNING = "running"
    SLEEPING = "sleeping"
    EXITED = "exited"


class Task:
    """One simulated process."""

    def __init__(
        self,
        pid: int,
        name: str,
        cpu: int,
        allowed_cpus: frozenset[int],
        caps: CapabilitySet | None = None,
    ):
        if pid <= 0:
            raise ConfigError(f"pid must be positive, got {pid}")
        if cpu not in allowed_cpus:
            raise ConfigError(f"cpu {cpu} not in affinity mask {sorted(allowed_cpus)}")
        self.pid = pid
        self.name = name
        self.cpu = cpu
        self.allowed_cpus = allowed_cpus
        self.caps = caps or CapabilitySet.unprivileged()
        self.state = TaskState.RUNNING
        self.mm = AddressSpace()
        self.syscall_count = 0
        self.minor_faults = 0

    @property
    def is_running(self) -> bool:
        """True while the task is resident on its CPU."""
        return self.state is TaskState.RUNNING

    def __repr__(self) -> str:
        return (
            f"Task(pid={self.pid}, name={self.name!r}, cpu={self.cpu}, "
            f"state={self.state.value})"
        )
