"""POSIX-style capabilities.

Only the capabilities the reproduction actually checks are modelled.  The
load-bearing one is CAP_SYS_ADMIN: without it, pagemap reads return zeroed
PFNs (Linux >= 4.0), which is the premise of the unprivileged attack.
"""

from __future__ import annotations

import enum


class Capability(enum.Enum):
    """Capabilities recognised by the simulated kernel."""

    CAP_SYS_ADMIN = "cap_sys_admin"
    CAP_SYS_NICE = "cap_sys_nice"
    CAP_IPC_LOCK = "cap_ipc_lock"


class CapabilitySet:
    """An immutable-by-convention set of capabilities held by a task."""

    def __init__(self, caps: set[Capability] | frozenset[Capability] = frozenset()):
        self._caps = frozenset(caps)

    @classmethod
    def unprivileged(cls) -> "CapabilitySet":
        """An ordinary user: no capabilities at all."""
        return cls()

    @classmethod
    def root(cls) -> "CapabilitySet":
        """A root-equivalent task holding every modelled capability."""
        return cls(frozenset(Capability))

    def has(self, cap: Capability) -> bool:
        """True if the set contains ``cap``."""
        return cap in self._caps

    def with_cap(self, cap: Capability) -> "CapabilitySet":
        """A copy of this set additionally holding ``cap``."""
        return CapabilitySet(self._caps | {cap})

    def without_cap(self, cap: Capability) -> "CapabilitySet":
        """A copy of this set with ``cap`` dropped."""
        return CapabilitySet(self._caps - {cap})

    def __contains__(self, cap: Capability) -> bool:
        return cap in self._caps

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CapabilitySet) and self._caps == other._caps

    def __hash__(self) -> int:
        return hash(self._caps)

    def __repr__(self) -> str:
        names = sorted(cap.name for cap in self._caps)
        return f"CapabilitySet({names})"
