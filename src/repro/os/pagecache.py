"""A page cache: the kernel's reclaimable memory consumer.

Real systems run with most "free" memory holding file pages, and the
allocator keeps working because kswapd reclaims them under pressure.
This module provides that dynamic for the simulation: simulated files
whose pages are cached in physical frames on first read, registered with
kswapd as reclaimable, and transparently re-fetched ("from disk") after a
reclaim.

File contents are a pure function of (file id, offset), so re-reads after
reclaim return identical bytes and any cache-coherence bug would show up
as a content mismatch in the tests.
"""

from __future__ import annotations

import hashlib

from repro.mm.allocator import AllocationRequest, ZonedPageFrameAllocator
from repro.mm.reclaim import Kswapd
from repro.dram.memory import PhysicalMemory
from repro.sim.errors import ConfigError
from repro.sim.units import PAGE_SHIFT, PAGE_SIZE


def file_page_content(file_id: int, page_index: int) -> bytes:
    """Deterministic 4 KiB content of one file page."""
    seed = hashlib.sha256(f"file:{file_id}:page:{page_index}".encode()).digest()
    repeats = PAGE_SIZE // len(seed)
    return seed * repeats


class PageCache:
    """(file id, page index) -> cached frame, with reclaim integration."""

    def __init__(
        self,
        allocator: ZonedPageFrameAllocator,
        memory: PhysicalMemory,
        kswapd: Kswapd,
        controller=None,
    ):
        self.allocator = allocator
        self.memory = memory
        self.kswapd = kswapd
        # Optional DRAM controller: page fills then issue a row access so
        # streaming I/O shows up (modestly) in activation accounting.
        self.controller = controller
        self._pages: dict[tuple[int, int], int] = {}
        self._by_pfn: dict[int, tuple[int, int]] = {}
        self.hits = 0
        self.misses = 0
        self.reclaimed = 0

    @property
    def cached_pages(self) -> int:
        """File pages currently held in memory."""
        return len(self._pages)

    def holds(self, file_id: int, page_index: int) -> bool:
        """True if the page is currently cached."""
        return (file_id, page_index) in self._pages

    def _on_reclaim(self, pfn: int) -> None:
        key = self._by_pfn.pop(pfn, None)
        if key is not None:
            del self._pages[key]
            self.reclaimed += 1

    def _fill(self, file_id: int, page_index: int, cpu: int) -> int:
        pfn = self.allocator.alloc_pages(
            AllocationRequest(order=0, cpu=cpu, owner_pid=None)
        )
        self.memory.write(pfn << PAGE_SHIFT, file_page_content(file_id, page_index))
        if self.controller is not None:
            self.controller.access(pfn << PAGE_SHIFT, write=True)
        zone = self.allocator.zone_of_pfn(pfn)
        self.kswapd.register_reclaimable(zone, pfn, 0, on_reclaim=self._on_reclaim)
        self._pages[(file_id, page_index)] = pfn
        self._by_pfn[pfn] = (file_id, page_index)
        return pfn

    def read(self, file_id: int, offset: int, length: int, cpu: int = 0) -> bytes:
        """Read file bytes through the cache (filling missing pages)."""
        if offset < 0 or length < 0:
            raise ConfigError("offset and length must be non-negative")
        out = bytearray()
        cursor = offset
        remaining = length
        while remaining > 0:
            page_index = cursor >> PAGE_SHIFT
            in_page = cursor & (PAGE_SIZE - 1)
            chunk = min(remaining, PAGE_SIZE - in_page)
            key = (file_id, page_index)
            pfn = self._pages.get(key)
            if pfn is None:
                pfn = self._fill(file_id, page_index, cpu)
                self.misses += 1
            else:
                self.hits += 1
            out += self.memory.read((pfn << PAGE_SHIFT) + in_page, chunk)
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def fill_fraction(self, fraction: float, file_id: int = 1, cpu: int = 0) -> int:
        """Populate the cache up to ``fraction`` of the node's memory.

        Returns the number of pages read in.  Used by the pressure
        experiments to emulate a warmed-up system.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ConfigError(f"fraction must be in [0, 1], got {fraction}")
        target_pages = int(self.allocator.total_pages * fraction)
        filled = 0
        page_index = 0
        while self.cached_pages < target_pages:
            headroom = self.allocator.free_pages_total
            if headroom < 64:  # leave the min-watermark region alone
                break
            self.read(file_id, page_index << PAGE_SHIFT, PAGE_SIZE, cpu=cpu)
            page_index += 1
            filled += 1
        return filled

    def __repr__(self) -> str:
        return (
            f"PageCache(cached={self.cached_pages}, hits={self.hits}, "
            f"misses={self.misses}, reclaimed={self.reclaimed})"
        )
