"""A minimal CPU placement scheduler.

The reproduction does not need timeslicing — experiments drive tasks
synchronously — but it does need *placement*: which CPU a task runs on
determines which per-CPU page frame cache its allocations and frees touch.
The scheduler assigns new tasks to the least-loaded allowed CPU, enforces
affinity masks on migration, and tracks per-CPU load so experiments can
model CPU co-residency (the attack's key precondition) and its absence.
"""

from __future__ import annotations

from repro.obs import NOOP_OBS
from repro.os.task import Task, TaskState
from repro.sim.errors import ConfigError


class Scheduler:
    """Tracks which tasks are resident on which CPU."""

    #: Default timeslice for event-driven tick accounting (CFS-ish 4 ms).
    TIMESLICE_NS = 4_000_000

    def __init__(self, num_cpus: int):
        if num_cpus <= 0:
            raise ConfigError(f"num_cpus must be positive, got {num_cpus}")
        self.num_cpus = num_cpus
        self._cpu_tasks: list[list[int]] = [[] for _ in range(num_cpus)]
        self.migrations = 0
        self.ticks = 0
        self.cpu_time_ns = [0] * num_cpus
        self._last_tick_ns = 0
        self._events = None
        self.bind_obs(NOOP_OBS)

    def bind_obs(self, obs) -> None:
        """Attach an observability hub (see docs/OBSERVABILITY.md)."""
        self.obs = obs
        self._m_migrations = obs.metrics.counter(
            "os.sched.migrations", unit="migrations",
            help="tasks moved between CPUs",
        )
        self._m_ticks = obs.metrics.counter(
            "os.sched.ticks", unit="ticks",
            help="timeslice accounting ticks dispatched",
        )

    def bind_events(self, events, timeslice_ns: int | None = None) -> None:
        """Account CPU time on a recurring scheduler tick (queue ``"os"``).

        Pure bookkeeping — placement decisions stay synchronous — so the
        tick never perturbs the simulation, it only attributes elapsed
        sim-time to the CPUs that had runnable tasks.
        """
        self._events = events
        self._last_tick_ns = events.clock.now_ns
        period = timeslice_ns or self.TIMESLICE_NS
        events.schedule_in(
            "os.sched.tick", period, self._on_tick, queue="os", period_ns=period
        )

    def _on_tick(self, now_ns: int) -> None:
        elapsed = now_ns - self._last_tick_ns
        self._last_tick_ns = now_ns
        for cpu, pids in enumerate(self._cpu_tasks):
            if pids:
                self.cpu_time_ns[cpu] += elapsed
        self.ticks += 1
        self._m_ticks.inc()

    def _check_cpu(self, cpu: int) -> None:
        if not 0 <= cpu < self.num_cpus:
            raise ConfigError(f"cpu {cpu} out of range [0, {self.num_cpus})")

    def all_cpus(self) -> frozenset[int]:
        """The full affinity mask."""
        return frozenset(range(self.num_cpus))

    def pick_cpu(self, allowed: frozenset[int]) -> int:
        """Least-loaded CPU within ``allowed`` (lowest id breaks ties)."""
        candidates = sorted(allowed)
        if not candidates:
            raise ConfigError("empty affinity mask")
        for cpu in candidates:
            self._check_cpu(cpu)
        return min(candidates, key=lambda cpu: (len(self._cpu_tasks[cpu]), cpu))

    def place(self, task: Task) -> None:
        """Put a (new) task on its CPU's run list."""
        self._check_cpu(task.cpu)
        if task.pid in self._cpu_tasks[task.cpu]:
            raise ConfigError(f"pid {task.pid} already placed on cpu {task.cpu}")
        self._cpu_tasks[task.cpu].append(task.pid)

    def remove(self, task: Task) -> None:
        """Take the task off its CPU (exit or sleep)."""
        try:
            self._cpu_tasks[task.cpu].remove(task.pid)
        except ValueError:
            raise ConfigError(f"pid {task.pid} not on cpu {task.cpu}") from None

    def migrate(self, task: Task, new_cpu: int) -> None:
        """Move a task to ``new_cpu`` (must be in its affinity mask)."""
        self._check_cpu(new_cpu)
        if new_cpu not in task.allowed_cpus:
            raise ConfigError(
                f"cpu {new_cpu} not in pid {task.pid}'s affinity "
                f"{sorted(task.allowed_cpus)}"
            )
        if new_cpu == task.cpu:
            return
        if task.state is TaskState.RUNNING:
            self.remove(task)
            task.cpu = new_cpu
            self.place(task)
        else:
            task.cpu = new_cpu
        self.migrations += 1
        self._m_migrations.inc()

    def load(self, cpu: int) -> int:
        """Number of runnable tasks on ``cpu``."""
        self._check_cpu(cpu)
        return len(self._cpu_tasks[cpu])

    def tasks_on(self, cpu: int) -> list[int]:
        """Pids currently resident on ``cpu``."""
        self._check_cpu(cpu)
        return list(self._cpu_tasks[cpu])

    def co_resident(self, a: Task, b: Task) -> bool:
        """True if two tasks share a CPU — the attack's precondition."""
        return a.cpu == b.cpu and a.is_running and b.is_running

    def __repr__(self) -> str:
        loads = {cpu: len(pids) for cpu, pids in enumerate(self._cpu_tasks)}
        return f"Scheduler(loads={loads})"
