"""Kernel facade: tasks, CPUs, syscalls, and the memory access path.

This package glues the substrates together the way Linux does: tasks with
CPU affinity run on a scheduler; their mmap/munmap syscalls drive the
zoned page frame allocator (and thus the per-CPU page frame cache); their
loads and stores run through the CPU cache into the DRAM controller, where
Rowhammer disturbance accumulates.
"""

from repro.os.capabilities import Capability, CapabilitySet
from repro.os.kernel import Kernel
from repro.os.scheduler import Scheduler
from repro.os.task import Task, TaskState

__all__ = [
    "Capability",
    "CapabilitySet",
    "Kernel",
    "Scheduler",
    "Task",
    "TaskState",
]
