"""/proc-style introspection over the simulated machine.

Renders the textual views a Linux admin (or exploit developer) would read
— ``/proc/buddyinfo``, ``/proc/zoneinfo``, ``/proc/meminfo``,
``/proc/<pid>/maps`` and a ``/proc/<pid>/status`` memory summary — from
live simulator state.  These are diagnostic *views*: read-only, built
entirely from public accessors, and formatted close enough to the real
files that eyes trained on the originals can parse them.
"""

from __future__ import annotations

from repro.mm.node import NumaNode
from repro.mm.zone import ZONELIST_ORDER
from repro.os.task import Task
from repro.sim.units import KIB, PAGE_SIZE
from repro.vm.vma import Protection


def buddyinfo(node: NumaNode) -> str:
    """Free-block counts per order, like ``/proc/buddyinfo``."""
    lines = []
    for zone_type in reversed(ZONELIST_ORDER):
        if zone_type not in node.zones:
            continue
        zone = node.zones[zone_type]
        blocks = zone.buddy.free_blocks_by_order()
        counts = " ".join(
            f"{blocks[order]:6d}" for order in range(zone.buddy.max_order + 1)
        )
        lines.append(f"Node {node.node_id}, zone {zone.name:>8} {counts}")
    return "\n".join(lines)


def zoneinfo(node: NumaNode) -> str:
    """Per-zone watermarks and per-CPU page list fill, like ``/proc/zoneinfo``."""
    sections = []
    for zone_type in reversed(ZONELIST_ORDER):
        if zone_type not in node.zones:
            continue
        zone = node.zones[zone_type]
        lines = [
            f"Node {node.node_id}, zone {zone.name:>8}",
            f"  pages free     {zone.buddy.free_pages}",
            f"        min      {zone.watermarks.min_pages}",
            f"        low      {zone.watermarks.low_pages}",
            f"        high     {zone.watermarks.high_pages}",
            f"        spanned  {zone.total_pages}",
        ]
        for cpu in range(zone.num_cpus):
            pcp = zone.pcp(cpu)
            lines.append(f"  cpu: {cpu}")
            lines.append(f"              count: {pcp.count}")
            lines.append(f"              high:  {pcp.config.high}")
            lines.append(f"              batch: {pcp.config.batch}")
        sections.append("\n".join(lines))
    return "\n".join(sections)


def meminfo(node: NumaNode) -> str:
    """Totals in kB, like the head of ``/proc/meminfo``."""
    page_kb = PAGE_SIZE // KIB
    total_kb = node.total_pages * page_kb
    free_kb = node.free_pages * page_kb
    return "\n".join(
        [
            f"MemTotal:       {total_kb:10d} kB",
            f"MemFree:        {free_kb:10d} kB",
            f"MemAvailable:   {free_kb:10d} kB",
        ]
    )


def maps(task: Task) -> str:
    """The task's VMAs, like ``/proc/<pid>/maps``."""
    lines = []
    for vma in task.mm.vmas:
        bits = "".join(
            flag if present else "-"
            for flag, present in (
                ("r", bool(vma.prot & Protection.READ)),
                ("w", bool(vma.prot & Protection.WRITE)),
                ("x", bool(vma.prot & Protection.EXEC)),
            )
        )
        lines.append(
            f"{vma.start:012x}-{vma.end:012x} {bits}p 00000000 00:00 0"
            f"          [{vma.name}]"
        )
    return "\n".join(lines)


def status_memory(task: Task) -> str:
    """The memory lines of ``/proc/<pid>/status``."""
    page_kb = PAGE_SIZE // KIB
    return "\n".join(
        [
            f"Name:   {task.name}",
            f"Pid:    {task.pid}",
            f"State:  {task.state.value}",
            f"VmSize: {task.mm.virtual_pages() * page_kb:10d} kB",
            f"VmRSS:  {task.mm.rss_pages * page_kb:10d} kB",
        ]
    )


def pagetypeinfo(node: NumaNode) -> str:
    """A compact free-list summary across zones (pagetypeinfo-like)."""
    lines = ["Free pages count per zone at order:"]
    header = "zone      " + " ".join(f"{order:>6}" for order in range(11))
    lines.append(header)
    for zone_type in reversed(ZONELIST_ORDER):
        if zone_type not in node.zones:
            continue
        zone = node.zones[zone_type]
        blocks = zone.buddy.free_blocks_by_order()
        row = f"{zone.name:<10}" + " ".join(
            f"{blocks.get(order, 0):>6}" for order in range(11)
        )
        lines.append(row)
    return "\n".join(lines)
