"""The kernel facade: syscalls, demand paging, and the memory access path.

This class plays the role Linux plays in the paper: it owns the zoned page
frame allocator (and with it each CPU's page frame cache), handles mmap /
munmap / page faults, and routes every load and store through the CPU
cache into the DRAM controller.  The attack code talks *only* to this
facade, through the same interface contour real attack code has: mmap,
munmap, memory reads/writes, clflush, sched_setaffinity, and pagemap.

Design notes (all mirroring documented kernel behaviour):

* **Demand paging** — ``mmap`` reserves virtual space; a *write* fault
  allocates a zeroed frame through the allocator (order-0 -> the faulting
  CPU's page frame cache).  A *read* of an unpopulated anonymous page
  returns zeros without allocating (the shared zero page), matching the
  paper's observation that frames are only allocated once data is stored.
* **munmap -> pcp** — frames released by ``munmap`` are freed order-0 on
  the caller's CPU, landing on the hot end of that CPU's page frame cache.
  This is the channel the attack steers through.
* **Sleep drains the cache** — when a task sleeps, the kernel drains its
  CPU's page frame caches (the simulator's deterministic stand-in for the
  paper's warning that a sleeping adversary loses the cache state it
  staged).
* **clflush** — evicts a line from the CPU cache so the next access
  reaches DRAM; the hammer fast path requires it, exactly as on hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import zip_longest

from repro.dram.cache import CpuCache
from repro.dram.controller import HammerResult, MemoryController
from repro.mm.allocator import AllocationRequest, ZonedPageFrameAllocator
from repro.mm.reclaim import Kswapd
from repro.mm.zone import ZoneType
from repro.defense.watchdog import ActivationLedger
from repro.obs import NOOP_OBS
from repro.os.capabilities import CapabilitySet
from repro.os.pagecache import PageCache
from repro.os.scheduler import Scheduler
from repro.os.task import Task, TaskState
from repro.sim.clock import SimClock
from repro.sim.errors import ConfigError, FaultError, OutOfMemoryError, SegmentationFault
from repro.sim.events import TOPIC_SYSCALL, SyscallHook
from repro.sim.units import PAGE_SHIFT, PAGE_SIZE, page_align_down
from repro.vm.pagemap import Pagemap
from repro.vm.vma import Protection, VmaFlags

# Cost of an access served by the CPU cache (ns of simulated time).
CACHE_HIT_NS = 1


@dataclass
class EvictHammerResult:
    """Outcome of one eviction-based hammer call (``sys_hammer_evict``).

    Extends the plain :class:`HammerResult` accounting with the two numbers
    that distinguish eviction-based hammering from clflush-based hammering:
    how often the aggressor access actually reached DRAM (the traversal
    evicted it — ``eviction_accuracy``), and how many row activations were
    spent on the eviction-set lines themselves rather than the aggressors
    (``wasted_activations``).
    """

    rounds: int
    accesses: int
    activations: int
    elapsed_ns: int
    flips: list = field(default_factory=list)
    aggressor_accesses: int = 0
    aggressor_misses: int = 0
    traversal_accesses: int = 0
    traversal_misses: int = 0
    wasted_activations: int = 0

    @property
    def eviction_accuracy(self) -> float:
        """Fraction of aggressor accesses that reached DRAM (1.0 = clflush-grade)."""
        if not self.aggressor_accesses:
            return 0.0
        return self.aggressor_misses / self.aggressor_accesses


@dataclass
class KernelStats:
    """Aggregate syscall and fault counters."""

    syscalls: int = 0
    page_faults: int = 0
    mmap_calls: int = 0
    munmap_calls: int = 0
    frames_faulted_in: int = 0
    frames_freed: int = 0


class Kernel:
    """Syscall surface and policy glue over the substrates."""

    def __init__(
        self,
        allocator: ZonedPageFrameAllocator,
        controller: MemoryController,
        cache: CpuCache,
        clock: SimClock,
        scheduler: Scheduler,
        kswapd: Kswapd | None = None,
        events=None,
        bus=None,
    ):
        self.allocator = allocator
        self.controller = controller
        self.cache = cache
        self.clock = clock
        self.scheduler = scheduler
        self.kswapd = kswapd
        self.page_cache = (
            PageCache(allocator, controller.memory, kswapd, controller=controller)
            if kswapd
            else None
        )
        self.tasks: dict[int, Task] = {}
        self._next_pid = 100
        self.stats = KernelStats()
        # Per-(window, task) DRAM activation accounting, consumed by the
        # HammerWatchdog (repro.defense) — the software detection layer.
        self.ledger = ActivationLedger()
        # Optional chaos-injection engine (repro.sim.chaos).  When attached,
        # well-defined syscall hooks pump it so adversity events fire
        # deterministically inside the simulation, not around it.
        self.chaos = None
        # Event-driven core (timed_core="events"): syscall hooks publish on
        # the bus and drain the os/defense scheduler queues; ``None`` keeps
        # the legacy direct-call behaviour.
        self.events = events
        self.bus = bus
        if bus is not None:
            bus.subscribe(TOPIC_SYSCALL, self._on_syscall_event)
        self.bind_obs(NOOP_OBS)

    def bind_obs(self, obs) -> None:
        """Attach an observability hub (see docs/OBSERVABILITY.md).

        Syscalls are counted live per call name (they are orders of
        magnitude rarer than memory accesses); the memory access path
        itself (:meth:`_touch_lines`) stays uninstrumented — its totals
        are collector-sourced from :class:`KernelStats`.
        """
        self.obs = obs
        metrics = obs.metrics
        sys_counter = metrics.counter  # registered per label below
        self._m_sys_mmap = sys_counter(
            "os.syscalls", labels={"call": "mmap"}, unit="calls",
            help="syscall invocations by call name",
        )
        self._m_sys_munmap = sys_counter("os.syscalls", labels={"call": "munmap"})
        self._m_sys_sleep = sys_counter("os.syscalls", labels={"call": "sleep"})
        self._m_sys_affinity = sys_counter(
            "os.syscalls", labels={"call": "sched_setaffinity"}
        )
        self._m_sys_clflush = sys_counter("os.syscalls", labels={"call": "clflush"})
        self._m_sys_hammer = sys_counter("os.syscalls", labels={"call": "hammer"})
        self._m_sys_hammer_evict = sys_counter(
            "os.syscalls", labels={"call": "hammer_evict"}
        )
        self._m_sys_file_read = sys_counter(
            "os.syscalls", labels={"call": "file_read"}
        )
        self._m_faults = metrics.counter(
            "os.page_faults", unit="faults", help="write faults served"
        )
        self._m_spawns = metrics.counter(
            "os.tasks.spawned", unit="tasks", help="tasks created"
        )
        frames_freed = metrics.gauge(
            "os.frames_freed", unit="frames", help="frames released by munmap/exit"
        )
        syscalls_total = metrics.gauge(
            "os.syscalls_total", unit="calls", help="syscalls across all call names"
        )

        def _collect() -> None:
            frames_freed.set(self.stats.frames_freed)
            syscalls_total.set(self.stats.syscalls)

        metrics.add_collector(_collect)

    def _pump_chaos(self, hook: str, pid: int) -> None:
        if self.bus is not None:
            # Event mode: the hook is a bus message; the chaos engine (and
            # any other listener) receives it via subscription.  Timed work
            # parked on the os/defense queues drains at the same instants
            # the polled core serviced it.
            if self.events is not None:
                self.events.dispatch_due("os")
                self.events.dispatch_due("defense")
                # Tenant request streams (repro.workload) ride the same
                # pump: a no-op until a scenario schedules on the queue.
                self.events.dispatch_due("workload")
            self.bus.publish(
                TOPIC_SYSCALL, SyscallHook(hook=hook, pid=pid, time_ns=self.clock.now_ns)
            )
        elif self.chaos is not None:
            self.chaos.pump(hook, pid)

    def _on_syscall_event(self, event: SyscallHook) -> None:
        if self.chaos is not None:
            self.chaos.pump(event.hook, event.pid)

    def _account_activations(self, pid: int, activations: int) -> None:
        if activations > 0:
            self.ledger.record(self.controller.current_refresh_epoch(), pid, activations)

    def _maybe_run_kswapd(self) -> None:
        """Run pending reclaim work (synchronous stand-in for the daemon)."""
        if self.kswapd is None:
            return
        if self.events is not None:
            # Event mode: a wake armed a due-now event on the "mm" queue;
            # draining it here keeps reclaim at the exact same points.
            self.events.dispatch_due("mm")
            return
        if self.kswapd.pending_zones():
            with self.obs.tracer.span("mm.kswapd.run", "mm") as span:
                span.set("reclaimed", self.kswapd.run())

    # -- process management ---------------------------------------------------

    def spawn(
        self,
        name: str,
        cpu: int | None = None,
        affinity: frozenset[int] | None = None,
        caps: CapabilitySet | None = None,
    ) -> Task:
        """Create a task and place it on a CPU (least-loaded if unspecified)."""
        allowed = affinity or self.scheduler.all_cpus()
        chosen = cpu if cpu is not None else self.scheduler.pick_cpu(allowed)
        if cpu is not None and affinity is None:
            allowed = frozenset({cpu})
        pid = self._next_pid
        self._next_pid += 1
        task = Task(pid=pid, name=name, cpu=chosen, allowed_cpus=allowed, caps=caps)
        self.tasks[pid] = task
        self.scheduler.place(task)
        self._m_spawns.inc()
        self._pump_chaos("spawn", pid)
        return task

    def task(self, pid: int) -> Task:
        """Look up a live task by pid."""
        try:
            task = self.tasks[pid]
        except KeyError:
            raise ConfigError(f"no such pid {pid}") from None
        if task.state is TaskState.EXITED:
            raise ConfigError(f"pid {pid} has exited")
        return task

    def sys_exit(self, pid: int) -> int:
        """Terminate a task, releasing every resident frame; returns count."""
        task = self.task(pid)
        freed = 0
        for vma in list(task.mm.vmas):
            freed += self.sys_munmap(pid, vma.start, vma.length)
        if task.state is TaskState.RUNNING:
            self.scheduler.remove(task)
        task.state = TaskState.EXITED
        return freed

    # -- scheduling syscalls ---------------------------------------------------

    def sys_sched_setaffinity(self, pid: int, cpus: frozenset[int]) -> None:
        """Restrict a task to ``cpus``, migrating it if needed."""
        task = self.task(pid)
        task.syscall_count += 1
        self.stats.syscalls += 1
        self._m_sys_affinity.inc()
        if not cpus:
            raise ConfigError("affinity mask must not be empty")
        task.allowed_cpus = frozenset(cpus)
        if task.cpu not in task.allowed_cpus:
            old_cpu = task.cpu
            self.scheduler.migrate(task, self.scheduler.pick_cpu(task.allowed_cpus))
            self.obs.tracer.instant(
                "os.migrate", "os", pid=pid, from_cpu=old_cpu, to_cpu=task.cpu
            )

    def sys_sleep(self, pid: int) -> int:
        """Put a task to sleep; drains its CPU's page frame caches.

        Returns the number of cached frames that were lost — the cost the
        paper warns about.  (While the task is away, the CPU runs other
        work that consumes and recycles the per-CPU lists; draining is the
        deterministic equivalent.)
        """
        task = self.task(pid)
        task.syscall_count += 1
        self.stats.syscalls += 1
        self._m_sys_sleep.inc()
        self._pump_chaos("sleep", pid)
        if task.state is TaskState.SLEEPING:
            return 0
        self.scheduler.remove(task)
        task.state = TaskState.SLEEPING
        return self.allocator.drain_cpu_caches(task.cpu)

    def sys_wake(self, pid: int) -> None:
        """Return a sleeping task to its CPU."""
        task = self.task(pid)
        if task.state is not TaskState.SLEEPING:
            return
        task.state = TaskState.RUNNING
        self.scheduler.place(task)

    # -- mmap / munmap -------------------------------------------------------------

    def sys_mmap(
        self,
        pid: int,
        length: int,
        prot: Protection = Protection.rw(),
        populate: bool = False,
        name: str = "anon",
    ) -> int:
        """Map anonymous memory; returns the starting virtual address."""
        task = self.task(pid)
        task.syscall_count += 1
        self.stats.syscalls += 1
        self.stats.mmap_calls += 1
        self._m_sys_mmap.inc()
        self._pump_chaos("mmap", pid)
        with self.obs.tracer.span(
            "os.mmap", "os", pid=pid, pages=length // PAGE_SIZE or 1
        ):
            flags = VmaFlags.ANONYMOUS
            if populate:
                flags |= VmaFlags.POPULATE
            vma = task.mm.mmap(length, prot=prot, flags=flags, name=name)
            if populate:
                for va in vma.page_addresses():
                    self._fault_in(task, va)
        return vma.start

    def sys_munmap(self, pid: int, va: int, length: int) -> int:
        """Unmap [va, va+length); returns the number of frames released.

        Released frames are freed order-0 on the calling task's CPU — they
        land on the hot end of that CPU's page frame cache, which is the
        mechanism Section V of the paper exploits.
        """
        task = self.task(pid)
        task.syscall_count += 1
        self.stats.syscalls += 1
        self.stats.munmap_calls += 1
        self._m_sys_munmap.inc()
        with self.obs.tracer.span("os.munmap", "os", pid=pid) as span:
            # Two pump points bracket the free: "munmap-pre" fires before any
            # frame moves (a migration here sends the frames to another CPU's
            # cache), "munmap" fires after they landed (pressure here buries
            # them under competitor churn).
            self._pump_chaos("munmap-pre", pid)
            detached = task.mm.munmap(va, length)
            for _, pfn in detached:
                self.allocator.free_pages(pfn, 0, cpu=task.cpu)
                self.stats.frames_freed += 1
            self._pump_chaos("munmap", pid)
            span.set("frames", len(detached))
        return len(detached)

    # -- demand paging ----------------------------------------------------------

    def _fault_in(self, task: Task, va: int) -> int:
        """Handle a write fault: allocate a zeroed frame and map it."""
        page_va = page_align_down(va)
        vma = task.mm.vma_at(page_va)
        if vma is None:
            raise SegmentationFault(
                f"pid {task.pid} touched unmapped va {va:#x}", address=va, pid=task.pid
            )
        self._maybe_run_kswapd()
        request = AllocationRequest(order=0, cpu=task.cpu, owner_pid=task.pid)
        try:
            pfn = self.allocator.alloc_pages(request)
        except OutOfMemoryError:
            # Direct reclaim: force a kswapd pass and retry once.
            if self.kswapd is None:
                raise
            for node in self.allocator.nodes:
                for zone in node.zones.values():
                    self.kswapd.wake(zone)
            self.kswapd.run()
            pfn = self.allocator.alloc_pages(request)
        # Anonymous memory is delivered zeroed: the kernel's clear_page
        # rewrites every cell, which also re-arms any weak cells whose
        # resting value differs from zero.
        self.controller.memory.clear_frame(pfn)
        task.mm.attach_frame(page_va, pfn)
        task.minor_faults += 1
        self.stats.page_faults += 1
        self.stats.frames_faulted_in += 1
        self._m_faults.inc()
        return pfn

    def resolve_pa(self, pid: int, va: int, *, fault: bool = False) -> int:
        """Translate ``va`` in ``pid``'s address space to a physical address.

        With ``fault=True``, a missing translation inside a valid VMA is
        faulted in first (write-fault semantics).
        """
        task = self.task(pid)
        if not task.mm.page_table.is_mapped(page_align_down(va)):
            if not fault:
                raise SegmentationFault(
                    f"va {va:#x} not resident for pid {pid}", address=va, pid=pid
                )
            self._fault_in(task, va)
        return task.mm.page_table.translate(va)

    # -- the load/store path -----------------------------------------------------

    def _touch_lines(self, pa: int, length: int, pid: int | None = None) -> None:
        """Run the cache-line accesses for a physical byte range."""
        line = self.cache.config.line_size
        first = (pa // line) * line
        last = ((pa + length - 1) // line) * line
        activations = 0
        for line_pa in range(first, last + 1, line):
            if self.cache.access(line_pa):
                self.clock.advance(CACHE_HIT_NS)
            elif self.controller.access(line_pa):
                activations += 1
        if pid is not None:
            self._account_activations(pid, activations)

    def mem_write(self, pid: int, va: int, data: bytes) -> None:
        """Store ``data`` at ``va``, faulting pages in as needed."""
        task = self.task(pid)
        self._require_running(task)
        cursor = va
        view = memoryview(bytes(data))
        while view:
            page_va = page_align_down(cursor)
            offset = cursor - page_va
            chunk = min(len(view), PAGE_SIZE - offset)
            if not task.mm.page_table.is_mapped(page_va):
                self._fault_in(task, cursor)
            pa = task.mm.page_table.translate(cursor, write=True)
            self._touch_lines(pa, chunk, pid=task.pid)
            self.controller.memory.write(pa, bytes(view[:chunk]))
            cursor += chunk
            view = view[chunk:]

    def mem_read(self, pid: int, va: int, length: int) -> bytes:
        """Load ``length`` bytes from ``va``.

        Reads of valid-but-unpopulated anonymous pages return zeros without
        allocating a frame (zero-page semantics).
        """
        if length < 0:
            raise ConfigError(f"length must be non-negative, got {length}")
        task = self.task(pid)
        self._require_running(task)
        out = bytearray()
        cursor = va
        remaining = length
        while remaining > 0:
            page_va = page_align_down(cursor)
            offset = cursor - page_va
            chunk = min(remaining, PAGE_SIZE - offset)
            if task.mm.page_table.is_mapped(page_va):
                pa = task.mm.page_table.translate(cursor)
                self._touch_lines(pa, chunk, pid=task.pid)
                out += self.controller.memory.read(pa, chunk)
            else:
                if task.mm.vma_at(page_va) is None:
                    raise SegmentationFault(
                        f"pid {pid} read unmapped va {cursor:#x}",
                        address=cursor,
                        pid=pid,
                    )
                out += bytes(chunk)  # shared zero page
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def _require_running(self, task: Task) -> None:
        if task.state is not TaskState.RUNNING:
            raise ConfigError(f"pid {task.pid} is {task.state.value}, cannot run")

    # -- cache control and hammering -------------------------------------------------

    def sys_clflush(self, pid: int, va: int, length: int = 1) -> int:
        """Flush the cache lines covering [va, va+length); returns evictions."""
        task = self.task(pid)
        task.syscall_count += 1
        self.stats.syscalls += 1
        self._m_sys_clflush.inc()
        line = self.cache.config.line_size
        pa = self.resolve_pa(pid, va)
        first = (pa // line) * line
        last = ((pa + max(length, 1) - 1) // line) * line
        evicted = 0
        for line_pa in range(first, last + 1, line):
            if self.cache.flush(line_pa):
                evicted += 1
        return evicted

    def sys_hammer(
        self,
        pid: int,
        vas: list[int],
        rounds: int,
        flush: bool = True,
    ) -> HammerResult:
        """Run ``rounds`` of the access(+clflush) loop over ``vas``.

        This is the bulk equivalent of the user-space loop

            loop: mov (va_a); mov (va_b); clflush (va_a); clflush (va_b)

        Every address must already be resident (write to it first — the
        paper notes frames only exist once data is stored).  With
        ``flush=False`` the loop degenerates: after the first round all
        accesses hit the CPU cache and DRAM sees almost nothing, which is
        the negative control showing why clflush is essential.
        """
        task = self.task(pid)
        self._require_running(task)
        task.syscall_count += 1
        self.stats.syscalls += 1
        self._m_sys_hammer.inc()
        self._pump_chaos("hammer", pid)
        pas = []
        for va in vas:
            if not task.mm.page_table.is_mapped(page_align_down(va)):
                raise FaultError(
                    f"hammer target va {va:#x} not resident; store data to it first"
                )
            pas.append(task.mm.page_table.translate(va))
        if flush:
            for pa in pas:
                self.cache.flush(pa)
            start_epoch = self.controller.current_refresh_epoch()
            result = self.controller.hammer(pas, rounds)
            end_epoch = self.controller.current_refresh_epoch()
            # Attribute the burst's activations evenly over the refresh
            # windows it spanned, for the watchdog's per-window accounting.
            windows = max(1, end_epoch - start_epoch + 1)
            share = result.activations // windows
            for epoch in range(start_epoch, start_epoch + windows):
                self.ledger.record(epoch, pid, share)
            return result
        # No clflush: first access of each line misses, the rest hit.
        activations = 0
        for pa in pas:
            if not self.cache.access(pa):
                if self.controller.access(pa):
                    activations += 1
        cached_accesses = (rounds - 1) * len(pas)
        self.clock.advance(cached_accesses * CACHE_HIT_NS)
        return HammerResult(
            rounds=rounds,
            accesses=rounds * len(pas),
            activations=activations,
            elapsed_ns=cached_accesses * CACHE_HIT_NS,
            flips=[],
        )

    def sys_hammer_evict(
        self,
        pid: int,
        aggressor_vas: list[int],
        eviction_vas: list[list[int]],
        rounds: int,
        pattern: str = "sequential",
    ) -> EvictHammerResult:
        """Hammer without clflush: evict the aggressors by cache-set traversal.

        The Rowhammer.js loop — each round accesses every aggressor and then
        walks its eviction set (addresses congruent to the aggressor's cache
        set), so the *next* round's aggressor access misses the LRU cache and
        reaches DRAM.  ``eviction_vas[i]`` is the set for ``aggressor_vas[i]``;
        ``pattern`` orders one round's accesses:

        * ``"sequential"`` — ``a0, ev(a0)..., a1, ev(a1)...``;
        * ``"interleave"`` — both aggressors first, then their set members
          interleaved round-robin (the double-sided variant).

        The loop is simulated exactly for its first two rounds.  A fixed
        cyclic reference string through a deterministic LRU cache is periodic
        with period one after the cold round, so rounds 3..N repeat round 2's
        hit/miss pattern bit for bit; the remaining rounds replay round 2's
        missing lines through the controller's bulk hammer path (refresh
        clipping, TRR and flip evaluation all apply) — aggressor lines first
        at the flush-path activation rate, then the eviction-set lines whose
        activations are accounted as ``wasted_activations`` and whose cost is
        the traversal's simulated-time tail.  An undersized or incongruent
        set never evicts the aggressor: every steady-round access hits the
        cache, no activations accumulate, and ``eviction_accuracy`` reads 0.
        """
        task = self.task(pid)
        self._require_running(task)
        task.syscall_count += 1
        self.stats.syscalls += 1
        self._m_sys_hammer_evict.inc()
        if rounds <= 0:
            raise ConfigError(f"rounds must be positive, got {rounds}")
        if not aggressor_vas:
            raise ConfigError("hammer needs at least one aggressor address")
        if len(eviction_vas) != len(aggressor_vas):
            raise ConfigError(
                f"need one eviction set per aggressor: "
                f"{len(aggressor_vas)} aggressors, {len(eviction_vas)} sets"
            )
        if pattern not in ("sequential", "interleave"):
            raise ConfigError(
                f"unknown access pattern {pattern!r}; "
                f"choose 'sequential' or 'interleave'"
            )
        self._pump_chaos("hammer", pid)

        def _translate(va: int) -> int:
            if not task.mm.page_table.is_mapped(page_align_down(va)):
                raise FaultError(
                    f"hammer target va {va:#x} not resident; store data to it first"
                )
            return task.mm.page_table.translate(va)

        aggressor_pas = [_translate(va) for va in aggressor_vas]
        member_pas = [[_translate(va) for va in vas] for vas in eviction_vas]

        # One round's access order, each entry tagged aggressor/traversal.
        sequence: list[tuple[int, bool]] = []
        if pattern == "sequential":
            for pa, members in zip(aggressor_pas, member_pas):
                sequence.append((pa, True))
                sequence.extend((m, False) for m in members)
        else:
            sequence.extend((pa, True) for pa in aggressor_pas)
            for group in zip_longest(*member_pas):
                sequence.extend((m, False) for m in group if m is not None)

        start_ns = self.clock.now_ns
        aggressor_misses = traversal_misses = 0
        live_activations = live_wasted = 0
        steady_agg_misses: list[int] = []
        steady_trav_misses: list[int] = []
        steady_hits = 0
        evictions_before_steady = self.cache.evictions
        live_rounds = min(rounds, 2)
        for round_index in range(live_rounds):
            steady = round_index == 1
            if steady:
                evictions_before_steady = self.cache.evictions
            for pa, is_aggressor in sequence:
                if self.cache.access(pa):
                    self.clock.advance(CACHE_HIT_NS)
                    if steady:
                        steady_hits += 1
                    continue
                if is_aggressor:
                    aggressor_misses += 1
                    if steady:
                        steady_agg_misses.append(pa)
                else:
                    traversal_misses += 1
                    if steady:
                        steady_trav_misses.append(pa)
                if self.controller.access(pa):
                    live_activations += 1
                    if not is_aggressor:
                        live_wasted += 1
        self._account_activations(pid, live_activations)

        total_activations = live_activations
        wasted_activations = live_wasted
        flips: list = []
        remaining = rounds - live_rounds
        if remaining > 0:
            steady_evictions = self.cache.evictions - evictions_before_steady
            aggressor_misses += len(steady_agg_misses) * remaining
            traversal_misses += len(steady_trav_misses) * remaining
            # The cache state after each steady round equals the state after
            # round 2, so only the counters need extrapolating.
            self.cache.hits += steady_hits * remaining
            self.cache.misses += (
                len(steady_agg_misses) + len(steady_trav_misses)
            ) * remaining
            self.cache.evictions += steady_evictions * remaining
            self.clock.advance(steady_hits * remaining * CACHE_HIT_NS)
            for batch, is_aggressor in (
                (steady_agg_misses, True),
                (steady_trav_misses, False),
            ):
                if not batch:
                    continue
                start_epoch = self.controller.current_refresh_epoch()
                result = self.controller.hammer(batch, remaining)
                end_epoch = self.controller.current_refresh_epoch()
                windows = max(1, end_epoch - start_epoch + 1)
                share = result.activations // windows
                for epoch in range(start_epoch, start_epoch + windows):
                    self.ledger.record(epoch, pid, share)
                total_activations += result.activations
                flips.extend(result.flips)
                if not is_aggressor:
                    wasted_activations += result.activations

        n_aggressors = len(aggressor_pas)
        n_traversal = len(sequence) - n_aggressors
        return EvictHammerResult(
            rounds=rounds,
            accesses=rounds * len(sequence),
            activations=total_activations,
            elapsed_ns=self.clock.now_ns - start_ns,
            flips=flips,
            aggressor_accesses=rounds * n_aggressors,
            aggressor_misses=aggressor_misses,
            traversal_accesses=rounds * n_traversal,
            traversal_misses=traversal_misses,
            wasted_activations=wasted_activations,
        )

    # -- file reads (page cache) ----------------------------------------------------

    def sys_file_read(self, pid: int, file_id: int, offset: int, length: int) -> bytes:
        """Read a simulated file through the page cache.

        First access to each file page allocates a reclaimable frame;
        kswapd evicts such frames under memory pressure, and a later read
        transparently refetches the content.
        """
        task = self.task(pid)
        self._require_running(task)
        task.syscall_count += 1
        self.stats.syscalls += 1
        self._m_sys_file_read.inc()
        if self.page_cache is None:
            raise ConfigError("this kernel was built without a page cache")
        self._maybe_run_kswapd()
        misses_before = self.page_cache.misses
        data = self.page_cache.read(file_id, offset, length, cpu=task.cpu)
        # Each page fill reached DRAM once; attribute it to the reader.
        self._account_activations(pid, self.page_cache.misses - misses_before)
        return data

    # -- pagemap ----------------------------------------------------------------

    def pagemap(self, reader_pid: int, target_pid: int | None = None) -> Pagemap:
        """Open ``/proc/<target>/pagemap`` with the *reader's* capabilities."""
        reader = self.task(reader_pid)
        target = self.task(target_pid if target_pid is not None else reader_pid)
        return Pagemap(target.mm, reader.caps)

    # -- helpers used by experiments ---------------------------------------------

    def frame_owner(self, pfn: int) -> int | None:
        """Pid currently holding frame ``pfn`` (None if free/kernel)."""
        return self.allocator.zone_of_pfn(pfn).buddy.frames[pfn].owner_pid

    def churn(self, pid: int, pages: int, *, zone: ZoneType = ZoneType.NORMAL) -> None:
        """Background memory activity: map, touch and release ``pages`` pages.

        Models the unrelated processes whose allocations compete for the
        page frame cache in the noise experiments.
        """
        del zone  # placement currently always walks the default zonelist
        if pages <= 0:
            return
        va = self.sys_mmap(pid, pages * PAGE_SIZE, name="churn")
        for index in range(pages):
            self.mem_write(pid, va + index * PAGE_SIZE, b"\xaa")
        self.sys_munmap(pid, va, pages * PAGE_SIZE)

    def pfn_of(self, pid: int, va: int) -> int:
        """Ground-truth PFN for a resident page (experiment instrumentation).

        Unlike :meth:`pagemap`, this bypasses the capability gate — it
        exists so experiments can *score* attacks, never as part of one.
        """
        return self.resolve_pa(pid, va) >> PAGE_SHIFT
