"""Always-on metrics registry: counters, gauges, fixed-bucket histograms.

Design constraints, in order of importance:

1. *Cheap enough to leave on.*  A live counter increment is one attribute
   load plus one integer add.  Components bind their metric handles once
   (at ``bind_obs`` time) so hot paths never perform registry lookups.
2. *Free when off.*  A disabled registry hands out shared null singletons
   whose mutators are empty methods, so instrumented code needs no
   ``if enabled`` branches of its own.
3. *Zero hot-path cost for high-frequency substrate counters.*  Metrics
   that would require touching the per-access DRAM/cache paths are not
   incremented live at all; instead the registry supports *collector*
   callbacks that copy existing substrate counters into metric values at
   snapshot time.

Identity: a metric is addressed by its family name plus a sorted label
set, rendered ``name{k=v,...}``.  Re-requesting the same identity returns
the same instance; requesting it with a different kind raises
:class:`~repro.sim.errors.ConfigError`.

Campaign fan-out adds a fourth concern: *mergeability*.  Every attempt of
an :class:`~repro.attack.orchestrator.AttackCampaign` runs on a forked
machine with its own registry, so a campaign-level view needs the
per-attempt registries combined.  :meth:`MetricsRegistry.export_state`
dumps the raw (pre-cumulative) values and :func:`merge_metric_states`
folds any number of such dumps into one block — counters summed,
histograms added bucket-wise, gauges listed per source in order — with a
result that depends only on the dump order, never on which process or
worker produced each dump (see docs/CAMPAIGNS.md).
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.sim.errors import ConfigError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricStateAccumulator",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "merge_metric_states",
]


def metric_key(name: str, labels: dict[str, str] | None) -> str:
    """Canonical instance key: ``name`` or ``name{k=v,...}`` (sorted keys)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing integer (resets only with the machine)."""

    kind = "counter"
    __slots__ = ("key", "value")

    def __init__(self, key: str) -> None:
        self.key = key
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot_value(self):
        return self.value


class Gauge:
    """Point-in-time value, typically refreshed by a collector callback."""

    kind = "gauge"
    __slots__ = ("key", "value")

    def __init__(self, key: str) -> None:
        self.key = key
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def snapshot_value(self):
        return self.value


class Histogram:
    """Fixed-bucket histogram (upper bounds chosen at registration).

    ``observe`` costs one bisect over a small tuple plus two adds; bucket
    counts are kept per-bucket and rendered cumulatively at snapshot time
    with an implicit ``+Inf`` overflow bucket.
    """

    kind = "histogram"
    __slots__ = ("key", "buckets", "bucket_counts", "count", "sum")

    def __init__(self, key: str, buckets: tuple) -> None:
        self.key = key
        self.buckets = buckets
        self.bucket_counts = [0] * (len(buckets) + 1)
        self.count = 0
        self.sum = 0

    def observe(self, value) -> None:
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    def snapshot_value(self):
        cumulative: dict[str, int] = {}
        running = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            running += n
            cumulative[f"le_{bound}"] = running
        cumulative["le_inf"] = running + self.bucket_counts[-1]
        return {"count": self.count, "sum": self.sum, "buckets": cumulative}


class _NullCounter:
    kind = "counter"
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def __reduce__(self):
        # Pickle (and deepcopy) as the module singleton so shipped
        # machine snapshots keep sharing one stateless instrument.
        return "NULL_COUNTER"


class _NullGauge:
    kind = "gauge"
    __slots__ = ()

    def set(self, value) -> None:
        pass

    def __reduce__(self):
        return "NULL_GAUGE"


class _NullHistogram:
    kind = "histogram"
    __slots__ = ()

    def observe(self, value) -> None:
        pass

    def __reduce__(self):
        return "NULL_HISTOGRAM"


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


@dataclass
class MetricFamily:
    """Contract metadata for one metric name (shared across label sets)."""

    name: str
    kind: str
    unit: str
    help: str
    label_keys: tuple[str, ...] = ()
    buckets: tuple = ()
    instances: dict = field(default_factory=dict)


class MetricsRegistry:
    """Owns every metric family emitted by one :class:`Machine`."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.families: dict[str, MetricFamily] = {}
        self._collectors: list = []

    # -- registration -------------------------------------------------

    def _register(self, cls, name, labels, unit, help, buckets=()):
        labels = dict(labels) if labels else None
        family = self.families.get(name)
        if family is None:
            family = MetricFamily(
                name=name,
                kind=cls.kind,
                unit=unit,
                help=help,
                label_keys=tuple(sorted(labels)) if labels else (),
                buckets=buckets,
            )
            self.families[name] = family
        elif family.kind != cls.kind:
            raise ConfigError(
                f"metric {name!r} already registered as {family.kind}, "
                f"requested {cls.kind}"
            )
        key = metric_key(name, labels)
        metric = family.instances.get(key)
        if metric is None:
            if cls is Histogram:
                metric = Histogram(key, family.buckets)
            else:
                metric = cls(key)
            family.instances[key] = metric
        return metric

    def counter(self, name, labels=None, unit="", help=""):
        """Get-or-create a counter; a null singleton when disabled."""
        if not self.enabled:
            return NULL_COUNTER
        return self._register(Counter, name, labels, unit, help)

    def gauge(self, name, labels=None, unit="", help=""):
        """Get-or-create a gauge; a null singleton when disabled."""
        if not self.enabled:
            return NULL_GAUGE
        return self._register(Gauge, name, labels, unit, help)

    def histogram(self, name, buckets, labels=None, unit="", help=""):
        """Get-or-create a histogram; a null singleton when disabled."""
        if not self.enabled:
            return NULL_HISTOGRAM
        if not buckets or list(buckets) != sorted(buckets):
            raise ConfigError(f"histogram {name!r} buckets must be ascending")
        return self._register(
            Histogram, name, labels, unit, help, buckets=tuple(buckets)
        )

    def add_collector(self, fn) -> None:
        """Register a callback run before every snapshot.

        Collectors copy pre-existing substrate counters (bank activation
        totals, cache hit counts, ...) into gauges so the simulation's
        hottest paths carry no live instrumentation at all.
        """
        if self.enabled:
            self._collectors.append(fn)

    # -- reading ------------------------------------------------------

    def collect(self) -> None:
        for fn in self._collectors:
            fn()

    def family_names(self) -> list[str]:
        """Sorted metric family names (the documented contract surface)."""
        return sorted(self.families)

    def snapshot(self) -> dict:
        """Run collectors, then return ``{instance key: value}`` sorted."""
        self.collect()
        out: dict = {}
        for name in sorted(self.families):
            family = self.families[name]
            for key in sorted(family.instances):
                out[key] = family.instances[key].snapshot_value()
        return out

    def export_state(self) -> dict:
        """Raw, mergeable dump of every family (see :func:`merge_metric_states`).

        Unlike :meth:`snapshot`, histogram buckets come out *per-bucket*
        (not cumulative) so two dumps can be added bucket-wise.  The dump
        is plain data — safe to pickle across process boundaries.
        """
        self.collect()
        out: dict = {}
        for name in sorted(self.families):
            family = self.families[name]
            instances: dict = {}
            for key in sorted(family.instances):
                metric = family.instances[key]
                if family.kind == "histogram":
                    instances[key] = {
                        "bucket_counts": list(metric.bucket_counts),
                        "count": metric.count,
                        "sum": metric.sum,
                    }
                else:
                    instances[key] = metric.value
            out[name] = {
                "kind": family.kind,
                "unit": family.unit,
                "help": family.help,
                "buckets": list(family.buckets),
                "instances": instances,
            }
        return out

    def render_table(self) -> str:
        """Human-readable dump of every instance (used by ``--metrics``)."""
        self.collect()
        rows = []
        for name in sorted(self.families):
            family = self.families[name]
            for key in sorted(family.instances):
                value = family.instances[key].snapshot_value()
                if family.kind == "histogram":
                    value = f"count={value['count']} sum={value['sum']}"
                rows.append((key, family.kind, str(value), family.unit))
        if not rows:
            return "(metrics disabled)"
        widths = [
            max(len(row[col]) for row in rows + [_HEADER]) for col in range(4)
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(_HEADER, widths)).rstrip(),
            "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append(
                "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
            )
        return "\n".join(lines)


_HEADER = ("metric", "kind", "value", "unit")


def _render_histogram(buckets: Sequence, bucket_counts: Sequence, count, total):
    cumulative: dict[str, int] = {}
    running = 0
    for bound, n in zip(buckets, bucket_counts):
        running += n
        cumulative[f"le_{bound}"] = running
    cumulative["le_inf"] = running + bucket_counts[-1]
    return {"count": count, "sum": total, "buckets": cumulative}


class MetricStateAccumulator:
    """Streaming fold over :meth:`MetricsRegistry.export_state` dumps.

    :func:`merge_metric_states` needs every state in memory at once; a
    streaming campaign service that journals and releases each attempt
    cannot afford that.  The accumulator ingests one dump at a time
    (:meth:`add`, in attempt order) and renders the identical merged
    block on :meth:`result` — ``merge_metric_states(states)`` is defined
    as ``add`` in a loop, so the two can never drift apart.
    """

    def __init__(self) -> None:
        self._families: dict[str, dict] = {}
        self._count = 0

    def add(self, state: dict) -> None:
        """Fold one exported state into the accumulator (order matters)."""
        index = self._count
        families = self._families
        for name, dump in state.items():
            merged = families.get(name)
            if merged is None:
                merged = {
                    "kind": dump["kind"],
                    "unit": dump["unit"],
                    "buckets": list(dump["buckets"]),
                    "instances": {},
                }
                families[name] = merged
            elif merged["kind"] != dump["kind"]:
                raise ConfigError(
                    f"metric {name!r} is {merged['kind']} in one state and "
                    f"{dump['kind']} in another; cannot merge"
                )
            elif (
                merged["kind"] == "histogram"
                and merged["buckets"] != list(dump["buckets"])
            ):
                raise ConfigError(
                    f"histogram {name!r} bucket bounds differ across states; "
                    "cannot merge bucket-wise"
                )
            for key, raw in dump["instances"].items():
                instances = merged["instances"]
                if merged["kind"] == "counter":
                    instances[key] = instances.get(key, 0) + raw
                elif merged["kind"] == "gauge":
                    values = instances.setdefault(key, [None] * index)
                    values.extend([None] * (index - len(values)))
                    values.append(raw)
                else:
                    slot = instances.get(key)
                    if slot is None:
                        slot = {
                            "bucket_counts": [0] * len(raw["bucket_counts"]),
                            "count": 0,
                            "sum": 0,
                        }
                        instances[key] = slot
                    for i, n in enumerate(raw["bucket_counts"]):
                        slot["bucket_counts"][i] += n
                    slot["count"] += raw["count"]
                    slot["sum"] += raw["sum"]
        self._count += 1

    def result(self) -> dict:
        """Render the merged block (callable once all states are added)."""
        out: dict = {"sources": self._count, "families": {}}
        for name in sorted(self._families):
            merged = self._families[name]
            instances: dict = {}
            for key in sorted(merged["instances"]):
                raw = merged["instances"][key]
                if merged["kind"] == "gauge":
                    raw = raw + [None] * (self._count - len(raw))
                elif merged["kind"] == "histogram":
                    raw = _render_histogram(
                        merged["buckets"], raw["bucket_counts"],
                        raw["count"], raw["sum"],
                    )
                instances[key] = raw
            out["families"][name] = {
                "kind": merged["kind"],
                "unit": merged["unit"],
                "instances": instances,
            }
        return out


def merge_metric_states(states: Sequence[dict]) -> dict:
    """Fold :meth:`MetricsRegistry.export_state` dumps into one block.

    ``states`` is ordered (campaign attempt order); the result depends
    only on that order, never on which worker produced each dump:

    - counters: summed across every state where the instance appears;
    - histograms: bucket counts added bucket-wise (bucket bounds must
      agree across states), rendered cumulatively like a live snapshot;
    - gauges: one value per source state, in order, ``None`` where the
      instance is absent — a point-in-time value has no meaningful sum.

    Equivalent to one :class:`MetricStateAccumulator` pass; use the
    accumulator directly when the states arrive as a stream.
    """
    accumulator = MetricStateAccumulator()
    for state in states:
        accumulator.add(state)
    return accumulator.result()
