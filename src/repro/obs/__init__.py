"""Observability: sim-time tracing and always-on metrics.

One :class:`Observability` hub per :class:`~repro.core.machine.Machine`
bundles a :class:`MetricsRegistry` (always on unless the machine config
disables it) and a :class:`Tracer` (off until explicitly enabled, e.g. by
the CLI ``--trace`` flag).  Components receive the hub through a
``bind_obs()`` call after construction and default to the module-level
:data:`NOOP_OBS`, so direct construction in unit tests needs no wiring.

The full telemetry contract — every span name, metric name, label and
unit — is documented in ``docs/OBSERVABILITY.md`` and cross-checked
against the live registry by ``scripts/check_telemetry_docs.py``.
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)
from repro.obs.trace import NULL_SPAN, Span, TraceRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_OBS",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_SPAN",
    "Observability",
    "Span",
    "TraceRecord",
    "Tracer",
]


class Observability:
    """Per-machine hub pairing a metrics registry with a tracer."""

    def __init__(self, clock=None, metrics_enabled=True, trace_enabled=False,
                 wall_time=False):
        self.metrics = MetricsRegistry(enabled=metrics_enabled)
        self.tracer = Tracer(clock, enabled=trace_enabled, wall_time=wall_time)


class _NoopObservability(Observability):
    """The shared disabled hub; pickles back to the module singleton.

    Machine snapshots replace the live hub with :data:`NOOP_OBS` during
    the copy, so a snapshot shipped to a worker process must rehydrate
    to *that worker's* singleton — forking then swaps in a fresh hub via
    ``Machine._rebind_obs`` exactly as it does in-process.
    """

    def __reduce__(self):
        return "NOOP_OBS"


#: Shared disabled hub — the default every component is born bound to.
NOOP_OBS = _NoopObservability(metrics_enabled=False)
