"""Sim-time tracer: nested spans and instant events, Chrome-trace export.

Spans are stamped from the machine's :class:`~repro.sim.clock.SimClock`,
never from the host clock, so two runs with the same seed produce
byte-identical traces (satellite determinism guarantee).  Wall-clock
durations can be *added* as span annotations (``wall_time=True``) for
host-side profiling; they are opt-in precisely because they break that
guarantee.

Two export formats:

* ``chrome`` — the Chrome trace-event JSON object (load via
  ``chrome://tracing`` or https://ui.perfetto.dev).  Spans become ``"X"``
  complete events, instants become ``"i"`` events; timestamps are the sim
  nanoseconds divided by 1000 (the format counts microseconds).
* ``jsonl`` — one JSON object per line, a meta line first; trivially
  greppable and diffable.

The disabled tracer (the default) returns a shared null span from
``span()`` and returns immediately from ``instant()``; instrumented code
never branches on enablement itself.
"""

from __future__ import annotations

import json
import time

from repro.sim.errors import ConfigError

__all__ = ["NULL_SPAN", "Span", "TraceRecord", "Tracer"]

_NS_PER_US = 1000.0


class TraceRecord:
    """One span or instant, in sim time."""

    __slots__ = ("kind", "name", "cat", "start_ns", "end_ns", "depth", "args")

    def __init__(self, kind, name, cat, start_ns, depth, args):
        self.kind = kind  # "span" | "instant"
        self.name = name
        self.cat = cat
        self.start_ns = start_ns
        self.end_ns = start_ns if kind == "instant" else None
        self.depth = depth
        self.args = args


class Span:
    """Context manager for one live span; ``set()`` adds annotations."""

    __slots__ = ("_tracer", "_record", "_wall_start")

    def __init__(self, tracer, record, wall_start):
        self._tracer = tracer
        self._record = record
        self._wall_start = wall_start

    def set(self, key, value) -> None:
        self._record.args[key] = value

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        record = self._record
        record.end_ns = self._tracer._now()
        if self._wall_start is not None:
            record.args["wall_dur_ns"] = time.perf_counter_ns() - self._wall_start
        if exc_type is not None:
            record.args["error"] = exc_type.__name__
        stack = self._tracer._stack
        if stack and stack[-1] is record:
            stack.pop()


class _NullSpan:
    __slots__ = ()

    def set(self, key, value) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects :class:`TraceRecord` entries stamped from the sim clock."""

    def __init__(self, clock=None, enabled=False, wall_time=False):
        self.clock = clock
        self.enabled = enabled
        self.wall_time = wall_time
        self.records: list[TraceRecord] = []
        self._stack: list[TraceRecord] = []

    def enable(self, wall_time: bool | None = None) -> None:
        if self.clock is None:
            raise ConfigError("tracer has no clock; cannot enable")
        self.enabled = True
        if wall_time is not None:
            self.wall_time = wall_time

    def disable(self) -> None:
        self.enabled = False

    def _now(self) -> int:
        return self.clock.now_ns

    # -- emission -----------------------------------------------------

    def span(self, name, cat, **args):
        """Open a nested span; use as a context manager."""
        if not self.enabled:
            return NULL_SPAN
        record = TraceRecord("span", name, cat, self._now(), len(self._stack), args)
        self.records.append(record)
        self._stack.append(record)
        wall_start = time.perf_counter_ns() if self.wall_time else None
        return Span(self, record, wall_start)

    def instant(self, name, cat, **args) -> None:
        """Record a point event at the current sim time."""
        if not self.enabled:
            return
        self.records.append(
            TraceRecord("instant", name, cat, self._now(), len(self._stack), args)
        )

    def complete(self, name, cat, start_ns, end_ns, **args) -> None:
        """Record an already-finished span retroactively.

        Used where begin/end times are only known after the fact (e.g. the
        orchestrator's per-attempt timeline, which is assembled post hoc).
        """
        if not self.enabled:
            return
        record = TraceRecord("span", name, cat, start_ns, len(self._stack), args)
        record.end_ns = end_ns
        self.records.append(record)

    # -- reading ------------------------------------------------------

    def categories(self) -> set[str]:
        return {record.cat for record in self.records}

    def span_tuples(self) -> list[tuple]:
        """Deterministic digest of the span tree for equality tests.

        ``(kind, name, cat, depth, start_ns, end_ns)`` in emission order;
        wall-time annotations are deliberately excluded.
        """
        return [
            (r.kind, r.name, r.cat, r.depth, r.start_ns, self._end_ns(r))
            for r in self.records
        ]

    def _end_ns(self, record: TraceRecord) -> int:
        # A still-open span (trace exported mid-run) ends "now".
        if record.end_ns is None:
            return self._now()
        return record.end_ns

    # -- export -------------------------------------------------------

    def to_chrome(self, producer: str = "repro") -> dict:
        events = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "repro simulated machine"},
            }
        ]
        for record in self.records:
            base = {
                "name": record.name,
                "cat": record.cat,
                "pid": 0,
                "tid": 0,
                "ts": record.start_ns / _NS_PER_US,
                "args": _clean_args(record.args),
            }
            if record.kind == "span":
                dur_ns = self._end_ns(record) - record.start_ns
                base["ph"] = "X"
                base["dur"] = dur_ns / _NS_PER_US
            else:
                base["ph"] = "i"
                base["s"] = "t"
            events.append(base)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": producer, "clockDomain": "simulated-ns"},
        }

    def to_jsonl(self, producer: str = "repro") -> list[str]:
        lines = [
            json.dumps(
                {"type": "meta", "producer": producer, "clockDomain": "simulated-ns"},
                sort_keys=True,
            )
        ]
        for record in self.records:
            lines.append(
                json.dumps(
                    {
                        "type": record.kind,
                        "name": record.name,
                        "cat": record.cat,
                        "start_ns": record.start_ns,
                        "end_ns": self._end_ns(record),
                        "depth": record.depth,
                        "args": _clean_args(record.args),
                    },
                    sort_keys=True,
                )
            )
        return lines

    def write(self, path, fmt: str = "chrome", producer: str = "repro") -> None:
        """Serialise the trace to ``path`` in ``chrome`` or ``jsonl`` form."""
        if fmt == "chrome":
            text = json.dumps(self.to_chrome(producer), sort_keys=True)
        elif fmt == "jsonl":
            text = "\n".join(self.to_jsonl(producer)) + "\n"
        else:
            raise ConfigError(f"unknown trace format {fmt!r}")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)


def _clean_args(args: dict) -> dict:
    """JSON-safe copy of span args (bytes and odd types become repr)."""
    out = {}
    for key, value in args.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out
