"""Memory controller: routes accesses, counts activations, applies flips.

The controller is the single entry point for DRAM traffic.  It

* resolves physical addresses through the configured
  :class:`~repro.dram.mapping.AddressMapping`;
* drives the per-bank row-buffer state machines (so row hits cost
  ``t_cas_ns`` and cause no disturbance, while row conflicts cost
  ``t_rc_ns`` and count as activations);
* rolls the refresh window: whenever simulated time crosses a ``t_refw_ns``
  boundary, every bank's activation counters reset — disturbance cannot
  accumulate across windows;
* evaluates the weak-cell model after activations and applies resulting bit
  flips directly to :class:`~repro.dram.memory.PhysicalMemory`, logging a
  :class:`FlipEvent` for each.

Besides the single-access path there is a **hammer fast path**
(:meth:`MemoryController.hammer`) that applies ``rounds`` iterations of an
alternating flush+access loop in O(banks) instead of O(rounds) Python work.
It preserves the two properties that make hammering subtle: aggressor pairs
must share a bank to force activations, and activation counts are clipped
to what fits in each refresh window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.bank import Bank
from repro.dram.ecc import EccConfig, EccState
from repro.dram.flipmodel import FlipModelConfig, WeakCellMap
from repro.dram.trr import TrrConfig, TrrState
from repro.dram.geometry import DRAMGeometry
from repro.dram.mapping import AddressMapping
from repro.dram.memory import PhysicalMemory
from repro.dram.timing import DRAMTiming
from repro.obs import NOOP_OBS
from repro.sim.clock import SimClock
from repro.sim.errors import ConfigError
from repro.sim.rng import RngStreams
from repro.sim.units import PAGE_SHIFT


@dataclass(frozen=True)
class FlipEvent:
    """One disturbance-induced bit flip, as observed at the controller."""

    time_ns: int
    phys_addr: int
    bit_in_byte: int
    direction_1_to_0: bool
    bank_key: tuple[int, int, int]
    row: int

    @property
    def pfn(self) -> int:
        """Page frame number containing the flipped bit."""
        return self.phys_addr >> PAGE_SHIFT

    @property
    def page_offset(self) -> int:
        """Byte offset of the flipped bit inside its 4 KiB page."""
        return self.phys_addr & ((1 << PAGE_SHIFT) - 1)

    def __str__(self) -> str:
        arrow = "1->0" if self.direction_1_to_0 else "0->1"
        return (
            f"FlipEvent(pa={self.phys_addr:#x} bit={self.bit_in_byte} {arrow} "
            f"bank={self.bank_key} row={self.row:#x} t={self.time_ns}ns)"
        )


@dataclass
class HammerResult:
    """Outcome of one hammer call."""

    rounds: int
    accesses: int
    activations: int
    elapsed_ns: int
    flips: list[FlipEvent] = field(default_factory=list)

    @property
    def ns_per_round(self) -> float:
        """Average simulated time per hammer round."""
        return self.elapsed_ns / self.rounds if self.rounds else 0.0


class MemoryController:
    """Single point of DRAM access for the whole simulated machine."""

    def __init__(
        self,
        geometry: DRAMGeometry,
        mapping: AddressMapping,
        timing: DRAMTiming,
        flip_config: FlipModelConfig,
        rng: RngStreams,
        clock: SimClock,
        trr_config: TrrConfig | None = None,
        ecc_config: EccConfig | None = None,
        events=None,
    ):
        if mapping.geometry is not geometry:
            raise ConfigError("mapping was built for a different geometry")
        self.geometry = geometry
        self.mapping = mapping
        self.timing = timing
        self.trr_config = trr_config or TrrConfig.disabled()
        self.ecc_config = ecc_config or EccConfig.disabled()
        self.clock = clock
        self.memory = PhysicalMemory(geometry.total_bytes)
        self.ecc: EccState | None = None
        if self.ecc_config.enabled:
            self.ecc = EccState(self.ecc_config)
            self.memory.write_hook = self.ecc.clear_range
        self.weak_cells = WeakCellMap(geometry, flip_config, rng)
        # Chaos-injection hooks (repro.sim.chaos): ``threshold_scale``
        # multiplies every weak cell's flip threshold (environmental drift —
        # >1 hardens the module, <1 softens it) and ``refresh_scale``
        # stretches or shrinks the effective refresh window.  Both stay 1.0
        # unless a ChaosEngine is driving them, preserving the baseline
        # behaviour bit-for-bit.
        self.threshold_scale = 1.0
        self._refresh_scale = 1.0
        self._banks: dict[tuple[int, int, int], Bank] = {}
        self._refresh_epoch = 0
        self.flip_log: list[FlipEvent] = []
        self.refresh_count = 0
        # Victim rows checked per flip evaluation: +-1 always, +-2 when the
        # distance-2 coupling is non-zero.
        self._max_coupling_distance = 2 if flip_config.coupling_distance2 > 0 else 1
        # Event-driven refresh: a self-rescheduling tick on the "dram"
        # scheduler queue replaces the inline epoch check.  ``events=None``
        # (a bare controller outside a Machine) falls back to the inline
        # check at access boundaries; both roll windows at the same instants.
        self._events = events
        self._refresh_handle = None
        if events is not None:
            self._schedule_refresh_tick()
        self.bind_obs(NOOP_OBS)

    def bind_obs(self, obs) -> None:
        """Attach an observability hub (see docs/OBSERVABILITY.md).

        Live instrumentation only touches moderate-rate paths (hammer
        calls, refresh rollovers, flip events); per-access totals are
        sourced from the existing bank counters by a snapshot-time
        collector so :meth:`access` stays uninstrumented.
        """
        self.obs = obs
        metrics = obs.metrics
        self._m_refresh = metrics.counter(
            "dram.refresh.windows", unit="windows",
            help="refresh-window rollovers (bank activation counters reset)",
        )
        self._m_flips = metrics.counter(
            "dram.flips", unit="flips", help="disturbance bit flips applied"
        )
        self._m_hammer_calls = metrics.counter(
            "dram.hammer.calls", unit="calls", help="hammer fast-path invocations"
        )
        self._m_hammer_rounds = metrics.counter(
            "dram.hammer.rounds", unit="rounds", help="hammer rounds executed"
        )
        self._m_hammer_acts = metrics.histogram(
            "dram.hammer.activations_per_call",
            buckets=(0, 100, 1_000, 10_000, 100_000, 1_000_000),
            unit="activations", help="activation count of each hammer call",
        )
        acts = metrics.gauge(
            "dram.activations", unit="activations",
            help="lifetime row activations across banks",
        )
        hits = metrics.gauge(
            "dram.row_buffer.hits", unit="accesses",
            help="accesses served from an open row",
        )
        banks = metrics.gauge(
            "dram.banks_touched", unit="banks", help="banks with live state"
        )
        trr_refreshes = metrics.gauge(
            "dram.trr.neighbor_refreshes", unit="rows",
            help="TRR victim-row refreshes",
        )
        trr_misses = metrics.gauge(
            "dram.trr.tracker_misses", unit="events",
            help="aggressors evicted from the TRR tracker unsampled",
        )
        ecc_corrected = metrics.gauge(
            "dram.ecc.corrected_bits", unit="bits", help="bits ECC corrected away"
        )
        ecc_uncorrectable = metrics.gauge(
            "dram.ecc.uncorrectable_events", unit="events",
            help="multi-bit words ECC let through",
        )
        cow_materialized = metrics.gauge(
            "dram.memory.cow.materialized_frames", unit="frames",
            help="frames with backing storage in this machine's store",
        )
        cow_shared = metrics.gauge(
            "dram.memory.cow.shared_frames", unit="frames",
            help="materialised frames whose payload is shared with a snapshot or fork",
        )
        cow_copied = metrics.gauge(
            "dram.memory.cow.copied_frames", unit="frames",
            help="frames privatised by a copy-on-write fault",
        )
        cow_shares = metrics.gauge(
            "dram.memory.cow.shares", unit="events",
            help="times this store's frame table was shared out (snapshot/fork)",
        )

        def _collect() -> None:
            stats = self.stats()
            acts.set(stats["activations"])
            hits.set(stats["row_hits"])
            banks.set(stats["banks_touched"])
            trr = self.trr_stats()
            trr_refreshes.set(trr["neighbor_refreshes"])
            trr_misses.set(trr["tracker_misses"])
            ecc = self.ecc_stats()
            ecc_corrected.set(ecc["corrected_bits"])
            ecc_uncorrectable.set(ecc["uncorrectable_events"])
            memory = self.memory
            cow_materialized.set(memory.materialized_frames())
            cow_shared.set(memory.shared_frames())
            cow_copied.set(memory.cow_copies)
            cow_shares.set(memory.cow_shares)

        metrics.add_collector(_collect)

    # -- bank/refresh plumbing ---------------------------------------------

    def bank(self, key: tuple[int, int, int]) -> Bank:
        """The (lazily created) bank state for a (channel, rank, bank) key."""
        state = self._banks.get(key)
        if state is None:
            self.geometry.validate_bank(*key)
            trr = TrrState(self.trr_config) if self.trr_config.enabled else None
            state = Bank(self.geometry.rows_per_bank, trr=trr)
            self._banks[key] = state
        return state

    def ecc_stats(self) -> dict[str, int]:
        """ECC correction counters (zeros when ECC is disabled)."""
        if self.ecc is None:
            return {"corrected_bits": 0, "uncorrectable_events": 0, "pending_words": 0}
        return {
            "corrected_bits": self.ecc.corrected_bits,
            "uncorrectable_events": self.ecc.uncorrectable_events,
            "pending_words": self.ecc.pending_words(),
        }

    def trr_stats(self) -> dict[str, int]:
        """Aggregate TRR sampler activity across banks (zeros if disabled)."""
        refreshes = 0
        misses = 0
        for bank in self._banks.values():
            if bank.trr is not None:
                refreshes += bank.trr.neighbor_refreshes
                misses += bank.trr.tracker_misses
        return {"neighbor_refreshes": refreshes, "tracker_misses": misses}

    @property
    def refresh_scale(self) -> float:
        """Chaos-injected stretch/shrink factor on the refresh window."""
        return self._refresh_scale

    @refresh_scale.setter
    def refresh_scale(self, value: float) -> None:
        if value == self._refresh_scale:
            return
        self._refresh_scale = value
        if self._events is not None:
            # The pending tick was aimed at the old window boundary.
            # Re-aim: if the epoch index already differs under the new
            # window length, fire at the next pump (due = now) — exactly
            # when the polled epoch check would notice.
            if self._refresh_handle is not None:
                self._events.cancel(self._refresh_handle)
            self._schedule_refresh_tick()

    def effective_refw_ns(self) -> int:
        """The refresh window length after any chaos-injected jitter."""
        if self._refresh_scale == 1.0:
            return self.timing.t_refw_ns
        return max(1, int(self.timing.t_refw_ns * self._refresh_scale))

    def _schedule_refresh_tick(self) -> None:
        refw = self.effective_refw_ns()
        now = self.clock.now_ns
        if now // refw != self._refresh_epoch:
            due = now
        else:
            due = (now // refw + 1) * refw
        self._refresh_handle = self._events.schedule(
            "dram.refresh.tick", due, self._on_refresh_tick, queue="dram"
        )

    def _on_refresh_tick(self, now_ns: int) -> None:
        del now_ns
        self._refresh_handle = None
        self._refresh_check()
        self._schedule_refresh_tick()

    def _pump_timed(self) -> None:
        """Advance timed behaviour at an access boundary.

        With an event scheduler attached this drains the "dram" queue (the
        refresh tick lives there); a bare controller runs the inline epoch
        check.  Both roll the window at the same instants, so the
        simulation is identical.
        """
        if self._events is not None:
            self._events.dispatch_due("dram")
        else:
            self._refresh_check()

    def _refresh_check(self) -> None:
        epoch = self.clock.now_ns // self.effective_refw_ns()
        if epoch != self._refresh_epoch:
            for bank in self._banks.values():
                bank.refresh()
            self._refresh_epoch = epoch
            self.refresh_count += 1
            self._m_refresh.inc()
            self.obs.tracer.instant("dram.refresh", "dram", epoch=epoch)

    def current_refresh_epoch(self) -> int:
        """Index of the refresh window containing the current time."""
        return self.clock.now_ns // self.effective_refw_ns()

    # -- disturbance evaluation ------------------------------------------------

    def _coupling(self, distance: int) -> float:
        if distance == 1:
            return self.weak_cells.config.coupling_adjacent
        if distance == 2:
            return self.weak_cells.config.coupling_distance2
        return 0.0

    def _disturbance_on(self, bank: Bank, victim_row: int) -> float:
        """Effective aggressor activations felt by ``victim_row`` this window."""
        total = 0.0
        for distance in range(1, self._max_coupling_distance + 1):
            factor = self._coupling(distance)
            if factor <= 0.0:
                continue
            for row in (victim_row - distance, victim_row + distance):
                if 0 <= row < self.geometry.rows_per_bank:
                    total += factor * bank.activations_in_window(row)
        return total

    # Rows with at most this many weak cells are evaluated with the scalar
    # per-cell loop: numpy's fixed per-call overhead (~tens of µs) beats the
    # Python loop only once a row holds a few dozen cells.
    _VECTOR_MIN_CELLS = 16

    def _evaluate_victim_row(self, key: tuple[int, int, int], victim_row: int) -> list[FlipEvent]:
        """Flip every armed weak cell in ``victim_row`` whose threshold is met.

        Dense rows run the threshold test as one vector compare over the
        row's columnar weak-cell population; sparse rows (the common case)
        keep a scalar loop.  ``row_base + byte_offset`` stands in for a
        per-cell ``to_phys``: the column field occupies the low
        physical-address bits in every mapping, so adding the byte offset to
        the row base is exact.
        """
        bank = self.bank(key)
        flat = self.geometry.flat_bank_index(*key)
        population = self.weak_cells.row_population(flat, victim_row)
        if population is None:
            return []
        disturbance = self._disturbance_on(bank, victim_row)
        if disturbance <= 0.0:
            return []
        if population.min_threshold * self.threshold_scale > disturbance:
            return []
        channel, rank, bank_index = key
        row_base = self.mapping.row_base_phys(channel, rank, bank_index, victim_row)
        if self.ecc is None and len(population) <= self._VECTOR_MIN_CELLS:
            cells = self.weak_cells.cells_in_row(flat, victim_row)
            return self._apply_flips_scalar(key, victim_row, row_base, cells, disturbance)
        armed = population.threshold * self.threshold_scale <= disturbance
        if not armed.any():
            return []
        if self.ecc is not None:
            return self._apply_flips_ecc(key, victim_row, row_base, population, armed)
        # Data-pattern dependence: a cell only flips while it holds its
        # charged value; once flipped it stays flipped until rewritten.
        # Without ECC each flip touches only its own (unique) bit, so the
        # pattern check can be gathered up front in one vector read.
        addrs = row_base + population.byte_offset[armed]
        bits = population.bit_in_byte[armed]
        current = self.memory.gather_bits(addrs, bits)
        hit = current == population.charged[armed]
        if not hit.any():
            return []
        flips: list[FlipEvent] = []
        now = self.clock.now_ns
        for flip_addr, flip_bit, old in zip(
            addrs[hit].tolist(), bits[hit].tolist(), current[hit].tolist()
        ):
            self.memory.apply_disturbance_flip(flip_addr, flip_bit, old ^ 1)
            event = FlipEvent(
                time_ns=now,
                phys_addr=flip_addr,
                bit_in_byte=flip_bit,
                direction_1_to_0=bool(old),
                bank_key=key,
                row=victim_row,
            )
            self.flip_log.append(event)
            flips.append(event)
            self._m_flips.inc()
            self.obs.tracer.instant(
                "dram.flip", "dram",
                phys_addr=flip_addr, bit=flip_bit, row=victim_row,
            )
        return flips

    def _apply_flips_scalar(
        self,
        key: tuple[int, int, int],
        victim_row: int,
        row_base: int,
        cells,
        disturbance: float,
    ) -> list[FlipEvent]:
        """Per-cell evaluation for sparse rows (no ECC)."""
        flips: list[FlipEvent] = []
        memory = self.memory
        scale = self.threshold_scale
        for cell in cells:
            if cell.threshold * scale > disturbance:
                continue
            addr = row_base + cell.byte_offset
            bit = cell.bit_in_byte
            old = memory.get_bit(addr, bit)
            if old != cell.charged_value:
                continue
            memory.apply_disturbance_flip(addr, bit, old ^ 1)
            event = FlipEvent(
                time_ns=self.clock.now_ns,
                phys_addr=addr,
                bit_in_byte=bit,
                direction_1_to_0=bool(old),
                bank_key=key,
                row=victim_row,
            )
            self.flip_log.append(event)
            flips.append(event)
            self._m_flips.inc()
            self.obs.tracer.instant(
                "dram.flip", "dram",
                phys_addr=addr, bit=bit, row=victim_row,
            )
        return flips

    def _apply_flips_ecc(
        self,
        key: tuple[int, int, int],
        victim_row: int,
        row_base: int,
        population,
        armed,
    ) -> list[FlipEvent]:
        """Scalar application path for ECC modules.

        SECDED: a lone flipped bit per word is corrected away; only a second
        bit in the same word makes the corruption visible (and then the whole
        word's pending bits land).  Because applying one cell's pending word
        can rewrite bytes that later cells in the same row read, the
        data-pattern check must stay interleaved with application — only the
        threshold filter is vectorised.
        """
        flips: list[FlipEvent] = []
        for byte_off, bit_in_byte, charged_value in zip(
            population.byte_offset[armed].tolist(),
            population.bit_in_byte[armed].tolist(),
            population.charged[armed].tolist(),
        ):
            addr = row_base + byte_off
            if self.memory.get_bit(addr, bit_in_byte) != charged_value:
                continue
            to_apply = self.ecc.register_flip(addr, bit_in_byte)
            for flip_addr, flip_bit in to_apply:
                old = self.memory.get_bit(flip_addr, flip_bit)
                self.memory.apply_disturbance_flip(flip_addr, flip_bit, old ^ 1)
                event = FlipEvent(
                    time_ns=self.clock.now_ns,
                    phys_addr=flip_addr,
                    bit_in_byte=flip_bit,
                    direction_1_to_0=bool(old),
                    bank_key=key,
                    row=victim_row,
                )
                self.flip_log.append(event)
                flips.append(event)
                self._m_flips.inc()
                self.obs.tracer.instant(
                    "dram.flip", "dram",
                    phys_addr=flip_addr, bit=flip_bit, row=victim_row,
                )
        return flips

    def _evaluate_around(self, key: tuple[int, int, int], aggressor_rows: set[int]) -> list[FlipEvent]:
        """Evaluate every victim row within coupling distance of the aggressors."""
        victims: set[int] = set()
        for row in aggressor_rows:
            for distance in range(1, self._max_coupling_distance + 1):
                for victim in (row - distance, row + distance):
                    if 0 <= victim < self.geometry.rows_per_bank:
                        victims.add(victim)
        flips: list[FlipEvent] = []
        for victim in sorted(victims):
            flips.extend(self._evaluate_victim_row(key, victim))
        return flips

    # -- access paths ------------------------------------------------------------

    def access(self, phys: int, write: bool = False) -> bool:
        """One uncached DRAM access; returns True if it activated a row.

        ``write`` is accepted for interface symmetry — reads and writes have
        the same activation behaviour in this model.
        """
        del write
        self._pump_timed()
        addr = self.mapping.to_dram(phys)
        key = addr.bank_key()
        bank = self.bank(key)
        activated = bank.access(addr.row)
        if activated:
            self.clock.advance(self.timing.t_rc_ns)
            self._evaluate_around(key, {addr.row})
        else:
            self.clock.advance(self.timing.t_cas_ns)
        return activated

    def hammer(self, phys_addrs: list[int], rounds: int) -> HammerResult:
        """Apply ``rounds`` iterations of a flush+access loop over the addresses.

        Semantics match a loop of ``access()`` calls with every address
        flushed from cache between rounds.  Addresses that are alone in
        their bank stay in the row buffer, so only banks holding **two or
        more distinct rows** accumulate activations — the caller learns this
        through the ``activations`` count of the result.

        Activation counting is clipped per refresh window: if the loop's
        simulated duration spans a window boundary, the counters reset at
        the boundary exactly as real refresh would, and flips are evaluated
        once per window chunk.
        """
        if rounds <= 0:
            raise ConfigError(f"rounds must be positive, got {rounds}")
        if not phys_addrs:
            raise ConfigError("hammer needs at least one address")
        span = self.obs.tracer.span(
            "dram.hammer", "dram", addresses=len(phys_addrs), rounds=rounds
        )
        with span:
            result = self._hammer(phys_addrs, rounds)
            span.set("activations", result.activations)
            span.set("flips", len(result.flips))
        self._m_hammer_calls.inc()
        self._m_hammer_rounds.inc(rounds)
        self._m_hammer_acts.observe(result.activations)
        return result

    def _hammer(self, phys_addrs: list[int], rounds: int) -> HammerResult:
        self._pump_timed()

        dram_addrs = [self.mapping.to_dram(p) for p in phys_addrs]
        by_bank: dict[tuple[int, int, int], list[int]] = {}
        for addr in dram_addrs:
            by_bank.setdefault(addr.bank_key(), []).append(addr.row)

        # Per-round cost and per-round activation counts per bank.
        activations_per_round: dict[tuple[int, int, int], dict[int, int]] = {}
        ns_per_round = 0
        static_activations = 0
        for key, rows in by_bank.items():
            distinct = set(rows)
            if len(distinct) >= 2:
                per_row: dict[int, int] = {}
                for row in rows:
                    per_row[row] = per_row.get(row, 0) + 1
                activations_per_round[key] = per_row
                ns_per_round += len(rows) * self.timing.t_rc_ns
            else:
                # A single row per bank opens once and then row-hits forever.
                only_row = rows[0]
                bank = self.bank(key)
                if bank.access(only_row):
                    static_activations += 1
                ns_per_round += len(rows) * self.timing.t_cas_ns

        total_flips: list[FlipEvent] = []
        total_activations = static_activations
        rounds_left = rounds
        elapsed = 0
        while rounds_left > 0:
            window_end = (self.current_refresh_epoch() + 1) * self.effective_refw_ns()
            remaining_ns = window_end - self.clock.now_ns
            if ns_per_round > 0:
                chunk = min(rounds_left, max(1, remaining_ns // ns_per_round))
            else:
                chunk = rounds_left
            for key, per_row in activations_per_round.items():
                bank = self.bank(key)
                for row, count in per_row.items():
                    bank.bulk_activate(row, count * chunk)
                    total_activations += count * chunk
            self.clock.advance(chunk * ns_per_round)
            elapsed += chunk * ns_per_round
            for key, per_row in activations_per_round.items():
                total_flips.extend(self._evaluate_around(key, set(per_row)))
            rounds_left -= chunk
            self._pump_timed()

        return HammerResult(
            rounds=rounds,
            accesses=rounds * len(phys_addrs),
            activations=total_activations,
            elapsed_ns=elapsed,
            flips=total_flips,
        )

    # -- statistics --------------------------------------------------------------

    def total_activations(self) -> int:
        """Lifetime activations across all banks."""
        return sum(bank.total_activations for bank in self._banks.values())

    def flips_in_pfn(self, pfn: int) -> list[FlipEvent]:
        """All logged flips that landed in page frame ``pfn``."""
        return [event for event in self.flip_log if event.pfn == pfn]

    def stats(self) -> dict[str, int]:
        """Counters for reporting: activations, row hits, flips, refreshes."""
        return {
            "activations": self.total_activations(),
            "row_hits": sum(bank.total_row_hits for bank in self._banks.values()),
            "flips": len(self.flip_log),
            "refreshes": self.refresh_count,
            "banks_touched": len(self._banks),
        }
