"""Per-cell Rowhammer disturbance model.

Kim et al. (ISCA 2014) characterised DRAM disturbance errors as follows, and
these are the properties the model reproduces:

* only a sparse population of cells is disturbable ("weak cells");
* each weak cell has its own activation threshold — the number of aggressor
  activations inside one refresh window needed to flip it (observed minimum
  ~139 K, typical hundreds of thousands);
* a flip discharges the cell toward its resting state: a *true-cell* stores
  charge for logic 1 and flips 1 -> 0, an *anti-cell* flips 0 -> 1; a cell
  only flips when it currently holds its charged value (data-pattern
  dependence);
* errors are strongly concentrated in the rows directly adjacent to the
  aggressor, with a much weaker effect two rows away;
* the weak-cell population is a stable physical property of the module —
  re-hammering the same row flips the same cells.  This is the repeatability
  that Section VI of the paper exploits.

The population is *derived*, not stored: the weak cells of row ``(bank,
row)`` are regenerated on demand from the machine seed, so arbitrarily
large modules cost no memory and the same seed always yields the same
vulnerable-cell map.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.geometry import DRAMGeometry
from repro.sim.errors import ConfigError
from repro.sim.rng import RngStreams, derive_seed


@dataclass(frozen=True)
class WeakCell:
    """One disturbable cell inside a row.

    ``bit_index`` addresses the bit inside the row (0 .. row_bits-1);
    ``threshold`` is the aggressor-activation count within one refresh
    window at which the cell flips; ``true_cell`` selects the orientation
    (True: charged = logic 1, flips 1 -> 0; False: charged = logic 0,
    flips 0 -> 1).
    """

    bit_index: int
    threshold: int
    true_cell: bool

    @property
    def byte_offset(self) -> int:
        """Byte offset of the cell within its row."""
        return self.bit_index >> 3

    @property
    def bit_in_byte(self) -> int:
        """Bit position of the cell within its byte (0 = LSB)."""
        return self.bit_index & 7

    @property
    def charged_value(self) -> int:
        """The logic value the cell must hold to be flippable."""
        return 1 if self.true_cell else 0

    @property
    def flipped_value(self) -> int:
        """The logic value the cell holds after a disturbance flip."""
        return 0 if self.true_cell else 1

    def __str__(self) -> str:
        direction = "1->0" if self.true_cell else "0->1"
        return (
            f"WeakCell(byte {self.byte_offset:#x} bit {self.bit_in_byte}, "
            f"threshold {self.threshold}, {direction})"
        )


@dataclass(frozen=True)
class FlipModelConfig:
    """Tunable parameters of the disturbance model.

    ``weak_cells_per_row_mean`` is the Poisson mean of the number of weak
    cells per 8 KiB row.  The default 0.05 corresponds to roughly one weak
    cell per 160 KiB — inside the range Kim et al. report for vulnerable
    modules, and dense enough that templating a 32 MiB buffer finds a few
    hundred flips.

    Thresholds are drawn from a normal distribution clipped to
    ``[threshold_min, threshold_max]``.  ``coupling_adjacent`` /
    ``coupling_distance2`` weight aggressor activations by row distance
    (distance-2 coupling defaults to a small non-zero value so the A2
    ablation can study it).
    """

    weak_cells_per_row_mean: float = 0.05
    threshold_mean: float = 250_000.0
    threshold_sd: float = 80_000.0
    threshold_min: int = 60_000
    threshold_max: int = 1_200_000
    true_cell_fraction: float = 0.5
    coupling_adjacent: float = 1.0
    coupling_distance2: float = 0.02

    def __post_init__(self) -> None:
        if self.weak_cells_per_row_mean < 0:
            raise ConfigError("weak_cells_per_row_mean must be non-negative")
        if self.threshold_min <= 0 or self.threshold_max < self.threshold_min:
            raise ConfigError(
                f"threshold bounds invalid: [{self.threshold_min}, {self.threshold_max}]"
            )
        if not 0.0 <= self.true_cell_fraction <= 1.0:
            raise ConfigError("true_cell_fraction must lie in [0, 1]")
        if self.coupling_adjacent < 0 or self.coupling_distance2 < 0:
            raise ConfigError("coupling factors must be non-negative")
        if self.coupling_distance2 > self.coupling_adjacent:
            raise ConfigError("distance-2 coupling cannot exceed adjacent coupling")

    @classmethod
    def invulnerable(cls) -> "FlipModelConfig":
        """A module with no weak cells at all (for negative controls)."""
        return cls(weak_cells_per_row_mean=0.0)

    @classmethod
    def highly_vulnerable(cls) -> "FlipModelConfig":
        """A worst-case module: dense weak cells with low thresholds."""
        return cls(
            weak_cells_per_row_mean=0.5,
            threshold_mean=150_000.0,
            threshold_sd=50_000.0,
            threshold_min=40_000,
        )


class RowPopulation:
    """Columnar (numpy) view of one row's weak cells, sorted by bit index.

    The controller's hammer loop compares every cell's threshold against the
    disturbance level on each evaluation; holding the population as arrays
    turns that inner loop into one vector compare.  Instances are immutable
    by convention and shared through the :class:`WeakCellMap` memo.
    """

    __slots__ = (
        "bit_index", "threshold", "true_cell",
        "byte_offset", "bit_in_byte", "charged", "min_threshold",
    )

    def __init__(self, cells: tuple[WeakCell, ...]):
        self.bit_index = np.array([c.bit_index for c in cells], dtype=np.int64)
        self.threshold = np.array([c.threshold for c in cells], dtype=np.int64)
        self.true_cell = np.array([c.true_cell for c in cells], dtype=bool)
        self.byte_offset = self.bit_index >> 3
        self.bit_in_byte = self.bit_index & 7
        self.charged = self.true_cell.astype(np.uint8)
        self.min_threshold = int(self.threshold.min())

    def __len__(self) -> int:
        return self.bit_index.size


class WeakCellMap:
    """Deterministic, lazily evaluated weak-cell population of a module.

    ``cells_in_row(flat_bank, row)`` is a pure function of the machine seed
    and the coordinates — calling it twice returns equal populations, and no
    state is retained beyond a bounded memo cache.
    """

    _MEMO_LIMIT = 65536

    def __init__(self, geometry: DRAMGeometry, config: FlipModelConfig, rng: RngStreams):
        self.geometry = geometry
        self.config = config
        # The weak-cell population is a physical property of the module, so
        # it is pinned to the seed the machine was *built* with.  A later
        # RngStreams.reseed() (machine fork) must not re-materialise
        # different hardware.
        self._master_seed = rng.master_seed
        self._memo: dict[tuple[int, int], tuple[WeakCell, ...]] = {}
        self._pop_memo: dict[tuple[int, int], RowPopulation | None] = {}

    def __getstate__(self) -> dict:
        # The memo caches are pure functions of (master seed, coordinates):
        # drop them when pickling so snapshots stay compact; forks re-attach
        # a shared live cache instead (see MachineSnapshot).
        state = self.__dict__.copy()
        state["_memo"] = {}
        state["_pop_memo"] = {}
        return state

    def cells_in_row(self, flat_bank: int, row: int) -> tuple[WeakCell, ...]:
        """Weak cells of the given row, sorted by bit index."""
        if not 0 <= flat_bank < self.geometry.total_banks:
            raise ConfigError(f"flat bank {flat_bank} out of range")
        if not 0 <= row < self.geometry.rows_per_bank:
            raise ConfigError(f"row {row} out of range")
        key = (flat_bank, row)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        cells = self._generate(flat_bank, row)
        if len(self._memo) >= self._MEMO_LIMIT:
            self._memo.clear()
        self._memo[key] = cells
        return cells

    def row_population(self, flat_bank: int, row: int) -> RowPopulation | None:
        """Columnar view of the row's weak cells, or None for an empty row.

        Derived from (and consistent with) :meth:`cells_in_row`; memoised
        separately so repeated hammer evaluations of the same victim pay no
        per-call array construction.
        """
        key = (flat_bank, row)
        try:
            return self._pop_memo[key]
        except KeyError:
            pass
        cells = self.cells_in_row(flat_bank, row)
        population = RowPopulation(cells) if cells else None
        if len(self._pop_memo) >= self._MEMO_LIMIT:
            self._pop_memo.clear()
        self._pop_memo[key] = population
        return population

    def _generate(self, flat_bank: int, row: int) -> tuple[WeakCell, ...]:
        cfg = self.config
        if cfg.weak_cells_per_row_mean == 0.0:
            return ()
        gen = np.random.default_rng(
            derive_seed(self._master_seed, f"dram.cells/{flat_bank}/{row}")
        )
        count = int(gen.poisson(cfg.weak_cells_per_row_mean))
        if count == 0:
            return ()
        row_bits = self.geometry.row_bits
        bit_indices = gen.choice(row_bits, size=min(count, row_bits), replace=False)
        thresholds = gen.normal(cfg.threshold_mean, cfg.threshold_sd, size=len(bit_indices))
        orientations = gen.random(size=len(bit_indices)) < cfg.true_cell_fraction
        cells = []
        for bit, raw_threshold, is_true in zip(bit_indices, thresholds, orientations):
            threshold = int(min(max(raw_threshold, cfg.threshold_min), cfg.threshold_max))
            cells.append(WeakCell(bit_index=int(bit), threshold=threshold, true_cell=bool(is_true)))
        cells.sort(key=lambda c: c.bit_index)
        return tuple(cells)

    def weakest_threshold_in_row(self, flat_bank: int, row: int) -> int | None:
        """Lowest flip threshold present in the row, or None if no weak cell."""
        cells = self.cells_in_row(flat_bank, row)
        if not cells:
            return None
        return min(c.threshold for c in cells)

    def count_weak_cells(self, flat_bank: int, row_start: int, row_end: int) -> int:
        """Total weak cells over ``[row_start, row_end)`` of one bank."""
        if row_start > row_end:
            raise ConfigError(f"row range [{row_start}, {row_end}) is inverted")
        return sum(
            len(self.cells_in_row(flat_bank, row)) for row in range(row_start, row_end)
        )
