"""Target Row Refresh (TRR): the in-DRAM Rowhammer mitigation.

Modern (DDR4-era) DRAM devices watch for heavily activated rows and
preventively refresh their neighbours before disturbance accumulates.
Real implementations are vendor-secret samplers with a small number of
tracker entries per bank — which is exactly their weakness: with more
simultaneous aggressor rows than tracker entries, some aggressors escape
tracking and hammer unimpeded (the *TRRespass* attack, Frigo et al.,
S&P 2020).

The model here captures that trade-off deterministically:

* each bank has ``tracker_entries`` slots, filled first-come within a
  refresh window (and cleared by refresh);
* when a **tracked** row's activation count crosses ``threshold``, the
  device refreshes its neighbours — modelled as resetting that row's
  contribution to disturbance (the count wraps modulo the threshold);
* **untracked** rows accumulate activations freely.

Consequently double-sided hammering (2 aggressors) is fully mitigated by
any tracker with >= 2 entries, while many-sided hammering with more
aggressor rows than entries still flips bits — the published bypass,
reproduced in ablation A3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.errors import ConfigError


@dataclass(frozen=True)
class TrrConfig:
    """Sampler shape of the TRR implementation."""

    enabled: bool = False
    tracker_entries: int = 4
    threshold: int = 50_000

    def __post_init__(self) -> None:
        if self.tracker_entries <= 0:
            raise ConfigError(
                f"tracker_entries must be positive, got {self.tracker_entries}"
            )
        if self.threshold <= 0:
            raise ConfigError(f"threshold must be positive, got {self.threshold}")

    @classmethod
    def disabled(cls) -> "TrrConfig":
        """No mitigation (pre-DDR4 modules, the paper's setting)."""
        return cls(enabled=False)

    @classmethod
    def ddr4_like(cls, tracker_entries: int = 4, threshold: int = 50_000) -> "TrrConfig":
        """An enabled sampler with a typical small tracker."""
        return cls(enabled=True, tracker_entries=tracker_entries, threshold=threshold)


class TrrState:
    """Per-bank TRR sampler state (heavy-hitter tracker).

    The tracker keeps the rows with the highest observed activation
    counts: an untracked row whose count *exceeds* the smallest tracked
    count evicts that entry.  This matches the intent of real samplers —
    incidental single activations (ordinary traffic) cannot occupy
    entries that hot aggressor rows need — while preserving the published
    weakness: with more equally-hot aggressors than entries, the excess
    rows never displace each other and hammer untracked.
    """

    def __init__(self, config: TrrConfig):
        if not config.enabled:
            raise ConfigError("TrrState requires an enabled TrrConfig")
        self.config = config
        # Tracked row -> [raw count, last effective count] this window.
        # Raw counts drive eviction, so equally-hot aggressors cannot
        # displace each other, while clamping applies to the effective
        # count the bank stores.  (The bank's counter holds effective
        # values for tracked rows; the raw history lives here.)
        self._tracked: dict[int, list[int]] = {}
        self.neighbor_refreshes = 0
        self.tracker_misses = 0

    def tracked_rows(self) -> list[int]:
        """Rows currently occupying tracker entries."""
        return list(self._tracked)

    def is_tracked(self, row: int) -> bool:
        """True if the sampler holds an entry for ``row``."""
        return row in self._tracked

    def _clamp(self, count: int) -> int:
        crossings = count // self.config.threshold
        if crossings:
            self.neighbor_refreshes += crossings
            return count % self.config.threshold
        return count

    def _insert(self, row: int, raw: int) -> int:
        effective = self._clamp(raw)
        self._tracked[row] = [raw, effective]
        return effective

    def observe(self, row: int, new_count: int) -> int:
        """Account activations of ``row``; returns the *effective* count.

        Called by the bank after its window counter for ``row`` reaches
        ``new_count``.  Tracked rows are clamped: every threshold crossing
        triggers a neighbour refresh and the effective count wraps.
        Untracked rows pass through unchanged unless they earn a tracker
        entry (free slot, or strictly hotter than the coldest tracked
        row).
        """
        entry = self._tracked.get(row)
        if entry is not None:
            raw, last_effective = entry
            raw += new_count - last_effective
            effective = self._clamp(new_count)
            entry[0] = raw
            entry[1] = effective
            return effective
        # For untracked rows the bank's counter was never clamped, so
        # new_count is the raw count.
        if len(self._tracked) < self.config.tracker_entries:
            return self._insert(row, new_count)
        coldest_row = min(self._tracked, key=lambda r: self._tracked[r][0])
        if new_count > self._tracked[coldest_row][0]:
            del self._tracked[coldest_row]
            return self._insert(row, new_count)
        self.tracker_misses += 1
        return new_count

    def window_reset(self) -> None:
        """Refresh window rolled over: the sampler starts fresh."""
        self._tracked.clear()

    def __repr__(self) -> str:
        return (
            f"TrrState(tracked={self.tracked_rows()}, "
            f"refreshes={self.neighbor_refreshes}, misses={self.tracker_misses})"
        )
