"""SECDED ECC memory: correction of single-bit disturbance errors.

Server-grade modules store an ECC syndrome per (typically 64-bit) data
word: **S**ingle **E**rror **C**orrect, **D**ouble **E**rror **D**etect.
For Rowhammer this means:

* a lone disturbance flip in a word is transparently corrected — the
  attacker's templating scan never sees it;
* **two** flipped bits in one word exceed the correction capability; the
  corrupt data becomes visible (and on real hardware typically raises a
  machine check).  Cojocar et al. ("Exploiting Correcting Codes",
  S&P 2019 — *ECCploit*) showed attackers can still exploit ECC DRAM by
  finding words with multiple weak cells.

The model tracks pending (suppressed) single-bit flips per word; the
moment a second weak cell of the same word fires, both bits materialise
in memory and a :class:`repro.dram.controller.FlipEvent` is logged for
each.  Rewriting a word (any store into it) clears its pending state —
fresh data means fresh cells.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.errors import ConfigError


@dataclass(frozen=True)
class EccConfig:
    """Shape of the ECC scheme."""

    enabled: bool = False
    word_bytes: int = 8

    def __post_init__(self) -> None:
        if self.word_bytes <= 0 or self.word_bytes & (self.word_bytes - 1):
            raise ConfigError(
                f"word_bytes must be a positive power of two, got {self.word_bytes}"
            )

    @classmethod
    def disabled(cls) -> "EccConfig":
        """Non-ECC consumer memory (the paper's setting)."""
        return cls(enabled=False)

    @classmethod
    def secded64(cls) -> "EccConfig":
        """Standard server SECDED over 64-bit words."""
        return cls(enabled=True, word_bytes=8)


class EccState:
    """Pending-correction bookkeeping for the whole module."""

    def __init__(self, config: EccConfig):
        if not config.enabled:
            raise ConfigError("EccState requires an enabled EccConfig")
        self.config = config
        # word index -> set of (phys byte addr, bit) suppressed flips.
        self._pending: dict[int, set[tuple[int, int]]] = {}
        self._uncorrectable_words: set[int] = set()
        self.corrected_bits = 0
        self.uncorrectable_events = 0

    def word_index(self, phys: int) -> int:
        """The ECC word containing physical byte ``phys``."""
        return phys // self.config.word_bytes

    def is_word_uncorrectable(self, phys: int) -> bool:
        """True once the word's data has escaped correction."""
        return self.word_index(phys) in self._uncorrectable_words

    def register_flip(self, phys: int, bit: int) -> list[tuple[int, int]]:
        """Account a disturbance flip at (``phys``, ``bit``).

        Returns the list of (addr, bit) flips that must *materialise* in
        memory now:

        * empty — the flip was absorbed as a correctable single-bit error;
        * the full pending set — this flip made the word uncorrectable,
          so every suppressed bit (plus this one) becomes visible;
        * just this flip — the word was already uncorrectable.
        """
        word = self.word_index(phys)
        if word in self._uncorrectable_words:
            return [(phys, bit)]
        pending = self._pending.setdefault(word, set())
        if (phys, bit) in pending:
            return []
        pending.add((phys, bit))
        if len(pending) == 1:
            self.corrected_bits += 1
            return []
        # Second distinct bit: correction capability exceeded.
        self._uncorrectable_words.add(word)
        self.uncorrectable_events += 1
        del self._pending[word]
        return sorted(pending)

    def clear_range(self, phys: int, length: int) -> None:
        """A store rewrote [phys, phys+length): drop that range's state."""
        if length <= 0:
            return
        first = self.word_index(phys)
        last = self.word_index(phys + length - 1)
        for word in range(first, last + 1):
            self._pending.pop(word, None)
            self._uncorrectable_words.discard(word)

    def pending_words(self) -> int:
        """Words currently holding one corrected (suppressed) flip."""
        return len(self._pending)

    def __repr__(self) -> str:
        return (
            f"EccState(pending={self.pending_words()}, "
            f"corrected={self.corrected_bits}, "
            f"uncorrectable={self.uncorrectable_events})"
        )
