"""A small physically-indexed CPU cache model.

The original Rowhammer paper's key enabling trick is ``clflush``: without
flushing, the second and later accesses to an aggressor address are served
by the CPU cache and never reach DRAM, so no activations accumulate.  To
make that part of the attack meaningful in simulation, memory accesses run
through this set-associative, LRU, write-through cache:

* a **hit** is served from the cache and produces no DRAM access;
* a **miss** fills the line (evicting the LRU way) and *does* reach DRAM;
* ``clflush(addr)`` evicts the line so the next access misses again.

Only tags are stored — data stays authoritative in
:class:`repro.dram.memory.PhysicalMemory` (write-through, no dirty state),
which is all the attack semantics require.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.sim.errors import ConfigError


@dataclass(frozen=True)
class CpuCacheConfig:
    """Shape of the cache: 64 B lines, 512 sets x 8 ways = 256 KiB default."""

    line_size: int = 64
    sets: int = 512
    ways: int = 8

    def __post_init__(self) -> None:
        for name in ("line_size", "sets"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ConfigError(f"{name} must be a positive power of two, got {value}")
        if self.ways <= 0:
            raise ConfigError(f"ways must be positive, got {self.ways}")

    @property
    def capacity_bytes(self) -> int:
        """Total cache capacity."""
        return self.line_size * self.sets * self.ways

    @property
    def way_stride(self) -> int:
        """Byte distance between consecutive addresses in the same set.

        Two physical addresses that differ by a multiple of this stride map
        to the same cache set — the congruence an eviction set exploits.
        """
        return self.line_size * self.sets


class CpuCache:
    """Set-associative LRU cache over physical line addresses."""

    def __init__(self, config: CpuCacheConfig | None = None):
        self.config = config or CpuCacheConfig()
        # One OrderedDict per set: line_tag -> None, LRU at the front.
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.config.sets)
        ]
        self.hits = 0
        self.misses = 0
        self.flushes = 0
        self.evictions = 0

    def _locate(self, phys: int) -> tuple[int, int]:
        """Return (set index, line tag) for a physical address."""
        if phys < 0:
            raise ConfigError(f"physical address must be non-negative, got {phys:#x}")
        line = phys // self.config.line_size
        return line % self.config.sets, line

    def set_index(self, phys: int) -> int:
        """The cache set a physical address maps to (public: set-index bits)."""
        return self._locate(phys)[0]

    def access(self, phys: int) -> bool:
        """Access one byte; returns True on hit (no DRAM traffic needed)."""
        set_index, tag = self._locate(phys)
        ways = self._sets[set_index]
        if tag in ways:
            ways.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        ways[tag] = None
        if len(ways) > self.config.ways:
            ways.popitem(last=False)
            self.evictions += 1
        return False

    def flush(self, phys: int) -> bool:
        """``clflush``: evict the line containing ``phys``; True if present."""
        set_index, tag = self._locate(phys)
        ways = self._sets[set_index]
        if tag in ways:
            del ways[tag]
            self.flushes += 1
            return True
        return False

    def contains(self, phys: int) -> bool:
        """True if the line containing ``phys`` is currently cached."""
        set_index, tag = self._locate(phys)
        return tag in self._sets[set_index]

    def flush_all(self) -> None:
        """Invalidate the whole cache (``wbinvd``)."""
        for ways in self._sets:
            ways.clear()

    def occupancy(self) -> int:
        """Number of valid lines currently held."""
        return sum(len(ways) for ways in self._sets)

    @property
    def hit_rate(self) -> float:
        """Lifetime hit rate (0.0 when no accesses have happened)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def bind_obs(self, obs) -> None:
        """Publish the ``dram.cache.*`` gauge family.

        Collector-sourced so the per-access hot path stays untouched: the
        counters above are plain ints, read out only at snapshot time.
        """
        metrics = obs.metrics
        hits = metrics.gauge(
            "dram.cache.hits", unit="accesses", help="cache hits served"
        )
        misses = metrics.gauge(
            "dram.cache.misses", unit="accesses", help="cache misses (reached DRAM)"
        )
        evictions = metrics.gauge(
            "dram.cache.evictions", unit="lines", help="LRU capacity evictions"
        )
        hit_rate = metrics.gauge(
            "dram.cache.hit_rate", unit="ratio", help="lifetime hit rate"
        )
        occupancy = metrics.gauge(
            "dram.cache.occupancy", unit="lines", help="valid lines held"
        )

        def _collect() -> None:
            hits.set(self.hits)
            misses.set(self.misses)
            evictions.set(self.evictions)
            hit_rate.set(self.hit_rate)
            occupancy.set(self.occupancy())

        metrics.add_collector(_collect)

    def __repr__(self) -> str:
        return (
            f"CpuCache({self.config.sets}x{self.config.ways} ways, "
            f"hits={self.hits}, misses={self.misses})"
        )
