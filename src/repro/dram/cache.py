"""A small physically-indexed CPU cache model.

The original Rowhammer paper's key enabling trick is ``clflush``: without
flushing, the second and later accesses to an aggressor address are served
by the CPU cache and never reach DRAM, so no activations accumulate.  To
make that part of the attack meaningful in simulation, memory accesses run
through this set-associative, LRU, write-through cache:

* a **hit** is served from the cache and produces no DRAM access;
* a **miss** fills the line (evicting the LRU way) and *does* reach DRAM;
* ``clflush(addr)`` evicts the line so the next access misses again.

Only tags are stored — data stays authoritative in
:class:`repro.dram.memory.PhysicalMemory` (write-through, no dirty state),
which is all the attack semantics require.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.sim.errors import ConfigError


@dataclass(frozen=True)
class CpuCacheConfig:
    """Shape of the cache: 64 B lines, 512 sets x 8 ways = 256 KiB default."""

    line_size: int = 64
    sets: int = 512
    ways: int = 8

    def __post_init__(self) -> None:
        for name in ("line_size", "sets"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ConfigError(f"{name} must be a positive power of two, got {value}")
        if self.ways <= 0:
            raise ConfigError(f"ways must be positive, got {self.ways}")

    @property
    def capacity_bytes(self) -> int:
        """Total cache capacity."""
        return self.line_size * self.sets * self.ways


class CpuCache:
    """Set-associative LRU cache over physical line addresses."""

    def __init__(self, config: CpuCacheConfig | None = None):
        self.config = config or CpuCacheConfig()
        # One OrderedDict per set: line_tag -> None, LRU at the front.
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.config.sets)
        ]
        self.hits = 0
        self.misses = 0
        self.flushes = 0

    def _locate(self, phys: int) -> tuple[int, int]:
        """Return (set index, line tag) for a physical address."""
        if phys < 0:
            raise ConfigError(f"physical address must be non-negative, got {phys:#x}")
        line = phys // self.config.line_size
        return line % self.config.sets, line

    def access(self, phys: int) -> bool:
        """Access one byte; returns True on hit (no DRAM traffic needed)."""
        set_index, tag = self._locate(phys)
        ways = self._sets[set_index]
        if tag in ways:
            ways.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        ways[tag] = None
        if len(ways) > self.config.ways:
            ways.popitem(last=False)
        return False

    def flush(self, phys: int) -> bool:
        """``clflush``: evict the line containing ``phys``; True if present."""
        set_index, tag = self._locate(phys)
        ways = self._sets[set_index]
        if tag in ways:
            del ways[tag]
            self.flushes += 1
            return True
        return False

    def contains(self, phys: int) -> bool:
        """True if the line containing ``phys`` is currently cached."""
        set_index, tag = self._locate(phys)
        return tag in self._sets[set_index]

    def flush_all(self) -> None:
        """Invalidate the whole cache (``wbinvd``)."""
        for ways in self._sets:
            ways.clear()

    def occupancy(self) -> int:
        """Number of valid lines currently held."""
        return sum(len(ways) for ways in self._sets)

    @property
    def hit_rate(self) -> float:
        """Lifetime hit rate (0.0 when no accesses have happened)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"CpuCache({self.config.sets}x{self.config.ways} ways, "
            f"hits={self.hits}, misses={self.misses})"
        )
