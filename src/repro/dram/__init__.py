"""Simulated DRAM substrate.

This package stands in for the physical DDR3/DDR4 module of the paper's
testbed.  It models the parts of DRAM that the ExplFrame attack actually
depends on:

* the **geometry** (channel / rank / bank / row / column) and the physical
  address mapping into it, so "adjacent row in the same bank" is a
  well-defined, computable notion;
* the **bank row-buffer state machine**, so only genuine row activations
  (row-buffer misses) count toward disturbance — hammering two rows in
  *different* banks produces row hits and no flips, exactly as on hardware;
* the **refresh window**, so activations only matter if they accumulate
  inside one tREFW interval;
* a per-cell **disturbance (Rowhammer) model** following Kim et al.
  (ISCA 2014): a sparse population of weak cells per row, each with its own
  activation threshold, true-/anti-cell orientation and data-pattern
  dependence.  The population is derived deterministically from the machine
  seed, which gives the *repeatability* property the paper's Section VI
  relies on ("high probability of getting bit flips in the same location").
"""

from repro.dram.bank import Bank
from repro.dram.cache import CpuCache, CpuCacheConfig
from repro.dram.controller import FlipEvent, MemoryController
from repro.dram.ecc import EccConfig, EccState
from repro.dram.flipmodel import FlipModelConfig, WeakCell, WeakCellMap
from repro.dram.geometry import DRAMAddress, DRAMGeometry
from repro.dram.mapping import AddressMapping, LinearMapping, XorBankMapping, make_mapping
from repro.dram.memory import PhysicalMemory
from repro.dram.timing import DRAMTiming
from repro.dram.trr import TrrConfig, TrrState

__all__ = [
    "AddressMapping",
    "Bank",
    "CpuCache",
    "CpuCacheConfig",
    "DRAMAddress",
    "DRAMGeometry",
    "DRAMTiming",
    "EccConfig",
    "EccState",
    "FlipEvent",
    "FlipModelConfig",
    "LinearMapping",
    "MemoryController",
    "PhysicalMemory",
    "TrrConfig",
    "TrrState",
    "WeakCell",
    "WeakCellMap",
    "XorBankMapping",
    "make_mapping",
]
