"""DRAM timing parameters.

Only the parameters that matter for Rowhammer are modelled:

* ``t_rc_ns`` — the row cycle time, i.e. the minimum interval between two
  activations of rows in the same bank.  It bounds how many hammer
  activations fit into one refresh window.
* ``t_refw_ns`` — the refresh window (tREFW, 64 ms for DDR3/DDR4): every
  cell is refreshed once per window, so disturbance accumulated in one
  window does not carry into the next.
* ``t_cas_ns`` — approximate cost of a row-buffer hit, used only to advance
  the simulated clock for non-activating accesses.

The derived :meth:`DRAMTiming.max_activations_per_window` is the hard
physical ceiling on single-bank hammer counts (~1.36 M for the defaults),
matching the figure quoted by Kim et al. (ISCA 2014).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.errors import ConfigError
from repro.sim.units import MS


@dataclass(frozen=True)
class DRAMTiming:
    """Timing constants in integer nanoseconds (DDR3-1600 defaults)."""

    t_rc_ns: int = 47
    t_refw_ns: int = 64 * MS
    t_cas_ns: int = 14

    def __post_init__(self) -> None:
        if self.t_rc_ns <= 0:
            raise ConfigError(f"t_rc_ns must be positive, got {self.t_rc_ns}")
        if self.t_cas_ns <= 0:
            raise ConfigError(f"t_cas_ns must be positive, got {self.t_cas_ns}")
        if self.t_refw_ns < self.t_rc_ns:
            raise ConfigError(
                f"refresh window ({self.t_refw_ns} ns) shorter than one row cycle "
                f"({self.t_rc_ns} ns)"
            )

    def max_activations_per_window(self) -> int:
        """Most activations one bank can absorb inside one refresh window."""
        return self.t_refw_ns // self.t_rc_ns

    @classmethod
    def ddr3_1600(cls) -> "DRAMTiming":
        """DDR3-1600 (the generation where Rowhammer was first reported)."""
        return cls(t_rc_ns=47, t_refw_ns=64 * MS, t_cas_ns=14)

    @classmethod
    def ddr4_2400(cls) -> "DRAMTiming":
        """DDR4-2400 with the same 64 ms refresh window."""
        return cls(t_rc_ns=45, t_refw_ns=64 * MS, t_cas_ns=13)

    @classmethod
    def fast_refresh_2x(cls) -> "DRAMTiming":
        """A 2x refresh-rate mitigation profile (32 ms window)."""
        return cls.fast_refresh(2)

    @classmethod
    def fast_refresh(cls, factor: int) -> "DRAMTiming":
        """An Nx refresh-rate mitigation profile (64/N ms window).

        Used by the A2 ablation.  Raising the refresh rate divides the
        number of activations an aggressor can land inside one window;
        once the per-window budget drops below the weak cells' thresholds
        the flip yield collapses — the standard Rowhammer mitigation
        trade-off.
        """
        if factor < 1:
            raise ConfigError(f"refresh factor must be >= 1, got {factor}")
        return cls(t_rc_ns=47, t_refw_ns=(64 * MS) // factor, t_cas_ns=14)
