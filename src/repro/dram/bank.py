"""Per-bank row-buffer state machine and activation accounting.

A DRAM bank has a single row buffer; reading a byte first requires the
containing row to be *activated* into that buffer.  Two consequences matter
for Rowhammer and are both modelled here:

* accessing the already-open row is a **row hit** and causes no activation —
  this is why hammering a single address in a tight loop does nothing, and
  why aggressor pairs must live in the *same bank but different rows*;
* each activation of a row disturbs its neighbours; the controller counts
  activations per row **within the current refresh window** and resets the
  counters when the window rolls over.
"""

from __future__ import annotations

from repro.dram.trr import TrrState
from repro.sim.errors import ConfigError


class Bank:
    """State of one DRAM bank: open row plus per-window activation counts.

    When a :class:`~repro.dram.trr.TrrState` is attached, the per-window
    counters hold *effective* (post-mitigation) activations: tracked rows
    are clamped below the TRR threshold, untracked rows accumulate freely.
    Lifetime counters always record raw activations.
    """

    def __init__(self, rows: int, trr: TrrState | None = None):
        if rows <= 0:
            raise ConfigError(f"bank must have a positive row count, got {rows}")
        self.rows = rows
        self.trr = trr
        self.open_row: int | None = None
        # Sparse map row -> effective activations inside the current window.
        self.activations: dict[int, int] = {}
        # Lifetime counters, never reset (used for statistics only).
        self.total_activations = 0
        self.total_row_hits = 0

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise ConfigError(f"row {row} out of range [0, {self.rows})")

    def access(self, row: int) -> bool:
        """Access one byte in ``row``.  Returns True if it activated the row.

        A row-buffer miss precharges the open row and activates ``row``
        (counting toward disturbance); a hit leaves the counters untouched.
        """
        self._check_row(row)
        if self.open_row == row:
            self.total_row_hits += 1
            return False
        self.open_row = row
        self._count(row, 1)
        return True

    def _count(self, row: int, added: int) -> None:
        """Add ``added`` raw activations, applying TRR clamping if present."""
        new_count = self.activations.get(row, 0) + added
        if self.trr is not None:
            new_count = self.trr.observe(row, new_count)
        self.activations[row] = new_count
        self.total_activations += added

    def bulk_activate(self, row: int, count: int) -> None:
        """Record ``count`` activations of ``row`` in one step.

        Semantically equal to ``count`` alternating-access activations; used
        by the controller's hammer fast path so million-iteration hammer
        loops do not cost a Python-level loop each.
        """
        self._check_row(row)
        if count < 0:
            raise ConfigError(f"activation count must be non-negative, got {count}")
        if count == 0:
            return
        self.open_row = row
        self._count(row, count)

    def activations_in_window(self, row: int) -> int:
        """Activations of ``row`` inside the current refresh window."""
        self._check_row(row)
        return self.activations.get(row, 0)

    def refresh(self) -> None:
        """Refresh the bank: disturbance accounting restarts from zero.

        The open row is also closed (real refresh requires all banks
        precharged).
        """
        self.activations.clear()
        self.open_row = None
        if self.trr is not None:
            self.trr.window_reset()

    def hammered_rows(self) -> list[int]:
        """Rows with at least one activation in the current window."""
        return sorted(self.activations)

    def __repr__(self) -> str:
        return (
            f"Bank(rows={self.rows}, open_row={self.open_row}, "
            f"active_counters={len(self.activations)})"
        )
