"""Physical-address -> DRAM-coordinate mapping.

Real memory controllers slice the physical address into column, bank, row,
rank and channel fields, often XOR-folding row bits into the bank bits to
spread sequential accesses across banks.  The attack code never assumes a
particular mapping — it works through this interface — but the experiments
default to :class:`XorBankMapping` because that is what Intel-style
controllers do and it is the setting the Rowhammer literature assumes.

Both mappings here share the same bit layout (low to high):

    | column | bank | row | rank | channel |

placing the bank bits *below* the row bits.  Consequently one row of one
bank spans ``row_bytes`` contiguous physical bytes, and the next row of the
*same* bank is ``banks_per_rank * row_bytes`` further on — the classic
"row stride" that user-space Rowhammer code exploits to find same-bank
aggressor pairs inside a contiguous buffer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.dram.geometry import DRAMAddress, DRAMGeometry
from repro.sim.errors import ConfigError


class AddressMapping(ABC):
    """Bijection between physical byte addresses and DRAM coordinates."""

    def __init__(self, geometry: DRAMGeometry):
        self.geometry = geometry
        self._col_bits = (geometry.row_bytes - 1).bit_length()
        self._bank_bits = (geometry.banks_per_rank - 1).bit_length()
        self._row_bits = (geometry.rows_per_bank - 1).bit_length()
        self._rank_bits = (geometry.ranks_per_channel - 1).bit_length()

    @abstractmethod
    def to_dram(self, phys: int) -> DRAMAddress:
        """Resolve physical byte address ``phys`` into a DRAM coordinate."""

    @abstractmethod
    def to_phys(self, addr: DRAMAddress) -> int:
        """Inverse of :meth:`to_dram`."""

    # -- shared helpers ------------------------------------------------------

    def _check_phys(self, phys: int) -> None:
        if not 0 <= phys < self.geometry.total_bytes:
            raise ConfigError(
                f"physical address {phys:#x} outside module "
                f"[0, {self.geometry.total_bytes:#x})"
            )

    def _split_fields(self, phys: int) -> tuple[int, int, int, int, int]:
        """Slice ``phys`` into raw (channel, rank, row, bank, col) fields."""
        self._check_phys(phys)
        col = phys & (self.geometry.row_bytes - 1)
        rest = phys >> self._col_bits
        bank = rest & (self.geometry.banks_per_rank - 1)
        rest >>= self._bank_bits
        row = rest & (self.geometry.rows_per_bank - 1)
        rest >>= self._row_bits
        rank = rest & (self.geometry.ranks_per_channel - 1)
        channel = rest >> self._rank_bits
        return channel, rank, row, bank, col

    def _join_fields(self, channel: int, rank: int, row: int, bank: int, col: int) -> int:
        phys = channel
        phys = (phys << self._rank_bits) | rank
        phys = (phys << self._row_bits) | row
        phys = (phys << self._bank_bits) | bank
        phys = (phys << self._col_bits) | col
        return phys

    def row_stride(self) -> int:
        """Physical-address distance between adjacent rows of one bank."""
        return self.geometry.banks_per_rank * self.geometry.row_bytes

    def row_base_phys(self, channel: int, rank: int, bank: int, row: int) -> int:
        """Physical address of byte 0 of the given row."""
        return self.to_phys(DRAMAddress(channel=channel, rank=rank, bank=bank, row=row, col=0))

    def phys_in_cache_set(
        self,
        phys: int,
        *,
        line_size: int,
        sets: int,
        max_count: int | None = None,
    ) -> list[int]:
        """Physical addresses in this module congruent to ``phys``'s cache set.

        The CPU cache is physically indexed, so set membership depends only
        on the physical address, never on the DRAM mapping: every address
        ``base + k * line_size * sets`` shares ``phys``'s set (and line
        offset).  Where those congruent bytes land *in DRAM* — which rows
        and banks an eviction-set traversal will activate — does depend on
        the mapping, which is why the helper lives here: callers pair each
        returned address with :meth:`to_dram` to reason about the wasted
        activations eviction-based hammering spreads over the module.

        Enumeration is bounded by the module size; ``max_count`` truncates
        the walk early (eviction sets only need ``ways + slack`` members).
        """
        self._check_phys(phys)
        way_stride = line_size * sets
        base = phys % way_stride
        out: list[int] = []
        for candidate in range(base, self.geometry.total_bytes, way_stride):
            out.append(candidate)
            if max_count is not None and len(out) >= max_count:
                break
        return out

    def neighbors(self, addr: DRAMAddress, distance: int = 1) -> list[DRAMAddress]:
        """Rows at ``row +/- distance`` in the same bank (in-range only)."""
        if distance <= 0:
            raise ConfigError(f"distance must be positive, got {distance}")
        out = []
        for row in (addr.row - distance, addr.row + distance):
            if 0 <= row < self.geometry.rows_per_bank:
                out.append(
                    DRAMAddress(
                        channel=addr.channel,
                        rank=addr.rank,
                        bank=addr.bank,
                        row=row,
                        col=addr.col,
                    )
                )
        return out


class LinearMapping(AddressMapping):
    """Straight bit-slice mapping: the bank field is used verbatim."""

    def to_dram(self, phys: int) -> DRAMAddress:
        """Resolve ``phys`` with the bank field taken verbatim."""
        channel, rank, row, bank, col = self._split_fields(phys)
        return DRAMAddress(channel=channel, rank=rank, bank=bank, row=row, col=col)

    def to_phys(self, addr: DRAMAddress) -> int:
        """Inverse of :meth:`to_dram`."""
        self.geometry.validate_address(addr)
        return self._join_fields(addr.channel, addr.rank, addr.row, addr.bank, addr.col)


class XorBankMapping(AddressMapping):
    """Intel-style mapping: bank bits are XOR-folded with low row bits.

    ``bank_actual = bank_field XOR (row & bank_mask)`` — a per-row
    permutation of the banks, so the map stays bijective while sequential
    physical rows rotate through the banks.
    """

    def to_dram(self, phys: int) -> DRAMAddress:
        """Resolve ``phys`` with the bank field XOR-folded against the row."""
        channel, rank, row, bank_field, col = self._split_fields(phys)
        bank = bank_field ^ (row & (self.geometry.banks_per_rank - 1))
        return DRAMAddress(channel=channel, rank=rank, bank=bank, row=row, col=col)

    def to_phys(self, addr: DRAMAddress) -> int:
        """Inverse of :meth:`to_dram` (the XOR fold is an involution)."""
        self.geometry.validate_address(addr)
        bank_field = addr.bank ^ (addr.row & (self.geometry.banks_per_rank - 1))
        return self._join_fields(addr.channel, addr.rank, addr.row, bank_field, addr.col)


_MAPPINGS = {
    "linear": LinearMapping,
    "xor": XorBankMapping,
}


def make_mapping(name: str, geometry: DRAMGeometry) -> AddressMapping:
    """Construct a mapping by name (``"linear"`` or ``"xor"``)."""
    try:
        cls = _MAPPINGS[name]
    except KeyError:
        raise ConfigError(
            f"unknown address mapping {name!r}; choose from {sorted(_MAPPINGS)}"
        ) from None
    return cls(geometry)
