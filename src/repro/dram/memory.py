"""Physical memory byte store with lazy, copy-on-write frame materialisation.

Frames are materialised (as 4 KiB numpy arrays) only when first written or
when a disturbance flip lands in them; untouched frames read as zeros.
This keeps multi-GiB simulated modules cheap while preserving exact byte
semantics for the frames the experiments actually touch.

On top of laziness the store supports structural sharing: ``share_frames``
hands out the frame dict with every frame's refcount bumped, so a machine
snapshot and all its forks reference the *same* page payloads.  A frame is
only copied when a writer holds it at refcount > 1 (copy-on-write), which
makes forking a warm machine O(1) in module size instead of O(bytes
touched).  ``cow_generation`` counts how many times the store has been
shared; per-store counters feed the ``dram.memory.cow.*`` metric family.
"""

from __future__ import annotations

import numpy as np

from repro.sim.errors import ConfigError
from repro.sim.units import PAGE_SHIFT, PAGE_SIZE

_ZERO_PAGE = bytes(PAGE_SIZE)


def _frame_from_bytes(payload: bytes) -> "_Frame":
    return _Frame(np.frombuffer(payload, dtype=np.uint8).copy())


class _Frame:
    """One materialised 4 KiB frame plus its structural-sharing refcount."""

    __slots__ = ("data", "refs")

    def __init__(self, data: np.ndarray, refs: int = 1):
        self.data = data
        self.refs = refs

    def __reduce__(self):
        # A plainly pickled frame rematerialises as a private (refs=1) copy;
        # snapshot shipping bypasses this with a compact packed payload.
        return (_frame_from_bytes, (self.data.tobytes(),))

    def __deepcopy__(self, memo):
        clone = _Frame(self.data.copy())
        memo[id(self)] = clone
        return clone


class PhysicalMemory:
    """Byte-addressable physical memory of ``total_bytes`` capacity."""

    def __init__(self, total_bytes: int):
        if total_bytes <= 0 or total_bytes % PAGE_SIZE:
            raise ConfigError(
                f"total_bytes must be a positive multiple of {PAGE_SIZE}, got {total_bytes}"
            )
        self.total_bytes = total_bytes
        self.total_frames = total_bytes >> PAGE_SHIFT
        self._frames: dict[int, _Frame] = {}
        # Optional observer of ordinary stores: called as hook(addr, length)
        # after every write-path mutation.  The ECC model uses it to learn
        # that a word was rewritten (disturbance flips applied by the
        # controller go through apply_disturbance_flip, which does NOT
        # notify).
        self.write_hook = None
        # Copy-on-write bookkeeping.  cow_generation increments every time
        # this store's frames are shared out; cow_copies counts frames that
        # had to be privatised on write; cow_shares counts share events.
        self.cow_generation = 0
        self.cow_copies = 0
        self.cow_shares = 0

    def __del__(self):
        frames = getattr(self, "_frames", None)
        if frames:
            for frame in frames.values():
                frame.refs -= 1
            frames.clear()

    def _notify(self, addr: int, length: int) -> None:
        if self.write_hook is not None and length > 0:
            self.write_hook(addr, length)

    # -- bounds helpers ------------------------------------------------------

    def _check_range(self, addr: int, length: int) -> None:
        if length < 0:
            raise ConfigError(f"length must be non-negative, got {length}")
        if addr < 0 or addr + length > self.total_bytes:
            raise ConfigError(
                f"physical range [{addr:#x}, {addr + length:#x}) outside module "
                f"[0, {self.total_bytes:#x})"
            )

    def materialized_frames(self) -> int:
        """Number of frames currently backed by real storage."""
        return len(self._frames)

    def shared_frames(self) -> int:
        """Number of materialised frames whose payload is shared (refs > 1)."""
        return sum(1 for frame in self._frames.values() if frame.refs > 1)

    def is_materialized(self, pfn: int) -> bool:
        """True if frame ``pfn`` has backing storage (has been written)."""
        return pfn in self._frames

    def is_shared(self, pfn: int) -> bool:
        """True if frame ``pfn`` is materialised and its payload is shared."""
        frame = self._frames.get(pfn)
        return frame is not None and frame.refs > 1

    # -- structural sharing --------------------------------------------------

    def share_frames(self) -> dict[int, _Frame]:
        """Hand out the frame table with every frame's refcount bumped.

        The caller becomes a co-owner of every payload: it must eventually
        either pass the dict to another ``PhysicalMemory`` (whose ``__del__``
        releases the refs) or call :meth:`release_frames` on them.
        """
        for frame in self._frames.values():
            frame.refs += 1
        self.cow_shares += 1
        self.cow_generation += 1
        return dict(self._frames)

    @staticmethod
    def bump_refs(frames: dict[int, _Frame]) -> dict[int, _Frame]:
        """Bump every frame's refcount and return a fresh table for a new owner."""
        for frame in frames.values():
            frame.refs += 1
        return dict(frames)

    @staticmethod
    def release_frames(frames: dict[int, _Frame]) -> None:
        """Drop one owner's claim on every frame in ``frames``."""
        for frame in frames.values():
            frame.refs -= 1
        frames.clear()

    @staticmethod
    def pack_frames(frames: dict[int, _Frame]) -> tuple[list[int], bytes]:
        """Serialize a frame table as (sorted pfn list, concatenated payloads)."""
        pfns = sorted(frames)
        if not pfns:
            return [], b""
        payload = np.concatenate([frames[pfn].data for pfn in pfns])
        return pfns, payload.tobytes()

    @staticmethod
    def unpack_frames(pfns: list[int], payload: bytes) -> dict[int, _Frame]:
        """Rebuild a frame table from :meth:`pack_frames` output (refs=1 each)."""
        if not pfns:
            return {}
        if len(payload) != len(pfns) * PAGE_SIZE:
            raise ConfigError(
                f"packed frame payload is {len(payload)} bytes, "
                f"expected {len(pfns) * PAGE_SIZE} for {len(pfns)} frames"
            )
        # One writable backing buffer; each frame is a 4 KiB view into it.
        # Views are safe: any fork that writes sees refs > 1 and privatises.
        store = np.frombuffer(payload, dtype=np.uint8).copy()
        return {
            pfn: _Frame(store[i * PAGE_SIZE : (i + 1) * PAGE_SIZE])
            for i, pfn in enumerate(pfns)
        }

    def _frame_for_write(self, pfn: int) -> np.ndarray:
        frame = self._frames.get(pfn)
        if frame is None:
            frame = _Frame(np.zeros(PAGE_SIZE, dtype=np.uint8))
            self._frames[pfn] = frame
        elif frame.refs > 1:
            # Copy-on-write: leave the shared payload to the other owners
            # and continue with a private copy.
            frame.refs -= 1
            frame = _Frame(frame.data.copy())
            self._frames[pfn] = frame
            self.cow_copies += 1
        return frame.data

    # -- byte access -----------------------------------------------------------

    def read(self, addr: int, length: int) -> bytes:
        """Read ``length`` bytes starting at physical address ``addr``."""
        self._check_range(addr, length)
        out = bytearray()
        remaining = length
        cursor = addr
        while remaining > 0:
            pfn = cursor >> PAGE_SHIFT
            offset = cursor & (PAGE_SIZE - 1)
            chunk = min(remaining, PAGE_SIZE - offset)
            frame = self._frames.get(pfn)
            if frame is None:
                out += _ZERO_PAGE[offset : offset + chunk]
            else:
                out += frame.data[offset : offset + chunk].tobytes()
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """Write ``data`` starting at physical address ``addr``."""
        self._check_range(addr, len(data))
        self._notify(addr, len(data))
        cursor = addr
        view = memoryview(data)
        while view:
            pfn = cursor >> PAGE_SHIFT
            offset = cursor & (PAGE_SIZE - 1)
            chunk = min(len(view), PAGE_SIZE - offset)
            frame = self._frame_for_write(pfn)
            frame[offset : offset + chunk] = np.frombuffer(view[:chunk], dtype=np.uint8)
            cursor += chunk
            view = view[chunk:]

    def read_byte(self, addr: int) -> int:
        """Read a single byte."""
        self._check_range(addr, 1)
        frame = self._frames.get(addr >> PAGE_SHIFT)
        if frame is None:
            return 0
        return int(frame.data[addr & (PAGE_SIZE - 1)])

    def write_byte(self, addr: int, value: int) -> None:
        """Write a single byte (value 0..255)."""
        if not 0 <= value <= 0xFF:
            raise ConfigError(f"byte value {value} out of range [0, 255]")
        self._check_range(addr, 1)
        self._notify(addr, 1)
        frame = self._frame_for_write(addr >> PAGE_SHIFT)
        frame[addr & (PAGE_SIZE - 1)] = value

    # -- bit-level access (used by the flip machinery) ----------------------

    def get_bit(self, addr: int, bit: int) -> int:
        """Read bit ``bit`` (0 = LSB) of the byte at ``addr``."""
        if not 0 <= bit <= 7:
            raise ConfigError(f"bit index {bit} out of range [0, 7]")
        return (self.read_byte(addr) >> bit) & 1

    def gather_bits(self, addrs: np.ndarray, bits: np.ndarray) -> np.ndarray:
        """Vector form of :meth:`get_bit`: bit ``bits[i]`` of byte ``addrs[i]``.

        Returns a uint8 0/1 array.  Unmaterialised frames read as zero, the
        same as the scalar path.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        bits = np.asarray(bits, dtype=np.int64)
        if addrs.size == 0:
            return np.zeros(0, dtype=np.uint8)
        self._check_range(int(addrs.min()), 1)
        self._check_range(int(addrs.max()), 1)
        pfns = addrs >> PAGE_SHIFT
        offsets = addrs & (PAGE_SIZE - 1)
        values = np.zeros(addrs.shape, dtype=np.int64)
        for pfn in np.unique(pfns):
            frame = self._frames.get(int(pfn))
            if frame is None:
                continue
            mask = pfns == pfn
            values[mask] = frame.data[offsets[mask]]
        return ((values >> bits) & 1).astype(np.uint8)

    def set_bit(self, addr: int, bit: int, value: int) -> None:
        """Set bit ``bit`` of the byte at ``addr`` to ``value`` (0 or 1)."""
        if value not in (0, 1):
            raise ConfigError(f"bit value must be 0 or 1, got {value}")
        byte = self.read_byte(addr)
        if value:
            byte |= 1 << bit
        else:
            byte &= ~(1 << bit)
        self.write_byte(addr, byte)

    def flip_bit(self, addr: int, bit: int) -> int:
        """XOR bit ``bit`` of the byte at ``addr``; returns the new bit value."""
        byte = self.read_byte(addr) ^ (1 << bit)
        self.write_byte(addr, byte)
        return (byte >> bit) & 1

    def apply_disturbance_flip(self, addr: int, bit: int, value: int) -> None:
        """Set a bit *without* notifying the write hook.

        Used exclusively by the memory controller when a Rowhammer flip
        materialises: the data silently changes underneath the ECC state,
        unlike an ordinary store.
        """
        if value not in (0, 1):
            raise ConfigError(f"bit value must be 0 or 1, got {value}")
        self._check_range(addr, 1)
        frame = self._frame_for_write(addr >> PAGE_SHIFT)
        offset = addr & (PAGE_SIZE - 1)
        if value:
            frame[offset] |= np.uint8(1 << bit)
        else:
            frame[offset] &= np.uint8(0xFF ^ (1 << bit))

    # -- frame helpers ----------------------------------------------------------

    def fill_frame(self, pfn: int, pattern: int) -> None:
        """Fill frame ``pfn`` with a repeated byte ``pattern``."""
        if not 0 <= pattern <= 0xFF:
            raise ConfigError(f"pattern byte {pattern} out of range")
        self._check_range(pfn << PAGE_SHIFT, PAGE_SIZE)
        self._notify(pfn << PAGE_SHIFT, PAGE_SIZE)
        old = self._frames.get(pfn)
        if old is not None:
            old.refs -= 1
        self._frames[pfn] = _Frame(np.full(PAGE_SIZE, pattern, dtype=np.uint8))

    def clear_frame(self, pfn: int) -> None:
        """Reset frame ``pfn`` to zeros and drop its backing storage."""
        self._check_range(pfn << PAGE_SHIFT, PAGE_SIZE)
        self._notify(pfn << PAGE_SHIFT, PAGE_SIZE)
        frame = self._frames.pop(pfn, None)
        if frame is not None:
            frame.refs -= 1

    def frame_snapshot(self, pfn: int) -> bytes:
        """Immutable copy of the 4 KiB frame ``pfn``."""
        self._check_range(pfn << PAGE_SHIFT, PAGE_SIZE)
        frame = self._frames.get(pfn)
        return frame.data.tobytes() if frame is not None else _ZERO_PAGE
