"""Physical memory byte store with lazy frame materialisation.

Frames are materialised (as 4 KiB bytearrays) only when first written or
when a disturbance flip lands in them; untouched frames read as zeros.
This keeps multi-GiB simulated modules cheap while preserving exact byte
semantics for the frames the experiments actually touch.
"""

from __future__ import annotations

from repro.sim.errors import ConfigError
from repro.sim.units import PAGE_SHIFT, PAGE_SIZE

_ZERO_PAGE = bytes(PAGE_SIZE)


class PhysicalMemory:
    """Byte-addressable physical memory of ``total_bytes`` capacity."""

    def __init__(self, total_bytes: int):
        if total_bytes <= 0 or total_bytes % PAGE_SIZE:
            raise ConfigError(
                f"total_bytes must be a positive multiple of {PAGE_SIZE}, got {total_bytes}"
            )
        self.total_bytes = total_bytes
        self.total_frames = total_bytes >> PAGE_SHIFT
        self._frames: dict[int, bytearray] = {}
        # Optional observer of ordinary stores: called as hook(addr, length)
        # after every write-path mutation.  The ECC model uses it to learn
        # that a word was rewritten (disturbance flips applied by the
        # controller go through apply_disturbance_flip, which does NOT
        # notify).
        self.write_hook = None

    def _notify(self, addr: int, length: int) -> None:
        if self.write_hook is not None and length > 0:
            self.write_hook(addr, length)

    # -- bounds helpers ------------------------------------------------------

    def _check_range(self, addr: int, length: int) -> None:
        if length < 0:
            raise ConfigError(f"length must be non-negative, got {length}")
        if addr < 0 or addr + length > self.total_bytes:
            raise ConfigError(
                f"physical range [{addr:#x}, {addr + length:#x}) outside module "
                f"[0, {self.total_bytes:#x})"
            )

    def materialized_frames(self) -> int:
        """Number of frames currently backed by real storage."""
        return len(self._frames)

    def is_materialized(self, pfn: int) -> bool:
        """True if frame ``pfn`` has backing storage (has been written)."""
        return pfn in self._frames

    def _frame_for_write(self, pfn: int) -> bytearray:
        frame = self._frames.get(pfn)
        if frame is None:
            frame = bytearray(PAGE_SIZE)
            self._frames[pfn] = frame
        return frame

    # -- byte access -----------------------------------------------------------

    def read(self, addr: int, length: int) -> bytes:
        """Read ``length`` bytes starting at physical address ``addr``."""
        self._check_range(addr, length)
        out = bytearray()
        remaining = length
        cursor = addr
        while remaining > 0:
            pfn = cursor >> PAGE_SHIFT
            offset = cursor & (PAGE_SIZE - 1)
            chunk = min(remaining, PAGE_SIZE - offset)
            frame = self._frames.get(pfn)
            if frame is None:
                out += _ZERO_PAGE[offset : offset + chunk]
            else:
                out += frame[offset : offset + chunk]
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """Write ``data`` starting at physical address ``addr``."""
        self._check_range(addr, len(data))
        self._notify(addr, len(data))
        cursor = addr
        view = memoryview(data)
        while view:
            pfn = cursor >> PAGE_SHIFT
            offset = cursor & (PAGE_SIZE - 1)
            chunk = min(len(view), PAGE_SIZE - offset)
            frame = self._frame_for_write(pfn)
            frame[offset : offset + chunk] = view[:chunk]
            cursor += chunk
            view = view[chunk:]

    def read_byte(self, addr: int) -> int:
        """Read a single byte."""
        self._check_range(addr, 1)
        frame = self._frames.get(addr >> PAGE_SHIFT)
        if frame is None:
            return 0
        return frame[addr & (PAGE_SIZE - 1)]

    def write_byte(self, addr: int, value: int) -> None:
        """Write a single byte (value 0..255)."""
        if not 0 <= value <= 0xFF:
            raise ConfigError(f"byte value {value} out of range [0, 255]")
        self._check_range(addr, 1)
        self._notify(addr, 1)
        frame = self._frame_for_write(addr >> PAGE_SHIFT)
        frame[addr & (PAGE_SIZE - 1)] = value

    # -- bit-level access (used by the flip machinery) ----------------------

    def get_bit(self, addr: int, bit: int) -> int:
        """Read bit ``bit`` (0 = LSB) of the byte at ``addr``."""
        if not 0 <= bit <= 7:
            raise ConfigError(f"bit index {bit} out of range [0, 7]")
        return (self.read_byte(addr) >> bit) & 1

    def set_bit(self, addr: int, bit: int, value: int) -> None:
        """Set bit ``bit`` of the byte at ``addr`` to ``value`` (0 or 1)."""
        if value not in (0, 1):
            raise ConfigError(f"bit value must be 0 or 1, got {value}")
        byte = self.read_byte(addr)
        if value:
            byte |= 1 << bit
        else:
            byte &= ~(1 << bit)
        self.write_byte(addr, byte)

    def flip_bit(self, addr: int, bit: int) -> int:
        """XOR bit ``bit`` of the byte at ``addr``; returns the new bit value."""
        byte = self.read_byte(addr) ^ (1 << bit)
        self.write_byte(addr, byte)
        return (byte >> bit) & 1

    def apply_disturbance_flip(self, addr: int, bit: int, value: int) -> None:
        """Set a bit *without* notifying the write hook.

        Used exclusively by the memory controller when a Rowhammer flip
        materialises: the data silently changes underneath the ECC state,
        unlike an ordinary store.
        """
        if value not in (0, 1):
            raise ConfigError(f"bit value must be 0 or 1, got {value}")
        self._check_range(addr, 1)
        frame = self._frame_for_write(addr >> PAGE_SHIFT)
        offset = addr & (PAGE_SIZE - 1)
        if value:
            frame[offset] |= 1 << bit
        else:
            frame[offset] &= ~(1 << bit)

    # -- frame helpers ----------------------------------------------------------

    def fill_frame(self, pfn: int, pattern: int) -> None:
        """Fill frame ``pfn`` with a repeated byte ``pattern``."""
        if not 0 <= pattern <= 0xFF:
            raise ConfigError(f"pattern byte {pattern} out of range")
        self._check_range(pfn << PAGE_SHIFT, PAGE_SIZE)
        self._notify(pfn << PAGE_SHIFT, PAGE_SIZE)
        self._frames[pfn] = bytearray([pattern]) * PAGE_SIZE

    def clear_frame(self, pfn: int) -> None:
        """Reset frame ``pfn`` to zeros and drop its backing storage."""
        self._check_range(pfn << PAGE_SHIFT, PAGE_SIZE)
        self._notify(pfn << PAGE_SHIFT, PAGE_SIZE)
        self._frames.pop(pfn, None)

    def frame_snapshot(self, pfn: int) -> bytes:
        """Immutable copy of the 4 KiB frame ``pfn``."""
        self._check_range(pfn << PAGE_SHIFT, PAGE_SIZE)
        frame = self._frames.get(pfn)
        return bytes(frame) if frame is not None else _ZERO_PAGE
