"""DRAM geometry: the channel / rank / bank / row / column hierarchy.

Section III of the paper describes the physical organisation this module
captures: DIMMs on channels, ranks per DIMM, typically eight banks per rank,
and each bank a two-dimensional array of cells addressed by (row, column).
The geometry object is pure arithmetic — it knows sizes and index ranges and
validates coordinates; the mapping from physical addresses into coordinates
lives in :mod:`repro.dram.mapping`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.errors import ConfigError
from repro.sim.units import KIB, MIB


@dataclass(frozen=True)
class DRAMAddress:
    """A fully resolved DRAM coordinate for one byte of storage."""

    channel: int
    rank: int
    bank: int
    row: int
    col: int

    def bank_key(self) -> tuple[int, int, int]:
        """Identity of the containing bank, usable as a dict key."""
        return (self.channel, self.rank, self.bank)

    def __str__(self) -> str:
        return (
            f"ch{self.channel}/rk{self.rank}/ba{self.bank}"
            f"/row{self.row:#x}/col{self.col:#x}"
        )


def _require_power_of_two(name: str, value: int) -> None:
    if value <= 0 or value & (value - 1):
        raise ConfigError(f"{name} must be a positive power of two, got {value}")


@dataclass(frozen=True)
class DRAMGeometry:
    """Static shape of the simulated memory system.

    The defaults model a deliberately small module (256 MiB) so whole-machine
    experiments run quickly; every parameter scales up to realistic DDR3/DDR4
    shapes (see :meth:`ddr3_4gb`).  All counts must be powers of two so the
    physical-address bit slicing in :mod:`repro.dram.mapping` is exact.
    """

    channels: int = 1
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    rows_per_bank: int = 4096
    row_bytes: int = 8 * KIB

    def __post_init__(self) -> None:
        _require_power_of_two("channels", self.channels)
        _require_power_of_two("ranks_per_channel", self.ranks_per_channel)
        _require_power_of_two("banks_per_rank", self.banks_per_rank)
        _require_power_of_two("rows_per_bank", self.rows_per_bank)
        _require_power_of_two("row_bytes", self.row_bytes)
        if self.row_bytes < 1 * KIB:
            raise ConfigError(f"row_bytes must be at least 1 KiB, got {self.row_bytes}")

    # -- derived sizes -----------------------------------------------------

    @property
    def total_banks(self) -> int:
        """Total number of banks across all channels and ranks."""
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def bank_bytes(self) -> int:
        """Capacity of one bank."""
        return self.rows_per_bank * self.row_bytes

    @property
    def total_bytes(self) -> int:
        """Capacity of the whole module."""
        return self.total_banks * self.bank_bytes

    @property
    def row_bits(self) -> int:
        """Number of data bits held in one row."""
        return self.row_bytes * 8

    # -- coordinate helpers --------------------------------------------------

    def flat_bank_index(self, channel: int, rank: int, bank: int) -> int:
        """Collapse a (channel, rank, bank) triple into one flat bank id."""
        self.validate_bank(channel, rank, bank)
        return (channel * self.ranks_per_channel + rank) * self.banks_per_rank + bank

    def unflatten_bank_index(self, flat: int) -> tuple[int, int, int]:
        """Inverse of :meth:`flat_bank_index`."""
        if not 0 <= flat < self.total_banks:
            raise ConfigError(f"flat bank index {flat} out of range [0, {self.total_banks})")
        bank = flat % self.banks_per_rank
        rest = flat // self.banks_per_rank
        rank = rest % self.ranks_per_channel
        channel = rest // self.ranks_per_channel
        return channel, rank, bank

    def validate_bank(self, channel: int, rank: int, bank: int) -> None:
        """Raise :class:`ConfigError` unless the bank coordinate exists."""
        if not 0 <= channel < self.channels:
            raise ConfigError(f"channel {channel} out of range [0, {self.channels})")
        if not 0 <= rank < self.ranks_per_channel:
            raise ConfigError(f"rank {rank} out of range [0, {self.ranks_per_channel})")
        if not 0 <= bank < self.banks_per_rank:
            raise ConfigError(f"bank {bank} out of range [0, {self.banks_per_rank})")

    def validate_address(self, addr: DRAMAddress) -> None:
        """Raise :class:`ConfigError` unless ``addr`` is in range."""
        self.validate_bank(addr.channel, addr.rank, addr.bank)
        if not 0 <= addr.row < self.rows_per_bank:
            raise ConfigError(f"row {addr.row} out of range [0, {self.rows_per_bank})")
        if not 0 <= addr.col < self.row_bytes:
            raise ConfigError(f"col {addr.col} out of range [0, {self.row_bytes})")

    # -- presets -------------------------------------------------------------

    @classmethod
    def small(cls) -> "DRAMGeometry":
        """A 64 MiB module for fast unit tests (8 banks x 1024 rows x 8 KiB)."""
        return cls(rows_per_bank=1024)

    @classmethod
    def default(cls) -> "DRAMGeometry":
        """The standard experiment module: 256 MiB, one rank of 8 banks."""
        return cls()

    @classmethod
    def ddr3_4gb(cls) -> "DRAMGeometry":
        """A realistic single-channel 4 GiB DDR3 shape (2 ranks x 8 banks)."""
        return cls(
            channels=1,
            ranks_per_channel=2,
            banks_per_rank=8,
            rows_per_bank=32768,
            row_bytes=8 * KIB,
        )

    def __str__(self) -> str:
        return (
            f"DRAMGeometry({self.channels}ch x {self.ranks_per_channel}rk x "
            f"{self.banks_per_rank}ba x {self.rows_per_bank}rows x "
            f"{self.row_bytes // KIB}KiB rows = {self.total_bytes // MIB} MiB)"
        )
