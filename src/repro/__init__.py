"""repro — reproduction of *ExplFrame: Exploiting Page Frame Cache for
Fault Analysis of Block Ciphers* (Chakraborty et al., DATE 2020) on a
fully simulated substrate.

The package layers bottom-up:

* :mod:`repro.sim` — seeded randomness and simulated time;
* :mod:`repro.dram` — DRAM geometry, row buffers, refresh and the
  Rowhammer disturbance model;
* :mod:`repro.mm` — the Linux allocator stack: buddy system, zones,
  zonelists and the per-CPU page frame cache;
* :mod:`repro.vm` / :mod:`repro.os` — page tables, address spaces,
  tasks, scheduler, syscalls and the capability-gated pagemap;
* :mod:`repro.ciphers` — AES and PRESENT with memory-resident tables;
* :mod:`repro.pfa` — persistent fault analysis and a DFA baseline;
* :mod:`repro.attack` — templating, page-frame-cache steering, and the
  end-to-end ExplFrame attack with its baselines;
* :mod:`repro.core` — :class:`~repro.core.machine.Machine` assembly and
  result types;
* :mod:`repro.analysis` — sweep/statistics helpers for the experiment
  benchmarks.

Quickstart::

    from repro import Machine, MachineConfig, ExplFrameAttack

    machine = Machine(MachineConfig.vulnerable(seed=7))
    result = ExplFrameAttack(machine).run()
    print(result.key_recovered, result.faulty_ciphertexts)
"""

from repro.attack import (
    ExplFrameAttack,
    ExplFrameConfig,
    Hammerer,
    PagemapAttack,
    RandomSprayAttack,
    SteeringProtocol,
    SteeringTrialConfig,
    Templator,
    TemplatorConfig,
)
from repro.core import (
    EndToEndResult,
    Machine,
    MachineConfig,
    SteeringResult,
    TemplatingResult,
)

__version__ = "1.1.0"


def package_version() -> str:
    """The installed package version, falling back to the source default.

    Reads importlib metadata so an installed wheel reports its real
    version; from a source checkout (not installed) the module constant
    is used.  Trace files record this as their producer version.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - ancient interpreters only
        return __version__
    try:
        return version("repro")
    except PackageNotFoundError:
        return __version__

__all__ = [
    "EndToEndResult",
    "ExplFrameAttack",
    "ExplFrameConfig",
    "Hammerer",
    "Machine",
    "MachineConfig",
    "PagemapAttack",
    "RandomSprayAttack",
    "SteeringProtocol",
    "SteeringResult",
    "SteeringTrialConfig",
    "TemplatingResult",
    "Templator",
    "TemplatorConfig",
    "__version__",
    "package_version",
]
