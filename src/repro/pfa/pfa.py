"""Persistent Fault Analysis of AES (Zhang et al., TCHES 2018).

Setting: one S-box entry ``j`` is persistently corrupted, ``S[j]`` reading
``v' = v* ^ delta`` instead of ``v* = S_clean[j]``.  In the last AES round
every ciphertext byte is ``C[i] = S[x] ^ K10[i]`` for a (uniform) state
byte ``x``, so:

* the value ``v* ^ K10[i]`` can **never** appear at position ``i`` — the
  faulty table's image no longer contains ``v*``;
* the value ``v' ^ K10[i]`` appears with **double** probability.

Collect N faulty ciphertexts, per position count byte values, and the key
byte falls out of the missing value: ``K10[i] = missing_i ^ v*``.  The
attacker in ExplFrame *knows* ``v*`` — she templated the page and knows
which table byte her flip hits — so the known-fault recovery applies; the
unknown-fault variant (enumerate ``v*`` and cross-check with the doubled
value ``v'``) is implemented for completeness.

Expected key-space shape: after N ciphertexts the number of values never
seen at one position is ``1 + 255 * (254/255)^N`` in expectation, so the
per-byte candidate count decays geometrically and reaches 1 at roughly
N ~ 2000-2600 — the curve published by Zhang et al. that experiment T5
reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ciphers.aes import expand_key
from repro.ciphers.aes_tables import AES_RCON, AES_SBOX
from repro.sim.errors import FaultError


@dataclass
class PfaState:
    """Incremental per-position byte-value counters over faulty ciphertexts."""

    counts: np.ndarray = field(
        default_factory=lambda: np.zeros((16, 256), dtype=np.int64)
    )
    total: int = 0

    def update(self, ciphertexts: np.ndarray | list[bytes]) -> None:
        """Absorb a batch of ciphertexts into the counters."""
        if isinstance(ciphertexts, list):
            if not ciphertexts:
                return
            data = np.frombuffer(b"".join(ciphertexts), dtype=np.uint8).reshape(-1, 16)
        else:
            data = np.asarray(ciphertexts, dtype=np.uint8)
            if data.ndim != 2 or data.shape[1] != 16:
                raise FaultError(f"ciphertexts must be (N, 16), got {data.shape}")
        for position in range(16):
            self.counts[position] += np.bincount(data[:, position], minlength=256)
        self.total += data.shape[0]

    def missing_values(self, position: int) -> list[int]:
        """Byte values never observed at ``position`` so far."""
        return [int(v) for v in np.flatnonzero(self.counts[position] == 0)]

    def most_frequent(self, position: int) -> int:
        """The most frequent value at ``position`` (candidate v' ^ k)."""
        return int(np.argmax(self.counts[position]))

    def candidates_per_position(self) -> list[int]:
        """Number of still-possible key values per byte position."""
        return [len(self.missing_values(position)) for position in range(16)]

    def log2_keyspace(self) -> float:
        """log2 of the remaining key space implied by the missing sets.

        Positions with no missing value yet contribute a full 8 bits.
        """
        total = 0.0
        for position in range(16):
            remaining = len(self.missing_values(position))
            total += float(np.log2(remaining)) if remaining else 8.0
        return total

    def is_unique(self) -> bool:
        """True when every position has exactly one missing value."""
        return all(len(self.missing_values(p)) == 1 for p in range(16))


def expected_remaining_candidates(n_ciphertexts: int) -> float:
    """E[missing values per position] after ``n_ciphertexts`` samples.

    At one position the faulty last round emits 254 values with
    probability 1/256 each, the doubled value ``v' ^ k`` with probability
    2/256, and the structurally missing value ``v* ^ k`` never.  Hence

        E[unseen] = 1 + 254 * (255/256)^n + (254/256)^n
    """
    if n_ciphertexts < 0:
        raise FaultError(f"n_ciphertexts must be non-negative, got {n_ciphertexts}")
    n = n_ciphertexts
    return 1.0 + 254.0 * (255.0 / 256.0) ** n + (254.0 / 256.0) ** n


def recover_k10_known_fault(state: PfaState, v_star: int) -> list[list[int]]:
    """Candidate last-round-key bytes per position, knowing ``v*``.

    ``v*`` is the clean value of the corrupted S-box entry — known to the
    ExplFrame attacker from her flip template.  Returns, per position, the
    list of candidate key bytes ``missing ^ v*`` (singleton once enough
    ciphertexts have been absorbed).
    """
    if not 0 <= v_star <= 0xFF:
        raise FaultError(f"v_star {v_star} out of byte range")
    return [
        [missing ^ v_star for missing in state.missing_values(position)]
        for position in range(16)
    ]


def recover_k10_known_faults(
    state: PfaState, v_stars: list[int]
) -> list[list[int]]:
    """Candidate key bytes per position for ``t = len(v_stars)`` faults.

    With ``t`` corrupted S-box entries (clean values ``v_stars``), every
    position's missing set converges to ``{v ^ k for v in v_stars}``.  A
    key byte candidate must map the *whole* v* set onto the observed
    missing set.  This generalisation matters in practice for ECC memory,
    where a visible Rowhammer corruption always involves at least two
    bits (often two table entries) per 64-bit word.

    Positions whose missing set is still larger than ``t`` contribute
    every key byte consistent with *some* subset — recovery tightens as
    data accumulates, exactly like the t=1 case.
    """
    unique_v = sorted(set(v_stars))
    if not unique_v:
        raise FaultError("need at least one fault value")
    for v in unique_v:
        if not 0 <= v <= 0xFF:
            raise FaultError(f"v_star {v} out of byte range")
    candidates: list[list[int]] = []
    for position in range(16):
        missing = set(state.missing_values(position))
        survivors = [
            k
            for k in range(256)
            if {v ^ k for v in unique_v} <= missing
        ]
        candidates.append(survivors)
    return candidates


def refine_with_doubled_values(
    state: PfaState,
    candidates: list[list[int]],
    v_primes: list[int],
) -> list[list[int]]:
    """Prune key-byte candidates using the over-represented values.

    The missing-set relation alone leaves a ``v_i* XOR v_j*`` degeneracy
    when several entries are corrupted.  But each faulty value ``v'``
    appears with *double* frequency at ``v' ^ k``, and the attacker knows
    the ``v'`` values (she chose the flips).  Candidates are ranked by the
    *smallest* count among their ``{v' ^ k}`` cells — the correct key's
    worst cell is Poisson(2N/256) against Poisson(N/256) for impostors —
    and only the top-ranked candidates (ties kept) survive.  Needs enough
    ciphertexts for the factor-2 frequency gap to be resolvable (a few
    thousand).
    """
    unique_vp = sorted(set(v_primes))
    if not unique_vp:
        raise FaultError("need at least one faulty value")
    refined: list[list[int]] = []
    for position in range(16):
        pool = candidates[position]
        if not pool:
            refined.append([])
            continue
        scores = {
            k: min(int(state.counts[position][v ^ k]) for v in unique_vp)
            for k in pool
        }
        best = max(scores.values())
        refined.append([k for k in pool if scores[k] == best])
    return refined


def saturated_for_faults(state: PfaState, t: int) -> bool:
    """True when every position's missing set has shrunk to exactly ``t``."""
    if t <= 0:
        raise FaultError(f"fault count must be positive, got {t}")
    return all(len(state.missing_values(p)) == t for p in range(16))


def recover_k10_unknown_fault(state: PfaState) -> list[tuple[int, bytes]]:
    """Candidate (v*, K10) pairs without knowing the fault value.

    Without knowledge of ``v*`` the per-position statistics carry an
    inherent 256-fold degeneracy: XORing every key byte and ``v*`` with
    the same constant leaves the observable distribution unchanged.  The
    analysis therefore reduces the key space to 8 bits (256 candidates,
    one per ``v*`` guess), exactly as Zhang et al. report for the
    unknown-fault setting; a single known plaintext/ciphertext pair
    disambiguates (:func:`disambiguate_with_known_pair`).

    Needs every position saturated (one missing value each); raises
    otherwise.
    """
    if not state.is_unique():
        raise FaultError(
            "unknown-fault recovery needs exactly one missing value per "
            "position; collect more ciphertexts"
        )
    missing = [state.missing_values(position)[0] for position in range(16)]
    return [
        (v_star, bytes(m ^ v_star for m in missing)) for v_star in range(256)
    ]


def disambiguate_with_known_pair(
    survivors: list[tuple[int, bytes]],
    plaintext: bytes,
    ciphertext: bytes,
) -> tuple[int, bytes] | None:
    """Pick the (v*, K10) candidate matching one known clean pair.

    The pair must come from the *unfaulted* cipher (e.g. captured before
    the attack); each candidate round key is inverted to a master key and
    test-encrypted.
    """
    from repro.ciphers.aes import AES  # local import to avoid a cycle

    for v_star, k10 in survivors:
        try:
            master = invert_key_schedule_128(k10)
        except FaultError:
            continue
        if AES(master).encrypt_block(plaintext) == ciphertext:
            return v_star, k10
    return None


def invert_key_schedule_128(k10: bytes) -> bytes:
    """Recover the AES-128 master key from the round-10 key.

    The AES-128 key schedule is invertible: walking the word recurrence
    backwards from the last four words yields the original key.
    """
    if len(k10) != 16:
        raise FaultError(f"round key must be 16 bytes, got {len(k10)}")
    words = [list(k10[4 * i : 4 * i + 4]) for i in range(4)]
    for round_index in range(10, 0, -1):
        previous = [None] * 4
        # w[i-1] for the earlier round: w_prev[3] = w[3] ^ w[2], etc.
        previous[3] = [a ^ b for a, b in zip(words[3], words[2])]
        previous[2] = [a ^ b for a, b in zip(words[2], words[1])]
        previous[1] = [a ^ b for a, b in zip(words[1], words[0])]
        temp = previous[3][1:] + previous[3][:1]
        temp = [AES_SBOX[b] for b in temp]
        temp[0] ^= AES_RCON[round_index - 1]
        previous[0] = [a ^ b for a, b in zip(words[0], temp)]
        words = previous
    master = bytes(b for word in words for b in word)
    # Sanity: re-expanding must reproduce the round-10 key we started from.
    if expand_key(master)[10] != bytes(k10):
        raise FaultError("key schedule inversion failed self-check")
    return master


def ciphertexts_to_unique_key(
    encrypt_batch,
    v_star: int,
    batch: int = 256,
    limit: int = 20_000,
) -> tuple[int, PfaState]:
    """Feed batches of faulty ciphertexts until the key is unique.

    ``encrypt_batch(n)`` must return an (n, 16) uint8 array of faulty
    ciphertexts.  Returns (ciphertexts consumed, final state).  Raises
    :class:`FaultError` if ``limit`` is reached first — which, on a
    correctly faulted cipher, indicates the fault is not in the live path.
    """
    del v_star  # uniqueness is a property of the missing sets alone
    state = PfaState()
    while state.total < limit:
        state.update(encrypt_batch(batch))
        if state.is_unique():
            return state.total, state
    raise FaultError(
        f"key not unique after {limit} ciphertexts; is the fault persistent "
        f"and in the active S-box?"
    )
