"""Fault analysis: PFA, a DFA baseline, and key-rank accounting.

:mod:`repro.pfa.pfa` implements Persistent Fault Analysis (Zhang et al.,
TCHES 2018), the offline stage the paper's conclusion points to: a single
persistent S-box fault makes one value *impossible* in every ciphertext
byte, and the impossible value reveals the last round key byte-by-byte.

:mod:`repro.pfa.dfa` implements Giraud's single-bit last-round DFA as the
classical baseline — it needs *pairs* of correct/faulty ciphertexts of the
same plaintext and a transient fault, requirements the persistent model
removes.

:mod:`repro.pfa.keyrank` aggregates per-byte candidate sets into key-space
sizes and exact enumeration when feasible.
"""

from repro.pfa.dfa import collect_dfa_pairs, giraud_dfa
from repro.pfa.keyrank import KeyCandidates, enumerate_keys, log2_keyspace
from repro.pfa.pfa import (
    PfaState,
    disambiguate_with_known_pair,
    expected_remaining_candidates,
    invert_key_schedule_128,
    recover_k10_known_fault,
    recover_k10_known_faults,
    recover_k10_unknown_fault,
    refine_with_doubled_values,
    saturated_for_faults,
)
from repro.pfa.pfa_present import (
    PresentPfaState,
    ciphertexts_to_unique_k32,
    invert_present80_schedule,
    recover_k32_known_fault,
    recover_present80_key,
)

__all__ = [
    "KeyCandidates",
    "PfaState",
    "PresentPfaState",
    "ciphertexts_to_unique_k32",
    "invert_present80_schedule",
    "recover_k32_known_fault",
    "recover_present80_key",
    "collect_dfa_pairs",
    "disambiguate_with_known_pair",
    "enumerate_keys",
    "expected_remaining_candidates",
    "giraud_dfa",
    "invert_key_schedule_128",
    "log2_keyspace",
    "recover_k10_known_fault",
    "recover_k10_known_faults",
    "recover_k10_unknown_fault",
    "refine_with_doubled_values",
    "saturated_for_faults",
]
