"""Key-space accounting and enumeration over per-byte candidate sets."""

from __future__ import annotations

import itertools
import math

from repro.sim.errors import FaultError


class KeyCandidates:
    """Per-byte candidate sets for a 16-byte (round) key."""

    def __init__(self, per_byte: list[list[int]]):
        if len(per_byte) != 16:
            raise FaultError(f"need 16 positions, got {len(per_byte)}")
        for position, values in enumerate(per_byte):
            if not values:
                raise FaultError(f"position {position} has no candidates left")
            for value in values:
                if not 0 <= value <= 0xFF:
                    raise FaultError(f"candidate {value} at {position} out of range")
        self.per_byte = [sorted(set(values)) for values in per_byte]

    @property
    def keyspace(self) -> int:
        """Exact number of keys consistent with the candidate sets."""
        return math.prod(len(values) for values in self.per_byte)

    @property
    def log2_keyspace(self) -> float:
        """Key space in bits."""
        return sum(math.log2(len(values)) for values in self.per_byte)

    @property
    def is_unique(self) -> bool:
        """True when exactly one key remains."""
        return self.keyspace == 1

    def unique_key(self) -> bytes:
        """The single remaining key; raises if not yet unique."""
        if not self.is_unique:
            raise FaultError(
                f"key not unique: {self.keyspace} candidates "
                f"({self.log2_keyspace:.1f} bits) remain"
            )
        return bytes(values[0] for values in self.per_byte)

    def __iter__(self):
        """Iterate candidate keys (most useful once the space is small)."""
        for combo in itertools.product(*self.per_byte):
            yield bytes(combo)


def log2_keyspace(per_byte: list[list[int]]) -> float:
    """Shorthand: bits of key space in a candidate structure."""
    return KeyCandidates(per_byte).log2_keyspace


def enumerate_keys(
    candidates: KeyCandidates,
    check,
    limit: int = 1 << 20,
) -> bytes | None:
    """Search the candidate space for the key accepted by ``check``.

    ``check(key) -> bool`` typically verifies a known plaintext/ciphertext
    pair.  Refuses spaces larger than ``limit`` (the caller should gather
    more data instead of brute-forcing).
    """
    if candidates.keyspace > limit:
        raise FaultError(
            f"candidate space 2^{candidates.log2_keyspace:.1f} exceeds "
            f"enumeration limit 2^{math.log2(limit):.0f}"
        )
    for key in candidates:
        if check(key):
            return key
    return None
