"""Persistent Fault Analysis of PRESENT-80.

Zhang et al. (TCHES 2018) apply PFA to PRESENT as well as AES, and the
numbers are dramatically smaller: the S-box has only 16 entries, so one
corrupted entry removes one of 16 possible nibble values and the missing
value saturates after a few dozen ciphertexts.

Structure.  The PRESENT last round is

    C = K32 XOR P(S(X))

with P the (linear, public) bit permutation.  Applying the inverse
permutation to the ciphertext,

    invP(C) = invP(K32) XOR S(X)

so with ``k' = invP(K32)``, nibble ``j`` of ``invP(C)`` is
``S(x_j) XOR k'_j`` — the same per-position missing-value structure as
the AES last round, over nibbles.  The fault's clean value ``v*`` never
appears at nibble ``j``, revealing ``k'_j = missing_j XOR v*``; the round
key is ``K32 = P(k')``.

Master key.  The PRESENT-80 schedule exposes only the top 64 bits of the
80-bit key register in each round key; the remaining 16 bits are brute
forced against one known plaintext/ciphertext pair by inverting the
schedule for each of the 2^16 guesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ciphers.present import PRESENT_SBOX, Present, inv_p_layer, p_layer
from repro.sim.errors import FaultError

_ROUNDS = 31


@dataclass
class PresentPfaState:
    """Per-nibble-position value counters over faulty PRESENT ciphertexts."""

    counts: np.ndarray = field(
        default_factory=lambda: np.zeros((16, 16), dtype=np.int64)
    )
    total: int = 0

    def update(self, ciphertexts: list[bytes]) -> None:
        """Absorb faulty 8-byte ciphertexts (inverse-permuted internally)."""
        for ciphertext in ciphertexts:
            if len(ciphertext) != 8:
                raise FaultError(f"PRESENT blocks are 8 bytes, got {len(ciphertext)}")
            unpermuted = inv_p_layer(int.from_bytes(ciphertext, "big"))
            for position in range(16):
                value = (unpermuted >> (4 * position)) & 0xF
                self.counts[position][value] += 1
            self.total += 1

    def missing_values(self, position: int) -> list[int]:
        """Nibble values never observed at ``position``."""
        if not 0 <= position < 16:
            raise FaultError(f"position {position} out of range [0, 16)")
        return [int(v) for v in np.flatnonzero(self.counts[position] == 0)]

    def is_unique(self) -> bool:
        """True when every position has exactly one missing value."""
        return all(len(self.missing_values(p)) == 1 for p in range(16))

    def log2_keyspace(self) -> float:
        """Bits of last-round-key space implied by the missing sets."""
        total = 0.0
        for position in range(16):
            remaining = len(self.missing_values(position))
            total += float(np.log2(remaining)) if remaining else 4.0
        return total


def recover_k32_known_fault(state: PresentPfaState, v_star: int) -> int:
    """The 64-bit last round key, given the fault's clean value ``v*``.

    Requires a saturated state (one missing value per position).
    """
    if not 0 <= v_star <= 0xF:
        raise FaultError(f"v_star {v_star} out of nibble range")
    if not state.is_unique():
        raise FaultError("state not saturated; collect more ciphertexts")
    k_prime = 0
    for position in range(16):
        (missing,) = state.missing_values(position)
        k_prime |= (missing ^ v_star) << (4 * position)
    return p_layer(k_prime)


def invert_present80_schedule(register_after_31: int) -> bytes:
    """Walk the PRESENT-80 key schedule backwards to the master key.

    ``register_after_31`` is the full 80-bit key register *before* the
    32nd round key extraction — its top 64 bits are K32.
    """
    if not 0 <= register_after_31 < (1 << 80):
        raise FaultError("register value out of 80-bit range")
    inv_sbox = bytearray(16)
    for index, value in enumerate(PRESENT_SBOX):
        inv_sbox[value] = index
    register = register_after_31
    for round_index in range(_ROUNDS, 0, -1):
        register ^= round_index << 15
        top = inv_sbox[register >> 76]
        register = (top << 76) | (register & ((1 << 76) - 1))
        # Invert the left-rotate-by-61 (i.e. rotate right by 61).
        register = ((register >> 61) | (register << 19)) & ((1 << 80) - 1)
    return register.to_bytes(10, "big")


def recover_present80_key(
    state: PresentPfaState,
    v_star: int,
    known_plaintext: bytes,
    known_ciphertext: bytes,
    low_bits_candidates=None,
) -> bytes | None:
    """Full PRESENT-80 master key from PFA statistics plus one clean pair.

    The last round key pins 64 of the register's 80 bits; the low 16 bits
    are brute forced (a few tens of seconds of pure Python), each guess
    inverted through the schedule and checked against the known
    (unfaulted) plaintext/ciphertext pair.  ``low_bits_candidates``
    restricts the search (tests use a narrowed range; the default is the
    full 2^16 space).
    """
    k32 = recover_k32_known_fault(state, v_star)
    candidates = low_bits_candidates if low_bits_candidates is not None else range(1 << 16)
    for low_bits in candidates:
        register = (k32 << 16) | (low_bits & 0xFFFF)
        key = invert_present80_schedule(register)
        if Present(key).encrypt_block(known_plaintext) == known_ciphertext:
            return key
    return None


def ciphertexts_to_unique_k32(
    encrypt_block,
    plaintext_source,
    limit: int = 2000,
) -> tuple[int, PresentPfaState]:
    """Feed faulty ciphertexts until every nibble position saturates.

    ``encrypt_block(pt)`` must run the *faulty* cipher; ``plaintext_source(i)``
    supplies the i-th plaintext.  Returns (ciphertexts consumed, state).
    """
    state = PresentPfaState()
    batch: list[bytes] = []
    for index in range(limit):
        batch.append(encrypt_block(plaintext_source(index)))
        if len(batch) >= 16:
            state.update(batch)
            batch.clear()
            if state.is_unique():
                return state.total, state
    state.update(batch)
    if state.is_unique():
        return state.total, state
    raise FaultError(
        f"PRESENT key not unique after {limit} ciphertexts; is the fault "
        f"in the low nibble of an active S-box entry?"
    )
