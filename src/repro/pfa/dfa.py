"""Giraud's single-bit last-round DFA — the classical baseline.

Differential fault analysis needs what persistent fault analysis does
not: *pairs* of (correct, faulty) ciphertexts of the **same plaintext**,
with a *transient* single-bit fault injected into the state right before
the final SubBytes.  For a faulted byte at output position ``i``:

    C[i]  = S[x]      ^ K10[i]
    C'[i] = S[x ^ e]  ^ K10[i]      with e in {1, 2, 4, ..., 128}

so a key guess ``k`` is consistent when ``InvS[C[i] ^ k] ^ InvS[C'[i] ^ k]``
is a single-bit value.  Intersecting candidate sets over a few pairs pins
each key byte.

The baseline exists to quantify the paper's point: ExplFrame's persistent
fault needs no plaintext control, no pairing, and no fault timing — PFA
works from faulty ciphertexts alone.
"""

from __future__ import annotations

from repro.ciphers.aes import AES
from repro.ciphers.aes_tables import AES_INV_SBOX, SHIFT_ROWS_PERM
from repro.sim.errors import FaultError

_SINGLE_BITS = tuple(1 << b for b in range(8))


def collect_dfa_pairs(
    aes: AES,
    plaintexts: list[bytes],
    fault_position: int,
    fault_bit: int,
) -> list[tuple[bytes, bytes]]:
    """Encrypt each plaintext twice: clean and with a transient bit fault.

    ``fault_position`` indexes the state *before* the final SubBytes; the
    faulty output byte appears at the ShiftRows-permuted position.
    """
    if not 0 <= fault_bit <= 7:
        raise FaultError(f"fault_bit {fault_bit} out of range [0, 7]")
    pairs = []
    for plaintext in plaintexts:
        clean = aes.encrypt_block(plaintext)
        faulty = aes.encrypt_block(
            plaintext, transient_fault=(fault_position, 1 << fault_bit)
        )
        pairs.append((clean, faulty))
    return pairs


def output_position_of_state_byte(state_position: int) -> int:
    """Where a pre-SubBytes state byte lands in the ciphertext.

    The final round applies SubBytes then ShiftRows: output position ``i``
    reads state position ``SHIFT_ROWS_PERM[i]``.
    """
    if not 0 <= state_position < 16:
        raise FaultError(f"state position {state_position} out of range")
    return SHIFT_ROWS_PERM.index(state_position)


def giraud_dfa(pairs: list[tuple[bytes, bytes]]) -> dict[int, set[int]]:
    """Recover last-round-key candidates from correct/faulty pairs.

    Returns a map ``output position -> surviving key byte candidates`` for
    every position where at least one pair differed.  Positions narrow as
    more pairs (with faults at the corresponding state byte) are supplied.
    """
    if not pairs:
        raise FaultError("need at least one ciphertext pair")
    candidates: dict[int, set[int]] = {}
    for clean, faulty in pairs:
        if len(clean) != 16 or len(faulty) != 16:
            raise FaultError("ciphertexts must be 16 bytes")
        for position in range(16):
            c, f = clean[position], faulty[position]
            if c == f:
                continue
            survivors = {
                k
                for k in range(256)
                if (AES_INV_SBOX[c ^ k] ^ AES_INV_SBOX[f ^ k]) in _SINGLE_BITS
            }
            if position in candidates:
                candidates[position] &= survivors
            else:
                candidates[position] = survivors
    return candidates


def pairs_needed_for_unique(
    aes: AES,
    plaintext_source,
    max_pairs: int = 64,
) -> dict[int, int]:
    """How many pairs each output position needs to reach one candidate.

    ``plaintext_source(i)`` must return the i-th random plaintext.  Faults
    are injected round-robin over the 16 state bytes; returns, per output
    position, the pair count at which its candidate set became a
    singleton.
    """
    remaining: dict[int, set[int]] = {}
    settled: dict[int, int] = {}
    for index in range(max_pairs):
        state_position = index % 16
        out_position = output_position_of_state_byte(state_position)
        plaintext = plaintext_source(index)
        pair = collect_dfa_pairs(aes, [plaintext], state_position, fault_bit=index % 8)
        partial = giraud_dfa(pair)
        if out_position not in partial:
            continue
        if out_position in remaining:
            remaining[out_position] &= partial[out_position]
        else:
            remaining[out_position] = partial[out_position]
        if out_position not in settled and len(remaining[out_position]) == 1:
            settled[out_position] = index + 1
        if len(settled) == 16:
            break
    return settled
