"""Memory zones and watermarks (paper Section III).

A 64-bit kernel divides each node's frames into ZONE_DMA (first 16 MiB),
ZONE_DMA32 (to 4 GiB) and ZONE_NORMAL (the rest).  The simulated module is
much smaller than 4 GiB, so the default layout scales the boundaries down
while preserving the structure that matters: three zones with a strict
fallback order and independent buddy allocators, watermarks and per-CPU
page caches.  (DESIGN.md records this substitution.)

Watermarks follow the kernel's shape: ``min`` derived from zone size (the
``min_free_kbytes`` heuristic), ``low = min * 5/4`` (kswapd wakes below
this), ``high = min * 3/2`` (kswapd stops above this).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.mm.buddy import MAX_ORDER, BuddyAllocator
from repro.mm.page import FrameTable
from repro.mm.pcp import PcpConfig, PerCpuPageCache
from repro.sim.errors import ConfigError
from repro.sim.units import KIB, MIB, PAGE_SIZE


class ZoneType(enum.Enum):
    """Zone kinds of a 64-bit kernel, in ascending address order."""

    DMA = "DMA"
    DMA32 = "DMA32"
    NORMAL = "Normal"


# Allocation fallback order: prefer NORMAL, spill into DMA32, then DMA —
# exactly the zonelist a 64-bit kernel builds for a GFP_KERNEL request.
ZONELIST_ORDER = (ZoneType.NORMAL, ZoneType.DMA32, ZoneType.DMA)


@dataclass(frozen=True)
class ZoneWatermarks:
    """Free-page thresholds controlling allocation pressure responses."""

    min_pages: int
    low_pages: int
    high_pages: int

    def __post_init__(self) -> None:
        if not 0 <= self.min_pages <= self.low_pages <= self.high_pages:
            raise ConfigError(
                f"watermarks must satisfy 0 <= min <= low <= high, got "
                f"{self.min_pages}/{self.low_pages}/{self.high_pages}"
            )

    @classmethod
    def for_zone_size(cls, zone_pages: int) -> "ZoneWatermarks":
        """Kernel-style watermarks from zone size.

        Follows the ``min_free_kbytes = 4 * sqrt(16 * mem_kbytes)`` shape of
        the kernel heuristic, scaled so small simulated zones still get a
        few dozen reserved pages.
        """
        zone_kb = zone_pages * (PAGE_SIZE // KIB)
        min_kb = int(4 * math.sqrt(16 * max(zone_kb, 1)))
        min_pages = max(8, min_kb // (PAGE_SIZE // KIB))
        min_pages = min(min_pages, max(zone_pages // 8, 1))
        return cls(
            min_pages=min_pages,
            low_pages=min_pages * 5 // 4,
            high_pages=min_pages * 3 // 2,
        )


class Zone:
    """One memory zone: a frame range with its own buddy and pcp caches."""

    def __init__(
        self,
        zone_type: ZoneType,
        frames: FrameTable,
        start_pfn: int,
        end_pfn: int,
        num_cpus: int,
        pcp_config: PcpConfig | None = None,
        watermarks: ZoneWatermarks | None = None,
    ):
        if num_cpus <= 0:
            raise ConfigError(f"num_cpus must be positive, got {num_cpus}")
        self.zone_type = zone_type
        self.start_pfn = start_pfn
        self.end_pfn = end_pfn
        self.buddy = BuddyAllocator(frames, start_pfn, end_pfn)
        self.watermarks = watermarks or ZoneWatermarks.for_zone_size(end_pfn - start_pfn)
        self._pcp = [
            PerCpuPageCache(self.buddy, pcp_config) for _ in range(num_cpus)
        ]
        self.kswapd_wakeups = 0

    @property
    def name(self) -> str:
        """Zone name as /proc/zoneinfo would print it."""
        return self.zone_type.value

    @property
    def total_pages(self) -> int:
        """Number of frames the zone spans."""
        return self.end_pfn - self.start_pfn

    @property
    def free_pages(self) -> int:
        """Frames available right now (buddy free lists + pcp lists)."""
        return self.buddy.free_pages + sum(pcp.count for pcp in self._pcp)

    def pcp(self, cpu: int) -> PerCpuPageCache:
        """The per-CPU page frame cache of ``cpu`` for this zone."""
        if not 0 <= cpu < len(self._pcp):
            raise ConfigError(f"cpu {cpu} out of range [0, {len(self._pcp)})")
        return self._pcp[cpu]

    @property
    def num_cpus(self) -> int:
        """Number of per-CPU caches this zone maintains."""
        return len(self._pcp)

    def contains(self, pfn: int) -> bool:
        """True if the frame belongs to this zone."""
        return self.start_pfn <= pfn < self.end_pfn

    def watermark_ok(self, order: int) -> bool:
        """Can an order-``order`` allocation proceed without breaching min?"""
        return self.buddy.free_pages - (1 << order) >= self.watermarks.min_pages

    def below_low_watermark(self) -> bool:
        """True when kswapd should be woken for this zone."""
        return self.buddy.free_pages < self.watermarks.low_pages

    def above_high_watermark(self) -> bool:
        """True when kswapd may stop reclaiming for this zone."""
        return self.buddy.free_pages >= self.watermarks.high_pages

    def drain_pcp(self, cpu: int) -> int:
        """Drain one CPU's cache back to the buddy; returns frames moved."""
        return self.pcp(cpu).drain()

    def drain_all_pcp(self) -> int:
        """Drain every CPU's cache (like ``drain_all_pages``)."""
        return sum(pcp.drain() for pcp in self._pcp)

    def __repr__(self) -> str:
        return (
            f"Zone({self.name}, pfns [{self.start_pfn:#x}, {self.end_pfn:#x}), "
            f"free={self.free_pages}/{self.total_pages})"
        )


@dataclass(frozen=True)
class ZoneLayout:
    """Sizes (in bytes) of the zones carved out of a node's memory."""

    dma_bytes: int = 16 * MIB
    dma32_bytes: int | None = None  # None: half of the remainder
    # NORMAL takes whatever remains.

    def carve(self, total_bytes: int, base_pfn: int = 0) -> list[tuple[ZoneType, int, int]]:
        """Split ``total_bytes`` into (type, start_pfn, end_pfn) triples.

        ``base_pfn`` offsets the whole layout (NUMA node 1+ memory starts
        where the previous node's ends).  Boundaries are aligned down to
        max-order blocks so every zone's buddy allocator starts aligned.
        """
        align_pages = 1 << MAX_ORDER
        if base_pfn % align_pages:
            raise ConfigError(
                f"base_pfn {base_pfn:#x} must be aligned to a max-order block"
            )
        total_pages = total_bytes // PAGE_SIZE
        if total_pages < 3 * align_pages:
            raise ConfigError(
                f"memory too small to carve three zones: {total_bytes} bytes"
            )

        def align(pages: int) -> int:
            """Round down to a max-order multiple (at least one block)."""
            return max(align_pages, (pages // align_pages) * align_pages)

        dma_pages = align(self.dma_bytes // PAGE_SIZE)
        remainder = total_pages - dma_pages
        if self.dma32_bytes is None:
            dma32_pages = align(remainder // 2)
        else:
            dma32_pages = align(self.dma32_bytes // PAGE_SIZE)
        if dma_pages + dma32_pages + align_pages > total_pages:
            raise ConfigError("zone layout exceeds available memory")
        return [
            (ZoneType.DMA, base_pfn, base_pfn + dma_pages),
            (ZoneType.DMA32, base_pfn + dma_pages, base_pfn + dma_pages + dma32_pages),
            (ZoneType.NORMAL, base_pfn + dma_pages + dma32_pages, base_pfn + total_pages),
        ]
