"""NUMA node: the container of zones, with zonelist construction.

Linux allocates node-locally (paper Section III): each node owns its zones
and builds, for every possible "preferred" zone, the ordered fallback list
the allocator walks.  The single-node default machine still goes through
the zonelist machinery so multi-node configurations behave identically.
"""

from __future__ import annotations

from repro.mm.page import FrameTable
from repro.mm.pcp import PcpConfig
from repro.mm.zone import ZONELIST_ORDER, Zone, ZoneLayout, ZoneType
from repro.sim.errors import ConfigError


class NumaNode:
    """One NUMA node holding a set of zones over a contiguous frame range."""

    def __init__(
        self,
        node_id: int,
        frames: FrameTable,
        total_bytes: int,
        num_cpus: int,
        layout: ZoneLayout | None = None,
        pcp_config: PcpConfig | None = None,
        base_pfn: int = 0,
    ):
        if node_id < 0:
            raise ConfigError(f"node_id must be non-negative, got {node_id}")
        self.node_id = node_id
        self.base_pfn = base_pfn
        self.zones: dict[ZoneType, Zone] = {}
        carved = (layout or ZoneLayout()).carve(total_bytes, base_pfn=base_pfn)
        for zone_type, start_pfn, end_pfn in carved:
            self.zones[zone_type] = Zone(
                zone_type,
                frames,
                start_pfn,
                end_pfn,
                num_cpus=num_cpus,
                pcp_config=pcp_config,
            )

    def zone(self, zone_type: ZoneType) -> Zone:
        """Look up one zone by type."""
        try:
            return self.zones[zone_type]
        except (KeyError, TypeError):
            raise ConfigError(f"node {self.node_id} has no zone {zone_type!r}") from None

    def zonelist(self, preferred: ZoneType = ZoneType.NORMAL) -> list[Zone]:
        """Fallback-ordered zones for an allocation preferring ``preferred``.

        The list starts at the preferred zone and continues *downward*
        through the standard order (a request preferring DMA32 may fall
        back to DMA but never up to NORMAL, matching the kernel).
        """
        if preferred not in self.zones:
            raise ConfigError(f"unknown preferred zone {preferred}")
        start = ZONELIST_ORDER.index(preferred)
        return [
            self.zones[zone_type]
            for zone_type in ZONELIST_ORDER[start:]
            if zone_type in self.zones
        ]

    def zone_of_pfn(self, pfn: int) -> Zone:
        """The zone containing frame ``pfn``."""
        for zone in self.zones.values():
            if zone.contains(pfn):
                return zone
        raise ConfigError(f"pfn {pfn:#x} not in any zone of node {self.node_id}")

    @property
    def total_pages(self) -> int:
        """Frames across all zones."""
        return sum(zone.total_pages for zone in self.zones.values())

    @property
    def free_pages(self) -> int:
        """Free frames across all zones (buddy + pcp)."""
        return sum(zone.free_pages for zone in self.zones.values())

    def __repr__(self) -> str:
        zones = ", ".join(
            f"{z.name}={z.free_pages}/{z.total_pages}" for z in self.zones.values()
        )
        return f"NumaNode({self.node_id}, {zones})"
