"""The zoned page frame allocator (paper Section IV, Fig. 2).

This is the facade every allocation in the simulated kernel goes through.
For a request it first selects the **local NUMA node** of the requesting
CPU (paper Section III: "Linux uses a node-local allocation policy ...
memory is allocated from the node closest to the CPU running the
program"), walks that node's zonelist (NORMAL -> DMA32 -> DMA for the
default preference), and only then falls back to the remaining nodes.
Per zone:

* order-0 requests are served from the requesting **CPU's page frame
  cache** of that zone — the fast path whose reuse behaviour the attack
  exploits;
* larger requests go straight to the zone's buddy allocator, guarded by
  the ``min`` watermark;
* whenever a zone drops below its ``low`` watermark, kswapd is woken.

Frees are symmetric: order-0 frees return to the freeing CPU's cache of
the owning zone (hot end), larger blocks coalesce straight back into the
buddy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mm.node import NumaNode
from repro.mm.reclaim import Kswapd
from repro.mm.zone import Zone, ZoneType
from repro.obs import NOOP_OBS
from repro.sim.errors import AllocationError, ConfigError, OutOfMemoryError


@dataclass(frozen=True)
class AllocationRequest:
    """A page frame request as the kernel's ``alloc_pages`` would see it."""

    order: int = 0
    cpu: int = 0
    owner_pid: int | None = None
    preferred_zone: ZoneType = ZoneType.NORMAL
    use_pcp: bool = True


class ZonedPageFrameAllocator:
    """Node-local, zonelist-walking allocator facade.

    Accepts one node (the common case) or several; ``cpu_to_node`` maps
    each CPU to its local node (every CPU is local to node 0 when
    omitted).
    """

    def __init__(
        self,
        nodes: NumaNode | list[NumaNode],
        kswapd: Kswapd | None = None,
        cpu_to_node: list[int] | None = None,
    ):
        self.nodes = [nodes] if isinstance(nodes, NumaNode) else list(nodes)
        if not self.nodes:
            raise ConfigError("allocator needs at least one node")
        self.kswapd = kswapd
        self.cpu_to_node = cpu_to_node
        if cpu_to_node is not None:
            for node_index in cpu_to_node:
                if not 0 <= node_index < len(self.nodes):
                    raise ConfigError(f"cpu_to_node entry {node_index} out of range")
        self._stamp = 0
        self.pcp_allocs = 0
        self.buddy_allocs = 0
        self.failed_allocs = 0
        self.remote_node_allocs = 0
        self.bind_obs(NOOP_OBS)

    def bind_obs(self, obs) -> None:
        """Attach an observability hub (see docs/OBSERVABILITY.md).

        The PCP hit/miss split is counted live at allocation time (a hit
        is an order-0 request finding its CPU cache non-empty); everything
        driven by the substrate's own counters — refills, spills, buddy
        split/merge totals, kswapd activity — is collector-sourced.
        """
        self.obs = obs
        metrics = obs.metrics
        self._m_pcp_hit = metrics.counter(
            "mm.pcp.hits", unit="allocations",
            help="order-0 allocations served from a non-empty per-CPU cache",
        )
        self._m_pcp_miss = metrics.counter(
            "mm.pcp.misses", unit="allocations",
            help="order-0 allocations that forced a PCP refill from the buddy",
        )
        self._m_buddy = metrics.counter(
            "mm.buddy.direct_allocs", unit="allocations",
            help="allocations routed straight to the buddy (order>0 or PCP bypass)",
        )
        self._m_failed = metrics.counter(
            "mm.alloc.failures", unit="allocations",
            help="requests no zone of any node could satisfy",
        )
        self._m_drains = metrics.counter(
            "mm.pcp.drains", unit="calls", help="explicit PCP drain operations"
        )
        self._m_drained = metrics.counter(
            "mm.pcp.drained_frames", unit="frames",
            help="frames returned to the buddy by drains",
        )
        free = metrics.gauge(
            "mm.free_pages", unit="frames", help="free frames across all nodes"
        )
        served = metrics.gauge(
            "mm.pcp.served_from_cache", unit="allocations",
            help="PCP allocations served without touching the buddy",
        )
        refills = metrics.gauge(
            "mm.pcp.refills", unit="batches", help="PCP batch refills from the buddy"
        )
        spills = metrics.gauge(
            "mm.pcp.spills", unit="batches",
            help="PCP overflows spilled back to the buddy",
        )
        splits = metrics.gauge(
            "mm.buddy.splits", unit="blocks", help="buddy block splits"
        )
        merges = metrics.gauge(
            "mm.buddy.merges", unit="blocks", help="buddy block coalesces"
        )
        kswapd_wakes = metrics.gauge(
            "mm.kswapd.wakeups", unit="wakeups", help="kswapd wake requests"
        )
        kswapd_runs = metrics.gauge(
            "mm.kswapd.runs", unit="runs", help="kswapd reclaim passes"
        )
        kswapd_reclaimed = metrics.gauge(
            "mm.kswapd.reclaimed_pages", unit="frames",
            help="frames reclaimed by kswapd",
        )

        def _collect() -> None:
            stats = self.stats()
            free.set(stats["free_pages"])
            served.set(stats["pcp_served_from_cache"])
            refills.set(stats["pcp_refills"])
            spills.set(stats["pcp_spills"])
            split_total = merge_total = 0
            for node in self.nodes:
                for zone in node.zones.values():
                    split_total += zone.buddy.split_count
                    merge_total += zone.buddy.merge_count
            splits.set(split_total)
            merges.set(merge_total)
            if self.kswapd is not None:
                kswapd_wakes.set(self.kswapd.wake_count)
                kswapd_runs.set(self.kswapd.runs)
                kswapd_reclaimed.set(self.kswapd.reclaimed_pages)

        metrics.add_collector(_collect)

    @property
    def node(self) -> NumaNode:
        """The primary node (full machine on single-node configurations)."""
        return self.nodes[0]

    def node_of_cpu(self, cpu: int) -> NumaNode:
        """The NUMA node local to ``cpu``."""
        if self.cpu_to_node is None:
            return self.nodes[0]
        if not 0 <= cpu < len(self.cpu_to_node):
            raise ConfigError(f"cpu {cpu} outside the cpu_to_node map")
        return self.nodes[self.cpu_to_node[cpu]]

    def node_of_pfn(self, pfn: int) -> NumaNode:
        """The node owning frame ``pfn``."""
        for node in self.nodes:
            for zone in node.zones.values():
                if zone.contains(pfn):
                    return node
        raise ConfigError(f"pfn {pfn:#x} not owned by any node")

    def zone_of_pfn(self, pfn: int) -> Zone:
        """The zone owning frame ``pfn`` (across all nodes)."""
        for node in self.nodes:
            for zone in node.zones.values():
                if zone.contains(pfn):
                    return zone
        raise ConfigError(f"pfn {pfn:#x} not in any zone")

    @property
    def total_pages(self) -> int:
        """Frames across every node."""
        return sum(node.total_pages for node in self.nodes)

    @property
    def free_pages_total(self) -> int:
        """Free frames across every node."""
        return sum(node.free_pages for node in self.nodes)

    def next_stamp(self) -> int:
        """Monotonic allocation stamp (for reuse-distance measurements)."""
        self._stamp += 1
        return self._stamp

    # -- allocation -----------------------------------------------------------

    def alloc_pages(self, request: AllocationRequest) -> int:
        """Allocate ``2**order`` contiguous frames; returns the head pfn.

        Tries the CPU's local node first, then the others in id order.
        Raises :class:`OutOfMemoryError` when no zone anywhere can satisfy
        the request.
        """
        stamp = self.next_stamp()
        local = self.node_of_cpu(request.cpu)
        ordered = [local] + [node for node in self.nodes if node is not local]
        last_error: OutOfMemoryError | None = None
        for node in ordered:
            for zone in node.zonelist(request.preferred_zone):
                try:
                    pfn = self._alloc_from_zone(zone, request, stamp)
                except OutOfMemoryError as exc:
                    last_error = exc
                    continue
                if node is not local:
                    self.remote_node_allocs += 1
                self._maybe_wake_kswapd(zone)
                return pfn
        self.failed_allocs += 1
        self._m_failed.inc()
        raise OutOfMemoryError(
            f"order-{request.order} allocation failed in every zone of every "
            f"node (preferred {request.preferred_zone.value})"
        ) from last_error

    def _alloc_from_zone(self, zone: Zone, request: AllocationRequest, stamp: int) -> int:
        if request.order == 0 and request.use_pcp:
            pcp = zone.pcp(request.cpu)
            if pcp.count:
                self._m_pcp_hit.inc()
            else:
                self._m_pcp_miss.inc()
                self.obs.tracer.instant(
                    "mm.pcp.refill", "mm", zone=zone.name, cpu=request.cpu
                )
            pfn = pcp.alloc(owner_pid=request.owner_pid, stamp=stamp)
            self.pcp_allocs += 1
            return pfn
        if not zone.watermark_ok(request.order):
            raise OutOfMemoryError(
                f"zone {zone.name} below min watermark for order {request.order}"
            )
        pfn = zone.buddy.alloc(request.order, owner_pid=request.owner_pid, stamp=stamp)
        self.buddy_allocs += 1
        self._m_buddy.inc()
        self.obs.tracer.instant(
            "mm.buddy.alloc", "mm", zone=zone.name, order=request.order
        )
        return pfn

    def alloc_page(
        self,
        cpu: int,
        owner_pid: int | None = None,
        preferred_zone: ZoneType = ZoneType.NORMAL,
        use_pcp: bool = True,
    ) -> int:
        """Convenience order-0 allocation (the common demand-paging case)."""
        return self.alloc_pages(
            AllocationRequest(
                order=0,
                cpu=cpu,
                owner_pid=owner_pid,
                preferred_zone=preferred_zone,
                use_pcp=use_pcp,
            )
        )

    # -- free ------------------------------------------------------------------

    def free_pages_block(self, pfn: int, order: int, cpu: int, use_pcp: bool = True) -> None:
        """Free ``2**order`` frames headed by ``pfn``.

        Order-0 frees with ``use_pcp`` return to the freeing CPU's cache of
        the owning zone (even a remote node's — the cache is per CPU *and*
        per zone); everything else goes straight to the buddy.
        """
        zone = self.zone_of_pfn(pfn)
        if order == 0 and use_pcp:
            zone.pcp(cpu).free(pfn)
        else:
            if order > 0 and not zone.contains(pfn + (1 << order) - 1):
                raise AllocationError(
                    f"block [{pfn:#x}, {pfn + (1 << order):#x}) straddles a zone boundary"
                )
            zone.buddy.free(pfn, order)

    def free_pages(self, pfn: int, order: int, cpu: int, use_pcp: bool = True) -> None:
        """Alias of :meth:`free_pages_block` (the kernel-facing name)."""
        self.free_pages_block(pfn, order, cpu, use_pcp=use_pcp)

    # -- pressure handling ------------------------------------------------------

    def _maybe_wake_kswapd(self, zone: Zone) -> None:
        if zone.below_low_watermark():
            zone.kswapd_wakeups += 1
            if self.kswapd is not None:
                self.kswapd.wake(zone)

    def drain_cpu_caches(self, cpu: int) -> int:
        """Drain ``cpu``'s page frame cache in every zone of every node."""
        drained = sum(
            zone.drain_pcp(cpu)
            for node in self.nodes
            for zone in node.zones.values()
        )
        self._m_drains.inc()
        self._m_drained.inc(drained)
        self.obs.tracer.instant("mm.pcp.drain", "mm", cpu=cpu, frames=drained)
        return drained

    # -- inspection ---------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Aggregate counters across the allocator and its zones."""
        served_from_cache = 0
        refills = 0
        spills = 0
        for node in self.nodes:
            for zone in node.zones.values():
                for cpu in range(zone.num_cpus):
                    pcp = zone.pcp(cpu)
                    served_from_cache += pcp.served_from_cache
                    refills += pcp.refills
                    spills += pcp.spills
        return {
            "pcp_allocs": self.pcp_allocs,
            "buddy_allocs": self.buddy_allocs,
            "failed_allocs": self.failed_allocs,
            "remote_node_allocs": self.remote_node_allocs,
            "pcp_served_from_cache": served_from_cache,
            "pcp_refills": refills,
            "pcp_spills": spills,
            "free_pages": self.free_pages_total,
        }
