"""kswapd-style reclaim.

The paper (Section IV) notes that when no zone can satisfy a request "the
kernel awakens the kswapd to free up pages from zones".  The simulated
kernel registers *reclaimable* allocations (its page-cache-like pool) with
this daemon; when a zone is woken below its ``low`` watermark, kswapd frees
registered blocks from that zone until the free count climbs back above
``high``.

Reclaim is deliberately synchronous and deterministic: :meth:`Kswapd.run`
is called by the kernel at controlled points, so experiments never race a
background thread.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass

from repro.mm.zone import Zone
from repro.obs import NOOP_OBS
from repro.sim.errors import ConfigError


@dataclass(frozen=True)
class ReclaimableBlock:
    """One registered reclaimable allocation (page-cache-like).

    ``on_reclaim`` (if given) runs after the block is freed, so the owner
    (e.g. the page cache) can drop its references.
    """

    pfn: int
    order: int
    on_reclaim: Callable[[int], None] | None = None


class Kswapd:
    """Per-node reclaim daemon, driven synchronously."""

    def __init__(self) -> None:
        # Oldest-first queues per zone: reclaim takes the LRU end.
        self._pools: dict[str, deque[ReclaimableBlock]] = {}
        self._woken: dict[str, Zone] = {}
        self.wake_count = 0
        self.reclaimed_pages = 0
        self.runs = 0
        self._events = None
        self._run_handle = None
        self.obs = NOOP_OBS

    def bind_obs(self, obs) -> None:
        """Attach an observability hub (the run span is emitted here in event mode)."""
        self.obs = obs

    def bind_events(self, events) -> None:
        """Drive reclaim through an event scheduler (queue ``"mm"``).

        A wake arms a due-now event; the kernel drains the queue at the
        same syscall points where it used to poll ``pending_zones()``, so
        reclaim still happens synchronously at controlled instants.
        """
        self._events = events

    # -- registration -------------------------------------------------------

    def register_reclaimable(
        self,
        zone: Zone,
        pfn: int,
        order: int,
        on_reclaim: Callable[[int], None] | None = None,
    ) -> None:
        """Mark an allocated block as reclaimable from ``zone``."""
        if not zone.contains(pfn):
            raise ConfigError(f"pfn {pfn:#x} not in zone {zone.name}")
        self._pools.setdefault(zone.name, deque()).append(
            ReclaimableBlock(pfn=pfn, order=order, on_reclaim=on_reclaim)
        )

    def unregister_reclaimable(self, zone: Zone, pfn: int) -> bool:
        """Remove a block (e.g. the owner freed it first); True if found."""
        pool = self._pools.get(zone.name)
        if not pool:
            return False
        for block in pool:
            if block.pfn == pfn:
                pool.remove(block)
                return True
        return False

    def reclaimable_pages(self, zone: Zone) -> int:
        """Pages currently registered as reclaimable in ``zone``."""
        pool = self._pools.get(zone.name, ())
        return sum(1 << block.order for block in pool)

    # -- wake/run ----------------------------------------------------------------

    def wake(self, zone: Zone) -> None:
        """Note that ``zone`` needs balancing (idempotent until run)."""
        if zone.name not in self._woken:
            self._woken[zone.name] = zone
            self.wake_count += 1
        if self._events is not None and self._run_handle is None:
            self._run_handle = self._events.schedule(
                "mm.kswapd.wake", self._events.clock.now_ns,
                self._on_run_event, queue="mm",
            )

    def _on_run_event(self, now_ns: int) -> None:
        del now_ns
        self._run_handle = None
        if not self._woken:
            return
        with self.obs.tracer.span("mm.kswapd.run", "mm") as span:
            span.set("reclaimed", self.run())

    def pending_zones(self) -> list[str]:
        """Names of zones waiting for a reclaim pass."""
        return sorted(self._woken)

    def run(self) -> int:
        """Balance every woken zone; returns total pages reclaimed.

        For each zone, reclaimable blocks are freed oldest-first into the
        zone's buddy allocator until the zone rises above its ``high``
        watermark or the pool empties.
        """
        if self._run_handle is not None:
            # Direct-reclaim callers (the OOM retry path) run us out of
            # band; the armed wake event must not fire a second, empty run.
            self._events.cancel(self._run_handle)
            self._run_handle = None
        self.runs += 1
        total = 0
        for name in sorted(self._woken):
            zone = self._woken[name]
            total += self._balance_zone(zone)
        self._woken.clear()
        return total

    def _balance_zone(self, zone: Zone) -> int:
        pool = self._pools.get(zone.name)
        reclaimed = 0
        while pool and not zone.above_high_watermark():
            block = pool.popleft()
            zone.buddy.free(block.pfn, block.order)
            if block.on_reclaim is not None:
                block.on_reclaim(block.pfn)
            reclaimed += 1 << block.order
        self.reclaimed_pages += reclaimed
        return reclaimed

    def __repr__(self) -> str:
        pools = {name: len(pool) for name, pool in self._pools.items()}
        return f"Kswapd(pools={pools}, woken={sorted(self._woken)})"
