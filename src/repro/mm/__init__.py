"""Physical memory management: the Linux allocator stack, reproduced.

Sections III-V of the paper describe exactly the pieces modelled here:

* :mod:`repro.mm.page` — page-frame descriptors and state flags;
* :mod:`repro.mm.buddy` — the zone-internal buddy allocator with
  power-of-two free lists, block splitting and buddy coalescing (paper
  Fig. 1);
* :mod:`repro.mm.zone` — ZONE_DMA / ZONE_DMA32 / ZONE_NORMAL with min /
  low / high watermarks;
* :mod:`repro.mm.pcp` — the **per-CPU page frame cache** at the heart of
  the attack: a small software cache of recently released order-0 frames,
  refilled from and spilled to the buddy allocator in batches, serving
  small requests in LIFO order;
* :mod:`repro.mm.node` — NUMA node and zonelist fallback order;
* :mod:`repro.mm.allocator` — the zoned page frame allocator facade
  (paper Fig. 2) that walks the zonelist, applies watermarks, routes
  order-0 requests through the pcp cache and wakes kswapd;
* :mod:`repro.mm.reclaim` — a kswapd-style reclaimer for the
  page-cache-like reclaimable pool.
"""

from repro.mm.allocator import AllocationRequest, ZonedPageFrameAllocator
from repro.mm.buddy import BuddyAllocator
from repro.mm.node import NumaNode
from repro.mm.page import PageFlags, PageFrame
from repro.mm.pcp import PcpConfig, PerCpuPageCache
from repro.mm.reclaim import Kswapd
from repro.mm.zone import Zone, ZoneType, ZoneWatermarks

__all__ = [
    "AllocationRequest",
    "BuddyAllocator",
    "Kswapd",
    "NumaNode",
    "PageFlags",
    "PageFrame",
    "PcpConfig",
    "PerCpuPageCache",
    "Zone",
    "ZoneType",
    "ZoneWatermarks",
    "ZonedPageFrameAllocator",
]
