"""The buddy allocator (paper Section IV, Fig. 1).

Free frames are clustered into power-of-two blocks, one free list per
order 0..MAX_ORDER.  Allocating order *k* takes a block from the smallest
non-empty order >= *k*, splitting larger blocks in half on the way down
(the two halves are "buddies").  Freeing a block checks whether its buddy —
computed as ``pfn XOR (1 << order)`` — is also free; if so the pair
coalesces and the merge cascades upward.

Free lists behave like the kernel's: freed and split-off blocks go to the
head of the list and allocations take from the head (LIFO), which is what
makes recently freed memory likely to be handed out again even *without*
the per-CPU cache.  All bookkeeping is validated: double frees, frees of
unallocated heads and misaligned blocks raise immediately.
"""

from __future__ import annotations

from repro.mm.page import FrameTable, PageFlags
from repro.sim.errors import AllocationError, ConfigError, OutOfMemoryError

MAX_ORDER = 10  # Linux's historical MAX_ORDER - 1: blocks up to 2^10 pages = 4 MiB


class BuddyAllocator:
    """Buddy system over the frame range ``[start_pfn, end_pfn)``."""

    def __init__(
        self,
        frames: FrameTable,
        start_pfn: int,
        end_pfn: int,
        max_order: int = MAX_ORDER,
    ):
        if not 0 <= start_pfn < end_pfn <= len(frames):
            raise ConfigError(
                f"frame range [{start_pfn}, {end_pfn}) invalid for table of {len(frames)}"
            )
        if not 0 <= max_order <= 16:
            raise ConfigError(f"max_order {max_order} out of sane range [0, 16]")
        if start_pfn % (1 << max_order):
            raise ConfigError(
                f"start_pfn {start_pfn:#x} must be aligned to a max-order block "
                f"({1 << max_order} pages)"
            )
        self.frames = frames
        self.start_pfn = start_pfn
        self.end_pfn = end_pfn
        self.max_order = max_order
        # Insertion-ordered "sets"; the head of the list is the most recently
        # inserted entry (LIFO discipline, like the kernel's list_head usage).
        self.free_lists: list[dict[int, None]] = [dict() for _ in range(max_order + 1)]
        self.free_pages = 0
        self.split_count = 0
        self.merge_count = 0
        self.alloc_count = 0
        self.free_count = 0
        self._seed_free_lists()

    # -- initial population ---------------------------------------------------

    def _seed_free_lists(self) -> None:
        """Cover the range with the largest aligned blocks that fit."""
        pfn = self.start_pfn
        while pfn < self.end_pfn:
            order = self.max_order
            while order > 0 and (pfn % (1 << order) or pfn + (1 << order) > self.end_pfn):
                order -= 1
            self._insert_free_block(pfn, order)
            pfn += 1 << order

    # -- free-list primitives ---------------------------------------------------

    def _insert_free_block(self, pfn: int, order: int) -> None:
        # Every frame of the block is marked free (not just the head), so
        # descriptor state stays the truth for whole-machine invariants.
        for offset in range(1 << order):
            frame = self.frames[pfn + offset]
            if frame.flags is not PageFlags.FREE_BUDDY:
                frame.mark(PageFlags.FREE_BUDDY)
            frame.owner_pid = None
        self.frames[pfn].order = order
        self.free_lists[order][pfn] = None
        self.free_pages += 1 << order

    def _remove_free_block(self, pfn: int, order: int) -> None:
        del self.free_lists[order][pfn]
        self.free_pages -= 1 << order

    def _pop_head(self, order: int) -> int:
        """Take the most recently inserted block of ``order``."""
        pfn, _ = self.free_lists[order].popitem()  # pops most recently inserted
        self.free_pages -= 1 << order
        return pfn

    def is_block_free(self, pfn: int, order: int) -> bool:
        """True if ``pfn`` heads a free block of exactly ``order``."""
        return pfn in self.free_lists[order]

    # -- allocation -----------------------------------------------------------

    def alloc(self, order: int, owner_pid: int | None = None, stamp: int = 0) -> int:
        """Allocate a block of ``2**order`` pages; returns the head pfn.

        Raises :class:`OutOfMemoryError` when no block of sufficient order
        is free.
        """
        if not 0 <= order <= self.max_order:
            raise AllocationError(f"order {order} out of range [0, {self.max_order}]")
        current = order
        while current <= self.max_order and not self.free_lists[current]:
            current += 1
        if current > self.max_order:
            raise OutOfMemoryError(
                f"no free block of order >= {order} "
                f"(free pages: {self.free_pages})"
            )
        pfn = self._pop_head(current)
        # Split down to the requested order; the upper half of each split
        # goes back on its free list (it becomes the allocated half's buddy).
        while current > order:
            current -= 1
            buddy = pfn + (1 << current)
            self._insert_free_block(buddy, current)
            self.split_count += 1
        for offset in range(1 << order):
            frame = self.frames[pfn + offset]
            frame.mark(PageFlags.ALLOCATED)
            frame.owner_pid = owner_pid
            frame.alloc_stamp = stamp
        self.frames[pfn].order = order
        self.alloc_count += 1
        return pfn

    # -- free + coalesce -----------------------------------------------------------

    def _buddy_of(self, pfn: int, order: int) -> int:
        return pfn ^ (1 << order)

    def free(self, pfn: int, order: int) -> int:
        """Free the block of ``2**order`` pages headed by ``pfn``.

        Coalesces with free buddies as far up as possible and returns the
        order of the block finally inserted into the free lists.
        """
        if not 0 <= order <= self.max_order:
            raise AllocationError(f"order {order} out of range [0, {self.max_order}]")
        if pfn % (1 << order):
            raise AllocationError(f"pfn {pfn:#x} not aligned for order {order}")
        if not self.start_pfn <= pfn < self.end_pfn:
            raise AllocationError(f"pfn {pfn:#x} outside this allocator's range")
        for offset in range(1 << order):
            frame = self.frames[pfn + offset]
            if frame.flags is PageFlags.FREE_BUDDY:
                raise AllocationError(f"double free of pfn {pfn + offset:#x}")
        current = order
        while current < self.max_order:
            buddy = self._buddy_of(pfn, current)
            if not self.start_pfn <= buddy < self.end_pfn:
                break
            if not self.is_block_free(buddy, current):
                break
            self._remove_free_block(buddy, current)
            self.merge_count += 1
            pfn = min(pfn, buddy)
            current += 1
        self._insert_free_block(pfn, current)
        self.free_count += 1
        return current

    # -- inspection -----------------------------------------------------------

    def free_blocks_by_order(self) -> dict[int, int]:
        """Map order -> number of free blocks (like /proc/buddyinfo)."""
        return {order: len(blocks) for order, blocks in enumerate(self.free_lists)}

    def largest_free_order(self) -> int | None:
        """Highest order with a free block, or None if empty."""
        for order in range(self.max_order, -1, -1):
            if self.free_lists[order]:
                return order
        return None

    def contains(self, pfn: int) -> bool:
        """True if ``pfn`` belongs to this allocator's range."""
        return self.start_pfn <= pfn < self.end_pfn

    def fragmentation_index(self) -> float:
        """Fraction of free memory *not* available as max-order blocks.

        0.0 means all free memory sits in max-order blocks (unfragmented);
        1.0 means none of it does.
        """
        if self.free_pages == 0:
            return 0.0
        max_order_pages = len(self.free_lists[self.max_order]) << self.max_order
        return 1.0 - max_order_pages / self.free_pages

    def __repr__(self) -> str:
        return (
            f"BuddyAllocator([{self.start_pfn:#x}, {self.end_pfn:#x}), "
            f"free={self.free_pages} pages)"
        )
