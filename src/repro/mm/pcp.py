"""The per-CPU page frame cache (paper Sections IV-V).

Every zone keeps, for every CPU, a small software cache of recently
released order-0 page frames.  Small allocations on a CPU are served from
that CPU's cache before the buddy allocator is consulted, and order-0 frees
go back onto it.  Two properties drive the ExplFrame attack and are
modelled exactly:

* the cache is **LIFO**: the most recently freed frame is the first one
  handed out again.  An attacker who munmaps a chosen frame and stays
  resident on the CPU therefore knows that the next small allocation on
  that CPU — e.g. the victim's — receives *that* frame "with a probability
  of almost 1" (paper Section V);
* the cache is **per CPU**: a victim on a different CPU allocates from a
  different cache, which is why the attack requires CPU co-residency.

Refill and spill follow the kernel's ``batch``/``high`` discipline: an
empty cache pulls ``batch`` frames from the buddy in one go, and a cache
grown past ``high`` pushes ``batch`` frames (the coldest ones) back.
A ``fifo`` discipline is provided solely for the A1 ablation, which shows
the attack collapses without LIFO reuse.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.mm.buddy import BuddyAllocator
from repro.mm.page import PageFlags
from repro.sim.errors import AllocationError, ConfigError, OutOfMemoryError


@dataclass(frozen=True)
class PcpConfig:
    """Sizing and discipline of one per-CPU page list."""

    batch: int = 16
    high: int = 96
    discipline: str = "lifo"

    def __post_init__(self) -> None:
        if self.batch <= 0:
            raise ConfigError(f"batch must be positive, got {self.batch}")
        if self.high < self.batch:
            raise ConfigError(
                f"high ({self.high}) must be at least batch ({self.batch})"
            )
        if self.discipline not in ("lifo", "fifo"):
            raise ConfigError(f"discipline must be 'lifo' or 'fifo', got {self.discipline!r}")


class PerCpuPageCache:
    """One zone's page frame cache for one CPU."""

    def __init__(self, buddy: BuddyAllocator, config: PcpConfig | None = None):
        self.buddy = buddy
        self.config = config or PcpConfig()
        # Hot end is the right side (append/pop); cold end is the left.
        self._pages: deque[int] = deque()
        self.served_from_cache = 0
        self.refills = 0
        self.spills = 0
        self.drains = 0

    # -- state -----------------------------------------------------------------

    @property
    def count(self) -> int:
        """Frames currently held."""
        return len(self._pages)

    def peek_hot(self) -> int | None:
        """The frame the next allocation would receive (None if empty)."""
        if not self._pages:
            return None
        if self.config.discipline == "lifo":
            return self._pages[-1]
        return self._pages[0]

    def holds(self, pfn: int) -> bool:
        """True if ``pfn`` is currently on this list."""
        return pfn in self._pages

    def snapshot(self) -> list[int]:
        """Cold-to-hot copy of the list contents."""
        return list(self._pages)

    # -- allocation path -----------------------------------------------------

    def alloc(self, owner_pid: int | None = None, stamp: int = 0) -> int:
        """Serve one order-0 frame, refilling from the buddy if empty.

        Raises :class:`OutOfMemoryError` if the cache is empty and the buddy
        cannot supply a single page.
        """
        if not self._pages:
            self._refill(stamp)
        else:
            self.served_from_cache += 1
        if self.config.discipline == "lifo":
            pfn = self._pages.pop()
        else:
            pfn = self._pages.popleft()
        frame = self.buddy.frames[pfn]
        frame.mark(PageFlags.ALLOCATED)
        frame.owner_pid = owner_pid
        frame.alloc_stamp = stamp
        return pfn

    def _refill(self, stamp: int) -> None:
        """Pull up to ``batch`` order-0 frames from the buddy allocator."""
        pulled = 0
        for _ in range(self.config.batch):
            try:
                pfn = self.buddy.alloc(0, owner_pid=None, stamp=stamp)
            except OutOfMemoryError:
                break
            self.buddy.frames[pfn].mark(PageFlags.ON_PCP)
            self._pages.append(pfn)
            pulled += 1
        if pulled == 0:
            raise OutOfMemoryError("pcp refill failed: buddy allocator exhausted")
        self.refills += 1

    # -- free path ------------------------------------------------------------------

    def free(self, pfn: int) -> None:
        """Return one order-0 frame to the hot end of the list.

        Spills ``batch`` cold frames back to the buddy when the list grows
        past ``high``.
        """
        frame = self.buddy.frames[pfn]
        if frame.flags is not PageFlags.ALLOCATED:
            raise AllocationError(
                f"pcp free of pfn {pfn:#x} in state {frame.flags.value!r}"
            )
        if not self.buddy.contains(pfn):
            raise AllocationError(f"pfn {pfn:#x} belongs to a different zone")
        frame.mark(PageFlags.ON_PCP)
        frame.owner_pid = None
        self._pages.append(pfn)
        if len(self._pages) > self.config.high:
            self._spill(self.config.batch)

    def _spill(self, count: int) -> None:
        """Push the ``count`` coldest frames back into the buddy allocator."""
        for _ in range(min(count, len(self._pages))):
            pfn = self._pages.popleft()
            # The buddy's free() validates state itself; flag must be
            # ALLOCATED for its double-free check, so transition first.
            self.buddy.frames[pfn].mark(PageFlags.ALLOCATED)
            self.buddy.free(pfn, 0)
        self.spills += 1

    def drain(self) -> int:
        """Return every held frame to the buddy; returns how many moved.

        This is what happens when the owning task sleeps or is migrated —
        the behaviour the paper warns the adversary about ("the adversarial
        process must remain active").
        """
        moved = len(self._pages)
        self._spill(moved)
        if moved:
            self.drains += 1
            self.spills -= 1  # the drain's spill is accounted separately
        return moved

    def __repr__(self) -> str:
        return (
            f"PerCpuPageCache(count={self.count}, batch={self.config.batch}, "
            f"high={self.config.high}, discipline={self.config.discipline})"
        )
