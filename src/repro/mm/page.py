"""Page frame descriptors.

Mirrors (a small slice of) the kernel's ``struct page``: every physical
frame has a descriptor tracking where it currently lives in the allocator
state machine.  The legal states and transitions are:

    FREE_BUDDY  --alloc-->  ALLOCATED  --free(order 0)-->  ON_PCP
        ^                       |                             |
        |                       +--free(order > 0)------------+--spill/
        +------------------------------------------------------   drain

``RESERVED`` frames (e.g. a hole at the start of ZONE_DMA) never enter the
allocator.  The descriptor also remembers the owning pid while allocated —
the experiments use that to ask "who holds this frame now?", which is the
measurable core of the steering attack.

Storage is columnar: the table keeps one numpy column per field and hands
out lightweight :class:`PageFrame` views that write through to the columns.
A 64 MiB module needs 16 K descriptors; as columns they are five small
arrays instead of 16 K Python objects, which is what makes machine
snapshots cheap to pickle and fork.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.sim.errors import ConfigError

_HISTORY_DEPTH = 16


class PageFlags(enum.Enum):
    """Allocator state of one page frame."""

    RESERVED = "reserved"
    FREE_BUDDY = "free_buddy"
    ON_PCP = "on_pcp"
    ALLOCATED = "allocated"


_CODE_OF = {flag: code for code, flag in enumerate(PageFlags)}
_FLAG_OF = tuple(PageFlags)
_NO_OWNER = -1


class _Columns:
    """Column store backing ``total`` page-frame descriptors."""

    __slots__ = ("flags", "order", "owner", "stamp", "history", "hist_len", "hist_start")

    def __init__(self, total: int):
        self.flags = np.full(total, _CODE_OF[PageFlags.FREE_BUDDY], dtype=np.uint8)
        self.order = np.zeros(total, dtype=np.int64)
        self.owner = np.full(total, _NO_OWNER, dtype=np.int64)
        self.stamp = np.zeros(total, dtype=np.int64)
        # Bounded per-frame transition history as a ring buffer of flag codes.
        self.history = np.zeros((total, _HISTORY_DEPTH), dtype=np.uint8)
        self.hist_len = np.zeros(total, dtype=np.int64)
        self.hist_start = np.zeros(total, dtype=np.int64)


class PageFrame:
    """Descriptor for one physical page frame (a view into a column store)."""

    __slots__ = ("pfn", "_cols", "_idx")

    def __init__(
        self,
        pfn: int,
        flags: PageFlags = PageFlags.FREE_BUDDY,
        order: int = 0,
        owner_pid: int | None = None,
        alloc_stamp: int = 0,
        *,
        _columns: _Columns | None = None,
        _index: int = 0,
    ):
        if _columns is None:
            # Standalone descriptor: back it with a private 1-row store.
            _columns = _Columns(1)
            _index = 0
            _columns.flags[0] = _CODE_OF[flags]
            _columns.order[0] = order
            _columns.owner[0] = _NO_OWNER if owner_pid is None else owner_pid
            _columns.stamp[0] = alloc_stamp
        self.pfn = pfn
        self._cols = _columns
        self._idx = _index

    # -- column-backed fields ------------------------------------------------

    @property
    def flags(self) -> PageFlags:
        return _FLAG_OF[self._cols.flags[self._idx]]

    @flags.setter
    def flags(self, value: PageFlags) -> None:
        self._cols.flags[self._idx] = _CODE_OF[value]

    @property
    def order(self) -> int:
        """Buddy order of the free block this frame heads (head frames only)."""
        return int(self._cols.order[self._idx])

    @order.setter
    def order(self, value: int) -> None:
        self._cols.order[self._idx] = value

    @property
    def owner_pid(self) -> int | None:
        owner = self._cols.owner[self._idx]
        return None if owner == _NO_OWNER else int(owner)

    @owner_pid.setter
    def owner_pid(self, value: int | None) -> None:
        self._cols.owner[self._idx] = _NO_OWNER if value is None else value

    @property
    def alloc_stamp(self) -> int:
        """Monotonic stamp of the last allocation, for reuse-distance stats."""
        return int(self._cols.stamp[self._idx])

    @alloc_stamp.setter
    def alloc_stamp(self, value: int) -> None:
        self._cols.stamp[self._idx] = value

    @property
    def field_history(self) -> list[PageFlags]:
        """The last ``_HISTORY_DEPTH`` pre-transition states, oldest first."""
        cols, i = self._cols, self._idx
        start = int(cols.hist_start[i])
        length = int(cols.hist_len[i])
        return [
            _FLAG_OF[cols.history[i, (start + k) % _HISTORY_DEPTH]] for k in range(length)
        ]

    def mark(self, flags: PageFlags) -> None:
        """Transition to ``flags``, recording the old state in the history."""
        cols, i = self._cols, self._idx
        if cols.hist_len[i] < _HISTORY_DEPTH:
            pos = (cols.hist_start[i] + cols.hist_len[i]) % _HISTORY_DEPTH
            cols.hist_len[i] += 1
        else:
            pos = cols.hist_start[i]
            cols.hist_start[i] = (pos + 1) % _HISTORY_DEPTH
        cols.history[i, pos] = cols.flags[i]
        cols.flags[i] = _CODE_OF[flags]

    @property
    def is_free(self) -> bool:
        """True when the frame is available (in the buddy or on a pcp list)."""
        code = self._cols.flags[self._idx]
        return code == _CODE_OF[PageFlags.FREE_BUDDY] or code == _CODE_OF[PageFlags.ON_PCP]

    def __repr__(self) -> str:
        return (
            f"PageFrame(pfn={self.pfn}, flags={self.flags}, order={self.order}, "
            f"owner_pid={self.owner_pid}, alloc_stamp={self.alloc_stamp})"
        )


class FrameTable:
    """Dense columnar table of page-frame descriptors for a frame range."""

    def __init__(self, total_frames: int):
        if total_frames <= 0:
            raise ConfigError(f"total_frames must be positive, got {total_frames}")
        self.total_frames = total_frames
        self._cols = _Columns(total_frames)

    def __getitem__(self, pfn: int) -> PageFrame:
        if not 0 <= pfn < self.total_frames:
            raise ConfigError(f"pfn {pfn} out of range [0, {self.total_frames})")
        return PageFrame(int(pfn), _columns=self._cols, _index=int(pfn))

    def __len__(self) -> int:
        return self.total_frames

    def owned_by(self, pid: int) -> list[int]:
        """All pfns currently allocated to ``pid``."""
        cols = self._cols
        mask = (cols.flags == _CODE_OF[PageFlags.ALLOCATED]) & (cols.owner == pid)
        return [int(pfn) for pfn in np.nonzero(mask)[0]]

    def count_state(self, flags: PageFlags) -> int:
        """Number of frames currently in the given state."""
        return int(np.count_nonzero(self._cols.flags == _CODE_OF[flags]))
