"""Page frame descriptors.

Mirrors (a small slice of) the kernel's ``struct page``: every physical
frame has a descriptor tracking where it currently lives in the allocator
state machine.  The legal states and transitions are:

    FREE_BUDDY  --alloc-->  ALLOCATED  --free(order 0)-->  ON_PCP
        ^                       |                             |
        |                       +--free(order > 0)------------+--spill/
        +------------------------------------------------------   drain

``RESERVED`` frames (e.g. a hole at the start of ZONE_DMA) never enter the
allocator.  The descriptor also remembers the owning pid while allocated —
the experiments use that to ask "who holds this frame now?", which is the
measurable core of the steering attack.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.sim.errors import ConfigError


class PageFlags(enum.Enum):
    """Allocator state of one page frame."""

    RESERVED = "reserved"
    FREE_BUDDY = "free_buddy"
    ON_PCP = "on_pcp"
    ALLOCATED = "allocated"


@dataclass
class PageFrame:
    """Descriptor for one physical page frame."""

    pfn: int
    flags: PageFlags = PageFlags.FREE_BUDDY
    # Buddy order of the free block this frame heads; only meaningful for
    # the head frame of a FREE_BUDDY block.
    order: int = 0
    owner_pid: int | None = None
    # Monotonic stamp of the last allocation, for reuse-distance statistics.
    alloc_stamp: int = 0
    field_history: list[PageFlags] = field(default_factory=list, repr=False)

    def mark(self, flags: PageFlags) -> None:
        """Transition to ``flags``, recording the old state in the history."""
        self.field_history.append(self.flags)
        if len(self.field_history) > 16:
            del self.field_history[0]
        self.flags = flags

    @property
    def is_free(self) -> bool:
        """True when the frame is available (in the buddy or on a pcp list)."""
        return self.flags in (PageFlags.FREE_BUDDY, PageFlags.ON_PCP)


class FrameTable:
    """Dense table of :class:`PageFrame` descriptors for a frame range."""

    def __init__(self, total_frames: int):
        if total_frames <= 0:
            raise ConfigError(f"total_frames must be positive, got {total_frames}")
        self.total_frames = total_frames
        self._frames = [PageFrame(pfn=pfn) for pfn in range(total_frames)]

    def __getitem__(self, pfn: int) -> PageFrame:
        if not 0 <= pfn < self.total_frames:
            raise ConfigError(f"pfn {pfn} out of range [0, {self.total_frames})")
        return self._frames[pfn]

    def __len__(self) -> int:
        return self.total_frames

    def owned_by(self, pid: int) -> list[int]:
        """All pfns currently allocated to ``pid``."""
        return [
            frame.pfn
            for frame in self._frames
            if frame.flags is PageFlags.ALLOCATED and frame.owner_pid == pid
        ]

    def count_state(self, flags: PageFlags) -> int:
        """Number of frames currently in the given state."""
        return sum(1 for frame in self._frames if frame.flags is flags)
