"""Named, seeded random streams.

A single master seed fans out into independent substreams keyed by name
(``"dram.flipmodel"``, ``"attack.templating"``, ...).  Two properties matter
for the reproduction:

* **Determinism** — the same master seed always yields the same machine, the
  same weak-cell map, and the same attack trace, so every experiment in
  EXPERIMENTS.md is replayable.
* **Independence** — changing how one subsystem consumes randomness must not
  perturb another subsystem's stream.  Deriving each stream from
  ``sha256(master_seed || name)`` guarantees that.

Both :mod:`random`-style streams (cheap scalar draws) and NumPy generators
(bulk vector draws for the cell-threshold model) are provided.
"""

from __future__ import annotations

import hashlib
import random

import numpy as np


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name."""
    payload = f"{master_seed}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """Factory for independent named random streams.

    Streams are memoised: asking for the same name twice returns the same
    generator object, so a subsystem can re-fetch its stream instead of
    threading the object through every call.
    """

    def __init__(self, master_seed: int = 0):
        if not isinstance(master_seed, int):
            raise TypeError(f"master_seed must be an int, got {type(master_seed).__name__}")
        self.master_seed = master_seed
        self._py_streams: dict[str, random.Random] = {}
        self._np_streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> random.Random:
        """Return the memoised :class:`random.Random` for ``name``."""
        if name not in self._py_streams:
            self._py_streams[name] = random.Random(derive_seed(self.master_seed, name))
        return self._py_streams[name]

    def numpy_stream(self, name: str) -> np.random.Generator:
        """Return the memoised NumPy generator for ``name``."""
        if name not in self._np_streams:
            self._np_streams[name] = np.random.default_rng(derive_seed(self.master_seed, name))
        return self._np_streams[name]

    def fresh_numpy(self, name: str, *qualifiers: int) -> np.random.Generator:
        """Return a *new* generator keyed by ``name`` plus integer qualifiers.

        Used for content that must be derivable on demand without storing
        state — e.g. the weak-cell population of DRAM row ``(bank, row)`` is
        regenerated identically every time from
        ``fresh_numpy("dram.cells", bank, row)``.
        """
        key = name + "".join(f"/{q}" for q in qualifiers)
        return np.random.default_rng(derive_seed(self.master_seed, key))

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child :class:`RngStreams` (for nested experiment sweeps)."""
        return RngStreams(derive_seed(self.master_seed, f"spawn:{name}"))

    def reseed(self, master_seed: int) -> None:
        """Re-key every stream under a new master seed.

        Existing memoised generators are dropped; the next ``stream(name)``
        derives fresh from the new seed.  Used by :meth:`Machine.fork` to
        give each forked machine an independent but reproducible random
        future while its *state* (already materialised from the old seed)
        stays shared.  Consumers that must stay pinned to the construction
        seed — the weak-cell map is the canonical case — capture the seed
        at construction time instead of re-reading ``master_seed``.
        """
        if not isinstance(master_seed, int):
            raise TypeError(f"master_seed must be an int, got {type(master_seed).__name__}")
        self.master_seed = master_seed
        self._py_streams.clear()
        self._np_streams.clear()

    def __repr__(self) -> str:
        return f"RngStreams(master_seed={self.master_seed})"
