"""Discrete-event core: a scheduler over :class:`SimClock` plus a pub/sub bus.

Before this module existed every timed behaviour in the simulator was
*polled*: the DRAM controller re-derived the refresh epoch on each access,
the kernel asked kswapd "anything pending?" at fault time, and chaos plans
were pumped inline from syscalls.  The :class:`EventScheduler` replaces
those ad-hoc checks with one ordered heap of ``(due_ns, seq, event)``
entries sharing the machine's :class:`~repro.sim.clock.SimClock`:

* **Deterministic ordering** — ties on ``due_ns`` break on the global
  ``seq`` counter, so two machines that schedule the same events in the
  same order dispatch them identically.
* **Queues** — every event belongs to a named queue (``"dram"``,
  ``"mm"``, ``"os"``, ``"defense"``).  Components drain *their own*
  queue at exactly the points where they used to poll, which preserves
  the polled core's semantics bit-for-bit; ``run_until``/``step`` drain
  all queues in global ``(due_ns, seq)`` order.
* **Recurring events** — a ``period_ns`` re-arms the event after each
  firing.  Missed periods are skipped, not replayed: the next due time
  is the first multiple of the period (phased from the original due
  time) strictly after *now*, mirroring how a real periodic timer that
  slept through several ticks coalesces them.
* **Cancellation handles** — :meth:`EventScheduler.schedule` returns an
  :class:`EventHandle`; cancellation is lazy (the heap entry is skipped
  when it surfaces), so cancel is O(1).
* **Dispatch barrier** — events scheduled *during* a dispatch pass are
  never fired by that same pass (their ``seq`` is past the barrier).
  A self-rescheduling event therefore cannot spin the dispatcher.

The :class:`EventBus` is the untimed half: typed publish/subscribe
between layers.  The kernel publishes a :class:`SyscallHook` payload on
:data:`TOPIC_SYSCALL` at every syscall pump point; the chaos engine (and
anything else) subscribes instead of being hard-wired into the kernel.

Both structures deep-copy cleanly — callbacks must be *bound methods* of
simulation objects so that :meth:`~repro.core.machine.Machine.fork`
rebinds them to the copied instances (a closure would keep pointing at
the original machine).
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass

from repro.obs import NOOP_OBS
from repro.sim.clock import SimClock
from repro.sim.errors import ConfigError

#: Topic the kernel publishes syscall pump points on (chaos subscribes).
TOPIC_SYSCALL = "os.syscall"


@dataclass(frozen=True)
class SyscallHook:
    """Bus payload for one kernel syscall pump point."""

    hook: str
    pid: int
    time_ns: int


class _Event:
    """One scheduled callback (internal; callers hold an EventHandle)."""

    __slots__ = ("name", "queue", "due_ns", "period_ns", "callback", "cancelled")

    def __init__(
        self,
        name: str,
        queue: str,
        due_ns: int,
        period_ns: int | None,
        callback: Callable[[int], None],
    ):
        self.name = name
        self.queue = queue
        self.due_ns = due_ns
        self.period_ns = period_ns
        self.callback = callback
        self.cancelled = False

    def __repr__(self) -> str:
        kind = "recurring" if self.period_ns else "one-shot"
        return f"_Event({self.name!r}, queue={self.queue!r}, due={self.due_ns}, {kind})"


class EventHandle:
    """Cancellation handle for a scheduled event."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    @property
    def name(self) -> str:
        """The event's name (for diagnostics)."""
        return self._event.name

    @property
    def due_ns(self) -> int:
        """The event's (next) due time."""
        return self._event.due_ns

    @property
    def active(self) -> bool:
        """True until the event is cancelled (recurring events stay active)."""
        return not self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event; its pending heap entry is skipped lazily."""
        self._event.cancelled = True

    def __repr__(self) -> str:
        state = "active" if self.active else "cancelled"
        return f"EventHandle({self._event.name!r}, {state})"


class EventScheduler:
    """Deterministic discrete-event scheduler over a shared sim clock."""

    def __init__(self, clock: SimClock):
        self.clock = clock
        self._queues: dict[str, list[tuple[int, int, _Event]]] = {}
        self._seq = 0
        self.scheduled_total = 0
        self.dispatched_total = 0
        self.cancelled_total = 0
        self.bind_obs(NOOP_OBS)

    def bind_obs(self, obs) -> None:
        """Attach an observability hub (see docs/OBSERVABILITY.md)."""
        self.obs = obs
        metrics = obs.metrics
        self._m_scheduled = metrics.counter(
            "sim.events.scheduled", unit="events",
            help="events placed on the scheduler heap",
        )
        self._m_cancelled = metrics.counter(
            "sim.events.cancelled", unit="events",
            help="scheduled events cancelled before firing",
        )
        self._m_dispatched: dict[str, object] = {}
        pending = metrics.gauge(
            "sim.events.pending", unit="events",
            help="events waiting on the scheduler heap",
        )

        def _collect() -> None:
            pending.set(self.pending())

        metrics.add_collector(_collect)

    def _dispatch_counter(self, queue: str):
        counter = self._m_dispatched.get(queue)
        if counter is None:
            counter = self.obs.metrics.counter(
                "sim.events.dispatched", labels={"queue": queue}, unit="events",
                help="events fired, by scheduler queue",
            )
            self._m_dispatched[queue] = counter
        return counter

    # -- scheduling --------------------------------------------------------------

    def schedule(
        self,
        name: str,
        due_ns: int,
        callback: Callable[[int], None],
        *,
        queue: str = "default",
        period_ns: int | None = None,
    ) -> EventHandle:
        """Schedule ``callback(now_ns)`` at ``due_ns`` on ``queue``.

        With ``period_ns`` the event recurs; skipped periods coalesce
        (see the module docstring).  Returns a cancellation handle.
        """
        if due_ns < self.clock.now_ns:
            raise ConfigError(
                f"event {name!r} due at {due_ns} is in the past (now {self.clock.now_ns})"
            )
        if period_ns is not None and period_ns <= 0:
            raise ConfigError(f"period_ns must be positive, got {period_ns}")
        event = _Event(name, queue, due_ns, period_ns, callback)
        self._push(event)
        self.scheduled_total += 1
        self._m_scheduled.inc()
        return EventHandle(event)

    def schedule_in(
        self,
        name: str,
        delay_ns: int,
        callback: Callable[[int], None],
        *,
        queue: str = "default",
        period_ns: int | None = None,
    ) -> EventHandle:
        """Schedule relative to now (``delay_ns`` >= 0)."""
        if delay_ns < 0:
            raise ConfigError(f"delay_ns must be non-negative, got {delay_ns}")
        return self.schedule(
            name, self.clock.now_ns + delay_ns, callback,
            queue=queue, period_ns=period_ns,
        )

    def cancel(self, handle: EventHandle) -> None:
        """Cancel through the scheduler (equivalent to ``handle.cancel()``)."""
        if handle.active:
            handle.cancel()
            self.cancelled_total += 1
            self._m_cancelled.inc()

    def _push(self, event: _Event) -> None:
        self._seq += 1
        heapq.heappush(
            self._queues.setdefault(event.queue, []),
            (event.due_ns, self._seq, event),
        )

    # -- dispatch ----------------------------------------------------------------

    def _skim(self, heap: list) -> None:
        """Drop cancelled entries off the top of ``heap``."""
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)

    def _fire(self, event: _Event) -> None:
        self.dispatched_total += 1
        self._dispatch_counter(event.queue).inc()
        event.callback(self.clock.now_ns)
        if event.period_ns is not None and not event.cancelled:
            # Skip-missed re-arm: first phase-aligned multiple after now.
            now = self.clock.now_ns
            due = event.due_ns + event.period_ns
            if due <= now:
                missed = (now - event.due_ns) // event.period_ns
                due = event.due_ns + (missed + 1) * event.period_ns
            event.due_ns = due
            self._push(event)

    def dispatch_due(self, queue: str | None = None) -> int:
        """Fire every due event (one queue, or all in global order).

        Events scheduled during this call — including recurring re-arms —
        wait for the next call (the dispatch barrier), so a handler that
        schedules an already-due event cannot loop the dispatcher.
        Returns the number of events fired.
        """
        barrier = self._seq
        fired = 0
        if queue is not None:
            heap = self._queues.get(queue)
            if not heap:
                return 0
            while heap:
                self._skim(heap)
                if not heap:
                    break
                due, seq, event = heap[0]
                if due > self.clock.now_ns or seq > barrier:
                    break
                heapq.heappop(heap)
                self._fire(event)
                fired += 1
            return fired
        while True:
            entry = self._peek_global()
            if entry is None:
                break
            (due, seq), name = entry
            if due > self.clock.now_ns or seq > barrier:
                break
            _, _, event = heapq.heappop(self._queues[name])
            self._fire(event)
            fired += 1
        return fired

    def _peek_global(self) -> tuple[tuple[int, int], str] | None:
        """The globally next (due, seq) entry and its queue name."""
        best: tuple[tuple[int, int], str] | None = None
        for name in sorted(self._queues):
            heap = self._queues[name]
            self._skim(heap)
            if heap:
                due, seq, _ = heap[0]
                if best is None or (due, seq) < best[0]:
                    best = ((due, seq), name)
        return best

    def next_due_ns(self, queue: str | None = None) -> int | None:
        """Due time of the next pending event (None when idle)."""
        if queue is not None:
            heap = self._queues.get(queue)
            if not heap:
                return None
            self._skim(heap)
            return heap[0][0] if heap else None
        entry = self._peek_global()
        return None if entry is None else entry[0][0]

    def step(self) -> int | None:
        """Advance the clock to the next event and fire it.

        Returns the time the event fired at, or None if nothing is
        pending.  Due events at the current time fire without advancing.
        """
        entry = self._peek_global()
        if entry is None:
            return None
        (due, _seq), name = entry
        self.clock.advance_to(due)
        _, _, event = heapq.heappop(self._queues[name])
        self._fire(event)
        return due

    def run_until(self, target_ns: int) -> int:
        """Dispatch every event due up to ``target_ns``, advancing the clock.

        The clock lands exactly on ``target_ns`` (events fire at their own
        due times along the way).  Returns the number of events fired.
        """
        if target_ns < self.clock.now_ns:
            raise ConfigError(
                f"cannot run backwards to {target_ns} (now {self.clock.now_ns})"
            )
        fired = 0
        while True:
            entry = self._peek_global()
            if entry is None or entry[0][0] > target_ns:
                break
            (due, _seq), name = entry
            self.clock.advance_to(due)
            _, _, event = heapq.heappop(self._queues[name])
            self._fire(event)
            fired += 1
        self.clock.advance_to(target_ns)
        return fired

    # -- introspection ----------------------------------------------------------

    def pending(self, queue: str | None = None) -> int:
        """Live (non-cancelled) events waiting to fire."""
        if queue is not None:
            heap = self._queues.get(queue, ())
            return sum(1 for _, _, event in heap if not event.cancelled)
        return sum(self.pending(name) for name in self._queues)

    def queues(self) -> list[str]:
        """Queue names with at least one pending event, sorted."""
        return sorted(name for name in self._queues if self.pending(name))

    def stats(self) -> dict[str, int]:
        """Lifetime scheduler counters plus the current backlog."""
        return {
            "scheduled": self.scheduled_total,
            "dispatched": self.dispatched_total,
            "cancelled": self.cancelled_total,
            "pending": self.pending(),
        }

    def __repr__(self) -> str:
        return (
            f"EventScheduler(pending={self.pending()}, "
            f"dispatched={self.dispatched_total}, queues={self.queues()})"
        )


class EventBus:
    """Typed publish/subscribe between simulation layers.

    Subscribers are called synchronously, in subscription order, with the
    published payload.  Payloads are typed dataclasses (see
    :class:`SyscallHook`) so topics carry structure, not ad-hoc tuples.
    """

    def __init__(self):
        self._topics: dict[str, list[Callable[[object], None]]] = {}
        self.published_total = 0
        self.bind_obs(NOOP_OBS)

    def bind_obs(self, obs) -> None:
        """Attach an observability hub (see docs/OBSERVABILITY.md)."""
        self.obs = obs
        self._m_published = obs.metrics.counter(
            "sim.bus.published", unit="messages",
            help="messages published on the event bus",
        )

    def subscribe(self, topic: str, callback: Callable[[object], None]) -> None:
        """Register ``callback`` for every future publish on ``topic``."""
        if not topic:
            raise ConfigError("bus topic must be non-empty")
        self._topics.setdefault(topic, []).append(callback)

    def unsubscribe(self, topic: str, callback: Callable[[object], None]) -> bool:
        """Remove one registration; True if it was present."""
        subscribers = self._topics.get(topic)
        if subscribers is None or callback not in subscribers:
            return False
        subscribers.remove(callback)
        return True

    def publish(self, topic: str, payload: object) -> int:
        """Deliver ``payload`` to every subscriber; returns delivery count."""
        self.published_total += 1
        self._m_published.inc()
        subscribers = self._topics.get(topic)
        if not subscribers:
            return 0
        for callback in list(subscribers):
            callback(payload)
        return len(subscribers)

    def subscriber_count(self, topic: str) -> int:
        """Registered callbacks for ``topic``."""
        return len(self._topics.get(topic, ()))

    def __repr__(self) -> str:
        topics = {name: len(subs) for name, subs in self._topics.items()}
        return f"EventBus(topics={topics}, published={self.published_total})"
