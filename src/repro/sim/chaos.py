"""Seeded, composable chaos injection across every simulated layer.

The real ExplFrame attack is probabilistic end to end: templated flips can
stop repeating when the module's thresholds drift, staged frames can be
stolen by competing allocations, the scheduler can migrate the attacker
off the shared CPU, and TRR-style mitigations can silently eat faults.
This module turns that hostility into a first-class, *deterministic*
simulation input so robustness machinery (retry orchestrators, budgets,
failure forensics) can be exercised and measured.

The pieces:

* :class:`ChaosEvent` subclasses — typed perturbations, one per layer:

  - :class:`ThresholdDrift` (DRAM): scales every weak cell's flip
    threshold, permanently or for a bounded sim-time window;
  - :class:`RefreshJitter` (DRAM): stretches/shrinks the effective
    refresh window, changing how much disturbance can accumulate;
  - :class:`AllocationPressure` (MM): a competitor task on the caller's
    CPU churns pages through the per-CPU pageset, draining and refilling
    it and burying any staged frames;
  - :class:`PagesetDrain` (MM): drains the caller CPU's page frame
    caches outright, as scheduler noise would;
  - :class:`AttackerMigration` (OS): migrates the calling task off its
    CPU, breaking the co-residency the attack depends on;
  - :class:`HammerInterference` (DRAM/TRR): an aggressor-sampling burst —
    every bank gets a neighbour refresh and disturbance is suppressed for
    a window, the transient clamping TRR samplers produce.

* :class:`ChaosPlan` — an ordered, immutable composition of events, with
  named profiles from :func:`chaos_profile` scaled by an ``intensity``;

* :class:`ChaosEngine` — attaches a plan to a kernel.  Syscall hooks
  (``mmap``, ``munmap-pre``, ``munmap``, ``hammer``, ``spawn``,
  ``sleep``) *pump* the engine; events fire when their hook, time gate
  and skip count line up, and every firing is logged as a
  :class:`ChaosRecord` for failure forensics.

Everything is a pure function of the machine seed and the plan: the same
seed and profile replay the identical adversity, so orchestrator runs are
reproducible byte-for-byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.sim.errors import ConfigError
from repro.sim.rng import derive_seed
from repro.sim.units import MS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.os.kernel import Kernel

# Pump points the kernel exposes; "any" matches every pump.
HOOKS = ("any", "mmap", "munmap-pre", "munmap", "hammer", "spawn", "sleep")


@dataclass(frozen=True)
class ChaosEvent:
    """Base class: when an event fires, not what it does.

    ``hook`` names the kernel pump point the event listens on; ``at_ns``
    gates it until simulated time reaches that point; ``skip`` lets that
    many eligible occasions pass first; ``times`` caps how often it fires.
    """

    hook: str = "munmap"
    at_ns: int = 0
    skip: int = 0
    times: int = 1

    def __post_init__(self) -> None:
        if self.hook not in HOOKS:
            raise ConfigError(f"unknown chaos hook {self.hook!r}; expected one of {HOOKS}")
        if self.at_ns < 0:
            raise ConfigError(f"at_ns must be non-negative, got {self.at_ns}")
        if self.skip < 0:
            raise ConfigError(f"skip must be non-negative, got {self.skip}")
        if self.times < 1:
            raise ConfigError(f"times must be at least 1, got {self.times}")

    def apply(self, engine: "ChaosEngine", pid: int) -> str:
        """Perturb the machine; returns a human-readable detail string."""
        raise NotImplementedError


@dataclass(frozen=True)
class ThresholdDrift(ChaosEvent):
    """DRAM-level drift of every weak cell's flip threshold.

    ``scale > 1`` hardens the module (templated flips stop repeating);
    ``scale < 1`` softens it (extra, unpredicted cells start firing).
    With ``duration_ns`` the drift is a transient window; without, it is
    permanent for the rest of the run.
    """

    scale: float = 4.0
    duration_ns: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.scale <= 0:
            raise ConfigError(f"threshold scale must be positive, got {self.scale}")
        if self.duration_ns is not None and self.duration_ns <= 0:
            raise ConfigError(f"duration_ns must be positive, got {self.duration_ns}")

    def apply(self, engine: "ChaosEngine", pid: int) -> str:
        engine.push_threshold_scale(self.scale, self.duration_ns)
        window = "" if self.duration_ns is None else f" for {self.duration_ns} ns"
        return f"flip thresholds x{self.scale:g}{window}"


@dataclass(frozen=True)
class RefreshJitter(ChaosEvent):
    """DRAM refresh-window jitter: scales the effective tREFW.

    ``scale < 1`` refreshes more often, so less disturbance accumulates
    per window — the knob a DDR4 pTRR-style doubling of the refresh rate
    turns.
    """

    scale: float = 0.5
    duration_ns: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.scale <= 0:
            raise ConfigError(f"refresh scale must be positive, got {self.scale}")
        if self.duration_ns is not None and self.duration_ns <= 0:
            raise ConfigError(f"duration_ns must be positive, got {self.duration_ns}")

    def apply(self, engine: "ChaosEngine", pid: int) -> str:
        engine.push_refresh_scale(self.scale, self.duration_ns)
        window = "" if self.duration_ns is None else f" for {self.duration_ns} ns"
        return f"refresh window x{self.scale:g}{window}"


@dataclass(frozen=True)
class AllocationPressure(ChaosEvent):
    """MM-level background pressure on the calling task's CPU.

    A competitor task maps, touches and releases ``pages`` pages: the
    allocations drain the per-CPU pageset (taking any staged frames with
    them) and the frees refill it with the competitor's frames, so the
    next small allocation on that CPU no longer receives what the caller
    staged.
    """

    pages: int = 32

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.pages <= 0:
            raise ConfigError(f"pages must be positive, got {self.pages}")

    def apply(self, engine: "ChaosEngine", pid: int) -> str:
        cpu = engine.kernel.task(pid).cpu
        competitor = engine.competitor(cpu)
        engine.kernel.churn(competitor, self.pages)
        return f"competitor churned {self.pages} pages on cpu {cpu}"


@dataclass(frozen=True)
class PagesetDrain(ChaosEvent):
    """MM-level drain of the calling task's CPU page frame caches."""

    def apply(self, engine: "ChaosEngine", pid: int) -> str:
        cpu = engine.kernel.task(pid).cpu
        drained = engine.kernel.allocator.drain_cpu_caches(cpu)
        return f"drained {drained} cached frames from cpu {cpu}"


@dataclass(frozen=True)
class AttackerMigration(ChaosEvent):
    """OS-level migration of the calling task off its current CPU.

    Defaults to the next CPU round-robin; breaks the CPU co-residency
    that page-frame-cache steering requires until the task repins itself.
    """

    to_cpu: int | None = None

    def apply(self, engine: "ChaosEngine", pid: int) -> str:
        kernel = engine.kernel
        task = kernel.task(pid)
        old_cpu = task.cpu
        target = self.to_cpu if self.to_cpu is not None else (old_cpu + 1) % kernel.scheduler.num_cpus
        if target == old_cpu:
            return f"migration no-op: pid {pid} already on cpu {old_cpu}"
        kernel.sys_sched_setaffinity(pid, frozenset({target}))
        return f"migrated pid {pid} from cpu {old_cpu} to cpu {target}"


@dataclass(frozen=True)
class HammerInterference(ChaosEvent):
    """TRR-style aggressor-sampling burst.

    Models the mitigation's transient clamping: every bank receives a
    neighbour refresh *now* (resetting per-window activation counters)
    and for ``duration_ns`` of simulated time disturbance is suppressed
    by ``factor`` — hammering during the window quietly does nothing.
    """

    factor: float = 1e9
    duration_ns: int = 250 * MS

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.factor <= 1.0:
            raise ConfigError(f"interference factor must exceed 1, got {self.factor}")
        if self.duration_ns <= 0:
            raise ConfigError(f"duration_ns must be positive, got {self.duration_ns}")

    def apply(self, engine: "ChaosEngine", pid: int) -> str:
        engine.refresh_all_banks()
        engine.push_threshold_scale(self.factor, self.duration_ns)
        return f"TRR sampling burst: banks refreshed, disturbance suppressed for {self.duration_ns} ns"


@dataclass(frozen=True)
class ChaosRecord:
    """One fired event, as logged for failure forensics."""

    time_ns: int
    hook: str
    pid: int
    event: str
    detail: str

    def to_dict(self) -> dict:
        """Plain-data form for reports."""
        return {
            "time_ns": self.time_ns,
            "hook": self.hook,
            "pid": self.pid,
            "event": self.event,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class ChaosPlan:
    """A named, ordered composition of chaos events."""

    name: str
    events: tuple[ChaosEvent, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("chaos plan needs a name")
        object.__setattr__(self, "events", tuple(self.events))

    @property
    def is_null(self) -> bool:
        """True for the empty (no-adversity) plan."""
        return not self.events

    def describe(self) -> list[str]:
        """One line per event, in firing-priority order."""
        return [
            f"{type(event).__name__}(hook={event.hook}, skip={event.skip}, times={event.times})"
            for event in self.events
        ]


# Named profiles the CLI and benchmarks expose.  Each is deterministic;
# ``intensity`` scales how much adversity it injects.
CHAOS_PROFILES = ("none", "steal", "drain", "drift", "migrate", "trr", "storm")


def chaos_profile(name: str, intensity: float = 1.0) -> ChaosPlan:
    """Build a named chaos plan scaled by ``intensity`` (> 0, default 1).

    Profiles target the attack's staging window (the first munmaps a run
    issues are the frame-staging ones), so they bite deterministically:

    * ``none``    — the empty plan;
    * ``steal``   — competitor allocation pressure right after frames are
      staged (steering miss);
    * ``drain``   — the CPU's pagesets are drained after staging;
    * ``drift``   — flip thresholds harden for a window spanning the
      re-hammer phase (non-repeatable flip);
    * ``migrate`` — the attacker is migrated off the shared CPU as it
      stages (frames land in the wrong CPU's cache);
    * ``trr``     — a TRR sampling burst suppresses disturbance over the
      re-hammer phase;
    * ``storm``   — steal, then migrate, then a TRR burst, in sequence.
    """
    if intensity <= 0:
        raise ConfigError(f"intensity must be positive, got {intensity}")
    hits = max(1, round(intensity))
    pages = max(8, round(32 * intensity))
    window_ns = max(1, int(250 * MS * intensity))
    if name == "none":
        return ChaosPlan("none", ())
    if name == "steal":
        return ChaosPlan("steal", (AllocationPressure(hook="munmap", times=hits, pages=pages),))
    if name == "drain":
        return ChaosPlan("drain", (PagesetDrain(hook="munmap", times=hits),))
    if name == "drift":
        return ChaosPlan(
            "drift",
            (ThresholdDrift(hook="munmap", times=hits, scale=25.0, duration_ns=window_ns),),
        )
    if name == "migrate":
        return ChaosPlan("migrate", (AttackerMigration(hook="munmap-pre", times=hits),))
    if name == "trr":
        return ChaosPlan("trr", (HammerInterference(hook="munmap", times=hits, duration_ns=window_ns),))
    if name == "storm":
        return ChaosPlan(
            "storm",
            (
                AllocationPressure(hook="munmap", times=hits, pages=pages),
                AttackerMigration(hook="munmap-pre", skip=hits, times=1),
                HammerInterference(hook="munmap", skip=hits + 1, times=1, duration_ns=window_ns),
            ),
        )
    raise ConfigError(f"unknown chaos profile {name!r}; expected one of {CHAOS_PROFILES}")


def chaos_plan_for_attempt(
    name: str, attempt_seed: int, intensity: float = 1.0
) -> ChaosPlan:
    """A per-attempt variant of :func:`chaos_profile` for campaigns.

    Every attempt of a campaign runs the same named profile, but with a
    small deterministic jitter on each event's ``skip`` count derived
    from the attempt seed — so a survival curve (A6) samples adversity
    landing at slightly different points of the staging window instead
    of hitting the identical syscall on every attempt.  A pure function
    of ``(name, attempt_seed, intensity)``: the plan is the same no
    matter which worker process builds it.
    """
    base = chaos_profile(name, intensity)
    if base.is_null:
        return base
    rng = random.Random(derive_seed(attempt_seed, "chaos.plan"))
    events = tuple(
        replace(event, skip=event.skip + rng.randrange(3)) for event in base.events
    )
    return ChaosPlan(base.name, events)


class _EventState:
    """Mutable firing state for one planned event."""

    def __init__(self, event: ChaosEvent):
        self.event = event
        self.skip_left = event.skip
        self.times_left = event.times


class ChaosEngine:
    """Attaches a :class:`ChaosPlan` to a kernel and fires its events.

    The kernel pumps the engine at syscall hooks; pumping is reentrancy-
    guarded so an event's own syscalls (a competitor's churn, a forced
    migration) never trigger further events.  All transient windows are
    expired lazily at pump time against the simulated clock.
    """

    def __init__(self, kernel: "Kernel", plan: ChaosPlan):
        self.kernel = kernel
        self.plan = plan
        self.records: list[ChaosRecord] = []
        self._states = [_EventState(event) for event in plan.events]
        self._pumping = False
        self._base_threshold_scale = 1.0
        self._threshold_windows: list[tuple[int, float]] = []  # (end_ns, scale)
        self._base_refresh_scale = 1.0
        self._refresh_windows: list[tuple[int, float]] = []
        self._competitors: dict[int, int] = {}  # cpu -> competitor pid
        kernel.chaos = self
        self.bind_obs(kernel.obs)
        self.obs.tracer.instant(
            "chaos.plan", "chaos", plan=plan.name, events=len(plan.events)
        )

    def bind_obs(self, obs) -> None:
        """Attach an observability hub (re-run on machine fork)."""
        self.obs = obs
        self._m_fired = obs.metrics.counter(
            "chaos.events_fired", unit="events",
            help="chaos events that actually fired",
        )
        self._m_pumps = obs.metrics.counter(
            "chaos.pumps", unit="calls", help="kernel pump-point visits"
        )

    # -- effect plumbing (used by events) ---------------------------------------

    def push_threshold_scale(self, scale: float, duration_ns: int | None) -> None:
        """Multiply the flip-threshold scale, optionally for a window."""
        if duration_ns is None:
            self._base_threshold_scale *= scale
        else:
            self._threshold_windows.append((self.kernel.clock.now_ns + duration_ns, scale))
        self._apply_scales()

    def push_refresh_scale(self, scale: float, duration_ns: int | None) -> None:
        """Multiply the refresh-window scale, optionally for a window."""
        if duration_ns is None:
            self._base_refresh_scale *= scale
        else:
            self._refresh_windows.append((self.kernel.clock.now_ns + duration_ns, scale))
        self._apply_scales()

    def _apply_scales(self) -> None:
        now = self.kernel.clock.now_ns
        self._threshold_windows = [w for w in self._threshold_windows if w[0] > now]
        scale = self._base_threshold_scale
        for _, factor in self._threshold_windows:
            scale *= factor
        self.kernel.controller.threshold_scale = scale
        self._refresh_windows = [w for w in self._refresh_windows if w[0] > now]
        scale = self._base_refresh_scale
        for _, factor in self._refresh_windows:
            scale *= factor
        self.kernel.controller.refresh_scale = scale

    def refresh_all_banks(self) -> None:
        """Give every instantiated bank a refresh (resets window counters)."""
        for bank in self.kernel.controller._banks.values():
            bank.refresh()

    def competitor(self, cpu: int) -> int:
        """The (memoised) competitor task pid for ``cpu``."""
        pid = self._competitors.get(cpu)
        if pid is None:
            pid = self.kernel.spawn(f"chaos-competitor-{cpu}", cpu=cpu).pid
            self._competitors[cpu] = pid
        return pid

    # -- the pump ----------------------------------------------------------------

    def pump(self, hook: str, pid: int) -> None:
        """Fire every due event for ``hook`` issued by ``pid``."""
        if self._pumping:
            return
        self._pumping = True
        self._m_pumps.inc()
        try:
            now = self.kernel.clock.now_ns
            if self._threshold_windows or self._refresh_windows:
                self._apply_scales()
            for state in self._states:
                event = state.event
                if state.times_left <= 0:
                    continue
                if event.hook != "any" and event.hook != hook:
                    continue
                if now < event.at_ns:
                    continue
                if state.skip_left > 0:
                    state.skip_left -= 1
                    continue
                state.times_left -= 1
                detail = event.apply(self, pid)
                self.records.append(
                    ChaosRecord(
                        time_ns=now,
                        hook=hook,
                        pid=pid,
                        event=type(event).__name__,
                        detail=detail,
                    )
                )
                self._m_fired.inc()
                self.obs.tracer.instant(
                    "chaos.fire", "chaos",
                    event=type(event).__name__, hook=hook, pid=pid, detail=detail,
                )
        finally:
            self._pumping = False

    # -- forensics ----------------------------------------------------------------

    def records_as_dicts(self) -> list[dict]:
        """The firing log in plain-data form (embeds into run reports)."""
        return [record.to_dict() for record in self.records]

    def pending_events(self) -> int:
        """Events (counting multiplicity) that have not fired yet."""
        return sum(state.times_left for state in self._states)

    def __repr__(self) -> str:
        return (
            f"ChaosEngine(plan={self.plan.name!r}, fired={len(self.records)}, "
            f"pending={self.pending_events()})"
        )
