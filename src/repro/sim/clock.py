"""Simulated wall clock.

All timed components (DRAM refresh, hammer loops, scheduler bookkeeping)
share one :class:`SimClock` holding integer nanoseconds.  The clock only
moves when a component explicitly advances it — there is no hidden passage
of time, which keeps experiments deterministic.
"""

from __future__ import annotations


class SimClock:
    """Monotonic simulated time in integer nanoseconds."""

    def __init__(self, start_ns: int = 0):
        if start_ns < 0:
            raise ValueError(f"start time must be non-negative, got {start_ns}")
        self._now_ns = start_ns

    @property
    def now_ns(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now_ns

    def advance(self, delta_ns: int) -> int:
        """Move time forward by ``delta_ns`` and return the new time.

        Negative deltas are rejected: simulated time is monotonic.
        """
        if delta_ns < 0:
            raise ValueError(f"cannot move time backwards (delta={delta_ns})")
        self._now_ns += delta_ns
        return self._now_ns

    def advance_to(self, target_ns: int) -> int:
        """Move time forward to ``target_ns`` (no-op if already past it)."""
        if target_ns > self._now_ns:
            self._now_ns = target_ns
        return self._now_ns

    def __repr__(self) -> str:
        return f"SimClock(now_ns={self._now_ns})"
