"""Exception hierarchy shared by all subsystems.

Each simulated layer raises a subclass of :class:`ReproError` so callers can
catch failures from the whole stack with one handler, or pick out a specific
layer's failure mode (for instance :class:`OutOfMemoryError` from the buddy
allocator versus :class:`SegmentationFault` from the virtual-memory layer).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigError(ReproError):
    """A configuration value is inconsistent or out of range."""


class AllocationError(ReproError):
    """A memory allocation request could not be satisfied as asked."""


class OutOfMemoryError(AllocationError):
    """No zone in the zonelist could satisfy the allocation."""


class SegmentationFault(ReproError):
    """A task touched a virtual address with no valid mapping.

    Mirrors the SIGSEGV a real kernel would deliver.  Carries the faulting
    address and the pid of the offending task for diagnostics.
    """

    def __init__(self, message: str, *, address: int | None = None, pid: int | None = None):
        super().__init__(message)
        self.address = address
        self.pid = pid


class CapabilityError(ReproError):
    """A privileged operation was attempted without the required capability."""


class FaultError(ReproError):
    """A fault-injection or fault-analysis step failed."""
