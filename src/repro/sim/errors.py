"""Exception hierarchy shared by all subsystems.

Each simulated layer raises a subclass of :class:`ReproError` so callers can
catch failures from the whole stack with one handler, or pick out a specific
layer's failure mode (for instance :class:`OutOfMemoryError` from the buddy
allocator versus :class:`SegmentationFault` from the virtual-memory layer).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigError(ReproError):
    """A configuration value is inconsistent or out of range."""


class AllocationError(ReproError):
    """A memory allocation request could not be satisfied as asked."""


class OutOfMemoryError(AllocationError):
    """No zone in the zonelist could satisfy the allocation."""


class SegmentationFault(ReproError):
    """A task touched a virtual address with no valid mapping.

    Mirrors the SIGSEGV a real kernel would deliver.  Carries the faulting
    address and the pid of the offending task for diagnostics.
    """

    def __init__(self, message: str, *, address: int | None = None, pid: int | None = None):
        super().__init__(message)
        self.address = address
        self.pid = pid


class CapabilityError(ReproError):
    """A privileged operation was attempted without the required capability."""


class FaultError(ReproError):
    """A fault-injection or fault-analysis step failed."""


class TemplatingExhaustedError(FaultError):
    """Every templating campaign ended without a usable in-table flip.

    Raised by the attack when ``max_campaigns`` Rowhammer templating
    campaigns found no repeatable flip that lands inside the victim's
    table region with an armed direction.  Carries the campaign and flip
    counts so a retry orchestrator can classify the failure and decide
    whether launching further campaigns is worthwhile.
    """

    def __init__(self, message: str, *, campaigns: int = 0, flips_found: int = 0):
        super().__init__(message)
        self.campaigns = campaigns
        self.flips_found = flips_found
