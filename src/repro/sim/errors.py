"""Exception hierarchy shared by all subsystems.

Each simulated layer raises a subclass of :class:`ReproError` so callers can
catch failures from the whole stack with one handler, or pick out a specific
layer's failure mode (for instance :class:`OutOfMemoryError` from the buddy
allocator versus :class:`SegmentationFault` from the virtual-memory layer).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigError(ReproError):
    """A configuration value is inconsistent or out of range."""


class AllocationError(ReproError):
    """A memory allocation request could not be satisfied as asked."""


class OutOfMemoryError(AllocationError):
    """No zone in the zonelist could satisfy the allocation."""


class SegmentationFault(ReproError):
    """A task touched a virtual address with no valid mapping.

    Mirrors the SIGSEGV a real kernel would deliver.  Carries the faulting
    address and the pid of the offending task for diagnostics.
    """

    def __init__(self, message: str, *, address: int | None = None, pid: int | None = None):
        super().__init__(message)
        self.address = address
        self.pid = pid


class CapabilityError(ReproError):
    """A privileged operation was attempted without the required capability."""


class WorkerLostError(ReproError):
    """A pool worker process died while running a campaign attempt.

    Raised by the parallel execution layer when a worker vanishes
    mid-campaign (``BrokenProcessPool``, a SIGKILL'd child, an
    ``os._exit`` inside attempt code) instead of surfacing the executor's
    opaque traceback.  Carries the index of the attempt whose result was
    lost so a retrying driver (the campaign service) can re-dispatch
    exactly that attempt on a fresh worker.
    """

    def __init__(self, message: str, *, attempt: int | None = None):
        super().__init__(message)
        self.attempt = attempt


class CheckpointError(ReproError):
    """A campaign checkpoint directory cannot be used as asked.

    Raised by the campaign service when a checkpoint exists but resume
    was not requested, when the manifest's config hash does not match the
    campaign being run, when a journal is corrupted beyond its torn tail
    (an invalid record *followed by* valid ones), or when a shard merge
    finds the shard set incomplete or inconsistent.
    """


class FaultError(ReproError):
    """A fault-injection or fault-analysis step failed."""


class TemplatingExhaustedError(FaultError):
    """Every templating campaign ended without a usable in-table flip.

    Raised by the attack when ``max_campaigns`` Rowhammer templating
    campaigns found no repeatable flip that lands inside the victim's
    table region with an armed direction.  Carries the campaign and flip
    counts so a retry orchestrator can classify the failure and decide
    whether launching further campaigns is worthwhile.
    """

    def __init__(self, message: str, *, campaigns: int = 0, flips_found: int = 0):
        super().__init__(message)
        self.campaigns = campaigns
        self.flips_found = flips_found
