"""Size and time units used throughout the simulator.

The simulator follows the Linux/x86-64 convention of 4 KiB base pages.  Time
is kept in integer nanoseconds so the DRAM timing arithmetic stays exact.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT  # 4096 bytes, the x86-64 base page

NS = 1
US = 1_000 * NS
MS = 1_000 * US
SECOND = 1_000 * MS


def format_bytes(n: int) -> str:
    """Render a byte count with a binary suffix (``4.0 KiB``, ``1.5 GiB``)."""
    if n < 0:
        raise ValueError(f"byte count must be non-negative, got {n}")
    for suffix, unit in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if n >= unit:
            return f"{n / unit:.1f} {suffix}"
    return f"{n} B"


def format_time_ns(ns: int) -> str:
    """Render a nanosecond count with the largest natural suffix."""
    if ns < 0:
        raise ValueError(f"time must be non-negative, got {ns}")
    if ns >= 1_000 * MS:
        return f"{ns / (1_000 * MS):.3f} s"
    for suffix, unit in (("ms", MS), ("us", US)):
        if ns >= unit:
            return f"{ns / unit:.1f} {suffix}"
    return f"{ns} ns"


def pages_for_bytes(n: int) -> int:
    """Number of base pages needed to hold ``n`` bytes (round up)."""
    if n < 0:
        raise ValueError(f"byte count must be non-negative, got {n}")
    return (n + PAGE_SIZE - 1) >> PAGE_SHIFT


def is_page_aligned(addr: int) -> bool:
    """True when ``addr`` sits on a base-page boundary."""
    return (addr & (PAGE_SIZE - 1)) == 0


def page_align_down(addr: int) -> int:
    """Round ``addr`` down to the containing page boundary."""
    return addr & ~(PAGE_SIZE - 1)


def page_align_up(addr: int) -> int:
    """Round ``addr`` up to the next page boundary (identity if aligned)."""
    return (addr + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
