"""Deterministic simulation kernel.

Every stochastic component of the reproduction draws randomness from a
named stream derived from a single master seed (:class:`RngStreams`), and
every timed component reads a shared :class:`SimClock`.  Together they make
whole-machine runs reproducible bit-for-bit.

:mod:`repro.sim.chaos` injects seeded adversity (threshold drift, refresh
jitter, allocation pressure, migrations, TRR bursts) into the same
deterministic framework.
"""

from repro.sim.chaos import (
    CHAOS_PROFILES,
    ChaosEngine,
    ChaosEvent,
    ChaosPlan,
    ChaosRecord,
    chaos_profile,
)
from repro.sim.clock import SimClock
from repro.sim.errors import (
    AllocationError,
    CapabilityError,
    ConfigError,
    FaultError,
    OutOfMemoryError,
    ReproError,
    SegmentationFault,
    TemplatingExhaustedError,
)
from repro.sim.events import (
    TOPIC_SYSCALL,
    EventBus,
    EventHandle,
    EventScheduler,
    SyscallHook,
)
from repro.sim.rng import RngStreams
from repro.sim.units import (
    GIB,
    KIB,
    MIB,
    MS,
    NS,
    PAGE_SHIFT,
    PAGE_SIZE,
    SECOND,
    US,
    format_bytes,
    format_time_ns,
)

__all__ = [
    "AllocationError",
    "CHAOS_PROFILES",
    "CapabilityError",
    "ChaosEngine",
    "ChaosEvent",
    "ChaosPlan",
    "ChaosRecord",
    "ConfigError",
    "EventBus",
    "EventHandle",
    "EventScheduler",
    "FaultError",
    "GIB",
    "KIB",
    "MIB",
    "MS",
    "NS",
    "OutOfMemoryError",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "ReproError",
    "RngStreams",
    "SECOND",
    "SegmentationFault",
    "SimClock",
    "SyscallHook",
    "TOPIC_SYSCALL",
    "TemplatingExhaustedError",
    "US",
    "chaos_profile",
    "format_bytes",
    "format_time_ns",
]
