"""Deterministic simulation kernel.

Every stochastic component of the reproduction draws randomness from a
named stream derived from a single master seed (:class:`RngStreams`), and
every timed component reads a shared :class:`SimClock`.  Together they make
whole-machine runs reproducible bit-for-bit.
"""

from repro.sim.clock import SimClock
from repro.sim.errors import (
    AllocationError,
    CapabilityError,
    ConfigError,
    FaultError,
    OutOfMemoryError,
    ReproError,
    SegmentationFault,
)
from repro.sim.rng import RngStreams
from repro.sim.units import (
    GIB,
    KIB,
    MIB,
    MS,
    NS,
    PAGE_SHIFT,
    PAGE_SIZE,
    US,
    format_bytes,
    format_time_ns,
)

__all__ = [
    "AllocationError",
    "CapabilityError",
    "ConfigError",
    "FaultError",
    "GIB",
    "KIB",
    "MIB",
    "MS",
    "NS",
    "OutOfMemoryError",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "ReproError",
    "RngStreams",
    "SegmentationFault",
    "SimClock",
    "US",
    "format_bytes",
    "format_time_ns",
]
