"""Multi-tenant victim traffic: scenarios and the engine that drives them.

The paper's lab setting drives one victim with explicit ``encrypt()``
calls inside the attack loop.  This package models the ROADMAP's server
setting instead: N tenant processes with independent, seeded request
streams encrypt on a shared machine while the attacker steers page-frame
reuse against one of them.  See docs/SCENARIOS.md for the contract.
"""

from repro.workload.engine import WorkloadEngine
from repro.workload.scenario import (
    PRESET_NAMES,
    Scenario,
    TenantSpec,
    load_scenario,
    scenario_preset,
)

__all__ = [
    "PRESET_NAMES",
    "Scenario",
    "TenantSpec",
    "WorkloadEngine",
    "load_scenario",
    "scenario_preset",
]
