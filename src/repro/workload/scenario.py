"""Scenario contract: declarative multi-tenant victim mixes.

A :class:`Scenario` is plain data — which tenants share the machine,
what each encrypts with, how fast it issues requests, and which tenant
the attacker targets.  Scenarios load from named presets or JSON files
(see docs/SCENARIOS.md for the schema) and ride through campaign
snapshots, journals and config hashes as ordinary picklable values, so
a scenario campaign digests bit-identically at any worker count.

Validation is strict: unknown keys, impossible key sizes and
PFA-unrecoverable targets all raise :class:`ConfigError` at load time,
never mid-campaign.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path

from repro.sim.errors import ConfigError

#: Key sizes (bits) each victim implementation accepts.
_CIPHER_KEY_BITS = {
    "aes": (128, 192, 256),
    "aes_ttable": (128,),
    "present": (80,),
}

#: Key sizes the PFA stage can actually invert — the target tenant must
#: use one of these (background tenants may use any supported size).
_RECOVERABLE_KEY_BITS = {"aes": (128,), "aes_ttable": (128,), "present": (80,)}


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic contract.

    ``request_rate_hz`` is the mean arrival rate; inter-arrival delays
    are drawn uniformly from ``mean * [1 - jitter, 1 + jitter]`` off the
    tenant's private RNG stream, so one tenant's schedule never perturbs
    another's.  ``burst`` requests arrive per event; at most
    ``max_queue`` wait unserved (extra arrivals are dropped and
    counted).  ``scratch_pages`` models per-request working memory: each
    request maps that many fresh pages and frees the *previous*
    request's — the page-frame-cache churn that makes noisy neighbours
    dangerous to steering.  ``cpu=None`` leaves placement to the
    scheduler (least-loaded); the attack pins the *target* to the
    attacker's CPU regardless.  ``sleeps`` tenants block between
    requests, draining their CPU's page frame cache on every service
    (the paper's Section V warning, as a workload knob).
    """

    name: str
    cipher: str = "aes"
    key_bits: int | None = None
    key_hex: str | None = None
    request_rate_hz: float = 200.0
    burst: int = 1
    jitter: float = 0.3
    cpu: int | None = None
    scratch_pages: int = 1
    payload_blocks: int = 1
    max_queue: int = 64
    sleeps: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("-", "").replace("_", "").isalnum():
            raise ConfigError(f"tenant name {self.name!r} must be a non-empty slug")
        if self.cipher not in _CIPHER_KEY_BITS:
            raise ConfigError(
                f"tenant {self.name!r}: cipher must be one of "
                f"{sorted(_CIPHER_KEY_BITS)}, got {self.cipher!r}"
            )
        allowed = _CIPHER_KEY_BITS[self.cipher]
        if self.key_bits is not None and self.key_bits not in allowed:
            raise ConfigError(
                f"tenant {self.name!r}: {self.cipher} accepts key_bits "
                f"{allowed}, got {self.key_bits}"
            )
        if self.key_hex is not None:
            try:
                key = bytes.fromhex(self.key_hex)
            except ValueError as exc:
                raise ConfigError(
                    f"tenant {self.name!r}: key_hex is not valid hex"
                ) from exc
            if len(key) != self.key_bytes:
                raise ConfigError(
                    f"tenant {self.name!r}: key_hex is {len(key)} bytes, "
                    f"{self.resolved_key_bits}-bit {self.cipher} needs {self.key_bytes}"
                )
        if not 0.0 < self.request_rate_hz <= 1_000_000.0:
            raise ConfigError(
                f"tenant {self.name!r}: request_rate_hz must be in (0, 1e6], "
                f"got {self.request_rate_hz}"
            )
        if not 1 <= self.burst <= 1024:
            raise ConfigError(f"tenant {self.name!r}: burst must be in [1, 1024]")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"tenant {self.name!r}: jitter must be in [0, 1]")
        if self.cpu is not None and self.cpu < 0:
            raise ConfigError(f"tenant {self.name!r}: cpu must be >= 0 or null")
        if not 0 <= self.scratch_pages <= 64:
            raise ConfigError(f"tenant {self.name!r}: scratch_pages must be in [0, 64]")
        if not 1 <= self.payload_blocks <= 1024:
            raise ConfigError(f"tenant {self.name!r}: payload_blocks must be in [1, 1024]")
        if not 1 <= self.max_queue <= 65536:
            raise ConfigError(f"tenant {self.name!r}: max_queue must be in [1, 65536]")

    @property
    def resolved_key_bits(self) -> int:
        """``key_bits``, defaulted to the cipher's native size."""
        if self.key_bits is not None:
            return self.key_bits
        return _CIPHER_KEY_BITS[self.cipher][0]

    @property
    def key_bytes(self) -> int:
        """Length of this tenant's key material in bytes."""
        return self.resolved_key_bits // 8

    @property
    def mean_interarrival_ns(self) -> int:
        """Mean nanoseconds between request events."""
        return max(1, round(1e9 / self.request_rate_hz))

    def resolve_key(self, rng) -> bytes:
        """The tenant's key: explicit ``key_hex`` or drawn from ``rng``."""
        if self.key_hex is not None:
            return bytes.fromhex(self.key_hex)
        return bytes(rng.randrange(256) for _ in range(self.key_bytes))

    def to_dict(self) -> dict:
        """Plain-data form (round-trips through :meth:`from_dict`)."""
        out: dict = {"name": self.name, "cipher": self.cipher}
        for spec_field in fields(self):
            if spec_field.name in ("name", "cipher"):
                continue
            value = getattr(self, spec_field.name)
            if value != spec_field.default:
                out[spec_field.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TenantSpec":
        """Build from plain data, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise ConfigError(f"tenant entry must be an object, got {type(data).__name__}")
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown tenant knob(s) {sorted(unknown)}; known: {sorted(known)}"
            )
        if "name" not in data:
            raise ConfigError("tenant entry is missing 'name'")
        return cls(**data)


@dataclass(frozen=True)
class Scenario:
    """A named tenant mix plus the attacker's chosen target."""

    name: str
    target: str
    tenants: tuple[TenantSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("scenario name must be non-empty")
        if not self.tenants:
            raise ConfigError(f"scenario {self.name!r} declares no tenants")
        object.__setattr__(self, "tenants", tuple(self.tenants))
        names = [spec.name for spec in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"scenario {self.name!r} has duplicate tenant names")
        if self.target not in names:
            raise ConfigError(
                f"scenario {self.name!r} targets unknown tenant {self.target!r} "
                f"(tenants: {names})"
            )
        spec = self.target_spec
        if spec.resolved_key_bits not in _RECOVERABLE_KEY_BITS[spec.cipher]:
            raise ConfigError(
                f"scenario {self.name!r}: PFA cannot recover a "
                f"{spec.resolved_key_bits}-bit {spec.cipher} key; target a "
                f"128-bit AES or 80-bit PRESENT tenant"
            )
        if spec.sleeps:
            raise ConfigError(
                f"scenario {self.name!r}: the target tenant must stay active "
                "(sleeps=true drains the page frame cache the attack stages)"
            )

    @property
    def target_spec(self) -> TenantSpec:
        """The targeted tenant's spec."""
        for spec in self.tenants:
            if spec.name == self.target:
                return spec
        raise ConfigError(f"no tenant named {self.target!r}")  # pragma: no cover

    @property
    def background(self) -> tuple[TenantSpec, ...]:
        """Every tenant except the target."""
        return tuple(spec for spec in self.tenants if spec.name != self.target)

    def to_dict(self) -> dict:
        """Plain-data form (round-trips through :meth:`from_dict`)."""
        return {
            "name": self.name,
            "target": self.target,
            "tenants": [spec.to_dict() for spec in self.tenants],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Build from plain data, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise ConfigError(f"scenario must be an object, got {type(data).__name__}")
        unknown = set(data) - {"name", "target", "tenants"}
        if unknown:
            raise ConfigError(
                f"unknown scenario key(s) {sorted(unknown)}; "
                "expected name/target/tenants"
            )
        for required in ("name", "target", "tenants"):
            if required not in data:
                raise ConfigError(f"scenario is missing {required!r}")
        if not isinstance(data["tenants"], list):
            raise ConfigError("scenario 'tenants' must be a list")
        tenants = tuple(TenantSpec.from_dict(entry) for entry in data["tenants"])
        return cls(name=data["name"], target=data["target"], tenants=tenants)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Parse a scenario from JSON text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"scenario file is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


# Preset rates are tuned so the *ratio* of background arrivals to the
# target's steering window (1 / target rate) exercises real
# interference while a full templating pass stays cheap to serve —
# interference physics scale with that ratio, not with absolute rates.


def _preset_single() -> Scenario:
    return Scenario(
        name="single",
        target="alice",
        tenants=(
            TenantSpec(name="alice", cipher="aes", request_rate_hz=40.0, cpu=0),
        ),
    )


def _preset_duet() -> Scenario:
    return Scenario(
        name="duet",
        target="alice",
        tenants=(
            TenantSpec(name="alice", cipher="aes", request_rate_hz=40.0, cpu=0),
            TenantSpec(
                name="bob",
                cipher="aes",
                key_bits=256,
                request_rate_hz=24.0,
                jitter=0.5,
                cpu=0,
            ),
        ),
    )


def _preset_apartment_8() -> Scenario:
    return Scenario(
        name="apartment-8",
        target="t0",
        tenants=(
            TenantSpec(name="t0", cipher="aes", request_rate_hz=32.0, cpu=0),
            TenantSpec(name="t1", cipher="aes_ttable", request_rate_hz=16.0, cpu=0),
            TenantSpec(
                name="t2", cipher="present", request_rate_hz=12.0, burst=2, cpu=0
            ),
            TenantSpec(name="t3", cipher="aes", key_bits=192, request_rate_hz=24.0, cpu=0),
            TenantSpec(name="t4", cipher="aes", key_bits=256, request_rate_hz=20.0, cpu=1),
            TenantSpec(
                name="t5", cipher="present", request_rate_hz=8.0, cpu=1, sleeps=True
            ),
            TenantSpec(name="t6", cipher="aes_ttable", request_rate_hz=44.0, cpu=1),
            TenantSpec(name="t7", cipher="aes", request_rate_hz=6.0),
        ),
    )


_PRESETS = {
    "single": _preset_single,
    "duet": _preset_duet,
    "apartment-8": _preset_apartment_8,
}

#: Names accepted by ``attack --scenario`` without a file.
PRESET_NAMES = tuple(sorted(_PRESETS))


def scenario_preset(name: str) -> Scenario:
    """A built-in scenario by name (raises :class:`ConfigError` if unknown)."""
    try:
        factory = _PRESETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario preset {name!r}; available: {', '.join(PRESET_NAMES)}"
        ) from None
    return factory()


def load_scenario(ref: str) -> Scenario:
    """Resolve ``--scenario`` input: a preset name or a JSON file path."""
    if ref in _PRESETS:
        return scenario_preset(ref)
    path = Path(ref)
    if path.suffix == ".json" or path.exists():
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigError(f"cannot read scenario file {ref!r}: {exc}") from exc
        return Scenario.from_json(text)
    raise ConfigError(
        f"scenario {ref!r} is neither a preset ({', '.join(PRESET_NAMES)}) "
        "nor a .json file"
    )
