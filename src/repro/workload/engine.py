"""The workload engine: tenants as event-driven victim processes.

Each tenant is a schedulable task whose encryption requests arrive as
self-rescheduling events on the ``"workload"`` queue.  Arrival instants
are a pure function of the tenant's private RNG stream — the delays are
drawn off ``workload.arrivals/<name>`` in order, so adding or removing
*other* tenants never perturbs a tenant's request schedule (asserted in
tests; the contract docs/SCENARIOS.md relies on).

Background tenants get their victims (and table pages) at
:meth:`WorkloadEngine.start`.  The *target* tenant starts with no
victim: the attack creates one per steering attempt and hands it over
via :meth:`WorkloadEngine.attach_target`, so the target's traffic is
served by whichever process the attacker is currently steering against.

Serving a request costs simulated time (table reads through the memory
hierarchy) and — when ``scratch_pages > 0`` — churns the CPU's page
frame cache: each request maps fresh scratch and frees the *previous*
request's, the noisy-neighbour interference the T12 bench measures.
"""

from __future__ import annotations

from repro.attack.base import TargetVictim
from repro.ciphers.table_memory import CipherVictim
from repro.os.task import TaskState
from repro.sim.errors import ConfigError
from repro.sim.units import PAGE_SIZE
from repro.workload.scenario import Scenario, TenantSpec

#: Events land on this queue; the kernel drains it at every syscall pump
#: (and any ``run_until`` fires it in global due order).
WORKLOAD_QUEUE = "workload"

#: Arrival offsets kept per tenant for inspection (ring buffer bound).
_MAX_RECORDED_ARRIVALS = 4096


class _Tenant:
    """Runtime state of one tenant (spec + victim + counters)."""

    def __init__(self, engine: "WorkloadEngine", spec: TenantSpec, key: bytes):
        self.engine = engine
        self.spec = spec
        self.key = key
        self.victim: CipherVictim | None = None
        self.queue = 0
        self.issued = 0
        self.served = 0
        self.dropped = 0
        self.blocks_encrypted = 0
        self.next_due_ns: int | None = None
        self.arrival_offsets: list[int] = []
        self._scratch_va: int | None = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def is_target(self) -> bool:
        return self.name == self.engine.scenario.target

    # RNG streams are re-fetched on every draw: ``RngStreams.reseed()``
    # (campaign attempts) invalidates memoized streams, and a cached
    # generator would silently keep the old seed.
    def _arrival_rng(self):
        return self.engine.machine.rng.stream(f"workload.arrivals/{self.name}")

    def _payload_rng(self):
        return self.engine.machine.rng.stream(f"workload.payload/{self.name}")

    def _draw_delay_ns(self) -> int:
        spec = self.spec
        mean = spec.mean_interarrival_ns
        span = spec.jitter
        u = self._arrival_rng().random()
        return max(1, round(mean * (1.0 - span + 2.0 * span * u)))

    def schedule_first(self) -> None:
        self.next_due_ns = self.engine.epoch_ns + self._draw_delay_ns()
        self._arm()

    def _arm(self) -> None:
        self.engine.machine.events.schedule(
            f"workload.request.{self.name}",
            self.next_due_ns,
            self._on_fire,
            queue=WORKLOAD_QUEUE,
        )

    def _on_fire(self, now_ns: int) -> None:
        self._catch_up()
        if self.victim is not None:
            if self.queue:
                self._serve()
            if self.spec.scratch_pages:
                self._churn_scratch()
        # Serving advanced the clock; account anything that came due
        # meanwhile (they stay queued for the next fire) so the re-arm
        # below is always strictly in the future.
        self._catch_up()
        self._arm()

    def _catch_up(self) -> None:
        """Materialise every arrival due by now — pure accounting."""
        clock = self.engine.machine.clock
        while self.next_due_ns <= clock.now_ns:
            self._record_arrival(self.next_due_ns)
            self.next_due_ns += self._draw_delay_ns()

    def _record_arrival(self, due_ns: int) -> None:
        spec = self.spec
        if len(self.arrival_offsets) < _MAX_RECORDED_ARRIVALS:
            self.arrival_offsets.append(due_ns - self.engine.epoch_ns)
        self.issued += spec.burst
        self.engine._m_issued[self.name].inc(spec.burst)
        accepted = min(spec.burst, spec.max_queue - self.queue)
        if accepted < spec.burst:
            lost = spec.burst - accepted
            self.dropped += lost
            self.engine._m_dropped[self.name].inc(lost)
        self.queue += accepted
        self.engine.obs.tracer.instant(
            "workload.request", "workload", tenant=self.name, queue=self.queue
        )

    def _serve(self) -> None:
        spec, victim = self.spec, self.victim
        kernel = self.engine.kernel
        if spec.sleeps and victim.task.state is TaskState.SLEEPING:
            kernel.sys_wake(victim.pid)
        block = 8 if spec.cipher == "present" else 16
        rng = self._payload_rng()
        role = "target" if self.is_target else "noise"
        while self.queue:
            self.queue -= 1
            for _ in range(spec.payload_blocks):
                victim.encrypt(bytes(rng.randrange(256) for _ in range(block)))
            self.blocks_encrypted += spec.payload_blocks
            self.served += 1
            self.engine._m_served[self.name].inc()
            self.engine._m_encryptions[role].inc(spec.payload_blocks)
        if spec.sleeps:
            kernel.sys_sleep(victim.pid)

    def _churn_scratch(self) -> None:
        """Rolling per-request working memory: map fresh, free previous.

        Freeing *after* mapping means an odd number of arrivals inside a
        steering window leaves the staged frame captured by scratch — the
        interference is real churn, not a no-op push-pop.
        """
        spec = self.spec
        kernel = self.engine.kernel
        pid = self.victim.pid
        previous = self._scratch_va
        length = spec.scratch_pages * PAGE_SIZE
        self._scratch_va = kernel.sys_mmap(
            pid, length, populate=True, name=f"scratch-{self.name}"
        )
        if previous is not None:
            kernel.sys_munmap(pid, previous, length)


class WorkloadEngine:
    """Drives a :class:`Scenario`'s tenants on one machine."""

    def __init__(self, machine, scenario: Scenario):
        self.machine = machine
        self.kernel = machine.kernel
        self.scenario = scenario
        num_cpus = machine.num_cpus
        for spec in scenario.tenants:
            if spec.cpu is not None and spec.cpu >= num_cpus:
                raise ConfigError(
                    f"tenant {spec.name!r} pins cpu {spec.cpu} but the machine "
                    f"has {num_cpus} CPUs"
                )
        self.tenants: dict[str, _Tenant] = {}
        for spec in scenario.tenants:
            key = spec.resolve_key(machine.rng.stream(f"workload.key/{spec.name}"))
            self.tenants[spec.name] = _Tenant(self, spec, key)
        self.started = False
        self.epoch_ns = 0
        self.bind_obs(machine.obs)

    @property
    def target(self) -> _Tenant:
        """The targeted tenant's runtime state."""
        return self.tenants[self.scenario.target]

    @property
    def target_key(self) -> bytes:
        """The key the attack must recover."""
        return self.target.key

    @property
    def background_count(self) -> int:
        """Number of non-target tenants."""
        return len(self.tenants) - 1

    def bind_obs(self, obs) -> None:
        """Attach an observability hub (re-run on machine fork)."""
        self.obs = obs
        metrics = obs.metrics
        self._m_issued = {}
        self._m_served = {}
        self._m_dropped = {}
        depth_gauges = {}
        for name in self.tenants:
            labels = {"tenant": name}
            self._m_issued[name] = metrics.counter(
                "workload.tenant.requests_issued", labels=labels,
                unit="requests", help="encryption requests arriving per tenant",
            )
            self._m_served[name] = metrics.counter(
                "workload.tenant.requests_served", labels=labels,
                unit="requests", help="requests served by the tenant's victim",
            )
            self._m_dropped[name] = metrics.counter(
                "workload.tenant.requests_dropped", labels=labels,
                unit="requests", help="arrivals shed because the queue was full",
            )
            depth_gauges[name] = metrics.gauge(
                "workload.tenant.queue_depth", labels=labels,
                unit="requests", help="requests waiting unserved",
            )
        self._m_encryptions = {
            role: metrics.counter(
                "workload.tenant.encryptions", labels={"role": role},
                unit="blocks", help="blocks encrypted, target vs background noise",
            )
            for role in ("target", "noise")
        }
        tenants = self.tenants

        def _collect() -> None:
            for name, gauge in depth_gauges.items():
                gauge.set(tenants[name].queue)

        metrics.add_collector(_collect)

    def start(self) -> None:
        """Spawn background victims and begin every tenant's stream.

        The workload epoch is stamped *after* victim setup (process
        creation costs simulated time), so per-tenant arrival offsets
        from the epoch depend only on that tenant's own RNG stream.
        """
        if self.started:
            raise ConfigError("workload already started")
        self.started = True
        for tenant in self.tenants.values():
            if tenant.is_target:
                continue
            victim = CipherVictim(
                self.kernel,
                tenant.key,
                cpu=tenant.spec.cpu,
                cipher=tenant.spec.cipher,
                name=f"tenant-{tenant.name}",
            )
            victim.allocate_table_page()
            tenant.victim = victim
        self.epoch_ns = self.machine.clock.now_ns
        for tenant in self.tenants.values():
            tenant.schedule_first()

    def attach_target(self, victim: TargetVictim) -> None:
        """Hand the target tenant the victim the attack just steered.

        Accepts any modality's steered victim structurally (the
        :class:`~repro.attack.base.TargetVictim` protocol:
        :class:`CipherVictim` is the canonical implementation).  The
        previous incarnation (an earlier steering attempt) exits,
        returning its frames to the page frame cache — the attack calls
        this *after* scoring the new allocation, so the exit can't
        perturb the steer it follows.
        """
        if not isinstance(victim, TargetVictim):
            raise ConfigError(
                f"target victim {victim!r} does not implement the "
                "TargetVictim protocol (pid + encrypt)"
            )
        tenant = self.target
        previous = tenant.victim
        tenant.victim = victim
        # The rolling scratch mapping lived in the previous incarnation's
        # address space; it dies with that process, not via munmap here.
        tenant._scratch_va = None
        if previous is not None:
            self.kernel.sys_exit(previous.pid)

    def probe_target(self, plaintext: bytes) -> bytes:
        """Encrypt one block through the target tenant's serving path.

        The FAULT+PROBE response-discrepancy oracle: a probe is one more
        request the target serves (counted in its issued/served/encryption
        totals), not a side-channel call behind the engine's back — so
        probing traffic shows up in tenant summaries and metrics exactly
        like organic load.
        """
        tenant = self.target
        victim = tenant.victim
        if victim is None:
            raise ConfigError("no victim attached to the target tenant")
        ciphertext = victim.encrypt(plaintext)
        tenant.issued += 1
        tenant.served += 1
        tenant.blocks_encrypted += 1
        self._m_issued[tenant.name].inc()
        self._m_served[tenant.name].inc()
        self._m_encryptions["target"].inc()
        return ciphertext

    def next_target_arrival_ns(self) -> int:
        """Absolute due time of the target's next request."""
        if not self.started:
            raise ConfigError("workload not started")
        return self.target.next_due_ns

    def await_target_window(self) -> int:
        """Run background traffic up to just before the target's next request.

        Returns that request's due time.  This is the steering window: the
        attacker stages frames, waits out the window (noisy neighbours
        churn the page frame cache meanwhile), and the target's allocation
        happens at the window's edge.
        """
        due = self.next_target_arrival_ns()
        if due - 1 > self.machine.clock.now_ns:
            self.machine.run_until(due - 1)
        return due

    def summary(self) -> dict:
        """Per-tenant traffic counters (plain data, for reports/CLI)."""
        out = {}
        for name, tenant in self.tenants.items():
            out[name] = {
                "role": "target" if tenant.is_target else "noise",
                "cipher": tenant.spec.cipher,
                "key_bits": tenant.spec.resolved_key_bits,
                "rate_hz": tenant.spec.request_rate_hz,
                "issued": tenant.issued,
                "served": tenant.served,
                "dropped": tenant.dropped,
                "queued": tenant.queue,
                "blocks_encrypted": tenant.blocks_encrypted,
            }
        return out
