"""Multiprocess execution backend for campaigns and sweeps.

See :mod:`repro.parallel.pool` for the worker-pool layer and
``docs/CAMPAIGNS.md`` for the execution contract it implements.
"""

from repro.parallel.pool import (
    make_pool_block,
    register_pool_metrics,
    run_campaign,
    run_sweep,
)

__all__ = [
    "make_pool_block",
    "register_pool_metrics",
    "run_campaign",
    "run_sweep",
]
