"""Multiprocess execution backends for campaigns and sweeps.

:mod:`repro.parallel.pool` is the worker-pool layer (one-shot,
in-memory); :mod:`repro.parallel.service` is the checkpointed campaign
service built on top of it (resumable, shardable, streaming).  Both
implement the execution contract in ``docs/CAMPAIGNS.md``.
"""

from repro.parallel.pool import (
    dispatch_mode,
    iter_campaign,
    make_pool_block,
    register_pool_metrics,
    run_campaign,
    run_sweep,
)
from repro.parallel.service import (
    CampaignService,
    Shard,
    campaign_config_hash,
    make_service_block,
    merge_shards,
    register_service_metrics,
)

__all__ = [
    "CampaignService",
    "Shard",
    "campaign_config_hash",
    "dispatch_mode",
    "iter_campaign",
    "make_pool_block",
    "make_service_block",
    "merge_shards",
    "register_pool_metrics",
    "register_service_metrics",
    "run_campaign",
    "run_sweep",
]
