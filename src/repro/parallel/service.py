"""Resumable, sharded campaign service: crash-safe checkpoints, streaming results.

The process pool (:mod:`repro.parallel.pool`) is one-shot and in-memory:
a crash, an OOM kill or a preempted host discards every attempt already
simulated.  :class:`CampaignService` turns a campaign into a restartable
service with four properties, none of which changes a single result bit
(docs/CAMPAIGNS.md is the contract):

* **Checkpointed** — every completed attempt is appended to a CRC-framed
  JSONL *journal* and fsync'd, alongside an atomically-replaced
  *manifest* recording the campaign config hash, the warm-snapshot
  digest and progress.  ``kill -9`` at any instant loses at most the
  attempt being written; resume re-runs it and the final digest is
  bit-identical to an uninterrupted run.
* **Shardable** — ``shard=i/N`` owns attempt indices ``i, i+N, i+2N,
  ...``.  N independent invocations (different hosts, different times)
  each journal their own shard; :func:`merge_shards` folds the journals
  back into the exact serial digest and
  :func:`~repro.obs.metrics.merge_metric_states`-merged metrics block.
* **Streaming** — attempt reports are journaled and *released*, never
  accumulated; pooled dispatch keeps a bounded in-flight window
  (:func:`~repro.parallel.pool.iter_campaign`), so RSS is near-constant
  in campaign size.  The returned
  :class:`~repro.attack.orchestrator.CampaignResult` carries a
  ``summary`` block (digest, counts) instead of report objects.
* **Worker-loss tolerant** — a died pool worker surfaces as
  :class:`~repro.sim.errors.WorkerLostError`; the service rebuilds the
  pool (re-using the already-pickled warm snapshot) and re-dispatches
  the lost attempts, up to a per-attempt retry budget.  Retries are
  invisible in the results: attempt ``i`` is a pure function of its
  seed, wherever and however often it runs.

Journal format (one record per line, torn-write detectable)::

    <payload-len> <crc32-hex8> <canonical-json-payload>\\n

where the payload is ``{"index": i, "report": AttackRunReport.to_dict(),
"state": MetricsRegistry.export_state()}`` serialised with sorted keys
and compact separators.  A record whose length or CRC does not match —
the torn tail of a ``kill -9`` mid-write — is dropped and its attempt
re-run; an invalid record *followed by* a valid one means real
corruption and raises :class:`~repro.sim.errors.CheckpointError`.

Everything host-dependent about a service run (journal bytes, retries,
torn records) lands in the result's ``service`` block — the
``campaign.service.*`` metric family in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.obs.metrics import MetricsRegistry, MetricStateAccumulator
from repro.parallel.pool import dispatch_mode, iter_campaign, make_pool_block
from repro.sim.errors import CheckpointError, ConfigError, WorkerLostError

__all__ = [
    "CampaignService",
    "Shard",
    "campaign_config_hash",
    "make_service_block",
    "merge_shards",
    "register_service_metrics",
]

MANIFEST_VERSION = 1

# The journal is the durable record of progress (resume scans it, never
# the manifest's advisory `completed` counter), so the manifest's
# atomic-replace cost — two fsyncs plus a rename — need not be paid per
# attempt.  It is refreshed every this-many journaled records, and
# always at start and completion.
MANIFEST_REFRESH_EVERY = 64


# -- sharding ----------------------------------------------------------------------


@dataclass(frozen=True)
class Shard:
    """One of N interleaved partitions of a campaign's attempt indices.

    Shard ``i/N`` owns every attempt index congruent to ``i`` mod ``N``
    — a pure function of the index, so any subset of shards can run
    anywhere, in any order, and still tile the campaign exactly.
    """

    index: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigError(f"shard count must be at least 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ConfigError(
                f"shard index must be in [0, {self.count}), got {self.index}"
            )

    @classmethod
    def parse(cls, spec: str) -> Shard:
        """Parse the CLI form ``"i/N"`` (e.g. ``"0/4"``)."""
        try:
            index_text, count_text = spec.split("/", 1)
            return cls(index=int(index_text), count=int(count_text))
        except ValueError as exc:
            raise ConfigError(
                f"shard spec {spec!r} is not of the form 'i/N'"
            ) from exc

    @property
    def spec(self) -> str:
        return f"{self.index}/{self.count}"

    @property
    def tag(self) -> str:
        """Filesystem-safe name fragment (``0of4``)."""
        return f"{self.index}of{self.count}"

    def indices(self, attempts: int) -> range:
        """The attempt indices this shard owns, ascending."""
        return range(self.index, attempts, self.count)


def campaign_config_hash(campaign) -> str:
    """Hash of everything that determines campaign *results*.

    Covers the machine config, attempt count, attack and orchestrator
    configs, warm strategy and chaos knobs — all frozen dataclasses with
    deterministic reprs.  Engine choices with zero result consequences
    (workers, pool mode, shard, window) are deliberately excluded: a
    campaign checkpointed on 4 workers may resume on 1, or sharded
    differently, without tripping the mismatch check.
    """
    knobs = [
        campaign.base_config,
        campaign.attempts,
        campaign.attack_config,
        campaign.orchestrator_config,
        campaign.fork_from_template,
        campaign.chaos_profile,
        campaign.chaos_intensity,
    ]
    # Appended only when set, so pre-scenario checkpoints keep their
    # hashes; a scenario campaign can never resume a non-scenario one
    # (or a different tenant mix) by accident.
    scenario = getattr(campaign, "scenario", None)
    if scenario is not None:
        knobs.append(scenario)
    # Same append-only pattern for the attack modality: the default
    # ("explframe") keeps pre-modality checkpoint hashes intact, while a
    # different modality — or the same one with different
    # ``config_hash_fields()`` — can never resume another modality's
    # checkpoint (--resume exits 2 on the mismatch).
    modality = getattr(campaign, "modality", "explframe")
    if modality != "explframe":
        from repro.attack.registry import get_modality

        knobs.append(modality)
        knobs.extend(get_modality(modality).config_hash_fields(campaign.attack_config))
    description = repr(tuple(knobs))
    return hashlib.sha256(description.encode("utf-8")).hexdigest()


# -- journal framing ---------------------------------------------------------------


def encode_record(record: dict) -> bytes:
    """Frame one journal record: ``<len> <crc32> <payload>\\n``."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return b"%d %08x %s\n" % (len(payload), zlib.crc32(payload), payload)


def decode_line(line: bytes) -> dict | None:
    """The record on ``line``, or ``None`` if framing or CRC fails."""
    try:
        length_text, crc_text, payload = line.rstrip(b"\n").split(b" ", 2)
        if len(payload) != int(length_text):
            return None
        if zlib.crc32(payload) != int(crc_text, 16):
            return None
        return json.loads(payload)
    except ValueError:
        return None


def scan_journal(path) -> tuple[dict[int, int], int, int]:
    """Validate a journal; ``(index -> record offset, valid end, torn dropped)``.

    Tolerates a torn *tail* — one or more invalid records at the very
    end, the signature of a crash mid-append — by dropping it (the
    caller truncates to ``valid end`` before appending).  An invalid
    record followed by a valid one is not a torn write but corruption,
    and raises :class:`CheckpointError`: silently skipping it would
    resurrect a journal whose contents can no longer be trusted.
    """
    offsets: dict[int, int] = {}
    valid_end = 0
    torn = 0
    first_bad: int | None = None
    offset = 0
    with open(path, "rb") as fh:
        for line in fh:
            record = decode_line(line)
            if record is None:
                if first_bad is None:
                    first_bad = offset
                torn += 1
            else:
                if first_bad is not None:
                    raise CheckpointError(
                        f"{path}: valid record at byte {offset} follows a "
                        f"corrupt record at byte {first_bad}; the journal is "
                        "damaged beyond a torn tail and cannot be resumed"
                    )
                offsets[record["index"]] = offset
                valid_end = offset + len(line)
            offset += len(line)
    return offsets, valid_end, torn


def _read_record(fh, offset: int, index: int, path) -> dict:
    """Re-read one validated record during the finalize pass."""
    fh.seek(offset)
    record = decode_line(fh.readline())
    if record is None or record["index"] != index:
        raise CheckpointError(
            f"{path}: record for attempt {index} at byte {offset} changed "
            "under the service while finalizing"
        )
    return record


def _report_json(record: dict) -> bytes:
    """The attempt's canonical report JSON, byte-identical to ``to_json()``."""
    return json.dumps(
        record["report"], sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _write_json_atomic(path: Path, payload: dict) -> None:
    """Durably replace ``path``: write temp, fsync, rename, fsync the dir."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(json.dumps(payload, sort_keys=True, indent=2).encode("utf-8"))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    dir_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


# -- campaign.service.* telemetry --------------------------------------------------


def register_service_metrics(registry):
    """Register the ``campaign.service.*`` family on ``registry``.

    Returns the live handles; also the single source of truth the
    telemetry-docs checker uses to learn the family exists.
    """
    return {
        "journaled": registry.counter(
            "campaign.service.attempts_journaled", unit="attempts",
            help="attempt reports appended to the shard journal this run",
        ),
        "resumed": registry.counter(
            "campaign.service.attempts_resumed", unit="attempts",
            help="attempts recovered from the journal instead of re-run",
        ),
        "torn": registry.counter(
            "campaign.service.torn_records_dropped", unit="records",
            help="corrupt trailing journal records dropped at resume",
        ),
        "worker_retries": registry.counter(
            "campaign.service.worker_retries", unit="retries",
            help="attempts re-dispatched after their worker died",
        ),
        "workers_lost": registry.counter(
            "campaign.service.workers_lost", unit="failures",
            help="pool breakages survived by rebuilding the pool",
        ),
        "journal_bytes": registry.gauge(
            "campaign.service.journal_bytes", unit="bytes",
            help="size of the shard journal after the run",
        ),
        "window": registry.gauge(
            "campaign.service.inflight_window", unit="attempts",
            help="bound on attempts in flight over the pool",
        ),
        "shard_attempts": registry.gauge(
            "campaign.service.shard_attempts", unit="attempts",
            help="attempt indices owned by this shard",
        ),
    }


def make_service_block(
    *,
    journaled: int,
    resumed: int,
    torn: int,
    worker_retries: int,
    workers_lost: int,
    journal_bytes: int,
    window: int,
    shard_attempts: int,
) -> dict:
    """The ``service`` result block: a snapshot of the campaign.service.* family."""
    registry = MetricsRegistry(enabled=True)
    handles = register_service_metrics(registry)
    handles["journaled"].inc(journaled)
    handles["resumed"].inc(resumed)
    handles["torn"].inc(torn)
    handles["worker_retries"].inc(worker_retries)
    handles["workers_lost"].inc(workers_lost)
    handles["journal_bytes"].set(journal_bytes)
    handles["window"].set(window)
    handles["shard_attempts"].set(shard_attempts)
    return registry.snapshot()


# -- serial streaming --------------------------------------------------------------


def _iter_serial(campaign, indices, snapshot=None):
    """In-process analogue of ``iter_campaign`` (workers == 1)."""
    if campaign.fork_from_template:
        if snapshot is None:
            snapshot = campaign._warm_snapshot()
        for index in indices:
            start = time.perf_counter_ns()
            machine, extras = snapshot.fork()
            report, state = campaign._run_attempt(
                machine, extras["attack"], extras["candidates"], index
            )
            yield index, report, state, os.getpid(), time.perf_counter_ns() - start
    else:
        for index in indices:
            start = time.perf_counter_ns()
            report, state = campaign._run_attempt_fresh(index)
            yield index, report, state, os.getpid(), time.perf_counter_ns() - start


# -- the service -------------------------------------------------------------------


class CampaignService:
    """Checkpointed execution of one campaign shard (see module docstring).

    ``run()`` is idempotent: a fresh directory runs the shard from
    attempt zero; an interrupted checkpoint (with ``resume=True``)
    continues from the last valid journal record; a completed checkpoint
    just re-finalizes from the journal without running anything.  The
    returned :class:`~repro.attack.orchestrator.CampaignResult` is
    summary-only (reports live in the journal) and its digest is
    bit-identical to the in-memory engines' for the same shard.
    """

    def __init__(
        self,
        campaign,
        checkpoint_dir,
        *,
        shard: Shard | None = None,
        resume: bool = False,
        stream_out=None,
        window: int = 0,
        worker_retries: int = 2,
    ):
        if window < 0:
            raise ConfigError(f"window must be non-negative, got {window}")
        if worker_retries < 0:
            raise ConfigError(
                f"worker_retries must be non-negative, got {worker_retries}"
            )
        self.campaign = campaign
        self.directory = Path(checkpoint_dir)
        self.shard = shard or Shard()
        self.resume = resume
        self.stream_out = stream_out
        self.worker_retries = worker_retries
        workers = max(1, campaign.workers)
        self.window = window if window > 0 else 2 * workers
        self.journal_path = self.directory / f"journal-{self.shard.tag}.jsonl"
        self.manifest_path = self.directory / f"manifest-{self.shard.tag}.json"
        self._counters = {
            "journaled": 0, "resumed": 0, "torn": 0,
            "worker_retries": 0, "workers_lost": 0,
        }

    # -- manifest ----------------------------------------------------------------

    def _load_manifest(self) -> dict:
        try:
            with open(self.manifest_path, "rb") as fh:
                return json.loads(fh.read())
        except FileNotFoundError:
            raise CheckpointError(
                f"{self.journal_path} exists but its manifest "
                f"{self.manifest_path} is missing; the checkpoint directory "
                "is damaged"
            ) from None
        except ValueError as exc:
            raise CheckpointError(
                f"{self.manifest_path} is not valid JSON: {exc}"
            ) from exc

    def _write_manifest(
        self, *, config_hash: str, snapshot_digest: str | None,
        completed: int, status: str, digest: str | None = None,
    ) -> None:
        _write_json_atomic(self.manifest_path, {
            "version": MANIFEST_VERSION,
            "config_hash": config_hash,
            "snapshot_digest": snapshot_digest,
            "attempts": self.campaign.attempts,
            "mode": self.campaign.mode,
            # Advisory (the config hash is the authority): which attack
            # modality wrote this checkpoint, for humans reading the dir.
            "modality": getattr(self.campaign, "modality", "explframe"),
            "shard": self.shard.spec,
            "journal": self.journal_path.name,
            "completed": completed,
            "status": status,
            "digest": digest,
        })

    # -- execution ---------------------------------------------------------------

    def run(self):
        """Run (or resume) this shard to completion; summary-only result."""
        campaign = self.campaign
        self.directory.mkdir(parents=True, exist_ok=True)
        config_hash = campaign_config_hash(campaign)
        offsets: dict[int, int] = {}
        snapshot_digest: str | None = None

        manifest = None
        if self.journal_path.exists() or self.manifest_path.exists():
            if not self.resume:
                raise CheckpointError(
                    f"{self.directory} already holds a checkpoint for shard "
                    f"{self.shard.spec}; pass resume=True (--resume) to "
                    "continue it, or point the service at a fresh directory"
                )
            manifest = self._load_manifest()
            if manifest.get("config_hash") != config_hash:
                raise CheckpointError(
                    f"{self.manifest_path}: checkpoint was created by a "
                    "different campaign configuration (config hash "
                    f"{manifest.get('config_hash', '?')[:12]}… != "
                    f"{config_hash[:12]}…); refusing to mix results"
                )
            snapshot_digest = manifest.get("snapshot_digest")
            if self.journal_path.exists():
                offsets, valid_end, torn = scan_journal(self.journal_path)
                self._counters["torn"] = torn
                if torn:
                    # Drop the torn tail on disk too, so appended records
                    # don't concatenate into the partial line.
                    with open(self.journal_path, "r+b") as fh:
                        fh.truncate(valid_end)

        indices = list(self.shard.indices(campaign.attempts))
        owned = set(indices)
        stray = sorted(set(offsets) - owned)
        if stray:
            raise CheckpointError(
                f"{self.journal_path} holds attempts {stray[:4]}... outside "
                f"shard {self.shard.spec} — was the checkpoint created with a "
                "different shard spec?"
            )
        self._counters["resumed"] = len(offsets)
        remaining = [index for index in indices if index not in offsets]

        self._write_manifest(
            config_hash=config_hash, snapshot_digest=snapshot_digest,
            completed=len(offsets), status="running",
        )

        wall_by_pid: dict[int, int] = {}
        if remaining:
            snapshot = None
            snapshot_blob = None
            if campaign.fork_from_template:
                if campaign.workers > 1 and campaign.pool_mode == "rewarm":
                    snapshot_digest = None  # workers warm privately; no blob
                else:
                    snapshot = campaign._warm_snapshot()
                    snapshot_blob = snapshot.to_bytes()
                    snapshot_digest = hashlib.sha256(snapshot_blob).hexdigest()
                    if manifest is not None and manifest.get("snapshot_digest") not in (
                        None, snapshot_digest,
                    ):
                        # Not fatal — results are a pure function of the
                        # seeds, not the blob bytes — but worth surfacing.
                        print(
                            f"warning: warm-snapshot digest changed across "
                            f"resume ({manifest['snapshot_digest'][:12]}… -> "
                            f"{snapshot_digest[:12]}…)",
                            file=sys.stderr,
                        )
            stream_fh = (
                open(self.stream_out, "a", encoding="utf-8")
                if self.stream_out else None
            )
            journal_fh = open(self.journal_path, "ab")
            journal_fh.seek(0, os.SEEK_END)
            try:
                for outcome in self._execute(remaining, snapshot, snapshot_blob):
                    index, report, state, pid, wall_ns = outcome
                    record = {
                        "index": index,
                        "report": report.to_dict(),
                        "state": state,
                    }
                    offset = journal_fh.tell()
                    journal_fh.write(encode_record(record))
                    journal_fh.flush()
                    os.fsync(journal_fh.fileno())
                    offsets[index] = offset
                    wall_by_pid[pid] = wall_by_pid.get(pid, 0) + wall_ns
                    self._counters["journaled"] += 1
                    if stream_fh is not None:
                        stream_fh.write(json.dumps(
                            {"index": index, "report": record["report"]},
                            sort_keys=True, separators=(",", ":"),
                        ) + "\n")
                        stream_fh.flush()
                    if self._counters["journaled"] % MANIFEST_REFRESH_EVERY == 0:
                        self._write_manifest(
                            config_hash=config_hash,
                            snapshot_digest=snapshot_digest,
                            completed=len(offsets), status="running",
                        )
            finally:
                journal_fh.close()
                if stream_fh is not None:
                    stream_fh.close()

        result = self._finalize(indices, offsets, wall_by_pid)
        self._write_manifest(
            config_hash=config_hash, snapshot_digest=snapshot_digest,
            completed=len(offsets), status="complete", digest=result.digest(),
        )
        return result

    def _execute(self, remaining, snapshot, snapshot_blob):
        """Stream outcomes for ``remaining``, surviving worker loss."""
        campaign = self.campaign
        if campaign.workers <= 1:
            yield from _iter_serial(campaign, remaining, snapshot=snapshot)
            return
        retries: dict[int, int] = {}
        pending = list(remaining)
        while pending:
            completed: set[int] = set()
            try:
                for outcome in iter_campaign(
                    campaign, pending,
                    window=self.window, snapshot_blob=snapshot_blob,
                ):
                    completed.add(outcome[0])
                    yield outcome
                return
            except WorkerLostError as exc:
                self._counters["workers_lost"] += 1
                lost = exc.attempt
                if lost is not None and lost not in completed:
                    retries[lost] = retries.get(lost, 0) + 1
                    self._counters["worker_retries"] += 1
                    if retries[lost] > self.worker_retries:
                        raise WorkerLostError(
                            f"attempt {lost} crashed its worker "
                            f"{retries[lost]} times (budget "
                            f"{self.worker_retries}); giving up — the "
                            "journal holds every completed attempt",
                            attempt=lost,
                        ) from exc
                pending = [
                    index for index in pending if index not in completed
                ]

    # -- finalize ----------------------------------------------------------------

    def _finalize(self, indices, offsets, wall_by_pid):
        """Second pass over the journal: digest + merged metrics, in order."""
        from repro.attack.orchestrator import CampaignResult

        campaign = self.campaign
        missing = [index for index in indices if index not in offsets]
        if missing:
            raise CheckpointError(
                f"{self.journal_path}: attempts {missing[:4]}... were never "
                "journaled; the shard did not complete"
            )
        hasher = hashlib.sha256()
        accumulator = MetricStateAccumulator()
        successes = 0
        with open(self.journal_path, "rb") as fh:
            for index in indices:
                record = _read_record(fh, offsets[index], index, self.journal_path)
                hasher.update(_report_json(record))
                hasher.update(b"\n")
                accumulator.add(record["state"])
                if record["report"]["success"]:
                    successes += 1
        workers = min(max(1, campaign.workers), max(1, len(indices)))
        pool_block = make_pool_block(
            workers=workers,
            mode="serial" if campaign.workers <= 1 else dispatch_mode(campaign),
            dispatched=self._counters["journaled"] + self._counters["worker_retries"],
            completed=self._counters["journaled"],
            worker_wall_ns={
                worker: wall_by_pid[pid]
                for worker, pid in enumerate(sorted(wall_by_pid))
            },
        )
        service_block = make_service_block(
            journaled=self._counters["journaled"],
            resumed=self._counters["resumed"],
            torn=self._counters["torn"],
            worker_retries=self._counters["worker_retries"],
            workers_lost=self._counters["workers_lost"],
            journal_bytes=self.journal_path.stat().st_size,
            window=self.window,
            shard_attempts=len(indices),
        )
        return CampaignResult(
            reports=(),
            mode=campaign.mode,
            metrics=accumulator.result(),
            pool=pool_block,
            service=service_block,
            summary={
                "attempts": len(indices),
                "successes": successes,
                "digest": hasher.hexdigest(),
            },
        )


# -- shard merge -------------------------------------------------------------------


def merge_shards(checkpoint_dir, campaign=None):
    """Fold every shard journal in ``checkpoint_dir`` into one result.

    Walks attempt indices ``0..attempts-1`` in order, reading each
    record from the journal of the shard that owns it (``index mod N``),
    so the digest and the merged metrics block come out exactly as an
    unsharded serial run's.  Every shard must be present and complete;
    pass ``campaign`` to additionally pin the config hash.
    """
    from repro.attack.orchestrator import CampaignResult

    directory = Path(checkpoint_dir)
    manifests = {}
    for path in sorted(directory.glob("manifest-*.json")):
        with open(path, "rb") as fh:
            try:
                manifest = json.loads(fh.read())
            except ValueError as exc:
                raise CheckpointError(f"{path} is not valid JSON: {exc}") from exc
        shard = Shard.parse(manifest["shard"])
        manifests[shard] = manifest
    if not manifests:
        raise CheckpointError(f"{directory} holds no shard manifests to merge")

    counts = {shard.count for shard in manifests}
    if len(counts) != 1:
        raise CheckpointError(
            f"{directory} mixes shard counts {sorted(counts)}; every shard "
            "must come from the same i/N partitioning"
        )
    count = counts.pop()
    present = {shard.index for shard in manifests}
    absent = sorted(set(range(count)) - present)
    if absent:
        raise CheckpointError(
            f"{directory} is missing shards {absent} of {count}; run them "
            "before merging"
        )

    hashes = {manifest["config_hash"] for manifest in manifests.values()}
    attempts_seen = {manifest["attempts"] for manifest in manifests.values()}
    if len(hashes) != 1 or len(attempts_seen) != 1:
        raise CheckpointError(
            f"{directory} mixes campaigns (config hashes {sorted(hashes)}); "
            "shards of different campaigns cannot merge"
        )
    config_hash = hashes.pop()
    attempts = attempts_seen.pop()
    if campaign is not None:
        expected = campaign_config_hash(campaign)
        if expected != config_hash:
            raise CheckpointError(
                f"{directory}: shard checkpoints were created by a different "
                f"campaign configuration (config hash {config_hash[:12]}… != "
                f"{expected[:12]}…)"
            )
        if campaign.attempts != attempts:
            raise CheckpointError(
                f"{directory}: shards cover {attempts} attempts, campaign "
                f"expects {campaign.attempts}"
            )
    modes = {manifest["mode"] for manifest in manifests.values()}

    by_index: dict[int, tuple] = {}
    journal_bytes = 0
    torn_total = 0
    try:
        for shard, manifest in manifests.items():
            path = directory / manifest["journal"]
            offsets, _valid_end, torn = scan_journal(path)
            torn_total += torn
            owned = set(shard.indices(attempts))
            missing = sorted(owned - set(offsets))
            if missing:
                raise CheckpointError(
                    f"{path}: shard {shard.spec} never journaled attempts "
                    f"{missing[:4]}...; resume it to completion before merging"
                )
            journal_bytes += path.stat().st_size
            handle = open(path, "rb")
            for index in owned:
                by_index[index] = (handle, offsets[index], path)

        hasher = hashlib.sha256()
        accumulator = MetricStateAccumulator()
        successes = 0
        for index in range(attempts):
            handle, offset, path = by_index[index]
            record = _read_record(handle, offset, index, path)
            hasher.update(_report_json(record))
            hasher.update(b"\n")
            accumulator.add(record["state"])
            if record["report"]["success"]:
                successes += 1
    finally:
        for handle in {entry[0] for entry in by_index.values()}:
            handle.close()

    service_block = make_service_block(
        journaled=0, resumed=attempts, torn=torn_total,
        worker_retries=0, workers_lost=0,
        journal_bytes=journal_bytes, window=0, shard_attempts=attempts,
    )
    return CampaignResult(
        reports=(),
        mode=modes.pop() if len(modes) == 1 else "mixed",
        metrics=accumulator.result(),
        pool=None,
        service=service_block,
        summary={
            "attempts": attempts,
            "successes": successes,
            "digest": hasher.hexdigest(),
        },
    )
