"""Worker-pool dispatch of campaign attempts and sweep points.

The contract (docs/CAMPAIGNS.md): parallel execution is an *engine*
choice, never a *result* choice.  Attempt ``i`` of a campaign always
runs on a machine re-keyed with ``derive_seed(base_seed, "campaign/i")``
from the same warm state, so the per-attempt reports — and therefore
:meth:`~repro.attack.orchestrator.CampaignResult.digest` — are
byte-identical whether the attempts run serially, on 2 workers or on
16, and regardless of completion order (reports are re-ordered by
attempt index before merging).

Two ways to get the warm state into a worker:

* **ship** — the parent warms once, pickles the
  :class:`~repro.core.machine.MachineSnapshot` with
  :meth:`~repro.core.machine.MachineSnapshot.to_bytes`, and every worker
  rehydrates it in its initializer.  One templating pass total; the blob
  crosses the process boundary once per worker.  The CoW frame store
  serialises compactly — a small object-graph pickle plus one packed
  payload of the materialised frames — and the rehydrated snapshot's
  forks share those frames copy-on-write, so per-attempt fork cost in
  the worker is O(1) in module size.
* **rewarm** — each worker builds + templates from the pickled template
  config in its initializer.  No big blob, but the warm cost is paid
  once per worker; useful when the snapshot is large relative to the
  warm time or the start method cannot share parent memory.

``fork_from_template=False`` campaigns skip the snapshot entirely: each
attempt rebuilds its own machine inside the worker (**rebuild**), which
is the unit of work the serial rebuild path runs too.

Per-worker telemetry cannot be deterministic (host wall time, pids), so
it lives in the result's ``pool`` block — outside both the digest and
the merged per-attempt ``metrics`` block.  The block's keys are the
``campaign.pool.*`` family documented in docs/OBSERVABILITY.md and
registered through :func:`register_pool_metrics` so the telemetry-docs
checker covers them.

Dispatch is *bounded*: :func:`iter_campaign` keeps at most a small
window of attempts in flight and yields each outcome as it completes, so
a 10k-attempt campaign never holds 10k futures (or their results) at
once.  :func:`run_campaign` collects the stream into an in-memory
:class:`~repro.attack.orchestrator.CampaignResult`; the checkpointed
campaign service (:mod:`repro.parallel.service`) journals and releases
each outcome instead.  A worker that dies mid-attempt (OOM kill,
segfault, SIGKILL) surfaces as a typed
:class:`~repro.sim.errors.WorkerLostError` naming the attempt whose
result was lost — never as a hang or an opaque ``BrokenProcessPool``
traceback.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, as_completed, wait
from concurrent.futures.process import BrokenProcessPool

from repro.obs.metrics import MetricsRegistry
from repro.sim.errors import WorkerLostError

__all__ = [
    "dispatch_mode",
    "iter_campaign",
    "make_pool_block",
    "register_pool_metrics",
    "run_campaign",
    "run_sweep",
]

# Per-worker-process state, populated by the pool initializer.  Workers
# run attempts strictly sequentially, so no locking is needed.
_STATE: dict = {}


def _context():
    """Prefer the fork start method (cheap COW of the warm parent)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-posix platforms
        return multiprocessing.get_context()


# -- campaign.pool.* telemetry ----------------------------------------------------


def register_pool_metrics(registry, mode: str = "serial", workers_seen=(0,)):
    """Register the ``campaign.pool.*`` family on ``registry``.

    Returns the live handles; also the single source of truth the
    telemetry-docs checker uses to learn the family exists.
    """
    return {
        "workers": registry.gauge(
            "campaign.pool.workers", unit="processes",
            help="worker processes serving the campaign pool",
        ),
        "dispatched": registry.counter(
            "campaign.pool.attempts_dispatched", unit="attempts",
            help="attempts submitted to the pool",
        ),
        "completed": registry.counter(
            "campaign.pool.attempts_completed", unit="attempts",
            help="attempts whose reports were collected",
        ),
        "mode": registry.gauge(
            "campaign.pool.mode", labels={"mode": mode}, unit="flag",
            help="how warm state reached the workers: "
            "serial, ship, rewarm or rebuild",
        ),
        "worker_wall": {
            worker: registry.gauge(
                "campaign.pool.worker_wall_ns",
                labels={"worker": str(worker)}, unit="ns",
                help="host wall time each worker spent inside attempts",
            )
            for worker in workers_seen
        },
    }


def make_pool_block(
    *, workers: int, mode: str, dispatched: int, completed: int, worker_wall_ns: dict
) -> dict:
    """The ``pool`` result block: a snapshot of the campaign.pool.* family.

    ``worker_wall_ns`` maps stable worker indices (0..N-1) to summed
    host-nanosecond attempt time.  The block is informational — host
    wall times and worker partitioning are not deterministic — and is
    therefore excluded from the campaign digest.
    """
    registry = MetricsRegistry(enabled=True)
    handles = register_pool_metrics(
        registry, mode=mode, workers_seen=sorted(worker_wall_ns)
    )
    handles["workers"].set(workers)
    handles["dispatched"].inc(dispatched)
    handles["completed"].inc(completed)
    handles["mode"].set(1)
    for worker, wall_ns in worker_wall_ns.items():
        handles["worker_wall"][worker].set(wall_ns)
    return registry.snapshot()


# -- campaign dispatch -------------------------------------------------------------


def _campaign_init(campaign, snapshot_blob, warm_locally) -> None:
    """Pool initializer: stage the campaign's warm state in this worker."""
    from repro.core.machine import MachineSnapshot

    snapshot = None
    if snapshot_blob is not None:
        snapshot = MachineSnapshot.from_bytes(snapshot_blob)
    elif warm_locally:
        snapshot = campaign._warm_snapshot()
    _STATE["campaign"] = campaign
    _STATE["snapshot"] = snapshot


def _campaign_attempt(index: int):
    """Run one attempt in this worker; the unit of dispatched work."""
    start = time.perf_counter_ns()
    campaign = _STATE["campaign"]
    snapshot = _STATE["snapshot"]
    if snapshot is None:
        report, metrics_state = campaign._run_attempt_fresh(index)
    else:
        machine, extras = snapshot.fork()
        report, metrics_state = campaign._run_attempt(
            machine, extras["attack"], extras["candidates"], index
        )
    wall_ns = time.perf_counter_ns() - start
    return index, report, metrics_state, os.getpid(), wall_ns


def dispatch_mode(campaign) -> str:
    """How warm state reaches the workers: ``ship``, ``rewarm`` or ``rebuild``."""
    if not campaign.fork_from_template:
        return "rebuild"
    return campaign.pool_mode


def iter_campaign(campaign, indices, *, window: int = 0, snapshot_blob=None):
    """Yield ``(index, report, metrics_state, pid, wall_ns)`` as attempts finish.

    The streaming core of pooled dispatch: at most ``window`` attempts
    (default ``2 * workers``) are submitted at a time, and each outcome
    is yielded — and released — as soon as its future completes, so
    memory stays bounded by the window, not the campaign size.  Yield
    order is completion order; callers that need attempt order (the
    digest does) re-order or journal by the yielded ``index``.

    ``snapshot_blob`` lets a caller that already holds the pickled warm
    snapshot (the campaign service re-uses one across worker-loss pool
    rebuilds) skip the warm pass; without it, ship-mode campaigns warm
    and pickle here.

    Raises :class:`~repro.sim.errors.WorkerLostError` (carrying the
    attempt index whose result was lost) when a worker process dies —
    the ``BrokenProcessPool`` poisons every in-flight future, so the
    caller must assume only the attempts already yielded are done.
    """
    indices = list(indices)
    if not indices:
        return
    workers = max(1, min(campaign.workers, len(indices)))
    window = window if window > 0 else 2 * workers
    warm_locally = False
    if campaign.fork_from_template:
        if campaign.pool_mode == "ship":
            if snapshot_blob is None:
                snapshot_blob = campaign._warm_snapshot().to_bytes()
        else:
            snapshot_blob = None
            warm_locally = True
    else:
        snapshot_blob = None
    remaining = iter(indices)
    pending: dict = {}
    pool = ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_context(),
        initializer=_campaign_init,
        initargs=(campaign, snapshot_blob, warm_locally),
    )
    try:
        def top_up():
            while len(pending) < window:
                try:
                    index = next(remaining)
                except StopIteration:
                    return
                try:
                    pending[pool.submit(_campaign_attempt, index)] = index
                except BrokenProcessPool as exc:
                    raise WorkerLostError(
                        f"worker pool broke before attempt {index} could be "
                        "submitted", attempt=index,
                    ) from exc

        top_up()
        while pending:
            done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
            for future in done:
                index = pending.pop(future)
                try:
                    yield future.result()
                except BrokenProcessPool as exc:
                    raise WorkerLostError(
                        f"worker process died while attempt {index} was in "
                        "flight", attempt=index,
                    ) from exc
            top_up()
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def run_campaign(campaign):
    """Execute ``campaign`` on a process pool; called via ``workers > 1``.

    Streams attempt reports back as they complete (bounded in-flight
    window), then re-orders by attempt index so the digest and the
    merged metrics block match the serial path exactly.  Worker death
    raises :class:`~repro.sim.errors.WorkerLostError`; retrying belongs
    to the checkpointed service (:mod:`repro.parallel.service`), which
    journals completed attempts so nothing already run is lost.
    """
    workers = min(campaign.workers, campaign.attempts)
    outcomes: list = [None] * campaign.attempts
    wall_by_pid: dict[int, int] = {}
    completed = 0
    for index, report, metrics_state, pid, wall_ns in iter_campaign(
        campaign, range(campaign.attempts)
    ):
        outcomes[index] = (report, metrics_state)
        wall_by_pid[pid] = wall_by_pid.get(pid, 0) + wall_ns
        completed += 1
    worker_wall_ns = {
        worker: wall_by_pid[pid] for worker, pid in enumerate(sorted(wall_by_pid))
    }
    block = make_pool_block(
        workers=workers,
        mode=dispatch_mode(campaign),
        dispatched=campaign.attempts,
        completed=completed,
        worker_wall_ns=worker_wall_ns,
    )
    return campaign._finish(outcomes, block)


# -- sweep dispatch ----------------------------------------------------------------


def _sweep_init(sweep, trials) -> None:
    _STATE["sweep"] = sweep
    _STATE["trials"] = trials


def _sweep_point(index: int, parameter):
    point = _STATE["sweep"].run_point(parameter, _STATE["trials"])
    return index, point


def run_sweep(sweep, parameters: list, trials: int) -> list:
    """Run one grid point per pool task; results ordered like the grid.

    The sweep object (including ``trial_fn``/``warm_fn``) and every
    trial outcome cross process boundaries, so with a non-fork start
    method they must be picklable — module-level functions and plain
    data, not lambdas or machine handles.
    """
    workers = min(sweep.workers, len(parameters)) or 1
    points: list = [None] * len(parameters)
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_context(),
        initializer=_sweep_init,
        initargs=(sweep, trials),
    ) as pool:
        futures = {
            pool.submit(_sweep_point, index, parameter): index
            for index, parameter in enumerate(parameters)
        }
        for future in as_completed(futures):
            index, point = future.result()
            points[index] = point
    return points
