"""ANVIL-style hammering detection from activation-rate accounting.

Rowhammer needs hundreds of thousands of row activations focused inside
one refresh window — orders of magnitude above what any cache-friendly
workload produces (caches absorb repeated accesses; only misses and
flushed lines activate rows).  Aundhkar & et al.'s ANVIL and similar
systems exploit exactly this: watch per-core/per-task DRAM activation
rates and intervene above a threshold.

The kernel feeds an :class:`ActivationLedger` (per task, per refresh
window); :class:`HammerWatchdog` scans it and raises
:class:`HammerAlert` records for window counts above threshold.  The A5
experiment measures the detector's separation: hammering tasks sit at
~1.2 M activations/window, while encryption victims, page-cache readers
and allocation churn stay thousands of times lower.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import NOOP_OBS
from repro.sim.errors import ConfigError


@dataclass(frozen=True)
class WatchdogConfig:
    """Detection threshold (activations by one task inside one window)."""

    threshold_per_window: int = 100_000
    history_windows: int = 64

    def __post_init__(self) -> None:
        if self.threshold_per_window <= 0:
            raise ConfigError("threshold_per_window must be positive")
        if self.history_windows <= 0:
            raise ConfigError("history_windows must be positive")


@dataclass(frozen=True)
class HammerAlert:
    """One detection: a task exceeded the activation budget in a window."""

    pid: int
    epoch: int
    activations: int


@dataclass
class ActivationLedger:
    """Per-(refresh window, task) DRAM activation counts.

    Fed by the kernel on every memory access and hammer syscall; bounded
    to the most recent windows so long simulations stay cheap.
    """

    max_windows: int = 256
    _counts: dict[int, dict[int, int]] = field(default_factory=dict)

    def record(self, epoch: int, pid: int, activations: int) -> None:
        """Add ``activations`` attributed to ``pid`` during ``epoch``."""
        if activations <= 0:
            return
        window = self._counts.setdefault(epoch, {})
        window[pid] = window.get(pid, 0) + activations
        if len(self._counts) > self.max_windows:
            del self._counts[min(self._counts)]

    def count(self, epoch: int, pid: int) -> int:
        """Activations by ``pid`` during ``epoch``."""
        return self._counts.get(epoch, {}).get(pid, 0)

    def epochs(self) -> list[int]:
        """Windows with recorded activity, ascending."""
        return sorted(self._counts)

    def max_per_window(self, pid: int) -> int:
        """The task's hottest window (0 if never seen)."""
        return max(
            (window.get(pid, 0) for window in self._counts.values()), default=0
        )

    def totals(self) -> dict[int, int]:
        """Lifetime activations per pid (over retained windows)."""
        totals: dict[int, int] = {}
        for window in self._counts.values():
            for pid, count in window.items():
                totals[pid] = totals.get(pid, 0) + count
        return totals


class HammerWatchdog:
    """Scans a ledger for hammer-grade activation bursts."""

    def __init__(self, config: WatchdogConfig | None = None):
        self.config = config or WatchdogConfig()
        self.alerts: list[HammerAlert] = []
        self._seen: set[tuple[int, int]] = set()
        self.scans = 0
        self._ledger: ActivationLedger | None = None
        self.bind_obs(NOOP_OBS)

    def bind_obs(self, obs) -> None:
        """Attach an observability hub (see docs/OBSERVABILITY.md)."""
        self.obs = obs
        self._m_scans = obs.metrics.counter(
            "defense.watchdog.scans", unit="scans",
            help="periodic ledger scans by the hammering watchdog",
        )
        self._m_alerts = obs.metrics.counter(
            "defense.watchdog.alerts", unit="alerts",
            help="hammer-grade activation bursts flagged",
        )

    def bind_events(self, events, ledger: ActivationLedger, period_ns: int | None = None) -> None:
        """Scan ``ledger`` periodically on the machine's event scheduler.

        The default period is one refresh window (64 ms) — the granularity
        the ledger itself is bucketed at, so scanning faster gains nothing.
        """
        self._ledger = ledger
        if period_ns is None:
            period_ns = 64_000_000
        events.schedule_in(
            "defense.watchdog.scan", period_ns, self._on_scan,
            queue="defense", period_ns=period_ns,
        )

    def _on_scan(self, now_ns: int) -> None:
        if self._ledger is None:
            return
        self.scans += 1
        self._m_scans.inc()
        new = self.scan(self._ledger)
        if new:
            self._m_alerts.inc(len(new))
            self.obs.tracer.instant(
                "defense.watchdog.alert", "defense",
                alerts=len(new), pids=sorted({a.pid for a in new}),
            )

    def scan(self, ledger: ActivationLedger) -> list[HammerAlert]:
        """Examine all retained windows; returns (and retains) new alerts."""
        new: list[HammerAlert] = []
        for epoch in ledger.epochs()[-self.config.history_windows :]:
            for pid, count in ledger._counts[epoch].items():
                if count <= self.config.threshold_per_window:
                    continue
                key = (epoch, pid)
                if key in self._seen:
                    continue
                self._seen.add(key)
                alert = HammerAlert(pid=pid, epoch=epoch, activations=count)
                self.alerts.append(alert)
                new.append(alert)
        return new

    def flagged_pids(self) -> set[int]:
        """Tasks with at least one alert so far."""
        return {alert.pid for alert in self.alerts}
