"""Software-side Rowhammer detection.

The hardware mitigations (TRR, ECC, refresh scaling) live in
:mod:`repro.dram`; this package holds the *software* counterpart: an
ANVIL-style watchdog that samples per-task DRAM activation rates and
flags tasks whose single-refresh-window activation counts are only
explainable by deliberate cache-bypassing hammering.
"""

from repro.defense.watchdog import (
    ActivationLedger,
    HammerAlert,
    HammerWatchdog,
    WatchdogConfig,
)

__all__ = [
    "ActivationLedger",
    "HammerAlert",
    "HammerWatchdog",
    "WatchdogConfig",
]
