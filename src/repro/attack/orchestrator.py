"""Resilient attack orchestration: retries, budgets, failure forensics.

:class:`~repro.attack.explframe.ExplFrameAttack.run` is a single-shot
driver — every stage runs once and any adversity (a stolen staged frame,
a flip that stops repeating, a TRR burst) kills the run with no record of
why.  :class:`AttackOrchestrator` wraps the same stage methods in an
explicit state machine:

* **Per-stage retry policies** with exponential backoff *in simulated
  clock time* — waiting out a TRR sampling burst or a threshold-drift
  window costs sim-nanoseconds, not host time, and the advance also lets
  refresh epochs roll over so residual disturbance decays.
* **Global budgets** — a deadline (sim time), an activation budget
  (total hammer rounds), and a campaign budget (templating passes).
  Budgets are checked before every attempt; a blown budget terminates
  the run with a ``budget-exhausted`` failure naming the budget.
* **Typed failure classification** — every failed attempt is recorded as
  a :class:`StageFailure` with a :class:`FailureClass`; no run ever ends
  with an unexplained cause.
* **Recovery strategies per class** — a steering miss repins the
  attacker (migration recovery) and steers the next candidate template;
  a non-repeatable flip backs off and re-hammers; a disarmed or
  mismatched fault falls back to the next candidate; an empty candidate
  queue launches a fresh templating campaign.

Everything the run did lands in an :class:`AttackRunReport` — a
per-stage timeline, the failure log, every chaos event that fired, and
the budget spend — serialisable to byte-identical JSON for the same
seed and chaos plan.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass, field

# The failure taxonomy lives in repro.attack.base (it is part of the
# cross-modality contract); re-exported here because this module is its
# historical home and reports/journals import it from both places.
from repro.attack.base import FailureClass, StageFailure  # noqa: F401
from repro.core.results import FlipTemplate
from repro.sim.errors import ConfigError, TemplatingExhaustedError
from repro.sim.rng import derive_seed
from repro.sim.units import MS, SECOND

#: Stage labels and failure classes assumed when an attack object
#: predates the modality contract (plain stage-method duck types).
_DEFAULT_STAGES = ("template", "steer", "rehammer", "pfa")
_DEFAULT_FAILURE_CLASSES = (
    FailureClass.TEMPLATING_EXHAUSTED,
    FailureClass.STEERING_MISS,
    FailureClass.NON_REPEATABLE_FLIP,
    FailureClass.DISARMED_DIRECTION,
    FailureClass.PFA_INCONCLUSIVE,
    FailureClass.KEY_MISMATCH,
    FailureClass.BUDGET_EXHAUSTED,
)


# -- policies and budgets ----------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How often to retry a stage and how long to back off between tries.

    Backoff is exponential: attempt ``n`` (0-based) waits
    ``backoff_base_ns * backoff_factor**n`` of *simulated* time.
    """

    max_attempts: int = 3
    backoff_base_ns: int = 10 * MS
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be at least 1, got {self.max_attempts}")
        if self.backoff_base_ns < 0:
            raise ConfigError(f"backoff_base_ns must be non-negative, got {self.backoff_base_ns}")
        if self.backoff_factor < 1.0:
            raise ConfigError(f"backoff_factor must be >= 1, got {self.backoff_factor}")

    def backoff_ns(self, attempt: int) -> int:
        """Sim-time to wait after failed attempt ``attempt`` (0-based)."""
        return int(self.backoff_base_ns * self.backoff_factor**attempt)


@dataclass(frozen=True)
class OrchestratorConfig:
    """Budgets and per-stage retry policies for one orchestrated run.

    The policy fields are keyed by resolution stages through
    :class:`~repro.attack.base.ResolutionStage.policy` — e.g. FAULT+PROBE's
    ``probe`` stage declares ``policy="pfa"``, reusing the analysis-stage
    slot rather than adding a field (which would change this dataclass's
    repr and with it every existing checkpoint's config hash).
    """

    deadline_ns: int = 120 * SECOND
    activation_budget: int = 100_000_000_000
    campaign_budget: int = 8
    steer: RetryPolicy = field(default_factory=lambda: RetryPolicy(4, 10 * MS, 2.0))
    rehammer: RetryPolicy = field(default_factory=lambda: RetryPolicy(4, 20 * MS, 3.0))
    pfa: RetryPolicy = field(default_factory=lambda: RetryPolicy(3, 1 * MS, 2.0))

    def __post_init__(self) -> None:
        if self.deadline_ns <= 0:
            raise ConfigError(f"deadline_ns must be positive, got {self.deadline_ns}")
        if self.activation_budget <= 0:
            raise ConfigError(
                f"activation_budget must be positive, got {self.activation_budget}"
            )
        if self.campaign_budget <= 0:
            raise ConfigError(f"campaign_budget must be positive, got {self.campaign_budget}")

    def policy_for(self, name: str) -> RetryPolicy:
        """The retry policy a resolution stage named as its key."""
        policy = getattr(self, name, None)
        if not isinstance(policy, RetryPolicy):
            raise ConfigError(f"no retry policy named {name!r} on OrchestratorConfig")
        return policy


# -- report ------------------------------------------------------------------------


@dataclass(frozen=True)
class AttemptRecord:
    """One stage attempt on the run's timeline."""

    stage: str
    attempt: int
    start_ns: int
    end_ns: int
    outcome: str  # "ok" | "fail"
    failure: StageFailure | None = None
    recovery: str | None = None

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "attempt": self.attempt,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "outcome": self.outcome,
            "failure": None if self.failure is None else self.failure.to_dict(),
            "recovery": self.recovery,
        }

    @classmethod
    def from_dict(cls, data: dict) -> AttemptRecord:
        failure = data.get("failure")
        return cls(
            stage=data["stage"],
            attempt=data["attempt"],
            start_ns=data["start_ns"],
            end_ns=data["end_ns"],
            outcome=data["outcome"],
            failure=None if failure is None else StageFailure.from_dict(failure),
            recovery=data.get("recovery"),
        )


@dataclass(frozen=True)
class BudgetSpend:
    """What the run consumed versus what it was allowed."""

    sim_time_ns: int
    deadline_ns: int
    hammer_rounds: int
    activation_budget: int
    campaigns: int
    campaign_budget: int

    def to_dict(self) -> dict:
        return {
            "sim_time_ns": self.sim_time_ns,
            "deadline_ns": self.deadline_ns,
            "hammer_rounds": self.hammer_rounds,
            "activation_budget": self.activation_budget,
            "campaigns": self.campaigns,
            "campaign_budget": self.campaign_budget,
        }

    @classmethod
    def from_dict(cls, data: dict) -> BudgetSpend:
        return cls(
            sim_time_ns=data["sim_time_ns"],
            deadline_ns=data["deadline_ns"],
            hammer_rounds=data["hammer_rounds"],
            activation_budget=data["activation_budget"],
            campaigns=data["campaigns"],
            campaign_budget=data["campaign_budget"],
        )


@dataclass(frozen=True)
class AttackRunReport:
    """Structured forensics for one orchestrated attack run.

    Deterministic under (machine seed, chaos plan): :meth:`to_json` is
    byte-identical across replays.
    """

    seed: int
    chaos_profile: str
    success: bool
    recovered_key: str | None
    true_key: str
    final_failure: StageFailure | None
    timeline: tuple[AttemptRecord, ...]
    failures: tuple[StageFailure, ...]
    chaos_events: tuple[dict, ...]
    budget: BudgetSpend
    templated_flips: int
    candidates_tried: int
    recoveries: tuple[str, ...]
    faulty_ciphertexts: int
    # Scenario runs only (repro.workload): which tenant the attack
    # targeted and how many noisy neighbours shared the machine.  Kept
    # out of the serialized form when unset so pre-scenario reports (and
    # their checked-in campaign digests) are byte-identical.
    target_tenant: str | None = None
    background_tenants: int = 0
    # Which attack produced this report, plus the modality's own result
    # block (``report_extra()``).  Both are omitted from the serialized
    # form for the default explframe modality, keeping pre-modality
    # report bytes (and the checked-in campaign digests) identical.
    modality: str = "explframe"
    extra: dict | None = None

    @property
    def failure_classes(self) -> list[str]:
        """Distinct failure classes seen, in first-occurrence order."""
        seen: list[str] = []
        for failure in self.failures:
            if failure.failure_class.value not in seen:
                seen.append(failure.failure_class.value)
        return seen

    @property
    def attempts(self) -> int:
        """Total stage attempts on the timeline."""
        return len(self.timeline)

    @property
    def stage_sim_time_ns(self) -> dict[str, int]:
        """Simulated time spent inside each stage, summed over attempts.

        Sourced from the timeline's event-scheduler timestamps; backoff
        waits between attempts are not inside any stage, so the values
        sum to less than ``budget.sim_time_ns``.
        """
        totals: dict[str, int] = {}
        for record in self.timeline:
            totals[record.stage] = (
                totals.get(record.stage, 0) + record.end_ns - record.start_ns
            )
        return totals

    def to_dict(self) -> dict:
        out = {
            "stage_sim_time_ns": self.stage_sim_time_ns,
            "seed": self.seed,
            "chaos_profile": self.chaos_profile,
            "success": self.success,
            "recovered_key": self.recovered_key,
            "true_key": self.true_key,
            "final_failure": None if self.final_failure is None else self.final_failure.to_dict(),
            "failure_classes": self.failure_classes,
            "timeline": [record.to_dict() for record in self.timeline],
            "failures": [failure.to_dict() for failure in self.failures],
            "chaos_events": list(self.chaos_events),
            "budget": self.budget.to_dict(),
            "templated_flips": self.templated_flips,
            "candidates_tried": self.candidates_tried,
            "recoveries": list(self.recoveries),
            "faulty_ciphertexts": self.faulty_ciphertexts,
        }
        if self.target_tenant is not None:
            out["target_tenant"] = self.target_tenant
            out["background_tenants"] = self.background_tenants
        if self.modality != "explframe":
            out["modality"] = self.modality
        if self.extra is not None:
            out["extra"] = self.extra
        return out

    def to_json(self) -> str:
        """Canonical JSON form (sorted keys, compact separators)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: dict) -> AttackRunReport:
        """Rebuild a report from :meth:`to_dict` output.

        The faithful inverse the checkpoint journal depends on: derived
        keys (``stage_sim_time_ns``, ``failure_classes``) are recomputed
        from the reconstructed fields, so
        ``from_dict(r.to_dict()).to_json() == r.to_json()`` byte for
        byte — which is what keeps a resumed campaign's digest identical
        to an uninterrupted run's.
        """
        final_failure = data.get("final_failure")
        return cls(
            seed=data["seed"],
            chaos_profile=data["chaos_profile"],
            success=data["success"],
            recovered_key=data.get("recovered_key"),
            true_key=data["true_key"],
            final_failure=(
                None if final_failure is None else StageFailure.from_dict(final_failure)
            ),
            timeline=tuple(
                AttemptRecord.from_dict(record) for record in data["timeline"]
            ),
            failures=tuple(
                StageFailure.from_dict(failure) for failure in data["failures"]
            ),
            chaos_events=tuple(data["chaos_events"]),
            budget=BudgetSpend.from_dict(data["budget"]),
            templated_flips=data["templated_flips"],
            candidates_tried=data["candidates_tried"],
            recoveries=tuple(data["recoveries"]),
            faulty_ciphertexts=data["faulty_ciphertexts"],
            target_tenant=data.get("target_tenant"),
            background_tenants=data.get("background_tenants", 0),
            modality=data.get("modality", "explframe"),
            extra=data.get("extra"),
        )


# -- the orchestrator --------------------------------------------------------------


class AttackOrchestrator:
    """Runs any modality's :class:`~repro.attack.base.AttackRun` to success
    or exhaustion.

    The attack object supplies the stages (the shared template/steer
    front half plus its declared resolution stages); the orchestrator
    supplies the control flow, keyed purely by stage *name* — it never
    names a concrete attack class.  Chaos (if any) is attached to the
    kernel separately — the orchestrator only *reads* ``kernel.chaos``
    for forensics, it never injects adversity itself.
    """

    def __init__(
        self,
        attack,
        config: OrchestratorConfig | None = None,
        candidates: Iterable[FlipTemplate] | None = None,
    ):
        self.attack = attack
        self.kernel = attack.kernel
        self.config = config or OrchestratorConfig()
        # Pre-stocked candidate templates (from a warm forked machine):
        # the run starts steering immediately and only re-templates once
        # these are spent.
        self._initial_candidates = tuple(candidates or ())
        self._timeline: list[AttemptRecord] = []
        self._failures: list[StageFailure] = []
        self._recoveries: list[str] = []
        self._stage_attempts: dict[str, int] = {}
        self._start_ns = 0
        self.obs = attack.obs
        metrics = self.obs.metrics
        # Instrument labels come from the modality: registering only the
        # stages/classes it can emit keeps every other modality's metric
        # snapshot unchanged (registered instruments appear at zero).
        stage_names = tuple(
            getattr(attack, "stage_names", lambda: _DEFAULT_STAGES)()
        )
        failure_classes = tuple(
            getattr(attack, "failure_classes", lambda: _DEFAULT_FAILURE_CLASSES)()
        )
        self._m_attempts = {
            stage: metrics.counter(
                "attack.stage.attempts", labels={"stage": stage},
                unit="attempts", help="stage attempts by stage name",
            )
            for stage in (*stage_names, "budget")
        }
        self._m_failures = {
            failure_class.value: metrics.counter(
                "attack.stage.failures", labels={"class": failure_class.value},
                unit="failures", help="classified stage failures",
            )
            for failure_class in failure_classes
        }
        self._m_recoveries = metrics.counter(
            "attack.recoveries", unit="recoveries",
            help="recovery strategies applied between attempts",
        )
        self._m_stage_dur = metrics.histogram(
            "attack.stage.duration_ns",
            buckets=(MS, 10 * MS, 100 * MS, SECOND, 10 * SECOND, 100 * SECOND),
            unit="ns", help="sim-time duration of each stage attempt",
        )

    # -- bookkeeping -------------------------------------------------------------

    def _record(
        self,
        stage: str,
        start_ns: int,
        *,
        failure: StageFailure | None = None,
        recovery: str | None = None,
    ) -> None:
        attempt = self._stage_attempts.get(stage, 0)
        self._stage_attempts[stage] = attempt + 1
        if failure is not None:
            self._failures.append(failure)
        if recovery is not None:
            self._recoveries.append(recovery)
        end_ns = self.kernel.clock.now_ns
        self._timeline.append(
            AttemptRecord(
                stage=stage,
                attempt=attempt,
                start_ns=start_ns,
                end_ns=end_ns,
                outcome="ok" if failure is None else "fail",
                failure=failure,
                recovery=recovery,
            )
        )
        self._m_attempts[stage].inc()
        self._m_stage_dur.observe(end_ns - start_ns)
        if failure is not None:
            self._m_failures[failure.failure_class.value].inc()
        if recovery is not None:
            self._m_recoveries.inc()
        # The attempt is only known once it finished, so the span is
        # emitted retroactively with explicit begin/end stamps.
        self.obs.tracer.complete(
            "attack.attempt", "attack", start_ns, end_ns,
            stage=stage, attempt=attempt,
            outcome="ok" if failure is None else "fail",
            failure=None if failure is None else failure.failure_class.value,
            recovery=recovery,
        )

    def _blown_budget(self) -> StageFailure | None:
        """The budget the run has exhausted, if any."""
        elapsed = self.kernel.clock.now_ns - self._start_ns
        if elapsed >= self.config.deadline_ns:
            return StageFailure(
                "budget",
                FailureClass.BUDGET_EXHAUSTED,
                f"deadline: {elapsed} ns elapsed of {self.config.deadline_ns} ns",
            )
        if self.attack.hammer_rounds_total >= self.config.activation_budget:
            return StageFailure(
                "budget",
                FailureClass.BUDGET_EXHAUSTED,
                f"activations: {self.attack.hammer_rounds_total} rounds "
                f"of {self.config.activation_budget}",
            )
        return None

    def _backoff(self, policy: RetryPolicy, attempt: int) -> None:
        """Wait out adversity in simulated time (never past hope).

        On an event-driven machine the wait runs through the scheduler,
        so refresh ticks (and any other timed work) fire at their due
        instants during the backoff instead of coalescing at its end.
        """
        wait = policy.backoff_ns(attempt)
        machine = self.attack.machine
        run_until = getattr(machine, "run_until", None)
        if run_until is not None:
            run_until(self.kernel.clock.now_ns + wait)
        else:
            self.kernel.clock.advance(wait)

    # -- recovery helpers ---------------------------------------------------------

    def _repin_if_migrated(self) -> str | None:
        """Pull the attacker back onto the victim-shared CPU if moved."""
        attacker = self.attack.attacker
        home = self.attack.config.cpu
        if attacker.cpu == home:
            return None
        moved_from = attacker.cpu
        self.kernel.sys_sched_setaffinity(attacker.pid, frozenset({home}))
        return f"repinned attacker from cpu {moved_from} to cpu {home}"

    # -- the state machine ---------------------------------------------------------

    def run(self) -> AttackRunReport:
        """Drive template → steer → resolution stages to success or exhaustion."""
        with self.obs.tracer.span("attack.orchestrate", "attack") as span:
            report = self._run()
            span.set("success", report.success)
            span.set("attempts", report.attempts)
        return report

    def _resolve_candidate(
        self, victim, template: FlipTemplate
    ) -> tuple[bytes | None, StageFailure | None, bool]:
        """Run the modality's resolution stages against one steered victim.

        Returns ``(recovered, final_failure, resolved)``: ``resolved``
        is True only when every stage (and its verify hook) passed; a
        non-None ``final_failure`` is a blown budget that must terminate
        the whole run.  Each stage retries under its own policy —
        failures with ``advance="retry"`` back off and re-attempt,
        ``"next-candidate"`` abandons the template immediately.
        """
        recovered: bytes | None = None
        for stage in self.attack.resolution_stages():
            policy = self.config.policy_for(stage.policy)
            stage_ok = False
            for attempt in range(policy.max_attempts):
                budget_failure = self._blown_budget()
                if budget_failure is not None:
                    self._record(
                        "budget", self.kernel.clock.now_ns, failure=budget_failure
                    )
                    return recovered, budget_failure, False
                start = self.kernel.clock.now_ns
                outcome = stage.run(victim, template, attempt)
                if outcome.ok:
                    self._record(stage.name, start, recovery=outcome.recovery)
                    if outcome.recovered is not None:
                        recovered = outcome.recovered
                    stage_ok = True
                    break
                self._record(
                    stage.name, start,
                    failure=outcome.failure, recovery=outcome.recovery,
                )
                if outcome.advance == "next-candidate":
                    # The candidate's fault model was wrong; anything
                    # recovered from it is suspect.
                    return None, None, False
                self._backoff(policy, attempt)
            if not stage_ok:
                return recovered, None, False
            if stage.verify is not None:
                veto = stage.verify(victim, template)
                if veto is not None:
                    self._record(
                        veto.stage, self.kernel.clock.now_ns, failure=veto
                    )
                    return recovered, None, False
        return recovered, None, True

    def _run(self) -> AttackRunReport:
        attack = self.attack
        self._start_ns = self.kernel.clock.now_ns
        candidates: deque[FlipTemplate] = deque(self._initial_candidates)
        candidates_tried = 0
        # Analysis-unit spend (ciphertexts for PFA, probes for FAULT+PROBE)
        # is reported as this run's delta, matching the pre-modality
        # per-run accumulator.
        analysis_start = attack.analysis_units_consumed()
        steer_misses = 0
        final_failure: StageFailure | None = None
        success = False
        recovered: bytes | None = None

        while not success:
            final_failure = self._blown_budget()
            if final_failure is not None:
                self._record("budget", self.kernel.clock.now_ns, failure=final_failure)
                break

            # -- template: keep a candidate queue stocked -------------------------
            if not candidates:
                campaigns_left = self.config.campaign_budget - attack.campaigns_run
                if campaigns_left <= 0:
                    final_failure = StageFailure(
                        "template",
                        FailureClass.BUDGET_EXHAUSTED,
                        f"campaigns: {attack.campaigns_run} run of "
                        f"{self.config.campaign_budget}",
                    )
                    self._record("budget", self.kernel.clock.now_ns, failure=final_failure)
                    break
                start = self.kernel.clock.now_ns
                recovery = None
                if attack.campaigns_run > 0:
                    # The previous buffer has unmapped (staged) holes, so a
                    # re-fill would fault; template over fresh memory.
                    attack.retire_templator()
                    recovery = "fresh templating campaign over a new buffer"
                try:
                    usable = attack.template_until_usable(campaigns_left)
                except TemplatingExhaustedError as exc:
                    final_failure = StageFailure(
                        "template",
                        FailureClass.TEMPLATING_EXHAUSTED,
                        f"{exc.campaigns} campaigns, {exc.flips_found} flips, "
                        "none armed and in-table",
                    )
                    self._record("template", start, failure=final_failure)
                    break
                candidates.extend(usable)
                self._record("template", start, recovery=recovery)

            template = candidates.popleft()
            # Staging a sibling template may have unmapped this page already.
            if not attack.attacker.mm.page_table.is_mapped(template.page_va):
                continue
            candidates_tried += 1

            # -- steer: stage the flippy frame into the victim's allocation -------
            start = self.kernel.clock.now_ns
            recovery = self._repin_if_migrated()
            victim, staged_pfn, steered = attack.stage_and_steer(template)
            if not steered:
                steer_misses += 1
                failure = StageFailure(
                    "steer",
                    FailureClass.STEERING_MISS,
                    f"staged frame {staged_pfn} was not the victim's table frame",
                )
                self._record("steer", start, failure=failure, recovery=recovery)
                if steer_misses % self.config.steer.max_attempts == 0:
                    # Too many consecutive misses from this buffer: the cache
                    # is being churned under us — start over with fresh frames.
                    candidates.clear()
                self._backoff(self.config.steer, steer_misses - 1)
                continue
            self._record("steer", start, recovery=recovery)
            steer_misses = 0

            # -- resolution: the modality's own stages over the steered victim ----
            recovered, final_failure, resolved = self._resolve_candidate(
                victim, template
            )
            if final_failure is not None:
                break
            if not resolved:
                continue  # next candidate template
            success = attack.run_complete()

        if success:
            final_failure = None
        elif final_failure is None and self._failures:
            final_failure = self._failures[-1]

        chaos = self.kernel.chaos
        workload = getattr(attack, "tenant_workload", None)
        return AttackRunReport(
            seed=attack.machine.rng.master_seed,
            chaos_profile="none" if chaos is None else chaos.plan.name,
            success=success,
            recovered_key=recovered.hex() if success and recovered is not None else None,
            true_key=attack.true_key.hex(),
            final_failure=final_failure,
            timeline=tuple(self._timeline),
            failures=tuple(self._failures),
            chaos_events=tuple(chaos.records_as_dicts()) if chaos is not None else (),
            budget=BudgetSpend(
                sim_time_ns=self.kernel.clock.now_ns - self._start_ns,
                deadline_ns=self.config.deadline_ns,
                hammer_rounds=attack.hammer_rounds_total,
                activation_budget=self.config.activation_budget,
                campaigns=attack.campaigns_run,
                campaign_budget=self.config.campaign_budget,
            ),
            templated_flips=attack.total_flips,
            candidates_tried=candidates_tried,
            recoveries=tuple(self._recoveries),
            faulty_ciphertexts=attack.analysis_units_consumed() - analysis_start,
            target_tenant=None if workload is None else workload.scenario.target,
            background_tenants=0 if workload is None else workload.background_count,
            modality=getattr(attack, "modality_name", "explframe"),
            extra=attack.report_extra(),
        )


# -- campaign fan-out --------------------------------------------------------------


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of an N-attempt campaign.

    ``digest()`` hashes every attempt's canonical report JSON, in order —
    the equality witness that the fork and rebuild strategies, the
    event-driven and polled cores, and every worker count produce
    literally the same attacks.  ``metrics`` (the per-attempt registries
    merged with :func:`~repro.obs.metrics.merge_metric_states`), ``pool``
    (worker-pool stats: wall times, pids) and ``service`` (checkpoint
    journal stats) ride outside the digest — the first is
    order-deterministic, the latter two are host noise.

    A streaming campaign-service run journals and *releases* each report
    instead of holding it (docs/CAMPAIGNS.md); such a result carries
    ``reports=()`` plus a ``summary`` block (``attempts``, ``successes``,
    ``digest`` — computed from the journal in attempt order) that the
    accessors below fall back to, so digest comparisons work identically
    whether the reports are in memory or on disk.
    """

    reports: tuple[AttackRunReport, ...]
    mode: str  # "fork" | "rebuild"
    metrics: dict | None = None
    pool: dict | None = None
    service: dict | None = None
    summary: dict | None = None

    @property
    def attempts(self) -> int:
        """Number of attack attempts run."""
        if self.summary is not None:
            return self.summary["attempts"]
        return len(self.reports)

    @property
    def successes(self) -> int:
        """Attempts that recovered the key."""
        if self.summary is not None:
            return self.summary["successes"]
        return sum(1 for report in self.reports if report.success)

    def digest(self) -> str:
        """SHA-256 over the concatenated canonical report JSONs."""
        if self.summary is not None:
            return self.summary["digest"]
        hasher = hashlib.sha256()
        for report in self.reports:
            hasher.update(report.to_json().encode("utf-8"))
            hasher.update(b"\n")
        return hasher.hexdigest()

    def to_dict(self) -> dict:
        out = {
            "mode": self.mode,
            "attempts": self.attempts,
            "successes": self.successes,
            "digest": self.digest(),
            "reports": [report.to_dict() for report in self.reports],
        }
        if self.metrics is not None:
            out["metrics"] = self.metrics
        if self.pool is not None:
            out["pool"] = self.pool
        if self.service is not None:
            out["service"] = self.service
        return out


class AttackCampaign:
    """Runs N orchestrated attack attempts against one machine shape.

    Every attempt is an independent machine in the same warm state — a
    freshly built machine whose attacker has already templated a usable
    candidate set — re-keyed with a per-attempt seed
    (``derive_seed(base_seed, "campaign/<i>")``) so post-templating
    randomness (PFA plaintexts, victim interaction) varies per attempt
    while the hardware and the templated state stay fixed.

    Two interchangeable strategies reach that state:

    * ``fork_from_template=True`` — build + template **once**, snapshot,
      and :meth:`~repro.core.machine.MachineSnapshot.fork` per attempt.
      The dominant fixed cost (templating a whole buffer under refresh)
      is paid one time.
    * ``fork_from_template=False`` — rebuild and re-template per attempt
      (the pre-refactor behaviour).

    Determinism makes them equivalent by construction: a rebuilt machine
    reaches bit-identical post-templating state, so reseeding it matches
    reseeding a fork, and :meth:`CampaignResult.digest` comes out equal.

    With ``workers > 1`` the attempts are dispatched across a process
    pool (see :mod:`repro.parallel.pool`); ``pool_mode`` picks whether
    the warm snapshot is pickled once and shipped to every worker
    (``"ship"``) or each worker re-warms from the config (``"rewarm"``).
    The digest is identical for every ``workers`` value by construction:
    attempt ``i`` always runs on a fork re-keyed with
    ``derive_seed(base_seed, "campaign/i")``, and reports are ordered by
    attempt index before hashing (docs/CAMPAIGNS.md).

    A non-``"none"`` ``chaos_profile`` attaches a per-attempt
    :class:`~repro.sim.chaos.ChaosPlan` derived from the attempt seed
    (:func:`~repro.sim.chaos.chaos_plan_for_attempt`) to each attempt's
    machine after the reseed, so adversity varies across attempts but is
    a pure function of (profile, attempt seed, intensity).
    """

    POOL_MODES = ("ship", "rewarm")

    def __init__(
        self,
        base_config,
        attempts: int,
        *,
        modality: str = "explframe",
        attack_config=None,
        orchestrator_config: OrchestratorConfig | None = None,
        fork_from_template: bool = True,
        chaos_profile: str = "none",
        chaos_intensity: float = 1.0,
        workers: int = 1,
        pool_mode: str = "ship",
        scenario=None,
    ):
        from repro.attack.registry import get_modality

        if attempts <= 0:
            raise ConfigError(f"attempts must be positive, got {attempts}")
        if workers < 1:
            raise ConfigError(f"workers must be at least 1, got {workers}")
        if pool_mode not in self.POOL_MODES:
            raise ConfigError(
                f"unknown pool_mode {pool_mode!r}; expected one of {self.POOL_MODES}"
            )
        # Resolved eagerly so an unknown name fails at construction (CLI
        # exit 2), not in a worker process mid-campaign.
        modality_impl = get_modality(modality)
        self.modality = modality
        self.base_config = base_config
        self.attempts = attempts
        self.attack_config = attack_config or modality_impl.default_config()
        self.orchestrator_config = orchestrator_config or OrchestratorConfig()
        self.fork_from_template = fork_from_template
        self.chaos_profile = chaos_profile
        self.chaos_intensity = chaos_intensity
        self.workers = workers
        self.pool_mode = pool_mode
        # A repro.workload Scenario (or None): attempts run against a
        # multi-tenant machine, steering at the target tenant amid
        # background traffic.  Plain frozen data — it pickles to workers,
        # journals through checkpoints and pins the config hash.
        self.scenario = scenario
        if scenario is not None and scenario.target_spec.cipher != self.attack_config.cipher:
            raise ConfigError(
                f"attack cipher {self.attack_config.cipher!r} does not match "
                f"scenario {scenario.name!r}'s target tenant "
                f"({scenario.target_spec.cipher!r})"
            )

    @property
    def mode(self) -> str:
        """The strategy label reports carry: ``"fork"`` or ``"rebuild"``."""
        return "fork" if self.fork_from_template else "rebuild"

    def _attempt_seed(self, index: int) -> int:
        return derive_seed(self.base_config.seed, f"campaign/{index}")

    def _warm(self):
        """Build a machine and drive its attack to post-templating state."""
        from repro.attack.registry import get_modality
        from repro.core.machine import Machine

        machine = Machine(self.base_config)
        workload = None
        if self.scenario is not None:
            from repro.workload import WorkloadEngine

            workload = WorkloadEngine(machine, self.scenario)
            workload.start()
        attack = get_modality(self.modality).build(
            machine, config=self.attack_config, tenant_workload=workload
        )
        candidates = tuple(
            attack.template_until_usable(self.orchestrator_config.campaign_budget)
        )
        return machine, attack, candidates

    def _warm_snapshot(self):
        """Warm once and freeze (machine + attack + candidates) for forking."""
        machine, attack, candidates = self._warm()
        return machine.snapshot(
            extras={"attack": attack, "candidates": candidates}
        )

    def _run_attempt(self, machine, attack, candidates, index: int):
        """Run attempt ``index`` on its machine; (report, metrics dump).

        The reseed happens first, then the per-attempt chaos plan (if
        any) attaches — identical ordering in serial, pooled, fork and
        rebuild execution, which is what keeps the digest mode- and
        worker-count-independent.
        """
        seed = self._attempt_seed(index)
        machine.rng.reseed(seed)
        if self.chaos_profile != "none":
            from repro.sim.chaos import ChaosEngine, chaos_plan_for_attempt

            plan = chaos_plan_for_attempt(
                self.chaos_profile, seed, self.chaos_intensity
            )
            ChaosEngine(machine.kernel, plan)
        orchestrator = AttackOrchestrator(
            attack, self.orchestrator_config, candidates=candidates
        )
        report = orchestrator.run()
        return report, machine.obs.metrics.export_state()

    def _run_attempt_fresh(self, index: int):
        """Attempt ``index`` on its own machine (rebuild-mode unit of work)."""
        machine, attack, candidates = self._warm()
        return self._run_attempt(machine, attack, candidates, index)

    def _finish(self, outcomes, pool: dict | None) -> CampaignResult:
        """Assemble the result from ordered (report, metrics dump) pairs."""
        from repro.obs.metrics import merge_metric_states

        reports = tuple(report for report, _ in outcomes)
        merged = merge_metric_states([state for _, state in outcomes])
        return CampaignResult(
            reports=reports, mode=self.mode, metrics=merged, pool=pool
        )

    def run(self) -> CampaignResult:
        """Execute every attempt; returns the ordered results."""
        if self.workers > 1:
            from repro.parallel.pool import run_campaign

            return run_campaign(self)
        outcomes = []
        if not self.fork_from_template:
            for index in range(self.attempts):
                outcomes.append(self._run_attempt_fresh(index))
        else:
            snapshot = self._warm_snapshot()
            for index in range(self.attempts):
                forked, extras = snapshot.fork()
                outcomes.append(
                    self._run_attempt(
                        forked, extras["attack"], extras["candidates"], index
                    )
                )
        from repro.parallel.pool import make_pool_block

        pool = make_pool_block(
            workers=1,
            mode="serial",
            dispatched=self.attempts,
            completed=self.attempts,
            worker_wall_ns={},
        )
        return self._finish(outcomes, pool)
