"""Page-frame-cache steering (paper Section V).

The protocol under test:

1. the attacker maps and touches a buffer, so she owns real frames;
2. she munmaps one chosen page — its frame lands on the **hot end** of her
   CPU's page frame cache;
3. she stays *active* (never sleeps) and waits;
4. the victim, co-resident on the CPU, makes a small allocation — the
   kernel serves it from the page frame cache, handing over exactly the
   staged frame "with a probability of almost 1".

The protocol object runs instrumented trials of this dance and scores
them with ground truth (did the victim's new frames include the staged
one?).  Knobs cover everything the paper discusses: victim request size,
same-CPU vs cross-CPU placement, interleaved noise from other processes,
and the failure mode where the attacker sleeps and the cache is drained.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.machine import Machine
from repro.core.results import SteeringResult
from repro.sim.errors import ConfigError
from repro.sim.units import PAGE_SIZE


@dataclass(frozen=True)
class SteeringTrialConfig:
    """Parameters of one steering trial."""

    victim_request_pages: int = 1
    same_cpu: bool = True
    noise_pages: int = 0
    attacker_sleeps: bool = False
    attacker_buffer_pages: int = 64
    staged_page_index: int = 32  # which buffer page the attacker stages

    def __post_init__(self) -> None:
        if self.victim_request_pages <= 0:
            raise ConfigError("victim_request_pages must be positive")
        if self.attacker_buffer_pages <= 1:
            raise ConfigError("attacker needs at least two buffer pages")
        if not 0 <= self.staged_page_index < self.attacker_buffer_pages:
            raise ConfigError("staged_page_index outside the buffer")
        if self.noise_pages < 0:
            raise ConfigError("noise_pages must be non-negative")


class SteeringProtocol:
    """Runs instrumented steering trials on one machine."""

    def __init__(self, machine: Machine, attacker_cpu: int = 0):
        if not 0 <= attacker_cpu < machine.num_cpus:
            raise ConfigError(f"attacker_cpu {attacker_cpu} out of range")
        self.machine = machine
        self.kernel = machine.kernel
        self.attacker_cpu = attacker_cpu

    def _victim_cpu(self, same_cpu: bool) -> int:
        if same_cpu:
            return self.attacker_cpu
        if self.machine.num_cpus < 2:
            raise ConfigError("cross-CPU trial needs at least two CPUs")
        return (self.attacker_cpu + 1) % self.machine.num_cpus

    def run_trial(self, config: SteeringTrialConfig | None = None) -> SteeringResult:
        """One full stage -> (noise) -> victim-allocate round, scored."""
        config = config or SteeringTrialConfig()
        kernel = self.kernel
        attacker = kernel.spawn("attacker", cpu=self.attacker_cpu)
        buffer_va = kernel.sys_mmap(
            attacker.pid, config.attacker_buffer_pages * PAGE_SIZE, name="stage-buffer"
        )
        for index in range(config.attacker_buffer_pages):
            kernel.mem_write(attacker.pid, buffer_va + index * PAGE_SIZE, b"\x5a")

        staged_va = buffer_va + config.staged_page_index * PAGE_SIZE
        staged_pfn = kernel.pfn_of(attacker.pid, staged_va)
        kernel.sys_munmap(attacker.pid, staged_va, PAGE_SIZE)

        if config.noise_pages:
            noise = kernel.spawn("noise", cpu=self.attacker_cpu)
            kernel.churn(noise.pid, config.noise_pages)
            kernel.sys_exit(noise.pid)

        if config.attacker_sleeps:
            kernel.sys_sleep(attacker.pid)

        victim_cpu = self._victim_cpu(config.same_cpu)
        victim = kernel.spawn("victim", cpu=victim_cpu)
        victim_va = kernel.sys_mmap(
            victim.pid, config.victim_request_pages * PAGE_SIZE, name="victim-data"
        )
        victim_pfns = []
        for index in range(config.victim_request_pages):
            kernel.mem_write(victim.pid, victim_va + index * PAGE_SIZE, b"\xc3")
            victim_pfns.append(kernel.pfn_of(victim.pid, victim_va + index * PAGE_SIZE))

        result = SteeringResult(
            steered_pfn=staged_pfn,
            victim_pfns=victim_pfns,
            success=staged_pfn in victim_pfns,
            victim_request_pages=config.victim_request_pages,
            same_cpu=config.same_cpu,
            noise_pages=config.noise_pages,
        )

        # Tear down so repeated trials on one machine stay independent.
        kernel.sys_exit(victim.pid)
        if config.attacker_sleeps:
            kernel.sys_wake(attacker.pid)
        kernel.sys_exit(attacker.pid)
        return result

    def success_rate(
        self,
        trials: int,
        config: SteeringTrialConfig | None = None,
    ) -> float:
        """Fraction of ``trials`` in which the victim received the frame."""
        if trials <= 0:
            raise ConfigError("trials must be positive")
        successes = sum(self.run_trial(config).success for _ in range(trials))
        return successes / trials

    def reuse_probability(
        self,
        trials: int,
        request_pages: int,
        intervening_allocations: int = 0,
    ) -> float:
        """Experiment T1: P(just-freed frame reallocated to the next request).

        A single task frees one page and then allocates ``request_pages``;
        with ``intervening_allocations`` other order-0 allocations slipped
        in between.  This isolates the page-frame-cache reuse property the
        paper states "holds with a probability of almost 1".
        """
        if trials <= 0 or request_pages <= 0:
            raise ConfigError("trials and request_pages must be positive")
        kernel = self.kernel
        hits = 0
        for _ in range(trials):
            task = kernel.spawn("reuser", cpu=self.attacker_cpu)
            va = kernel.sys_mmap(task.pid, 8 * PAGE_SIZE)
            for index in range(8):
                kernel.mem_write(task.pid, va + index * PAGE_SIZE, b"\x11")
            freed_pfn = kernel.pfn_of(task.pid, va)
            kernel.sys_munmap(task.pid, va, PAGE_SIZE)
            if intervening_allocations:
                other = kernel.spawn("interloper", cpu=self.attacker_cpu)
                other_va = kernel.sys_mmap(
                    other.pid, intervening_allocations * PAGE_SIZE
                )
                for index in range(intervening_allocations):
                    kernel.mem_write(
                        other.pid, other_va + index * PAGE_SIZE, b"\x22"
                    )
            new_va = kernel.sys_mmap(task.pid, request_pages * PAGE_SIZE)
            got = []
            for index in range(request_pages):
                kernel.mem_write(task.pid, new_va + index * PAGE_SIZE, b"\x33")
                got.append(kernel.pfn_of(task.pid, new_va + index * PAGE_SIZE))
            if freed_pfn in got:
                hits += 1
            kernel.sys_exit(task.pid)
            if intervening_allocations:
                kernel.sys_exit(other.pid)
        return hits / trials
