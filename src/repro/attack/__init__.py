"""Attack modalities over the page-frame-cache primitive, and baselines.

The shared front half, exactly as the paper's Sections V-VI describe:

1. **Templating** (:mod:`repro.attack.templating`) — the unprivileged
   attacker mmaps a large buffer, finds same-bank aggressor pairs by
   *timing* (she cannot read physical addresses), hammers, and scans her
   own memory for repeatable bit flips.
2. **Steering** (:mod:`repro.attack.steering`) — she munmaps a page
   containing a useful flip; the frame lands on the hot end of her CPU's
   page frame cache; the co-resident victim's next small allocation
   receives it.

What happens *after* a successful steer is the attack **modality**
(:mod:`repro.attack.base` defines the contract, :mod:`repro.attack.registry`
the name → modality map; docs/ATTACKS.md):

* ``explframe`` (:mod:`repro.attack.explframe`) — re-hammer the steered
  flip into the victim's S-box and recover the key by persistent fault
  analysis of its ciphertexts (the paper's attack, and the default).
* ``faultprobe`` (:mod:`repro.attack.faultprobe`) — read the secret bit
  *under* the steered flip back from response discrepancies: the flip
  only fires when the stored data arms it (FAULT+PROBE, PAPERS.md).

:mod:`repro.attack.baselines` implements the comparison points: a
privileged pagemap-guided attack (upper bound) and an unsteered random
spray (lower bound).  :mod:`repro.attack.orchestrator` drives any
modality's stage graph in a resilient state machine (retries, budgets,
failure forensics) for runs under injected adversity.
"""

from repro.attack.base import (
    AttackModality,
    ResolutionStage,
    StageOutcome,
    TargetVictim,
)
from repro.attack.baselines import PagemapAttack, RandomSprayAttack
from repro.attack.explframe import ExplFrameAttack, ExplFrameConfig
from repro.attack.faultprobe import FaultProbeAttack, FaultProbeConfig
from repro.attack.hammer import Hammerer
from repro.attack.orchestrator import (
    AttackCampaign,
    AttackOrchestrator,
    AttackRunReport,
    CampaignResult,
    FailureClass,
    OrchestratorConfig,
    RetryPolicy,
    StageFailure,
)
from repro.attack.registry import (
    available_modalities,
    get_modality,
    register_modality,
)
from repro.attack.steering import SteeringProtocol, SteeringTrialConfig
from repro.attack.templating import Templator, TemplatorConfig

__all__ = [
    "AttackCampaign",
    "AttackModality",
    "AttackOrchestrator",
    "AttackRunReport",
    "CampaignResult",
    "ExplFrameAttack",
    "ExplFrameConfig",
    "FailureClass",
    "FaultProbeAttack",
    "FaultProbeConfig",
    "Hammerer",
    "OrchestratorConfig",
    "PagemapAttack",
    "RandomSprayAttack",
    "ResolutionStage",
    "RetryPolicy",
    "StageFailure",
    "StageOutcome",
    "SteeringProtocol",
    "SteeringTrialConfig",
    "TargetVictim",
    "Templator",
    "TemplatorConfig",
    "available_modalities",
    "get_modality",
    "register_modality",
]
