"""The ExplFrame attack (the paper's contribution) and its baselines.

Pipeline, exactly as Sections V-VI describe:

1. **Templating** (:mod:`repro.attack.templating`) — the unprivileged
   attacker mmaps a large buffer, finds same-bank aggressor pairs by
   *timing* (she cannot read physical addresses), hammers, and scans her
   own memory for repeatable bit flips.
2. **Steering** (:mod:`repro.attack.steering`) — she munmaps a page
   containing a useful flip; the frame lands on the hot end of her CPU's
   page frame cache; the co-resident victim's next small allocation
   receives it.
3. **Re-hammer + fault analysis** (:mod:`repro.attack.explframe`) — she
   hammers the *same virtual addresses* again, flipping the same physical
   cell, which now holds the victim's S-box; persistent fault analysis of
   the victim's ciphertexts recovers the key.

:mod:`repro.attack.baselines` implements the comparison points: a
privileged pagemap-guided attack (upper bound) and an unsteered random
spray (lower bound).  :mod:`repro.attack.orchestrator` wraps the pipeline
in a resilient state machine (retries, budgets, failure forensics) for
runs under injected adversity.
"""

from repro.attack.baselines import PagemapAttack, RandomSprayAttack
from repro.attack.explframe import ExplFrameAttack, ExplFrameConfig
from repro.attack.hammer import Hammerer
from repro.attack.orchestrator import (
    AttackCampaign,
    AttackOrchestrator,
    AttackRunReport,
    CampaignResult,
    FailureClass,
    OrchestratorConfig,
    RetryPolicy,
    StageFailure,
)
from repro.attack.steering import SteeringProtocol, SteeringTrialConfig
from repro.attack.templating import Templator, TemplatorConfig

__all__ = [
    "AttackCampaign",
    "AttackOrchestrator",
    "AttackRunReport",
    "CampaignResult",
    "ExplFrameAttack",
    "ExplFrameConfig",
    "FailureClass",
    "Hammerer",
    "OrchestratorConfig",
    "PagemapAttack",
    "RandomSprayAttack",
    "RetryPolicy",
    "StageFailure",
    "SteeringProtocol",
    "SteeringTrialConfig",
    "Templator",
    "TemplatorConfig",
]
