"""The attack-modality registry: name -> :class:`AttackModality`.

Modalities self-register at import time (each module's bottom calls
:func:`register_modality`); :func:`get_modality` lazily imports the
built-in modules first, so ``get_modality("faultprobe")`` works without
anyone importing :mod:`repro.attack.faultprobe` by hand.  Unknown names
raise :class:`~repro.sim.errors.ConfigError` naming every registered
modality — the CLI maps that to exit code 2.
"""

from __future__ import annotations

from repro.attack.base import AttackModality
from repro.sim.errors import ConfigError

_REGISTRY: dict[str, AttackModality] = {}

#: Modules whose import registers the built-in modalities.
_BUILTIN_MODULES = (
    "repro.attack.explframe",
    "repro.attack.faultprobe",
    "repro.attack.evictframe",
)


def register_modality(modality: AttackModality) -> AttackModality:
    """Add one modality under its ``name``; re-registration must agree.

    Idempotent for the same class (modules may be imported repeatedly);
    a *different* class claiming a taken name is a configuration bug.
    """
    name = modality.name
    if not name:
        raise ConfigError(f"modality {modality!r} has no name")
    existing = _REGISTRY.get(name)
    if existing is not None and type(existing) is not type(modality):
        raise ConfigError(
            f"attack modality {name!r} is already registered by "
            f"{type(existing).__name__}"
        )
    _REGISTRY[name] = modality
    return modality


def _ensure_builtins() -> None:
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def get_modality(name: str) -> AttackModality:
    """The registered modality called ``name``.

    Raises :class:`ConfigError` (CLI exit 2) with the available names
    when ``name`` is unknown.
    """
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        available = ", ".join(sorted(_REGISTRY))
        raise ConfigError(
            f"unknown attack modality {name!r}; available: {available}"
        ) from None


def available_modalities() -> dict[str, str]:
    """``{name: one-line description}`` for every registered modality."""
    _ensure_builtins()
    return {name: _REGISTRY[name].description for name in sorted(_REGISTRY)}
