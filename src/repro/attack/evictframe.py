"""Eviction-based hammering: the Rowhammer.js variant of ExplFrame.

The third registered attack modality, after *Rowhammer.js: A Remote
Software-Induced Fault Attack in JavaScript* (Gruss et al., PAPERS.md)
and the ROADMAP's open item (b).  ExplFrame — like the original
Rowhammer paper — assumes the attacker can issue ``clflush`` so every
aggressor access reaches DRAM.  Rowhammer.js showed the flush is
optional: accessing enough addresses *congruent to the aggressor's
cache set* pushes the aggressor line out of the LRU cache, so the next
round's access misses and activates the row anyway.  This modality
keeps ExplFrame's entire pipeline — template, page-frame-cache steer,
re-hammer, persistent fault analysis — but the re-hammer loop is
flush-free:

1. **Derive** (the ``evictset`` resolution stage).  For each templated
   aggressor the attacker enumerates candidate lines at multiples of
   the cache's *way stride* (``line_size * sets`` — public CPU
   geometry; congruent virtual offsets are congruent physical offsets
   inside the mostly-contiguous buffer, the same assumption templating
   already makes for row strides) and keeps ``ways + evict_slack``
   resident members, skipping a guard zone around the aggressor rows
   and the staged page so traversal activations cannot touch the
   victim's row.  The set is **verified by access timing** through the
   cache model: load the aggressor, traverse the candidate set, and
   time a re-load — a cache hit costs exactly ``CACHE_HIT_NS``, so any
   longer read proves the traversal evicted the line.  Too few
   congruent residents or a set that never verifies classifies as
   ``eviction-set-incomplete`` and abandons the candidate.
2. **Hammer by traversal.**  ``Kernel.sys_hammer_evict`` runs the
   per-round sequence — aggressors plus their eviction sets, in the
   configured access ``evict_pattern`` (``sequential`` per-aggressor
   blocks, or the double-sided ``interleave``) — exactly for two
   rounds, then exploits that a fixed cyclic reference string through
   a deterministic LRU cache is periodic after the cold round: rounds
   3..N repeat round 2 bit for bit, so the steady-round misses replay
   through the controller's bulk hammer path (refresh-window clipping,
   TRR and flip evaluation all apply).  Aggressor lines replay at the
   flush-path activation rate; the eviction-set lines' activations are
   the price of flushless hammering and are accounted separately as
   **wasted activations**, their cost a simulated-time tail that makes
   eviction-based hammering measurably slower per flip (bench T14).
   **Eviction accuracy** — the fraction of aggressor accesses that
   actually reached DRAM — is 1.0 for a verified set and 0.0 for an
   undersized or incongruent one (the negative control: the cache
   absorbs every access and no flips accumulate, which is why the
   original attack needed clflush).

Everything downstream — fault-shape verification, PFA, key scoring,
campaign digests — is inherited from ExplFrame unchanged; only the
stage graph grows the ``evictset`` stage and the ``attack.evict.*``
metric family (contract: docs/ATTACKS.md, docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attack.base import (
    AttackModality,
    FailureClass,
    GENERIC_STAGES,
    ResolutionStage,
    StageFailure,
    StageOutcome,
)
from repro.attack.explframe import ExplFrameAttack, ExplFrameConfig
from repro.attack.registry import register_modality
from repro.attack.templating import TemplatorConfig
from repro.ciphers.table_memory import CipherVictim
from repro.core.results import FlipTemplate
from repro.os.kernel import CACHE_HIT_NS
from repro.sim.errors import ConfigError
from repro.sim.units import page_align_down

#: Access patterns ``sys_hammer_evict`` understands.
EVICT_PATTERNS = ("sequential", "interleave")

#: Rows kept between any eviction-set member and the aggressor rows or
#: the staged page, so traversal activations (and their neighbour
#: coupling) can never fault the victim's row themselves.
GUARD_ROWS = 3


@dataclass(frozen=True)
class EvictFrameConfig(ExplFrameConfig):
    """ExplFrame's knobs plus the eviction-set shape.

    ``evict_slack`` extra members beyond the cache's associativity make
    the traversal robust to the odd physically-discontiguous candidate;
    ``evict_pattern`` orders one hammer round's accesses (``sequential``
    walks each aggressor's set as a block, ``interleave`` is the
    double-sided variant: both aggressors first, then their members
    round-robin).
    """

    evict_slack: int = 2
    evict_pattern: str = "sequential"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.evict_slack < 0:
            raise ConfigError(
                f"evict_slack must be non-negative, got {self.evict_slack}"
            )
        if self.evict_pattern not in EVICT_PATTERNS:
            raise ConfigError(
                f"evict_pattern must be one of {EVICT_PATTERNS}, "
                f"got {self.evict_pattern!r}"
            )


class EvictFrameAttack(ExplFrameAttack):
    """ExplFrame with a flush-free hammer loop (Rowhammer.js style).

    Extra state beyond the base class: ``_eviction_sets`` holds the
    per-aggressor verified sets the ``evictset`` stage derived for the
    current candidate (the re-hammer stage consumes them).
    """

    modality_name = "evictframe"

    def __init__(
        self,
        machine,
        key: bytes | None = None,
        config: EvictFrameConfig | None = None,
        tenant_workload=None,
    ):
        self._eviction_sets: tuple[tuple[int, ...], ...] | None = None
        super().__init__(
            machine,
            key=key,
            config=config or EvictFrameConfig(),
            tenant_workload=tenant_workload,
        )

    def _bind_modality_metrics(self, metrics) -> None:
        """PFA instruments (inherited — this modality still runs PFA)
        plus the ``attack.evict.*`` family: derivation volume, timing
        probes, and the two numbers that separate eviction-based from
        flush-based hammering (accuracy numerator/denominator, waste)."""
        super()._bind_modality_metrics(metrics)
        self._m_sets = metrics.counter(
            "attack.evict.sets_derived", unit="sets",
            help="eviction sets derived and timing-verified",
        )
        self._m_set_lines = metrics.counter(
            "attack.evict.set_lines", unit="lines",
            help="lines enrolled across derived eviction sets",
        )
        self._m_probe_reads = metrics.counter(
            "attack.evict.probe_reads", unit="reads",
            help="loads issued while timing-verifying candidate sets",
        )
        self._m_evict_rounds = metrics.counter(
            "attack.evict.rounds", unit="rounds",
            help="flush-free hammer rounds issued",
        )
        self._m_agg_accesses = metrics.counter(
            "attack.evict.aggressor_accesses", unit="accesses",
            help="aggressor accesses issued by eviction hammering",
        )
        self._m_agg_evictions = metrics.counter(
            "attack.evict.aggressor_evictions", unit="accesses",
            help="aggressor accesses that reached DRAM (accuracy numerator)",
        )
        self._m_wasted = metrics.counter(
            "attack.evict.wasted_activations", unit="activations",
            help="row activations spent on eviction-set lines, not aggressors",
        )

    # -- eviction-set derivation ---------------------------------------------------

    def _congruent_candidates(
        self, aggressor_va: int, template: FlipTemplate
    ) -> list[int]:
        """Resident buffer lines congruent to the aggressor's cache set.

        Walks outward from the aggressor in way-stride steps across the
        buffer VMA the aggressor lives in (templates can outlive a
        retired templator, so the VMA — not the live templator's bounds —
        defines the span), skipping unmapped pages and a ``GUARD_ROWS``
        row-stride zone around both aggressors and the staged page.
        Ordered nearest-first so the derived set stays compact.
        """
        cache = self.kernel.cache
        stride = cache.config.way_stride
        mm = self.attacker.mm
        vma = mm.vma_at(page_align_down(aggressor_va))
        if vma is None:
            return []
        guard = GUARD_ROWS * self.kernel.controller.mapping.row_stride()
        protected = tuple(template.aggressor_vas) + (template.page_va,)
        candidates: list[int] = []
        max_k = (vma.length // stride) + 1
        for k in range(1, max_k + 1):
            for va in (aggressor_va + k * stride, aggressor_va - k * stride):
                if not vma.start <= va < vma.end:
                    continue
                if any(abs(va - anchor) < guard for anchor in protected):
                    continue
                if not mm.page_table.is_mapped(page_align_down(va)):
                    continue
                candidates.append(va)
        return candidates

    def _traversal_evicts(self, aggressor_va: int, members: list[int]) -> bool:
        """Timing verification: does walking ``members`` evict the aggressor?

        Load the aggressor (cached), traverse the set, re-load and time
        it.  A hit costs exactly ``CACHE_HIT_NS`` of simulated time, so
        any longer re-load proves a miss — the attacker-side analogue of
        Rowhammer.js's calibration loop, through public loads only.
        """
        kernel = self.kernel
        pid = self.attacker.pid
        kernel.mem_read(pid, aggressor_va, 1)
        for va in members:
            kernel.mem_read(pid, va, 1)
        before = kernel.clock.now_ns
        kernel.mem_read(pid, aggressor_va, 1)
        self._m_probe_reads.inc(len(members) + 2)
        return kernel.clock.now_ns - before > CACHE_HIT_NS

    def derive_eviction_set(
        self, aggressor_va: int, template: FlipTemplate
    ) -> list[int] | None:
        """A timing-verified congruent set of ``ways + evict_slack`` lines.

        Grows the set one candidate at a time past the target size if the
        verification probe says the traversal does not yet evict (the
        buffer's physical contiguity can break at allocation boundaries,
        making a virtual-stride candidate non-congruent).  Returns None —
        the ``eviction-set-incomplete`` failure — when candidates run out.
        """
        target = self.kernel.cache.config.ways + self.config.evict_slack
        candidates = self._congruent_candidates(aggressor_va, template)
        if len(candidates) < target:
            return None
        size = target
        members = candidates[:size]
        while not self._traversal_evicts(aggressor_va, members):
            size += 1
            if size > len(candidates):
                return None
            members = candidates[:size]
        return members

    # -- the flush-free hammer loop --------------------------------------------------

    def rehammer(self, template: FlipTemplate, victim: CipherVictim) -> bool:
        """Hammer by eviction-set traversal until the victim table faults."""
        if self._eviction_sets is None:
            raise ConfigError(
                "no eviction sets derived for this candidate; evictframe "
                "runs orchestrated (the evictset stage precedes rehammer)"
            )
        sets = [list(members) for members in self._eviction_sets]
        with self.obs.tracer.span(
            "attack.rehammer", "attack", modality=self.modality_name
        ) as span:
            accuracy = 0.0
            for attempt in range(self.config.rehammer_attempts):
                result = self.templator.hammerer.hammer_evict(
                    list(template.aggressor_vas),
                    sets,
                    pattern=self.config.evict_pattern,
                )
                accuracy = result.eviction_accuracy
                self._m_evict_rounds.inc(result.rounds)
                self._m_agg_accesses.inc(result.aggressor_accesses)
                self._m_agg_evictions.inc(result.aggressor_misses)
                self._m_wasted.inc(result.wasted_activations)
                if victim.table_is_faulty():
                    span.set("attempts", attempt + 1)
                    span.set("faulted", True)
                    span.set("accuracy", accuracy)
                    return True
            span.set("attempts", self.config.rehammer_attempts)
            span.set("faulted", False)
            span.set("accuracy", accuracy)
        return False

    # -- modality contract (docs/ATTACKS.md) -------------------------------------------

    def stage_names(self) -> tuple[str, ...]:
        return GENERIC_STAGES + ("evictset", "rehammer", "pfa")

    def failure_classes(self) -> tuple[FailureClass, ...]:
        return super().failure_classes() + (FailureClass.EVICTION_SET_INCOMPLETE,)

    def resolution_stages(self) -> tuple[ResolutionStage, ...]:
        # The derivation stage reuses the "rehammer" retry-policy slot of
        # OrchestratorConfig (adding a policy field would change every
        # checkpoint config hash — see that dataclass's docstring); the
        # inherited rehammer and PFA stages follow unchanged.
        return (
            ResolutionStage(
                "evictset", policy="rehammer", run=self._evictset_stage
            ),
        ) + super().resolution_stages()

    def _evictset_stage(
        self, victim: CipherVictim, template: FlipTemplate, attempt: int
    ) -> StageOutcome:
        del victim  # derivation only touches the attacker's own buffer
        recovery = (
            None if attempt == 0 else f"re-derive after backoff (try {attempt + 1})"
        )
        target = self.kernel.cache.config.ways + self.config.evict_slack
        with self.obs.tracer.span(
            "attack.evictset", "attack",
            slack=self.config.evict_slack, pattern=self.config.evict_pattern,
        ) as span:
            sets: list[list[int]] = []
            for aggressor_va in template.aggressor_vas:
                members = self.derive_eviction_set(aggressor_va, template)
                if members is None:
                    span.set("derived", False)
                    # Derivation is deterministic for a fixed candidate —
                    # retrying cannot help; move on immediately.
                    return StageOutcome(
                        ok=False,
                        recovery=recovery,
                        advance="next-candidate",
                        failure=StageFailure(
                            "evictset",
                            FailureClass.EVICTION_SET_INCOMPLETE,
                            f"no verified eviction set for aggressor "
                            f"{aggressor_va:#x} ({target} congruent resident "
                            f"lines needed)",
                        ),
                    )
                sets.append(members)
            self._eviction_sets = tuple(tuple(members) for members in sets)
            lines = sum(len(members) for members in sets)
            span.set("derived", True)
            span.set("lines", lines)
        self._m_sets.inc(len(sets))
        self._m_set_lines.inc(lines)
        return StageOutcome(ok=True, recovery=recovery)

    # -- single-shot driver is flush-path-specific -------------------------------------

    def run(self):
        raise ConfigError(
            "evictframe has no single-shot driver; run it orchestrated "
            "(the default) or through a campaign"
        )


# -- modality registration ----------------------------------------------------------


class EvictFrameModality(AttackModality):
    """Rowhammer.js-style flush-free hammering over ExplFrame's pipeline."""

    name = "evictframe"
    description = (
        "hammer through timing-verified cache eviction sets instead of "
        "clflush, then recover the key by persistent fault analysis "
        "(Rowhammer.js-style)"
    )

    def default_config(self) -> EvictFrameConfig:
        return EvictFrameConfig()

    def make_config(
        self, *, cipher: str, cpu: int, templator: TemplatorConfig, max_campaigns: int
    ) -> EvictFrameConfig:
        return EvictFrameConfig(
            cipher=cipher, cpu=cpu, templator=templator, max_campaigns=max_campaigns
        )

    def build(
        self, machine, *, config=None, key=None, tenant_workload=None
    ) -> EvictFrameAttack:
        return EvictFrameAttack(
            machine, key=key, config=config, tenant_workload=tenant_workload
        )

    def config_hash_fields(self, attack_config) -> tuple:
        # repr(attack_config) already pins every knob, including the
        # eviction-set shape; the cache geometry the sets are derived
        # from is part of MachineConfig, which the campaign hash covers.
        return ()

    def required_capabilities(self) -> frozenset[str]:
        return frozenset(
            {"templating", "steering", "cache-eviction", "ciphertext-oracle"}
        )


register_modality(EvictFrameModality())
