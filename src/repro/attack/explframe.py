"""End-to-end ExplFrame: template -> steer -> re-hammer -> PFA -> key.

This is the complete attack the paper's title promises, run against a
simulated AES victim:

1. **Template.**  The unprivileged attacker finds repeatable flips in her
   buffer and filters for ones usable against the victim's table: the flip
   must land at an in-page offset inside the S-box region (the table's
   offset within its page is public binary layout), and its direction must
   be *armed* by the S-box data (a 1->0 cell needs the table bit to be 1).
2. **Steer.**  She munmaps the flippy page and stays active; the victim
   process starts up and makes its small table allocation on the shared
   CPU, receiving the staged frame.
3. **Re-hammer.**  She hammers the *same aggressor virtual addresses*
   again; the same physical cell flips — now inside the victim's S-box.
4. **Analyse.**  She triggers encryptions and runs Persistent Fault
   Analysis; because she templated the flip she knows exactly which S-box
   entry and bit changed (v* is known), so the missing-value statistics
   give the last round key directly and the schedule inverts to the
   master key.

All scoring against ground truth (did steering land? is the table really
faulty? does the key match?) uses instrumentation outside the attacker's
view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attack.base import (
    AttackModality,
    FailureClass,
    GENERIC_STAGES,
    ResolutionStage,
    StageFailure,
    StageOutcome,
)
from repro.attack.registry import register_modality
from repro.attack.templating import Templator, TemplatorConfig
from repro.ciphers.aes_tables import AES_SBOX
from repro.ciphers.present import PRESENT_SBOX, Present
from repro.ciphers.table_memory import DEFAULT_TABLE_OFFSET, CipherVictim
from repro.core.machine import Machine
from repro.core.results import EndToEndResult, FlipTemplate
from repro.pfa.keyrank import KeyCandidates
from repro.pfa.pfa import (
    PfaState,
    invert_key_schedule_128,
    recover_k10_known_fault,
)
from repro.sim.errors import ConfigError, FaultError, TemplatingExhaustedError
from repro.sim.units import PAGE_SIZE


@dataclass(frozen=True)
class ExplFrameConfig:
    """Parameters of a full attack run.

    ``cipher`` selects the victim implementation: ``"aes"`` (AES-128,
    256-byte S-box, full master key via schedule inversion),
    ``"aes_ttable"`` (classic T-table AES-128: Te0..Te3 fill the victim's
    first table page and the last-round S-box sits in a second page, so
    the attacker stages *two* frames and steers the flippy one into the
    victim's second allocation), or ``"present"`` (PRESENT-80, 16-byte
    nibble table; PFA yields the full 64-bit last round key, leaving a
    16-bit schedule residue that ``present_full_search`` optionally
    brute-forces — it costs tens of seconds of pure Python, so it is off
    by default and accounted as 16 residual bits in the result).
    """

    templator: TemplatorConfig = field(default_factory=TemplatorConfig)
    cpu: int = 0
    cipher: str = "aes"
    table_offset: int = DEFAULT_TABLE_OFFSET
    pfa_batch: int = 256
    pfa_limit: int = 20_000
    rehammer_attempts: int = 3
    present_full_search: bool = False
    # Templating campaigns to run (each maps a fresh buffer) before giving
    # up on finding a flip that lands in the table region with an armed
    # direction.  Small tables (PRESENT's 16 bytes) typically need several.
    max_campaigns: int = 4

    def __post_init__(self) -> None:
        if self.cipher not in ("aes", "aes_ttable", "present"):
            raise ConfigError(
                f"cipher must be 'aes', 'aes_ttable' or 'present', got {self.cipher!r}"
            )
        if not 0 <= self.table_offset <= PAGE_SIZE - self.table_size:
            raise ConfigError(
                f"table at offset {self.table_offset:#x} does not fit in a page"
            )
        if self.pfa_batch <= 0 or self.pfa_limit <= 0:
            raise ConfigError("pfa_batch and pfa_limit must be positive")
        if self.max_campaigns <= 0:
            raise ConfigError("max_campaigns must be positive")

    @property
    def table_size(self) -> int:
        """Bytes of (last-round) S-box the victim keeps in memory."""
        return 16 if self.cipher == "present" else 256


class ExplFrameAttack:
    """Drives one attacker task through the full attack.

    Also the reference implementation of the :class:`AttackRun` side of
    the modality contract (docs/ATTACKS.md): the orchestrator drives the
    shared template/steer front half plus the :meth:`resolution_stages`
    this class declares (re-hammer, then PFA).
    """

    #: Modality this run belongs to (reports carry it; "explframe" is
    #: the default and is omitted from serialized reports).
    modality_name = "explframe"

    def __init__(
        self,
        machine: Machine,
        key: bytes | None = None,
        config: ExplFrameConfig | None = None,
        tenant_workload=None,
    ):
        self.machine = machine
        self.kernel = machine.kernel
        self.config = config or ExplFrameConfig()
        self.tenant_workload = tenant_workload
        if tenant_workload is not None:
            if key is not None:
                raise ConfigError(
                    "pass either an explicit key or a tenant workload, not both "
                    "(the target tenant's key is the ground truth)"
                )
            spec = tenant_workload.scenario.target_spec
            if spec.cipher != self.config.cipher:
                raise ConfigError(
                    f"attack cipher {self.config.cipher!r} does not match the "
                    f"target tenant's {spec.cipher!r}"
                )
            if spec.cpu is not None and spec.cpu != self.config.cpu:
                raise ConfigError(
                    f"attack cpu {self.config.cpu} does not match the target "
                    f"tenant's pinned cpu {spec.cpu}"
                )
            key = tenant_workload.target_key
        rng = machine.rng.stream("victim.key")
        key_bytes = 10 if self.config.cipher == "present" else 16
        self.true_key = (
            key if key is not None else bytes(rng.randrange(256) for _ in range(key_bytes))
        )
        self.attacker = self.kernel.spawn("explframe-attacker", cpu=self.config.cpu)
        self.templator = Templator(self.kernel, self.attacker.pid, self.config.templator)
        # Cumulative counters across campaigns (the orchestrator re-runs
        # stages individually, so these live on the attack, not in run()).
        self.total_flips = 0
        self.campaigns_run = 0
        self._retired_rounds = 0
        # Analysis units (faulty ciphertexts here; probe responses for
        # FAULT+PROBE) consumed across every resolution-stage attempt.
        self.analysis_units = 0
        self.bind_obs(machine.obs)

    def bind_obs(self, obs) -> None:
        """Attach an observability hub (re-run on machine fork)."""
        self.obs = obs
        if self.tenant_workload is not None:
            self.tenant_workload.bind_obs(obs)
        metrics = obs.metrics
        self._bind_shared_metrics(metrics)
        self._bind_modality_metrics(metrics)

    def _bind_shared_metrics(self, metrics) -> None:
        """Counters for the template/steer front half (every modality)."""
        self._m_campaigns = metrics.counter(
            "attack.template.campaigns", unit="campaigns",
            help="templating passes over fresh buffers",
        )
        self._m_flips = metrics.counter(
            "attack.template.flips", unit="flips",
            help="repeatable flips found while templating",
        )
        self._m_usable = metrics.counter(
            "attack.template.usable", unit="templates",
            help="templates armed against the victim table",
        )
        self._m_steer_attempts = metrics.counter(
            "attack.steer.attempts", unit="attempts", help="steering rounds staged"
        )
        self._m_steer_hits = metrics.counter(
            "attack.steer.successes", unit="attempts",
            help="steering rounds where the victim received the staged frame",
        )

    def _bind_modality_metrics(self, metrics) -> None:
        """Modality-specific instruments (subclasses override).

        Kept separate from the shared block so a non-PFA modality never
        registers ``attack.pfa.*`` — registered families appear in every
        metrics snapshot even at zero, and the explframe ``--json``
        report bytes are a compatibility contract.
        """
        self._m_ciphertexts = metrics.counter(
            "attack.pfa.ciphertexts", unit="ciphertexts",
            help="faulty ciphertexts consumed by fault analysis",
        )

    @property
    def hammer_rounds_total(self) -> int:
        """Hammer rounds issued so far, across retired and live templators."""
        return self._retired_rounds + self.templator.hammerer.total_rounds

    # -- stage 1: templating -------------------------------------------------------

    def usable_templates(self, templates: list[FlipTemplate]) -> list[FlipTemplate]:
        """Templates that can fault the victim's S-box.

        The flip must land inside the table's in-page byte range and its
        direction must be armed by the clean S-box data at that position.
        """
        in_range = self.templator.templates_hitting_range(
            templates,
            self.config.table_offset,
            self.config.table_offset + self.config.table_size,
        )
        clean_table = PRESENT_SBOX if self.config.cipher == "present" else AES_SBOX
        usable = []
        for template in in_range:
            # PRESENT stores one nibble per byte: only flips in the low
            # nibble change the cipher (the implementation masks with 0xF).
            if self.config.cipher == "present" and template.bit > 3:
                continue
            sbox_index = template.page_offset - self.config.table_offset
            table_bit = (clean_table[sbox_index] >> template.bit) & 1
            # A 0->1 cell rests at 0 and needs the stored bit to be 0;
            # a 1->0 cell needs it to be 1.
            needed = 0 if template.flips_to_one else 1
            if table_bit == needed:
                usable.append(template)
        return usable

    def retire_templator(self) -> None:
        """Swap in a fresh templator over a new buffer.

        Required before templating again once any buffer page has been
        unmapped for staging (re-filling the old buffer would fault), and
        used between campaigns so each one maps fresh memory.
        """
        self._retired_rounds += self.templator.hammerer.total_rounds
        self.templator = Templator(self.kernel, self.attacker.pid, self.config.templator)

    def run_templating_campaign(self) -> list[FlipTemplate]:
        """One templating pass; returns the usable templates it found."""
        with self.obs.tracer.span(
            "attack.template", "attack", campaign=self.campaigns_run
        ) as span:
            templating = self.templator.run()
            self.total_flips += templating.flips_found
            self.campaigns_run += 1
            usable = self.usable_templates(templating.templates)
            span.set("flips", templating.flips_found)
            span.set("usable", len(usable))
        self._m_campaigns.inc()
        self._m_flips.inc(templating.flips_found)
        self._m_usable.inc(len(usable))
        return usable

    def template_until_usable(self, max_campaigns: int | None = None) -> list[FlipTemplate]:
        """Template over fresh buffers until a usable flip appears.

        Raises :class:`TemplatingExhaustedError` after ``max_campaigns``
        (default: the config's) empty-handed campaigns, so callers can
        classify the failure rather than inspecting a sentinel.
        """
        budget = self.config.max_campaigns if max_campaigns is None else max_campaigns
        for attempt in range(budget):
            if attempt > 0:
                self.retire_templator()
            usable = self.run_templating_campaign()
            if usable:
                return usable
        raise TemplatingExhaustedError(
            f"no armed in-table flip after {budget} templating campaigns "
            f"({self.total_flips} flips found overall)",
            campaigns=budget,
            flips_found=self.total_flips,
        )

    # -- stage 2+3: steer and re-hammer ----------------------------------------------

    def _pick_sacrificial_page(self, template: FlipTemplate) -> int:
        """A resident buffer page that is neither the flip nor an aggressor.

        Used by the two-allocation (T-table) steering: the attacker frees
        it *after* the flippy page so it sits on top of the cache and
        absorbs the victim's first allocation (the Te page), leaving the
        flippy frame for the second (the S-box page).
        """
        forbidden = {template.page_va}
        forbidden.update(va & ~(PAGE_SIZE - 1) for va in template.aggressor_vas)
        base = self.templator.buffer_va
        for index in range(self.templator.buffer_pages):
            candidate = base + index * PAGE_SIZE
            if candidate in forbidden:
                continue
            if self.attacker.mm.page_table.is_mapped(candidate):
                return candidate
        raise ConfigError("no sacrificial page available in the buffer")

    def stage_and_steer(self, template: FlipTemplate) -> tuple[CipherVictim, int, bool]:
        """Unmap the flippy page (and helpers), let the victim allocate.

        For single-table victims the flippy frame must be the *next*
        allocation; for the T-table victim it must be the *second*, so a
        sacrificial frame is staged on top of it.

        With a tenant workload attached, the victim's allocation happens
        at the target tenant's *next request arrival* rather than
        immediately: the attacker stages the frames and must survive the
        window until the target wakes, while background tenants churn the
        shared page frame cache.  The new victim then replaces the
        target's previous incarnation so tenant traffic exercises it.
        """
        workload = self.tenant_workload
        with self.obs.tracer.span("attack.steer", "attack") as span:
            victim = CipherVictim(
                self.kernel,
                self.true_key,
                cpu=self.config.cpu,
                cipher=self.config.cipher,
                table_offset=self.config.table_offset,
                name="victim" if workload is None else f"tenant-{workload.scenario.target}",
            )
            staged_pfn = self.kernel.pfn_of(self.attacker.pid, template.page_va)
            if self.config.cipher == "aes_ttable":
                sacrificial_va = self._pick_sacrificial_page(template)
                self.kernel.sys_munmap(self.attacker.pid, template.page_va, PAGE_SIZE)
                self.kernel.sys_munmap(self.attacker.pid, sacrificial_va, PAGE_SIZE)
            else:
                self.kernel.sys_munmap(self.attacker.pid, template.page_va, PAGE_SIZE)
            if workload is not None:
                # Ride out the steering window: noisy neighbours run until
                # just before the target's next request is due.
                window_end = workload.await_target_window()
                span.set("tenant", workload.scenario.target)
                span.set("window_end_ns", window_end)
            # The attacker stays active; the victim's small allocations come
            # straight off the shared CPU's page frame cache in LIFO order.
            landed_pfn = victim.allocate_table_page()
            steering_success = landed_pfn == staged_pfn
            if workload is not None:
                workload.attach_target(victim)
            span.set("staged_pfn", staged_pfn)
            span.set("success", steering_success)
        self._m_steer_attempts.inc()
        if steering_success:
            self._m_steer_hits.inc()
        return victim, staged_pfn, steering_success

    def rehammer(self, template: FlipTemplate, victim: CipherVictim) -> bool:
        """Hammer the template's aggressors until the victim table faults."""
        with self.obs.tracer.span("attack.rehammer", "attack") as span:
            for attempt in range(self.config.rehammer_attempts):
                self.templator.hammerer.hammer_pair(*template.aggressor_vas)
                if victim.table_is_faulty():
                    span.set("attempts", attempt + 1)
                    span.set("faulted", True)
                    return True
            span.set("attempts", self.config.rehammer_attempts)
            span.set("faulted", False)
        return False

    # -- stage 4: fault analysis ----------------------------------------------------

    def run_pfa(
        self, victim: CipherVictim, v_star: int, limit: int | None = None
    ) -> tuple[bytes | None, int, float]:
        """Collect faulty ciphertexts and recover the master key.

        Returns (key or None, ciphertexts consumed, log2 of the residual
        key space when recovery stopped).  ``limit`` overrides the
        config's ciphertext budget (retries may raise it).
        """
        limit = self.config.pfa_limit if limit is None else limit
        rng = self.machine.rng.numpy_stream("attack.plaintexts")
        state = PfaState()
        while state.total < limit:
            state.update(victim.encrypt_batch(self.config.pfa_batch, rng))
            if state.is_unique():
                break
        if not state.is_unique():
            return None, state.total, state.log2_keyspace()
        candidates = KeyCandidates(recover_k10_known_fault(state, v_star))
        try:
            k10 = candidates.unique_key()
            master = invert_key_schedule_128(k10)
        except FaultError:
            return None, state.total, candidates.log2_keyspace
        return master, state.total, 0.0

    def run_pfa_present(
        self, victim: CipherVictim, v_star: int, limit: int | None = None
    ) -> tuple[bytes | None, int, float]:
        """PRESENT variant: recover K32 (and optionally the master key).

        Returns (key material or None, ciphertexts consumed, residual
        bits).  Without ``present_full_search`` the returned material is
        the 8-byte last round key and 16 bits remain (the schedule's
        hidden register bits); with it, the master key is brute-forced
        from one clean pair.
        """
        from repro.pfa.pfa_present import (
            ciphertexts_to_unique_k32,
            recover_k32_known_fault,
            recover_present80_key,
        )

        limit = self.config.pfa_limit if limit is None else limit
        rng = self.machine.rng.stream("attack.present-plaintexts")
        plaintexts = [
            bytes(rng.randrange(256) for _ in range(8)) for _ in range(limit)
        ]
        try:
            consumed, state = ciphertexts_to_unique_k32(
                victim.encrypt, lambda i: plaintexts[i], limit=limit
            )
        except FaultError:
            return None, limit, 64.0
        if not self.config.present_full_search:
            k32 = recover_k32_known_fault(state, v_star)
            return k32.to_bytes(8, "big"), consumed, 16.0
        # One clean pair: captured before the fault in a real attack; here
        # reconstructed from the true key (ground-truth plumbing).
        clean_pt = bytes(8)
        clean_ct = Present(self.true_key).encrypt_block(clean_pt)
        master = recover_present80_key(state, v_star, clean_pt, clean_ct)
        return master, consumed, 0.0 if master is not None else 16.0

    def v_star_for(self, template: FlipTemplate) -> int:
        """The clean S-box value at the templated flip's position.

        PFA needs to know which table entry was replaced; the attacker
        knows it because she templated the flip (v* is public layout plus
        her own measurement, not ground truth).
        """
        sbox_index = template.page_offset - self.config.table_offset
        clean_table = PRESENT_SBOX if self.config.cipher == "present" else AES_SBOX
        return clean_table[sbox_index]

    def run_fault_analysis(
        self, victim: CipherVictim, template: FlipTemplate, limit: int | None = None
    ) -> tuple[bytes | None, int, float]:
        """Stage-4 dispatch: run the right PFA variant for the cipher."""
        v_star = self.v_star_for(template)
        with self.obs.tracer.span(
            "attack.pfa", "attack", cipher=self.config.cipher
        ) as span:
            if self.config.cipher == "present":
                result = self.run_pfa_present(victim, v_star, limit)
            else:
                result = self.run_pfa(victim, v_star, limit)
            span.set("ciphertexts", result[1])
            span.set("recovered", result[0] is not None)
        self._m_ciphertexts.inc(result[1])
        return result

    def target_key(self) -> bytes:
        """The key material a successful run must recover."""
        if self.config.cipher != "present" or self.config.present_full_search:
            return self.true_key
        # Success criterion for the fast PRESENT path: the full 64-bit
        # last round key (a 16-bit schedule residue remains).
        return Present(self.true_key).round_keys[31].to_bytes(8, "big")

    # -- modality contract (docs/ATTACKS.md) ------------------------------------------

    def stage_names(self) -> tuple[str, ...]:
        """Stage labels on this modality's timeline, in pipeline order."""
        return GENERIC_STAGES + ("rehammer", "pfa")

    def failure_classes(self) -> tuple[FailureClass, ...]:
        """Failure classes this modality can emit (metrics label set)."""
        return (
            FailureClass.TEMPLATING_EXHAUSTED,
            FailureClass.STEERING_MISS,
            FailureClass.NON_REPEATABLE_FLIP,
            FailureClass.DISARMED_DIRECTION,
            FailureClass.PFA_INCONCLUSIVE,
            FailureClass.KEY_MISMATCH,
            FailureClass.BUDGET_EXHAUSTED,
        )

    def resolution_stages(self) -> tuple[ResolutionStage, ...]:
        """Post-steer stages: re-hammer (with shape check), then PFA."""
        return (
            ResolutionStage(
                "rehammer", policy="rehammer",
                run=self._rehammer_stage, verify=self._verify_fault_shape,
            ),
            ResolutionStage("pfa", policy="pfa", run=self._pfa_stage),
        )

    def run_complete(self) -> bool:
        """One recovered key is the whole job for this modality."""
        return True

    def analysis_units_consumed(self) -> int:
        """Faulty ciphertexts consumed across every PFA attempt."""
        return self.analysis_units

    def report_extra(self) -> dict | None:
        """No modality block: the core report schema already says it all."""
        return None

    def _rehammer_stage(self, victim, template: FlipTemplate, attempt: int) -> StageOutcome:
        recovery = (
            None if attempt == 0 else f"re-hammer after backoff (try {attempt + 1})"
        )
        if self.rehammer(template, victim):
            return StageOutcome(ok=True, recovery=recovery)
        return StageOutcome(
            ok=False,
            recovery=recovery,
            failure=StageFailure(
                "rehammer",
                FailureClass.NON_REPEATABLE_FLIP,
                f"templated flip at offset {template.page_offset:#x} bit "
                f"{template.bit} did not reproduce",
            ),
        )

    def _verify_fault_shape(self, victim, template: FlipTemplate) -> StageFailure | None:
        """Ground-truth shape check: is the observed fault the templated one?

        PFA assumes the fault is exactly the templated (entry, bit) —
        anything else (wrong entry, wrong bit, extra corruptions) means
        v* is wrong and PFA would chase a phantom key.
        """
        corrupted = victim.sbox.corrupted_entries()
        if len(corrupted) == 1:
            index, expected, actual = corrupted[0]
            predicted_index = template.page_offset - self.config.table_offset
            if index == predicted_index and actual == expected ^ (1 << template.bit):
                return None
        return StageFailure(
            "rehammer",
            FailureClass.DISARMED_DIRECTION,
            "fault present but shape does not match the template "
            f"(expected entry {template.page_offset - self.config.table_offset}, "
            f"bit {template.bit})",
        )

    def _pfa_stage(self, victim, template: FlipTemplate, attempt: int) -> StageOutcome:
        # Retries widen the ciphertext budget instead of hoping the same
        # sample size lands differently.
        limit = self.config.pfa_limit << attempt
        recovery = (
            None if attempt == 0 else f"retry PFA with ciphertext budget {limit}"
        )
        recovered, consumed, _residual = self.run_fault_analysis(
            victim, template, limit
        )
        self.analysis_units += consumed
        if recovered is None:
            return StageOutcome(
                ok=False,
                recovery=recovery,
                failure=StageFailure(
                    "pfa",
                    FailureClass.PFA_INCONCLUSIVE,
                    f"key space not unique after {consumed} ciphertexts",
                ),
            )
        if recovered != self.target_key():
            # Wrong fault model: move to the next candidate immediately.
            return StageOutcome(
                ok=False,
                recovery=recovery,
                advance="next-candidate",
                failure=StageFailure(
                    "pfa",
                    FailureClass.KEY_MISMATCH,
                    "PFA converged on a key that fails verification",
                ),
            )
        return StageOutcome(ok=True, recovery=recovery, recovered=recovered)

    # -- the full chain ---------------------------------------------------------------

    def run(self) -> EndToEndResult:
        """Execute the complete attack and score it against ground truth.

        Templating campaigns repeat over fresh buffers (up to
        ``max_campaigns``) until a flip usable against the victim's table
        is found — attackers template as much memory as it takes.  This is
        the single-shot driver: every stage runs once and failure is
        final.  :class:`repro.attack.orchestrator.AttackOrchestrator`
        wraps the same stages with retries, budgets and forensics.
        """
        start_ns = self.kernel.clock.now_ns
        with self.obs.tracer.span("attack.run", "attack", cipher=self.config.cipher):
            return self._run(start_ns)

    def _run(self, start_ns: int) -> EndToEndResult:
        try:
            usable = self.template_until_usable()
        except TemplatingExhaustedError:
            return EndToEndResult(
                templated_flips=self.total_flips,
                steering_success=False,
                fault_in_table=False,
                faulty_ciphertexts=0,
                key_recovered=False,
                recovered_key=None,
                true_key=self.true_key,
                hammer_rounds_total=self.hammer_rounds_total,
                syscalls_total=self.attacker.syscall_count,
                sim_time_ns=self.kernel.clock.now_ns - start_ns,
            )
        template = usable[0]
        victim, _, steering_success = self.stage_and_steer(template)
        faulted = self.rehammer(template, victim)

        recovered = None
        consumed = 0
        residual_bits = None
        if faulted:
            recovered, consumed, residual_bits = self.run_fault_analysis(
                victim, template
            )

        target = self.target_key()
        return EndToEndResult(
            templated_flips=self.total_flips,
            steering_success=steering_success,
            fault_in_table=faulted,
            faulty_ciphertexts=consumed,
            key_recovered=recovered is not None and recovered == target,
            recovered_key=recovered,
            true_key=self.true_key,
            hammer_rounds_total=self.hammer_rounds_total,
            syscalls_total=self.attacker.syscall_count,
            log2_keyspace_after_pfa=residual_bits,
            sim_time_ns=self.kernel.clock.now_ns - start_ns,
        )


# -- modality registration ----------------------------------------------------------


class ExplFrameModality(AttackModality):
    """The paper's attack: page-frame-cache steering + persistent fault analysis."""

    name = "explframe"
    description = (
        "steer a templated flip into the victim's S-box and recover the key "
        "by persistent fault analysis (the paper's attack)"
    )

    def default_config(self) -> ExplFrameConfig:
        return ExplFrameConfig()

    def make_config(
        self, *, cipher: str, cpu: int, templator: TemplatorConfig, max_campaigns: int
    ) -> ExplFrameConfig:
        return ExplFrameConfig(
            cipher=cipher, cpu=cpu, templator=templator, max_campaigns=max_campaigns
        )

    def build(
        self, machine, *, config=None, key=None, tenant_workload=None
    ) -> ExplFrameAttack:
        return ExplFrameAttack(
            machine, key=key, config=config, tenant_workload=tenant_workload
        )

    def required_capabilities(self) -> frozenset[str]:
        return frozenset({"templating", "steering", "hammer", "ciphertext-oracle"})


register_modality(ExplFrameModality())
