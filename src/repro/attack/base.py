"""The attack-modality contract: what any attack must give the orchestrator.

The repo started as one attack (ExplFrame's PFA pipeline) hard-wired
into the orchestrator, campaigns, the checkpoint service and the CLI.
This module is the seam that makes attacks pluggable: an
:class:`AttackModality` describes *what* an attack is (name, config
type, capabilities, result-determining knobs) and builds per-run
:class:`AttackRun` drivers; the orchestrator supplies generic control
flow (candidate restocking, steering, retries, budgets, forensics) and
asks the run object only for its *resolution stages* — the
modality-specific work that happens once a templated flip sits inside
the victim's page.

Every modality shares the front half of the pipeline — template
(find repeatable flips), steer (drop the flippy frame into the victim's
allocation) — because that is the paper's page-frame-cache primitive.
What differs is how a steered flip is *resolved* into secrets:
ExplFrame re-hammers and runs persistent fault analysis over faulty
ciphertexts; FAULT+PROBE re-hammers and reads the flipped bit back from
a response-discrepancy oracle.  A :class:`ResolutionStage` packages one
such step with its retry-policy key and failure semantics, so the
orchestrator can drive any modality's stage graph without knowing its
name (contract: docs/ATTACKS.md).

The failure taxonomy (:class:`FailureClass`, :class:`StageFailure`)
lives here — it is part of the cross-modality report schema — and is
re-exported from :mod:`repro.attack.orchestrator` for compatibility.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass
from enum import Enum
from typing import Protocol, runtime_checkable


class FailureClass(str, Enum):
    """Why an attempt (or the whole run) failed.

    String-valued so reports serialise to stable, readable JSON.  The
    first block is generic (any modality can hit them through the shared
    template/steer/budget flow); the rest belong to specific resolution
    stages.  A modality declares the subset it can emit via
    :meth:`AttackRun.failure_classes`, and only that subset registers
    failure counters — so adding a class here never perturbs another
    modality's metrics snapshot.
    """

    TEMPLATING_EXHAUSTED = "templating-exhausted"
    STEERING_MISS = "steering-miss"
    NON_REPEATABLE_FLIP = "non-repeatable-flip"
    DISARMED_DIRECTION = "disarmed-direction"
    PFA_INCONCLUSIVE = "pfa-inconclusive"
    KEY_MISMATCH = "key-mismatch"
    BUDGET_EXHAUSTED = "budget-exhausted"
    PROBE_INCONCLUSIVE = "probe-inconclusive"
    EVICTION_SET_INCOMPLETE = "eviction-set-incomplete"


@dataclass(frozen=True)
class StageFailure:
    """One classified failure, with enough detail to debug the run."""

    stage: str
    failure_class: FailureClass
    detail: str

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "class": self.failure_class.value,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> StageFailure:
        return cls(
            stage=data["stage"],
            failure_class=FailureClass(data["class"]),
            detail=data["detail"],
        )


#: Stage names every modality shares (the orchestrator's own flow) —
#: modality stage lists start with these, then append resolution stages.
GENERIC_STAGES = ("template", "steer")

#: Failure classes the shared template/steer/budget flow can emit.
GENERIC_FAILURE_CLASSES = (
    FailureClass.TEMPLATING_EXHAUSTED,
    FailureClass.STEERING_MISS,
    FailureClass.BUDGET_EXHAUSTED,
)


@dataclass(frozen=True)
class StageOutcome:
    """What one resolution-stage attempt produced.

    ``advance`` selects the orchestrator's reaction to a failure:
    ``"retry"`` backs off (per the stage's policy) and re-attempts,
    ``"next-candidate"`` abandons this template immediately — no
    backoff — and discards any previously recovered material (the
    candidate's fault model was wrong, so material derived from it is
    suspect).
    """

    ok: bool
    failure: StageFailure | None = None
    recovery: str | None = None
    advance: str = "retry"  # "retry" | "next-candidate"
    recovered: bytes | None = None


@dataclass(frozen=True)
class ResolutionStage:
    """One modality-specific stage driven after a successful steer.

    ``run(victim, template, attempt)`` performs attempt ``attempt``
    (0-based) and returns a :class:`StageOutcome`; the orchestrator
    records it, applies the retry policy named by ``policy`` (an
    attribute of :class:`~repro.attack.orchestrator.OrchestratorConfig`)
    and handles budgets/backoff around it.  ``verify``, when present,
    runs once after the stage succeeds and may veto the candidate by
    returning a :class:`StageFailure` (ground-truth shape checks live
    here — scoring, not attacker knowledge).
    """

    name: str
    policy: str
    run: Callable[[object, object, int], StageOutcome]
    verify: Callable[[object, object], StageFailure | None] | None = None


@runtime_checkable
class TargetVictim(Protocol):
    """What a steered victim must offer the workload engine's target slot.

    Any modality's steer stage produces one of these;
    :meth:`repro.workload.engine.WorkloadEngine.attach_target` accepts
    them structurally (``CipherVictim`` is the canonical implementation).
    """

    pid: int

    def encrypt(self, block: bytes) -> bytes: ...


class AttackRun(Protocol):
    """The per-run driver an :class:`AttackModality` builds.

    The orchestrator drives this interface generically; it never names a
    concrete attack class.  Beyond the methods below, a run exposes the
    shared-front-half surface: ``machine``, ``kernel``, ``attacker``
    (the attacker task), ``config`` (with ``.cpu``), ``obs``,
    ``true_key``, ``tenant_workload``, ``campaigns_run``,
    ``total_flips``, ``hammer_rounds_total``,
    ``template_until_usable(budget)``, ``retire_templator()`` and
    ``stage_and_steer(template)``.
    """

    modality_name: str

    def stage_names(self) -> tuple[str, ...]: ...

    def failure_classes(self) -> tuple[FailureClass, ...]: ...

    def resolution_stages(self) -> tuple[ResolutionStage, ...]: ...

    def run_complete(self) -> bool: ...

    def analysis_units_consumed(self) -> int: ...

    def report_extra(self) -> dict | None: ...


class AttackModality(ABC):
    """One registered attack: its identity, config factory and builder.

    Instances are stateless descriptors registered with
    :func:`repro.attack.registry.register_modality`; everything mutable
    lives on the :class:`AttackRun` objects :meth:`build` creates.
    """

    #: Registry key and CLI ``--modality`` value.
    name: str = ""
    #: One line for ``--list-modalities``.
    description: str = ""

    @abstractmethod
    def default_config(self):
        """A fresh attack config with default knobs."""

    @abstractmethod
    def make_config(self, *, cipher: str, cpu: int, templator, max_campaigns: int):
        """Build an attack config from the CLI's shared knobs."""

    @abstractmethod
    def build(self, machine, *, config=None, key=None, tenant_workload=None):
        """Create the per-run :class:`AttackRun` driver."""

    def config_hash_fields(self, attack_config) -> tuple:
        """Extra result-determining knobs for ``campaign_config_hash``.

        The campaign hash already covers ``repr(attack_config)``; return
        anything *outside* the config that changes results (modality
        constants, oracle choices).  Appended after the modality name.
        """
        return ()

    def required_capabilities(self) -> frozenset[str]:
        """Machine/workload features this modality needs to run."""
        return frozenset({"templating", "steering", "hammer"})
