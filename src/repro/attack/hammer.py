"""Attacker-side hammering primitives.

Everything here works through the kernel's public syscall surface — mmap,
stores, clflush-style hammering — never through privileged interfaces.
The one piece of cleverness real attacks need is reproduced: finding
*same-bank* aggressor pairs without knowing the DRAM address mapping, by
timing.  Two addresses in the same bank but different rows force a row
conflict on every alternation (~tRC per access); different banks or the
same row serve from the row buffer (~tCAS).  The gap is easily measurable
and is how user-space Rowhammer code classifies address pairs.
"""

from __future__ import annotations

from repro.dram.controller import HammerResult
from repro.os.kernel import EvictHammerResult, Kernel
from repro.sim.errors import ConfigError
from repro.sim.units import PAGE_SIZE

# Rounds used for a timing probe: enough to average, few enough that the
# probe's own activations (<< any flip threshold) are harmless.
PROBE_ROUNDS = 128


class Hammerer:
    """Hammer loop driver for one (attacker) task."""

    def __init__(self, kernel: Kernel, pid: int, rounds: int = 650_000):
        if rounds <= 0:
            raise ConfigError(f"rounds must be positive, got {rounds}")
        self.kernel = kernel
        self.pid = pid
        self.rounds = rounds
        self.total_rounds = 0
        self.total_activations = 0

    # -- buffer preparation ----------------------------------------------------

    def map_buffer(self, size_bytes: int, name: str = "hammer-buffer") -> int:
        """mmap an anonymous buffer; returns its base VA (not yet resident)."""
        return self.kernel.sys_mmap(self.pid, size_bytes, name=name)

    def fill(self, va: int, pages: int, pattern: int) -> None:
        """Store ``pattern`` into every byte of ``pages`` pages from ``va``.

        This is the step the paper insists on: frames are only allocated
        once data is stored — and the pattern arms the weak cells whose
        resting value differs from it.
        """
        if not 0 <= pattern <= 0xFF:
            raise ConfigError(f"pattern byte {pattern} out of range")
        chunk = bytes([pattern]) * PAGE_SIZE
        for index in range(pages):
            self.kernel.mem_write(self.pid, va + index * PAGE_SIZE, chunk)

    # -- hammering ------------------------------------------------------------------

    def hammer_pair(self, va_a: int, va_b: int, rounds: int | None = None) -> HammerResult:
        """Alternately access + flush the two addresses ``rounds`` times."""
        result = self.kernel.sys_hammer(
            self.pid, [va_a, va_b], rounds or self.rounds, flush=True
        )
        self.total_rounds += result.rounds
        self.total_activations += result.activations
        return result

    def hammer_evict(
        self,
        aggressor_vas: list[int],
        eviction_vas: list[list[int]],
        rounds: int | None = None,
        pattern: str = "sequential",
    ) -> EvictHammerResult:
        """Flush-free hammering: evict each aggressor by cache-set traversal.

        ``eviction_vas[i]`` is the congruent eviction set for
        ``aggressor_vas[i]`` (see ``derive_eviction_set`` in the evictframe
        modality); ``pattern`` picks the per-round access order.  No clflush
        is issued — the traversal itself pushes the aggressor line out of
        the LRU cache, Rowhammer.js style.
        """
        result = self.kernel.sys_hammer_evict(
            self.pid,
            aggressor_vas,
            eviction_vas,
            rounds or self.rounds,
            pattern=pattern,
        )
        self.total_rounds += result.rounds
        self.total_activations += result.activations
        return result

    def hammer_without_flush(self, va_a: int, va_b: int, rounds: int | None = None) -> HammerResult:
        """The negative control: same loop, no clflush (cache absorbs it)."""
        result = self.kernel.sys_hammer(
            self.pid, [va_a, va_b], rounds or self.rounds, flush=False
        )
        self.total_rounds += result.rounds
        return result

    # -- timing-based bank classification ----------------------------------------

    def probe_pair_ns(self, va_a: int, va_b: int) -> float:
        """Measured average time per hammer round for the pair."""
        result = self.kernel.sys_hammer(self.pid, [va_a, va_b], PROBE_ROUNDS, flush=True)
        return result.ns_per_round

    def row_conflict_threshold_ns(self) -> float:
        """Decision threshold between row-hit and row-conflict pair timings.

        Midpoint between one round of two row hits and one round of two
        row conflicts, from the controller's timing parameters.  A real
        attacker calibrates this empirically; using the platform constants
        is equivalent and deterministic.
        """
        timing = self.kernel.controller.timing
        return (2 * timing.t_cas_ns + 2 * timing.t_rc_ns) / 2.0

    def is_same_bank_pair(self, va_a: int, va_b: int) -> bool:
        """True when the timing signature says same bank, different rows."""
        return self.probe_pair_ns(va_a, va_b) > self.row_conflict_threshold_ns()

    def hammer_group(self, vas: list[int], rounds: int | None = None) -> HammerResult:
        """Hammer an arbitrary group of addresses (many-sided hammering).

        With N same-bank rows in the rotation, every access is a row
        conflict, and — against a TRR-protected module — only
        ``tracker_entries`` of the rows can be clamped per window; the
        rest accumulate unimpeded.  This is the TRRespass-style bypass
        evaluated in ablation A3.
        """
        result = self.kernel.sys_hammer(self.pid, vas, rounds or self.rounds, flush=True)
        self.total_rounds += result.rounds
        self.total_activations += result.activations
        return result

    def build_bank_group(
        self,
        anchor_va: int,
        span_bytes: int,
        size: int,
        stride_bytes: int | None = None,
    ) -> list[int]:
        """Collect ``size`` same-bank addresses starting from ``anchor_va``.

        Walks candidates at ``stride_bytes`` steps (default: one page) and
        keeps those whose timing against the anchor shows a same-bank row
        conflict.  All addresses must be resident.  Raises if the span
        does not contain enough same-bank rows.
        """
        if size < 2:
            raise ConfigError(f"group size must be >= 2, got {size}")
        stride = stride_bytes or PAGE_SIZE
        if stride <= 0 or stride % PAGE_SIZE:
            raise ConfigError(f"stride must be a positive page multiple, got {stride}")
        group = [anchor_va]
        offset = stride
        while len(group) < size and offset < span_bytes:
            candidate = anchor_va + offset
            if self.is_same_bank_pair(anchor_va, candidate):
                group.append(candidate)
            offset += stride
        if len(group) < size:
            raise ConfigError(
                f"only found {len(group)} same-bank rows in {span_bytes} bytes; "
                f"wanted {size}"
            )
        return group

    def find_same_bank_pairs(
        self,
        base_va: int,
        pages: int,
        separation_bytes: int,
        limit: int | None = None,
    ) -> list[tuple[int, int]]:
        """Scan the buffer for same-bank address pairs at a fixed separation.

        Walks candidate pairs ``(va, va + separation_bytes)`` page-row by
        page-row and keeps those whose timing shows a row conflict.  With a
        typical row stride and a mostly physically-contiguous buffer most
        candidates qualify; the probe weeds out the boundary cases where
        the buddy allocator broke contiguity.
        """
        if separation_bytes <= 0 or separation_bytes % PAGE_SIZE:
            raise ConfigError(
                f"separation must be a positive page multiple, got {separation_bytes}"
            )
        pairs: list[tuple[int, int]] = []
        span = pages * PAGE_SIZE
        for offset in range(0, span - separation_bytes, separation_bytes):
            va_a = base_va + offset
            va_b = va_a + separation_bytes
            if self.is_same_bank_pair(va_a, va_b):
                pairs.append((va_a, va_b))
                if limit is not None and len(pairs) >= limit:
                    break
        return pairs
