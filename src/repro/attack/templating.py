"""Rowhammer templating: find repeatable flips in the attacker's buffer.

The unprivileged attacker allocates a large buffer (paper Section VI:
"first allocates a large memory space ... and starts the Rowhammer
process"), arms it with a data pattern, hammers same-bank aggressor pairs
and scans her own memory for bits that flipped.  Each confirmed flip is a
*template*: a (page, offset, bit, direction) she can later re-induce on
demand — the repeatability the paper measures ("high probability of
getting bit flips in the same location when conducting Rowhammer on the
same virtual address space").

Aggressor pair discovery is mapping-agnostic: for each base row the
templator probes a small family of candidate partners (the row-distance
target plus every bank-field adjustment) and keeps the ones whose timing
shows a same-bank row conflict.  This works unchanged under both the
linear and the XOR-folded controller mappings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attack.hammer import Hammerer
from repro.core.results import FlipTemplate, TemplatingResult
from repro.os.kernel import Kernel
from repro.sim.errors import ConfigError
from repro.sim.units import MIB, PAGE_SIZE


@dataclass(frozen=True)
class TemplatorConfig:
    """Knobs of a templating campaign."""

    buffer_bytes: int = 8 * MIB
    rounds: int = 650_000
    row_distance: int = 2  # aggressors this many rows apart (2 = double-sided)
    batch_pairs: int = 16  # pairs hammered between buffer scans
    patterns: tuple[int, ...] = (0xFF, 0x00)
    verify_flips: bool = True
    max_pairs: int | None = None  # cap on hammered pairs (None = all found)

    def __post_init__(self) -> None:
        if self.buffer_bytes < PAGE_SIZE:
            raise ConfigError("buffer must be at least one page")
        if self.rounds <= 0 or self.batch_pairs <= 0:
            raise ConfigError("rounds and batch_pairs must be positive")
        if self.row_distance <= 0:
            raise ConfigError("row_distance must be positive")
        for pattern in self.patterns:
            if not 0 <= pattern <= 0xFF:
                raise ConfigError(f"pattern byte {pattern} out of range")


class Templator:
    """Runs templating campaigns for one attacker task."""

    def __init__(self, kernel: Kernel, pid: int, config: TemplatorConfig | None = None):
        self.kernel = kernel
        self.pid = pid
        self.config = config or TemplatorConfig()
        self.hammerer = Hammerer(kernel, pid, rounds=self.config.rounds)
        # The attacker assumes standard geometry constants (row size and
        # bank count are public per DRAM generation); the timing probe
        # corrects any wrong guess.
        geometry = kernel.controller.geometry
        self._row_stride = geometry.banks_per_rank * geometry.row_bytes
        self._bank_step = geometry.row_bytes
        self._banks = geometry.banks_per_rank
        self.buffer_va: int | None = None
        self.buffer_pages = 0

    # -- setup -------------------------------------------------------------------

    def prepare_buffer(self) -> int:
        """Map the templating buffer; returns its base VA."""
        self.buffer_va = self.hammerer.map_buffer(self.config.buffer_bytes, "template")
        self.buffer_pages = self.config.buffer_bytes // PAGE_SIZE
        return self.buffer_va

    # -- pair discovery ----------------------------------------------------------

    def discover_pairs(self) -> list[tuple[int, int]]:
        """Timing-confirmed same-bank aggressor pairs across the buffer."""
        if self.buffer_va is None:
            raise ConfigError("call prepare_buffer() first")
        span = self.config.buffer_bytes
        target = self.config.row_distance * self._row_stride
        pairs: list[tuple[int, int]] = []
        for base in range(0, span - target - self._banks * self._bank_step, self._row_stride):
            va_a = self.buffer_va + base
            partner_group = self.buffer_va + base + target
            for k in range(self._banks):
                va_b = partner_group + k * self._bank_step
                if va_b >= self.buffer_va + span:
                    break
                if self.hammerer.is_same_bank_pair(va_a, va_b):
                    pairs.append((va_a, va_b))
                    break
            if self.config.max_pairs is not None and len(pairs) >= self.config.max_pairs:
                break
        return pairs

    # -- scanning ------------------------------------------------------------------

    def _scan_for_flips(self, pattern: int) -> list[tuple[int, int, int, bool]]:
        """Find (page_va, offset, bit, flips_to_one) deviations from pattern."""
        expected = bytes([pattern]) * PAGE_SIZE
        found = []
        for index in range(self.buffer_pages):
            page_va = self.buffer_va + index * PAGE_SIZE
            data = self.kernel.mem_read(self.pid, page_va, PAGE_SIZE)
            if data == expected:
                continue
            for offset, (got, want) in enumerate(zip(data, expected)):
                if got == want:
                    continue
                changed = got ^ want
                for bit in range(8):
                    if changed & (1 << bit):
                        found.append((page_va, offset, bit, bool(got & (1 << bit))))
        return found

    def _restore(self, page_va: int, offset: int, pattern: int) -> None:
        self.kernel.mem_write(self.pid, page_va + offset, bytes([pattern]))

    def _attribute_pair(
        self,
        flip_va: int,
        batch: list[tuple[int, int]],
    ) -> tuple[int, int]:
        """The batch pair whose aggressors sit closest to the flipped byte."""
        return min(
            batch,
            key=lambda pair: min(abs(flip_va - pair[0]), abs(flip_va - pair[1])),
        )

    def _verify(
        self,
        page_va: int,
        offset: int,
        bit: int,
        pattern: int,
        pair: tuple[int, int],
    ) -> bool:
        """Re-induce the flip with one pair to confirm the template."""
        self._restore(page_va, offset, pattern)
        self.hammerer.hammer_pair(*pair)
        data = self.kernel.mem_read(self.pid, page_va + offset, 1)
        flipped = bool((data[0] ^ pattern) & (1 << bit))
        return flipped

    # -- the campaign -------------------------------------------------------------

    def run(self) -> TemplatingResult:
        """Full templating campaign; returns the templates found."""
        if self.buffer_va is None:
            self.prepare_buffer()
        start_ns = self.kernel.clock.now_ns
        seen: set[tuple[int, int, int]] = set()
        templates: list[FlipTemplate] = []
        pairs_hammered = 0
        for pattern in self.config.patterns:
            self.hammerer.fill(self.buffer_va, self.buffer_pages, pattern)
            pairs = self.discover_pairs()
            for start in range(0, len(pairs), self.config.batch_pairs):
                batch = pairs[start : start + self.config.batch_pairs]
                for va_a, va_b in batch:
                    self.hammerer.hammer_pair(va_a, va_b)
                    pairs_hammered += 1
                for page_va, offset, bit, flips_to_one in self._scan_for_flips(pattern):
                    key = (page_va, offset, bit)
                    if key in seen:
                        self._restore(page_va, offset, pattern)
                        continue
                    pair = self._attribute_pair(page_va + offset, batch)
                    if self.config.verify_flips:
                        if not self._verify(page_va, offset, bit, pattern, pair):
                            # Not reproducible with the attributed pair; try
                            # the rest of the batch before giving up.
                            confirmed = False
                            for other in batch:
                                if other == pair:
                                    continue
                                if self._verify(page_va, offset, bit, pattern, other):
                                    pair = other
                                    confirmed = True
                                    break
                            if not confirmed:
                                self._restore(page_va, offset, pattern)
                                continue
                    seen.add(key)
                    templates.append(
                        FlipTemplate(
                            page_va=page_va,
                            page_offset=offset,
                            bit=bit,
                            flips_to_one=flips_to_one,
                            aggressor_vas=pair,
                        )
                    )
                    self._restore(page_va, offset, pattern)
        return TemplatingResult(
            buffer_bytes=self.config.buffer_bytes,
            rounds_per_pair=self.config.rounds,
            pairs_hammered=pairs_hammered,
            templates=templates,
            elapsed_ns=self.kernel.clock.now_ns - start_ns,
        )

    # -- template selection helpers --------------------------------------------------

    def templates_hitting_range(
        self,
        templates: list[FlipTemplate],
        offset_start: int,
        offset_end: int,
    ) -> list[FlipTemplate]:
        """Templates whose flip lands in [offset_start, offset_end) in-page.

        Also excludes templates living in one of their own aggressor pages
        (unmapping those would destroy the aggressors).
        """
        usable = []
        for template in templates:
            if not offset_start <= template.page_offset < offset_end:
                continue
            aggressor_pages = {va & ~(PAGE_SIZE - 1) for va in template.aggressor_vas}
            if template.page_va in aggressor_pages:
                continue
            usable.append(template)
        return usable
