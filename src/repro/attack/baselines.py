"""Baseline attacks for comparison with ExplFrame.

The paper positions its contribution between two existing points:

* **Random spray** (lower bound) — prior unprivileged Rowhammer attacks
  "either target a large address space" or rely on luck: the attacker
  hammers her own buffer and hopes the victim's sensitive page happens to
  sit in an adjacent row with a weak cell at a useful offset.  Success is
  incidental and rare.
* **Pagemap-guided attack** (upper bound) — with CAP_SYS_ADMIN the
  attacker reads real PFNs, so she can *verify* frame placement instead
  of trusting the cache discipline, retrying until the victim holds the
  vulnerable frame.  ExplFrame's claim is that the page frame cache gets
  the unprivileged attacker close to this bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attack.templating import Templator, TemplatorConfig
from repro.ciphers.table_memory import DEFAULT_TABLE_OFFSET, CipherVictim
from repro.core.machine import Machine
from repro.os.capabilities import CapabilitySet
from repro.sim.errors import ConfigError
from repro.sim.units import PAGE_SIZE


@dataclass
class BaselineOutcome:
    """Score sheet shared by the baseline attacks."""

    templated_flips: int
    fault_in_table: bool
    attempts: int
    hammer_rounds_total: int


class RandomSprayAttack:
    """Unprivileged hammering without steering (lower bound)."""

    def __init__(
        self,
        machine: Machine,
        key: bytes,
        cpu: int = 0,
        templator_config: TemplatorConfig | None = None,
    ):
        self.machine = machine
        self.kernel = machine.kernel
        self.key = key
        self.cpu = cpu
        self.templator_config = templator_config or TemplatorConfig()

    def run(self) -> BaselineOutcome:
        """Victim allocates first; attacker sprays her own buffer.

        The attacker has no influence over where the victim's table frame
        sits, so a table fault requires the coincidence that the frame is
        adjacent to one of her hammered rows *and* hosts an armed weak
        cell in the table bytes.
        """
        victim = CipherVictim(self.kernel, self.key, cpu=self.cpu)
        victim.allocate_table_page()
        attacker = self.kernel.spawn("spray-attacker", cpu=self.cpu)
        templator = Templator(self.kernel, attacker.pid, self.templator_config)
        result = templator.run()
        return BaselineOutcome(
            templated_flips=result.flips_found,
            fault_in_table=victim.table_is_faulty(),
            attempts=1,
            hammer_rounds_total=templator.hammerer.total_rounds,
        )


class PagemapAttack:
    """CAP_SYS_ADMIN attacker with placement verification (upper bound)."""

    def __init__(
        self,
        machine: Machine,
        key: bytes,
        cpu: int = 0,
        templator_config: TemplatorConfig | None = None,
        max_attempts: int = 8,
        table_offset: int = DEFAULT_TABLE_OFFSET,
    ):
        if max_attempts <= 0:
            raise ConfigError("max_attempts must be positive")
        self.machine = machine
        self.kernel = machine.kernel
        self.key = key
        self.cpu = cpu
        self.templator_config = templator_config or TemplatorConfig()
        self.max_attempts = max_attempts
        self.table_offset = table_offset

    def run(self) -> BaselineOutcome:
        """Template, steer, and *verify* the landing through pagemap.

        The privileged attacker runs the same steering protocol but reads
        the victim's pagemap after each attempt; on a miss she restages
        with the next usable template (or re-stages the same frame when it
        comes back), up to ``max_attempts``.
        """
        attacker = self.kernel.spawn(
            "pagemap-attacker", cpu=self.cpu, caps=CapabilitySet.root()
        )
        templator = Templator(self.kernel, attacker.pid, self.templator_config)
        result = templator.run()
        usable = [
            template
            for template in templator.templates_hitting_range(
                result.templates, self.table_offset, self.table_offset + 256
            )
        ]
        attempts = 0
        faulted = False
        for template in usable[: self.max_attempts]:
            attempts += 1
            # Privileged: read her own pagemap to learn the staged PFN.
            own_map = self.kernel.pagemap(attacker.pid)
            staged_entry = own_map.read(template.page_va)
            if not staged_entry.pfn_visible:
                continue
            staged_pfn = staged_entry.pfn
            self.kernel.sys_munmap(attacker.pid, template.page_va, PAGE_SIZE)
            victim = CipherVictim(
                self.kernel, self.key, cpu=self.cpu, table_offset=self.table_offset
            )
            victim.allocate_table_page()
            # Privileged verification: did the victim's table land on it?
            victim_map = self.kernel.pagemap(attacker.pid, victim.pid)
            landed = victim_map.read(victim.sbox.va)
            if not (landed.pfn_visible and landed.pfn == staged_pfn):
                self.kernel.sys_exit(victim.pid)
                continue
            for _ in range(3):
                templator.hammerer.hammer_pair(*template.aggressor_vas)
                if victim.table_is_faulty():
                    faulted = True
                    break
            if faulted:
                break
            self.kernel.sys_exit(victim.pid)
        return BaselineOutcome(
            templated_flips=result.flips_found,
            fault_in_table=faulted,
            attempts=attempts,
            hammer_rounds_total=templator.hammerer.total_rounds,
        )
