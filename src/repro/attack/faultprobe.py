"""FAULT+PROBE: recover victim memory bits from response discrepancies.

The second registered attack modality, after the PAPERS.md entry
*FAULT+PROBE: A Generic Rowhammer-based Bit Recovery Attack*.  It shares
the whole front half of the pipeline with ExplFrame — template a
repeatable flip, steer the flippy frame into the victim's table
allocation through the page frame cache — but resolves the steered flip
completely differently: instead of collecting faulty ciphertexts and
running persistent fault analysis, it *reads the targeted bit back*.

The physics: a weak cell only fires when the stored data arms it.  A
1→0 cell rests charged and can only flip a stored ``1``; an anti-cell
(0→1) can only flip a stored ``0``.  So hammering a steered flip is a
conditional experiment on the secret bit underneath it:

* probe the victim (encrypt known plaintexts through its served-request
  path) to capture reference responses,
* hammer the templated aggressors,
* probe again — a **discrepancy** means the cell fired, so the stored
  bit equalled the cell's armed value; **no discrepancy** means the cell
  was disarmed, so the bit was the opposite value.

Each steered candidate yields one bit (a fresh victim incarnation per
steer keeps the experiment clean); the run keeps consuming candidates —
re-templating under the campaign budget as needed — until
``target_bits`` positions are recovered.  Accuracy is scored against the
ground-truth table content and reported in the run report's ``extra``
block; mispredictions come from armed flips that fail to reproduce
within the pulse budget (the same physics that gives ExplFrame its
``non-repeatable-flip`` retries) and from probe plaintexts that miss the
faulted table entry.

Unlike ExplFrame, templating does **not** filter candidates by armed
direction — the attacker does not know the bit value; that is the
secret being recovered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attack.base import (
    AttackModality,
    FailureClass,
    GENERIC_STAGES,
    ResolutionStage,
    StageFailure,
    StageOutcome,
)
from repro.attack.explframe import ExplFrameAttack
from repro.attack.registry import register_modality
from repro.attack.templating import TemplatorConfig
from repro.ciphers.aes_tables import AES_SBOX
from repro.ciphers.present import PRESENT_SBOX
from repro.ciphers.table_memory import DEFAULT_TABLE_OFFSET, CipherVictim
from repro.core.results import FlipTemplate
from repro.sim.errors import ConfigError
from repro.sim.units import PAGE_SIZE


@dataclass(frozen=True)
class FaultProbeConfig:
    """Parameters of a FAULT+PROBE run.

    ``probe_checks`` plaintexts form the response-discrepancy oracle per
    candidate: one AES encryption performs ~160 S-box lookups, so a
    single probe misses a given faulted entry with probability
    ``(255/256)**160 ≈ 0.54`` — a dozen probes push the miss rate below
    0.1%.  ``hammer_pulses`` bounds how many hammer/probe rounds an
    armed cell gets to fire before the bit is declared disarmed.
    """

    templator: TemplatorConfig = field(default_factory=TemplatorConfig)
    cpu: int = 0
    cipher: str = "aes"
    table_offset: int = DEFAULT_TABLE_OFFSET
    # Distinct table positions to recover before the run is complete.
    target_bits: int = 4
    # Plaintexts per probe round (the discrepancy oracle's sample size).
    probe_checks: int = 12
    # Hammer/probe rounds before concluding the cell is disarmed.
    hammer_pulses: int = 4
    # Templating campaigns per restock (as ExplFrameConfig.max_campaigns).
    max_campaigns: int = 4

    def __post_init__(self) -> None:
        if self.cipher not in ("aes", "aes_ttable", "present"):
            raise ConfigError(
                f"cipher must be 'aes', 'aes_ttable' or 'present', got {self.cipher!r}"
            )
        if not 0 <= self.table_offset <= PAGE_SIZE - self.table_size:
            raise ConfigError(
                f"table at offset {self.table_offset:#x} does not fit in a page"
            )
        if self.target_bits <= 0:
            raise ConfigError(f"target_bits must be positive, got {self.target_bits}")
        if self.probe_checks <= 0 or self.hammer_pulses <= 0:
            raise ConfigError("probe_checks and hammer_pulses must be positive")
        if self.max_campaigns <= 0:
            raise ConfigError("max_campaigns must be positive")

    @property
    def table_size(self) -> int:
        """Bytes of table the victim keeps in memory (probe-able region)."""
        return 16 if self.cipher == "present" else 256


class FaultProbeAttack(ExplFrameAttack):
    """Drives the FAULT+PROBE pipeline: template → steer → probe a bit.

    Reuses ExplFrame's templating and page-frame-cache steering verbatim
    (the shared front half of the modality contract) and replaces the
    rehammer+PFA resolution with a single ``probe`` stage.  State beyond
    the base class: ``recovered_bits`` maps table position
    ``(entry, bit)`` to the probe verdict for that position.
    """

    modality_name = "faultprobe"

    def __init__(
        self,
        machine,
        key: bytes | None = None,
        config: FaultProbeConfig | None = None,
        tenant_workload=None,
    ):
        # Probe verdicts by (entry, bit): first writer wins, so a second
        # template over an already-probed position never double-counts.
        self.recovered_bits: dict[tuple[int, int], dict] = {}
        super().__init__(
            machine,
            key=key,
            config=config or FaultProbeConfig(),
            tenant_workload=tenant_workload,
        )

    def _bind_modality_metrics(self, metrics) -> None:
        """FAULT+PROBE instruments (no ``attack.pfa.*`` here — registered
        families show up at zero in every snapshot, and each modality's
        snapshot must only carry its own)."""
        self._m_probes = metrics.counter(
            "attack.faultprobe.probes", unit="probes",
            help="oracle responses collected (reference + post-hammer)",
        )
        self._m_discrepancies = metrics.counter(
            "attack.faultprobe.discrepancies", unit="probes",
            help="probe rounds whose responses diverged from the reference",
        )
        self._m_bits = metrics.counter(
            "attack.faultprobe.bits_recovered", unit="bits",
            help="distinct table bit positions with a probe verdict",
        )
        self._m_bits_correct = metrics.counter(
            "attack.faultprobe.bits_correct", unit="bits",
            help="probe verdicts matching ground truth (scoring)",
        )

    # -- templating filter --------------------------------------------------------

    def usable_templates(self, templates: list[FlipTemplate]) -> list[FlipTemplate]:
        """In-table flips, *without* ExplFrame's armed-direction filter.

        Whether a flip's direction is armed depends on the stored bit —
        the secret FAULT+PROBE recovers — so every in-range flip is a
        usable probe.  (PRESENT's high nibble is still skipped: those
        bits never influence responses, so they cannot be probed.)
        """
        in_range = self.templator.templates_hitting_range(
            templates,
            self.config.table_offset,
            self.config.table_offset + self.config.table_size,
        )
        if self.config.cipher != "present":
            return in_range
        return [template for template in in_range if template.bit <= 3]

    # -- modality contract (docs/ATTACKS.md) --------------------------------------

    def stage_names(self) -> tuple[str, ...]:
        return GENERIC_STAGES + ("probe",)

    def failure_classes(self) -> tuple[FailureClass, ...]:
        return (
            FailureClass.TEMPLATING_EXHAUSTED,
            FailureClass.STEERING_MISS,
            FailureClass.PROBE_INCONCLUSIVE,
            FailureClass.BUDGET_EXHAUSTED,
        )

    def resolution_stages(self) -> tuple[ResolutionStage, ...]:
        # One stage; its retry policy reuses the analysis ("pfa") slot of
        # OrchestratorConfig — see that dataclass's docstring.
        return (ResolutionStage("probe", policy="pfa", run=self._probe_stage),)

    def run_complete(self) -> bool:
        """Done once ``target_bits`` distinct positions have verdicts."""
        return len(self.recovered_bits) >= self.config.target_bits

    def analysis_units_consumed(self) -> int:
        """Oracle responses consumed (the report's analysis-unit column)."""
        return self.analysis_units

    def report_extra(self) -> dict:
        """The modality's result block: per-bit verdicts and accuracy."""
        bits = [
            self.recovered_bits[position]
            for position in sorted(self.recovered_bits)
        ]
        correct = sum(1 for bit in bits if bit["correct"])
        return {
            "bits_targeted": self.config.target_bits,
            "bits_recovered": len(bits),
            "bits_correct": correct,
            "accuracy": round(correct / len(bits), 4) if bits else None,
            "bits": bits,
        }

    # -- the probe stage ----------------------------------------------------------

    def _oracle(self, victim: CipherVictim, plaintext: bytes) -> bytes:
        """One response from the victim, through tenant traffic if present."""
        self.analysis_units += 1
        self._m_probes.inc()
        if self.tenant_workload is not None:
            return self.tenant_workload.probe_target(plaintext)
        return victim.encrypt(plaintext)

    def _probe_stage(
        self, victim: CipherVictim, template: FlipTemplate, attempt: int
    ) -> StageOutcome:
        """Probe → hammer → re-probe; infer the stored bit from firing.

        A 0→1 cell (``flips_to_one``) only fires over a stored 0, a 1→0
        cell only over a stored 1 — so a discrepancy pins the bit to the
        armed value and silence pins it to the opposite.
        """
        recovery = (
            None if attempt == 0 else f"re-probe after backoff (try {attempt + 1})"
        )
        config = self.config
        block = 8 if config.cipher == "present" else 16
        rng = self.machine.rng.stream("attack.probe-plaintexts")
        with self.obs.tracer.span(
            "attack.probe", "attack", offset=template.page_offset, bit=template.bit
        ) as span:
            plaintexts = [
                bytes(rng.randrange(256) for _ in range(block))
                for _ in range(config.probe_checks)
            ]
            reference = [self._oracle(victim, pt) for pt in plaintexts]
            # Stability check: a reference that won't repeat (e.g. a table
            # already corrupted mid-read) cannot anchor a discrepancy.
            if [self._oracle(victim, pt) for pt in plaintexts] != reference:
                span.set("stable", False)
                return StageOutcome(
                    ok=False,
                    recovery=recovery,
                    failure=StageFailure(
                        "probe",
                        FailureClass.PROBE_INCONCLUSIVE,
                        "reference responses unstable before hammering",
                    ),
                )
            discrepancy = False
            pulses = 0
            for pulse in range(config.hammer_pulses):
                self.templator.hammerer.hammer_pair(*template.aggressor_vas)
                pulses = pulse + 1
                if [self._oracle(victim, pt) for pt in plaintexts] != reference:
                    discrepancy = True
                    self._m_discrepancies.inc()
                    break
            armed_value = 0 if template.flips_to_one else 1
            predicted = armed_value if discrepancy else 1 - armed_value
            span.set("discrepancy", discrepancy)
            span.set("pulses", pulses)
            span.set("predicted", predicted)
        self._score_bit(template, predicted, discrepancy, pulses)
        return StageOutcome(ok=True, recovery=recovery)

    def _score_bit(
        self, template: FlipTemplate, predicted: int, discrepancy: bool, pulses: int
    ) -> None:
        """Record the verdict; ``actual``/``correct`` are ground truth.

        The attacker's output is ``predicted`` alone — the scoring
        columns exist so benches and CI can measure recovery accuracy,
        mirroring how steering success is scored in ExplFrame.
        """
        entry = template.page_offset - self.config.table_offset
        position = (entry, template.bit)
        if position in self.recovered_bits:
            return
        clean_table = PRESENT_SBOX if self.config.cipher == "present" else AES_SBOX
        actual = (clean_table[entry] >> template.bit) & 1
        correct = predicted == actual
        self.recovered_bits[position] = {
            "entry": entry,
            "bit": template.bit,
            "predicted": predicted,
            "actual": actual,
            "correct": correct,
            "discrepancy": discrepancy,
            "pulses": pulses,
        }
        self._m_bits.inc()
        if correct:
            self._m_bits_correct.inc()

    # -- single-shot driver is PFA-specific ---------------------------------------

    def run(self):
        raise ConfigError(
            "faultprobe has no single-shot driver; run it orchestrated "
            "(the default) or through a campaign"
        )


# -- modality registration ----------------------------------------------------------


class FaultProbeModality(AttackModality):
    """FAULT+PROBE: conditional Rowhammer flips as a memory-read oracle."""

    name = "faultprobe"
    description = (
        "steer a templated flip under the victim's table and read the "
        "stored bit back from response discrepancies (FAULT+PROBE)"
    )

    def default_config(self) -> FaultProbeConfig:
        return FaultProbeConfig()

    def make_config(
        self, *, cipher: str, cpu: int, templator: TemplatorConfig, max_campaigns: int
    ) -> FaultProbeConfig:
        return FaultProbeConfig(
            cipher=cipher, cpu=cpu, templator=templator, max_campaigns=max_campaigns
        )

    def build(
        self, machine, *, config=None, key=None, tenant_workload=None
    ) -> FaultProbeAttack:
        return FaultProbeAttack(
            machine, key=key, config=config, tenant_workload=tenant_workload
        )

    def config_hash_fields(self, attack_config) -> tuple:
        # repr(attack_config) already pins every knob; the oracle choice
        # (workload-routed vs direct) follows the scenario, which the
        # campaign hash covers separately.
        return ()

    def required_capabilities(self) -> frozenset[str]:
        return frozenset({"templating", "steering", "hammer", "response-oracle"})


register_modality(FaultProbeModality())
