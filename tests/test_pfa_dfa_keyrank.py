"""DFA baseline and key-rank utilities."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ciphers.aes import AES, expand_key
from repro.pfa.dfa import (
    collect_dfa_pairs,
    giraud_dfa,
    output_position_of_state_byte,
    pairs_needed_for_unique,
)
from repro.pfa.keyrank import KeyCandidates, enumerate_keys, log2_keyspace
from repro.sim.errors import FaultError

KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")


class TestDfaPairs:
    def test_pair_differs_in_one_byte(self):
        aes = AES(KEY)
        ((clean, faulty),) = collect_dfa_pairs(aes, [bytes(16)], 0, 0)
        assert sum(a != b for a, b in zip(clean, faulty)) == 1

    def test_fault_lands_at_shiftrows_position(self):
        aes = AES(KEY)
        state_position = 5
        out = output_position_of_state_byte(state_position)
        ((clean, faulty),) = collect_dfa_pairs(aes, [bytes(16)], state_position, 0)
        differing = [i for i in range(16) if clean[i] != faulty[i]]
        assert differing == [out]

    def test_bit_validated(self):
        with pytest.raises(FaultError):
            collect_dfa_pairs(AES(KEY), [bytes(16)], 0, 9)

    def test_position_mapping_is_bijection(self):
        outs = {output_position_of_state_byte(i) for i in range(16)}
        assert outs == set(range(16))


class TestGiraud:
    def test_true_key_always_survives(self):
        aes = AES(KEY)
        k10 = expand_key(KEY)[10]
        pairs = collect_dfa_pairs(aes, [bytes([7]) * 16], 0, 2)
        candidates = giraud_dfa(pairs)
        out = output_position_of_state_byte(0)
        assert k10[out] in candidates[out]

    def test_candidates_narrow_with_more_pairs(self):
        aes = AES(KEY)
        plaintexts = [bytes([i]) * 16 for i in range(6)]
        one = giraud_dfa(collect_dfa_pairs(aes, plaintexts[:1], 0, 1))
        many = giraud_dfa(collect_dfa_pairs(aes, plaintexts, 0, 1))
        out = output_position_of_state_byte(0)
        assert len(many[out]) <= len(one[out])

    def test_full_key_recovered(self):
        aes = AES(KEY)
        import random

        rng = random.Random(0)
        settled = pairs_needed_for_unique(
            aes, lambda i: bytes(rng.randrange(256) for _ in range(16)), max_pairs=160
        )
        assert len(settled) == 16

    def test_empty_pairs_rejected(self):
        with pytest.raises(FaultError):
            giraud_dfa([])

    def test_bad_ciphertext_length(self):
        with pytest.raises(FaultError):
            giraud_dfa([(bytes(8), bytes(8))])


class TestKeyCandidates:
    def test_keyspace_product(self):
        per_byte = [[0]] * 15 + [[1, 2, 3, 4]]
        candidates = KeyCandidates(per_byte)
        assert candidates.keyspace == 4
        assert candidates.log2_keyspace == 2.0

    def test_unique_key(self):
        per_byte = [[i] for i in range(16)]
        assert KeyCandidates(per_byte).unique_key() == bytes(range(16))

    def test_unique_raises_when_ambiguous(self):
        per_byte = [[0, 1]] + [[0]] * 15
        with pytest.raises(FaultError):
            KeyCandidates(per_byte).unique_key()

    def test_empty_position_rejected(self):
        with pytest.raises(FaultError):
            KeyCandidates([[0]] * 15 + [[]])

    def test_wrong_length_rejected(self):
        with pytest.raises(FaultError):
            KeyCandidates([[0]] * 8)

    def test_value_range_validated(self):
        with pytest.raises(FaultError):
            KeyCandidates([[256]] + [[0]] * 15)

    def test_candidates_deduplicated(self):
        candidates = KeyCandidates([[5, 5, 5]] + [[0]] * 15)
        assert candidates.keyspace == 1

    def test_iteration_covers_space(self):
        per_byte = [[0, 1]] + [[0]] * 15
        keys = list(KeyCandidates(per_byte))
        assert len(keys) == 2

    @given(sizes=st.lists(st.integers(min_value=1, max_value=4), min_size=16, max_size=16))
    @settings(max_examples=20)
    def test_log2_keyspace_matches_product(self, sizes):
        per_byte = [list(range(size)) for size in sizes]
        import math

        expected = sum(math.log2(size) for size in sizes)
        assert abs(log2_keyspace(per_byte) - expected) < 1e-9


class TestEnumeration:
    def test_finds_key(self):
        true_key = bytes(range(16))
        per_byte = [[b, b ^ 0xFF] for b in true_key]
        candidates = KeyCandidates(per_byte)
        found = enumerate_keys(candidates, lambda k: k == true_key)
        assert found == true_key

    def test_returns_none_when_absent(self):
        candidates = KeyCandidates([[0]] * 16)
        assert enumerate_keys(candidates, lambda k: False) is None

    def test_refuses_huge_spaces(self):
        per_byte = [list(range(8))] * 16  # 2^48
        with pytest.raises(FaultError):
            enumerate_keys(KeyCandidates(per_byte), lambda k: True)
