"""Address mapping bijectivity and structure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.geometry import DRAMAddress, DRAMGeometry
from repro.dram.mapping import LinearMapping, XorBankMapping, make_mapping
from repro.sim.errors import ConfigError

GEO = DRAMGeometry.small()


@pytest.fixture(params=["linear", "xor"])
def mapping(request):
    return make_mapping(request.param, GEO)


class TestBijectivity:
    @given(phys=st.integers(min_value=0, max_value=GEO.total_bytes - 1))
    @settings(max_examples=200)
    def test_round_trip_linear(self, phys):
        m = LinearMapping(GEO)
        assert m.to_phys(m.to_dram(phys)) == phys

    @given(phys=st.integers(min_value=0, max_value=GEO.total_bytes - 1))
    @settings(max_examples=200)
    def test_round_trip_xor(self, phys):
        m = XorBankMapping(GEO)
        assert m.to_phys(m.to_dram(phys)) == phys

    def test_addresses_in_range(self, mapping):
        for phys in (0, 4096, GEO.total_bytes - 1):
            GEO.validate_address(mapping.to_dram(phys))

    def test_distinct_addresses_distinct_coords(self, mapping):
        coords = {mapping.to_dram(p) for p in range(0, 1 << 16, 997)}
        assert len(coords) == len(range(0, 1 << 16, 997))


class TestStructure:
    def test_row_stride(self, mapping):
        assert mapping.row_stride() == GEO.banks_per_rank * GEO.row_bytes

    def test_row_is_contiguous(self, mapping):
        """All bytes of one row sit in one contiguous physical run."""
        base = mapping.row_base_phys(0, 0, 0, 5)
        for col in range(0, GEO.row_bytes, 1024):
            addr = mapping.to_dram(base + col)
            assert addr.row == 5 and addr.bank == 0 and addr.col == col

    def test_linear_bank_field_verbatim(self):
        m = LinearMapping(GEO)
        addr = m.to_dram(GEO.row_bytes)  # one row_bytes up = next bank field
        assert addr.bank == 1 and addr.row == 0

    def test_xor_folds_row_into_bank(self):
        m = XorBankMapping(GEO)
        # Same bank field, consecutive rows: actual bank must differ.
        stride = m.row_stride()
        a = m.to_dram(0)
        b = m.to_dram(stride)
        assert b.row == a.row + 1
        assert b.bank == a.bank ^ 1

    def test_xor_same_bank_rows_exist(self):
        """Every bank still holds every row index under the XOR fold."""
        m = XorBankMapping(GEO)
        pa0 = m.to_phys(DRAMAddress(0, 0, 3, 10, 0))
        pa1 = m.to_phys(DRAMAddress(0, 0, 3, 11, 0))
        assert m.to_dram(pa0).bank == m.to_dram(pa1).bank == 3
        assert pa0 != pa1


class TestNeighbors:
    def test_interior_row_has_two_neighbors(self, mapping):
        addr = DRAMAddress(0, 0, 0, 100, 0)
        rows = sorted(n.row for n in mapping.neighbors(addr))
        assert rows == [99, 101]

    def test_edge_row_has_one_neighbor(self, mapping):
        addr = DRAMAddress(0, 0, 0, 0, 0)
        assert [n.row for n in mapping.neighbors(addr)] == [1]

    def test_distance_two(self, mapping):
        addr = DRAMAddress(0, 0, 0, 100, 0)
        rows = sorted(n.row for n in mapping.neighbors(addr, distance=2))
        assert rows == [98, 102]

    def test_neighbors_keep_bank(self, mapping):
        addr = DRAMAddress(0, 0, 5, 50, 7)
        for n in mapping.neighbors(addr):
            assert n.bank_key() == addr.bank_key()
            assert n.col == addr.col

    def test_bad_distance(self, mapping):
        with pytest.raises(ConfigError):
            mapping.neighbors(DRAMAddress(0, 0, 0, 1, 0), distance=0)


class TestErrors:
    def test_out_of_range_phys(self, mapping):
        with pytest.raises(ConfigError):
            mapping.to_dram(GEO.total_bytes)
        with pytest.raises(ConfigError):
            mapping.to_dram(-1)

    def test_unknown_mapping_name(self):
        with pytest.raises(ConfigError):
            make_mapping("banana", GEO)

    def test_invalid_dram_address(self, mapping):
        with pytest.raises(ConfigError):
            mapping.to_phys(DRAMAddress(0, 0, 0, GEO.rows_per_bank, 0))
