"""Software fault injection helpers."""

import pytest

from repro.ciphers.aes_tables import AES_SBOX
from repro.ciphers.faults import FaultSpec, apply_fault, diff_sboxes, fault_summary
from repro.sim.errors import ConfigError


class TestFaultSpec:
    def test_apply_to_byte(self):
        assert FaultSpec(index=0, bit=3).apply_to_byte(0x00) == 0x08
        assert FaultSpec(index=0, bit=3).apply_to_byte(0x08) == 0x00

    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultSpec(index=0, bit=8)
        with pytest.raises(ConfigError):
            FaultSpec(index=-1, bit=0)


class TestApplyFault:
    def test_single_entry_changed(self):
        spec = FaultSpec(index=0x42, bit=1)
        faulty = apply_fault(AES_SBOX, spec)
        assert faulty[0x42] == AES_SBOX[0x42] ^ 2
        assert sum(a != b for a, b in zip(faulty, AES_SBOX)) == 1

    def test_involution(self):
        spec = FaultSpec(index=7, bit=5)
        assert apply_fault(apply_fault(AES_SBOX, spec), spec) == AES_SBOX

    def test_out_of_table(self):
        with pytest.raises(ConfigError):
            apply_fault(bytes(16), FaultSpec(index=16, bit=0))


class TestDiff:
    def test_diff(self):
        spec = FaultSpec(index=3, bit=0)
        faulty = apply_fault(AES_SBOX, spec)
        assert diff_sboxes(AES_SBOX, faulty) == [
            (3, AES_SBOX[3], AES_SBOX[3] ^ 1)
        ]

    def test_equal_tables_empty_diff(self):
        assert diff_sboxes(AES_SBOX, AES_SBOX) == []

    def test_length_mismatch(self):
        with pytest.raises(ConfigError):
            diff_sboxes(AES_SBOX, bytes(16))


class TestSummary:
    def test_missing_and_doubled(self):
        spec = FaultSpec(index=0x42, bit=3)
        faulty = apply_fault(AES_SBOX, spec)
        summary = fault_summary(AES_SBOX, faulty)
        v_star = AES_SBOX[0x42]
        v_prime = v_star ^ 8
        assert summary["corrupted_entries"] == 1
        assert summary["missing_values"] == [v_star]
        assert summary["doubled_values"] == [v_prime]
