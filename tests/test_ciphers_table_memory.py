"""Memory-resident S-boxes and the cipher victim lifecycle."""

import numpy as np
import pytest

from repro.ciphers.aes import AES
from repro.ciphers.aes_tables import AES_SBOX
from repro.ciphers.table_memory import CipherVictim, MemorySBox
from repro.sim.errors import ConfigError, FaultError
from repro.sim.units import PAGE_SIZE


@pytest.fixture
def kernel(small_machine):
    return small_machine.kernel


class TestMemorySBox:
    def make_sbox(self, kernel, size=256):
        task = kernel.spawn("holder", cpu=0)
        va = kernel.sys_mmap(task.pid, PAGE_SIZE)
        return MemorySBox(kernel, task.pid, va + 0x100, size)

    def test_install_read_round_trip(self, kernel):
        sbox = self.make_sbox(kernel)
        sbox.install(AES_SBOX)
        assert sbox.read() == AES_SBOX
        assert sbox.is_intact()

    def test_corruption_detected(self, kernel):
        sbox = self.make_sbox(kernel)
        sbox.install(AES_SBOX)
        pa = kernel.resolve_pa(sbox.pid, sbox.va + 5)
        kernel.controller.memory.flip_bit(pa, 3)
        assert not sbox.is_intact()
        ((index, expected, actual),) = sbox.corrupted_entries()
        assert index == 5
        assert actual == expected ^ 8

    def test_intact_before_install_raises(self, kernel):
        sbox = self.make_sbox(kernel)
        with pytest.raises(FaultError):
            sbox.is_intact()

    def test_wrong_table_size_rejected(self, kernel):
        sbox = self.make_sbox(kernel)
        with pytest.raises(ConfigError):
            sbox.install(bytes(16))

    def test_size_bounds(self, kernel):
        task = kernel.spawn("x", cpu=0)
        va = kernel.sys_mmap(task.pid, PAGE_SIZE)
        with pytest.raises(ConfigError):
            MemorySBox(kernel, task.pid, va, 0)
        with pytest.raises(ConfigError):
            MemorySBox(kernel, task.pid, va, PAGE_SIZE + 1)

    def test_pfn_instrumentation(self, kernel):
        sbox = self.make_sbox(kernel)
        sbox.install(AES_SBOX)
        assert sbox.pfn == kernel.pfn_of(sbox.pid, sbox.va)


class TestCipherVictim:
    def test_lifecycle(self, kernel):
        victim = CipherVictim(kernel, bytes(16), cpu=0)
        pfn = victim.allocate_table_page()
        assert pfn == victim.sbox.pfn
        assert not victim.table_is_faulty()

    def test_encrypt_matches_reference_aes(self, kernel):
        key = bytes(range(16))
        victim = CipherVictim(kernel, key, cpu=0)
        victim.allocate_table_page()
        pt = b"0123456789abcdef"
        assert victim.encrypt(pt) == AES(key).encrypt_block(pt)
        assert victim.encryptions == 1

    def test_encrypt_before_allocation_rejected(self, kernel):
        victim = CipherVictim(kernel, bytes(16), cpu=0)
        with pytest.raises(ConfigError):
            victim.encrypt(bytes(16))

    def test_double_allocation_rejected(self, kernel):
        victim = CipherVictim(kernel, bytes(16), cpu=0)
        victim.allocate_table_page()
        with pytest.raises(ConfigError):
            victim.allocate_table_page()

    def test_batch_matches_reference(self, kernel):
        key = bytes(range(16))
        victim = CipherVictim(kernel, key, cpu=0)
        victim.allocate_table_page()
        rng = np.random.default_rng(0)
        cts = victim.encrypt_batch(8, rng)
        # Same rng seed reproduces the plaintexts for the reference check.
        from repro.ciphers.batch import aes128_encrypt_batch, random_plaintexts

        pts = random_plaintexts(8, np.random.default_rng(0))
        assert np.array_equal(cts, aes128_encrypt_batch(pts, key))

    def test_memory_fault_becomes_persistent_cipher_fault(self, kernel):
        key = bytes(range(16))
        victim = CipherVictim(kernel, key, cpu=0)
        victim.allocate_table_page()
        pa = kernel.resolve_pa(victim.pid, victim.sbox.va + 0x42)
        kernel.controller.memory.flip_bit(pa, 0)
        assert victim.table_is_faulty()
        pt = bytes(16)
        faulty_ct = victim.encrypt(pt)
        assert faulty_ct != AES(key).encrypt_block(pt)
        # The fault is persistent: a second encryption sees the same table.
        assert victim.encrypt(pt) == faulty_ct

    def test_present_victim(self, kernel):
        from repro.ciphers.present import Present

        key = bytes(range(10))
        victim = CipherVictim(kernel, key, cpu=0, cipher="present")
        victim.allocate_table_page()
        pt = bytes(8)
        assert victim.encrypt(pt) == Present(key).encrypt_block(pt)

    def test_present_batch_unsupported(self, kernel):
        victim = CipherVictim(kernel, bytes(10), cpu=0, cipher="present")
        victim.allocate_table_page()
        with pytest.raises(ConfigError):
            victim.encrypt_batch(4, np.random.default_rng(0))

    def test_unknown_cipher_rejected(self, kernel):
        with pytest.raises(ConfigError):
            CipherVictim(kernel, bytes(16), cipher="des")


class TestTTableVictim:
    def test_two_pages_allocated(self, kernel):
        victim = CipherVictim(kernel, bytes(16), cpu=0, cipher="aes_ttable")
        victim.allocate_table_page()
        assert victim.task.mm.rss_pages == 2

    def test_sbox_is_in_second_page(self, kernel):
        victim = CipherVictim(kernel, bytes(16), cpu=0, cipher="aes_ttable")
        sbox_pfn = victim.allocate_table_page()
        te_pfn = kernel.pfn_of(victim.pid, victim._te_va)
        assert sbox_pfn != te_pfn
        assert sbox_pfn == victim.sbox.pfn

    def test_encrypts_like_reference(self, kernel):
        key = bytes(range(16))
        victim = CipherVictim(kernel, key, cpu=0, cipher="aes_ttable")
        victim.allocate_table_page()
        pt = b"0123456789abcdef"
        assert victim.encrypt(pt) == AES(key).encrypt_block(pt)

    def test_batch_matches_scalar(self, kernel):
        import numpy as np

        key = bytes(range(16))
        victim = CipherVictim(kernel, key, cpu=0, cipher="aes_ttable")
        victim.allocate_table_page()
        cts = victim.encrypt_batch(4, np.random.default_rng(0))
        from repro.ciphers.batch import aes128_encrypt_batch, random_plaintexts

        pts = random_plaintexts(4, np.random.default_rng(0))
        assert np.array_equal(cts, aes128_encrypt_batch(pts, key))

    def test_sbox_fault_is_persistent(self, kernel):
        key = bytes(range(16))
        victim = CipherVictim(kernel, key, cpu=0, cipher="aes_ttable")
        victim.allocate_table_page()
        pa = kernel.resolve_pa(victim.pid, victim.sbox.va + 0x42)
        kernel.controller.memory.flip_bit(pa, 0)
        assert victim.table_is_faulty()
        # Only the last round consults the S-box, so a single block may
        # miss the corrupted entry; over several blocks some must differ.
        reference = AES(key)
        diffs = sum(
            victim.encrypt(bytes([i, 31 * i % 256] * 8))
            != reference.encrypt_block(bytes([i, 31 * i % 256] * 8))
            for i in range(32)
        )
        assert diffs > 0

    def test_te_fault_uses_scalar_fallback_in_batch(self, kernel):
        import numpy as np

        key = bytes(range(16))
        victim = CipherVictim(kernel, key, cpu=0, cipher="aes_ttable")
        victim.allocate_table_page()
        pa = kernel.resolve_pa(victim.pid, victim._te_va + 4)
        kernel.controller.memory.flip_bit(pa, 1)
        cts = victim.encrypt_batch(4, np.random.default_rng(1))
        # Fallback path: each batch row equals the scalar T-table result.
        from repro.ciphers.batch import random_plaintexts

        pts = random_plaintexts(4, np.random.default_rng(1))
        for i in range(4):
            assert bytes(cts[i]) == victim._context.encrypt_block(bytes(pts[i]))
