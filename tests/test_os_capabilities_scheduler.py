"""Capabilities, tasks and the placement scheduler."""

import pytest

from repro.os.capabilities import Capability, CapabilitySet
from repro.os.scheduler import Scheduler
from repro.os.task import Task, TaskState
from repro.sim.errors import ConfigError


class TestCapabilities:
    def test_unprivileged_has_nothing(self):
        caps = CapabilitySet.unprivileged()
        assert not caps.has(Capability.CAP_SYS_ADMIN)

    def test_root_has_everything(self):
        caps = CapabilitySet.root()
        for cap in Capability:
            assert caps.has(cap)

    def test_with_and_without(self):
        caps = CapabilitySet.unprivileged().with_cap(Capability.CAP_SYS_ADMIN)
        assert Capability.CAP_SYS_ADMIN in caps
        dropped = caps.without_cap(Capability.CAP_SYS_ADMIN)
        assert Capability.CAP_SYS_ADMIN not in dropped
        # Originals untouched (value semantics).
        assert Capability.CAP_SYS_ADMIN in caps

    def test_equality_and_hash(self):
        a = CapabilitySet({Capability.CAP_SYS_NICE})
        b = CapabilitySet({Capability.CAP_SYS_NICE})
        assert a == b
        assert hash(a) == hash(b)

    def test_repr_sorted(self):
        assert "CAP_SYS_ADMIN" in repr(CapabilitySet.root())


class TestTask:
    def test_defaults(self):
        task = Task(pid=100, name="t", cpu=0, allowed_cpus=frozenset({0}))
        assert task.state is TaskState.RUNNING
        assert task.is_running
        assert not task.caps.has(Capability.CAP_SYS_ADMIN)

    def test_cpu_must_be_allowed(self):
        with pytest.raises(ConfigError):
            Task(pid=100, name="t", cpu=1, allowed_cpus=frozenset({0}))

    def test_positive_pid(self):
        with pytest.raises(ConfigError):
            Task(pid=0, name="t", cpu=0, allowed_cpus=frozenset({0}))


class TestScheduler:
    def make(self, cpus=2):
        return Scheduler(cpus)

    def make_task(self, pid, cpu=0, allowed=None):
        return Task(
            pid=pid,
            name=f"t{pid}",
            cpu=cpu,
            allowed_cpus=allowed or frozenset({0, 1}),
        )

    def test_pick_least_loaded(self):
        sched = self.make()
        t1 = self.make_task(101, cpu=0)
        sched.place(t1)
        assert sched.pick_cpu(frozenset({0, 1})) == 1

    def test_pick_respects_mask(self):
        sched = self.make()
        t1 = self.make_task(101, cpu=0)
        sched.place(t1)
        assert sched.pick_cpu(frozenset({0})) == 0

    def test_empty_mask_rejected(self):
        with pytest.raises(ConfigError):
            self.make().pick_cpu(frozenset())

    def test_place_and_load(self):
        sched = self.make()
        sched.place(self.make_task(101, cpu=1))
        assert sched.load(1) == 1
        assert sched.tasks_on(1) == [101]

    def test_double_place_rejected(self):
        sched = self.make()
        task = self.make_task(101)
        sched.place(task)
        with pytest.raises(ConfigError):
            sched.place(task)

    def test_migrate(self):
        sched = self.make()
        task = self.make_task(101, cpu=0)
        sched.place(task)
        sched.migrate(task, 1)
        assert task.cpu == 1
        assert sched.load(0) == 0
        assert sched.load(1) == 1
        assert sched.migrations == 1

    def test_migrate_outside_affinity_rejected(self):
        sched = self.make()
        task = self.make_task(101, cpu=0, allowed=frozenset({0}))
        sched.place(task)
        with pytest.raises(ConfigError):
            sched.migrate(task, 1)

    def test_migrate_same_cpu_noop(self):
        sched = self.make()
        task = self.make_task(101, cpu=0)
        sched.place(task)
        sched.migrate(task, 0)
        assert sched.migrations == 0

    def test_migrate_sleeping_task(self):
        sched = self.make()
        task = self.make_task(101, cpu=0)
        sched.place(task)
        sched.remove(task)
        task.state = TaskState.SLEEPING
        sched.migrate(task, 1)
        assert task.cpu == 1
        assert sched.load(1) == 0  # sleeping tasks are not on run lists

    def test_co_resident(self):
        sched = self.make()
        a = self.make_task(101, cpu=0)
        b = self.make_task(102, cpu=0)
        c = self.make_task(103, cpu=1)
        for task in (a, b, c):
            sched.place(task)
        assert sched.co_resident(a, b)
        assert not sched.co_resident(a, c)
        b.state = TaskState.SLEEPING
        assert not sched.co_resident(a, b)

    def test_remove_missing_rejected(self):
        sched = self.make()
        with pytest.raises(ConfigError):
            sched.remove(self.make_task(101))

    def test_cpu_bounds(self):
        sched = self.make()
        with pytest.raises(ConfigError):
            sched.load(2)
        with pytest.raises(ConfigError):
            Scheduler(0)
