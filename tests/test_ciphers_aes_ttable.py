"""T-table AES: correctness and fault-location behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ciphers.aes import AES
from repro.ciphers.aes_tables import AES_SBOX
from repro.ciphers.aes_ttable import AES_TE_TABLES, AesTTable, generate_te_tables
from repro.ciphers.faults import FaultSpec, apply_fault
from repro.pfa.pfa import PfaState

KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
PT = bytes.fromhex("00112233445566778899aabbccddeeff")


class TestCorrectness:
    def test_fips_vector(self):
        assert (
            AesTTable(KEY).encrypt_block(PT).hex()
            == "69c4e0d86a7b0430d8cdb78070b4c55a"
        )

    @given(key=st.binary(min_size=16, max_size=16), pt=st.binary(min_size=16, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_matches_scalar_implementation(self, key, pt):
        assert AesTTable(key).encrypt_block(pt) == AES(key).encrypt_block(pt)

    def test_te_tables_structure(self):
        tables = generate_te_tables()
        assert len(tables) == 4096
        # Te0[0x00]: S[0]=0x63 -> word (2*0x63, 0x63, 0x63, 3*0x63).
        word = int.from_bytes(tables[:4], "big")
        assert word == (0xC6 << 24) | (0x63 << 16) | (0x63 << 8) | 0xA5

    def test_te1_is_rotation_of_te0(self):
        te0 = int.from_bytes(AES_TE_TABLES[0:4], "big")
        te1 = int.from_bytes(AES_TE_TABLES[1024:1028], "big")
        assert te1 == ((te0 >> 8) | ((te0 & 0xFF) << 24)) & 0xFFFFFFFF

    def test_encrypt_many(self):
        ctx = AesTTable(KEY)
        blocks = [bytes([i]) * 16 for i in range(3)]
        assert ctx.encrypt_many(blocks) == [ctx.encrypt_block(b) for b in blocks]


class TestValidation:
    def test_key_size(self):
        with pytest.raises(ValueError):
            AesTTable(bytes(24))

    def test_block_size(self):
        with pytest.raises(ValueError):
            AesTTable(KEY).encrypt_block(bytes(8))

    def test_bad_te_provider(self):
        ctx = AesTTable(KEY, te_provider=lambda: bytes(100))
        with pytest.raises(ValueError):
            ctx.encrypt_block(PT)

    def test_bad_sbox_provider(self):
        ctx = AesTTable(KEY, sbox_provider=lambda: bytes(16))
        with pytest.raises(ValueError):
            ctx.encrypt_block(PT)


class TestFaultLocation:
    """Where the flip lands decides whether PFA works — the reason the
    attack templates for the last-round table's page."""

    def _pfa_bits_after(self, ctx, blocks=3000, seed=0):
        rng = np.random.default_rng(seed)
        state = PfaState()
        cts = [
            ctx.encrypt_block(bytes(rng.integers(0, 256, size=16, dtype=np.uint8)))
            for _ in range(blocks)
        ]
        state.update(cts)
        return state.log2_keyspace()

    def test_last_round_sbox_fault_enables_pfa(self):
        faulty_sbox = apply_fault(AES_SBOX, FaultSpec(index=0x42, bit=3))
        ctx = AesTTable(KEY, sbox_provider=lambda: faulty_sbox)
        bits = self._pfa_bits_after(ctx)
        assert bits < 16.0  # key space collapsing

    def test_te_table_fault_defeats_pfa(self):
        """An inner-round fault corrupts ciphertexts but stays uniform."""
        faulty_te = bytearray(AES_TE_TABLES)
        faulty_te[100] ^= 0x08  # somewhere in Te0
        ctx = AesTTable(KEY, te_provider=lambda: bytes(faulty_te))
        # Ciphertexts ARE wrong for a good fraction of blocks (any block
        # whose nine table rounds consult the corrupted entry)...
        clean = AES(KEY)
        diffs = sum(
            ctx.encrypt_block(bytes([i, 7 * i % 256] * 8))
            != clean.encrypt_block(bytes([i, 7 * i % 256] * 8))
            for i in range(64)
        )
        assert diffs > 0
        # ...but the last-round statistics stay full: no missing values.
        bits = self._pfa_bits_after(ctx, blocks=3000)
        assert bits > 100.0

    def test_clean_tables_give_clean_cipher(self):
        ctx = AesTTable(KEY)
        assert ctx.encrypt_block(PT) == AES(KEY).encrypt_block(PT)
