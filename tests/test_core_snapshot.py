"""Machine snapshot/fork semantics and event-core integration.

Two claims are under test:

1. A forked machine is *independent* (mutations never alias the
   original) yet *identical in destiny*: forking a warm machine and
   re-keying its RNG produces bit-for-bit the same behaviour as
   rebuilding from scratch with that seed.
2. Every recurring behaviour — DRAM refresh, kswapd, scheduler ticks,
   watchdog scans, chaos pump points — verifiably routes through the
   :class:`EventScheduler`/:class:`EventBus` (asserted via the
   observability counters); the retired "polled" knob is rejected.
"""

import gc
from dataclasses import replace

import pytest

from repro.attack.explframe import ExplFrameConfig
from repro.attack.orchestrator import AttackCampaign
from repro.attack.templating import TemplatorConfig
from repro.core import Machine, MachineConfig
from repro.core.machine import MachineSnapshot
from repro.defense.watchdog import WatchdogConfig
from repro.dram.flipmodel import FlipModelConfig
from repro.dram.geometry import DRAMGeometry
from repro.sim.chaos import ChaosEngine, chaos_profile
from repro.sim.errors import ConfigError
from repro.sim.units import MIB, MS, PAGE_SIZE

FAST = ExplFrameConfig(
    templator=TemplatorConfig(buffer_bytes=4 * MIB, rounds=650_000, batch_pairs=8)
)


def vulnerable_config(seed=7, timed_core="events"):
    return MachineConfig(
        seed=seed,
        geometry=DRAMGeometry.small(),
        flip_model=FlipModelConfig.highly_vulnerable(),
        timed_core=timed_core,
    )


class TestSnapshotFork:
    def test_fork_preserves_clock_and_pending_events(self):
        machine = Machine(MachineConfig.small(seed=0))
        machine.run_until(10 * MS)
        fork = machine.fork()
        assert fork.clock.now_ns == machine.clock.now_ns
        assert fork.events.pending() == machine.events.pending()

    def test_fork_is_independent_of_original(self):
        machine = Machine(MachineConfig.small(seed=0))
        fork = machine.fork()
        fork.run_until(50 * MS)
        assert machine.clock.now_ns == 0
        assert fork.clock.now_ns == 50 * MS

    def test_fork_gets_fresh_observability(self):
        machine = Machine(MachineConfig.small(seed=0))
        machine.run_until(10 * MS)
        before = machine.obs.metrics.snapshot()["sim.events.scheduled"]
        fork = machine.fork()
        assert fork.obs is not machine.obs
        # The fork's hub starts clean; the original's is untouched.
        assert fork.obs.metrics.snapshot()["sim.events.scheduled"] == 0
        assert machine.obs.metrics.snapshot()["sim.events.scheduled"] == before

    def test_fork_reseed_rekeys_rng_without_touching_original(self):
        machine = Machine(MachineConfig.small(seed=0))
        fork = machine.fork(seed=123)
        assert fork.rng.master_seed == 123
        assert machine.rng.master_seed == 0

    def test_same_seed_forks_share_a_destiny(self):
        snapshot = Machine(MachineConfig.small(seed=0)).snapshot()
        twin_a, _ = snapshot.fork(seed=5)
        twin_b, _ = snapshot.fork(seed=5)
        twin_a.run_until(100 * MS)
        twin_b.run_until(100 * MS)
        assert twin_a.stats() == twin_b.stats()

    def test_snapshot_extras_ride_along(self):
        machine = Machine(MachineConfig.small(seed=0))
        snapshot = machine.snapshot(extras={"tag": [1, 2, 3]})
        _, extras_a = snapshot.fork()
        _, extras_b = snapshot.fork()
        assert extras_a == {"tag": [1, 2, 3]}
        extras_a["tag"].append(4)
        assert extras_b == {"tag": [1, 2, 3]}

    def test_polled_core_is_retired(self):
        with pytest.raises(ConfigError, match="retired"):
            replace(MachineConfig.small(seed=0), timed_core="polled")


class TestCowSnapshots:
    def test_forks_share_frames_until_write(self):
        machine = Machine(MachineConfig.small(seed=0))
        machine.controller.memory.write(0, b"seed data")
        snapshot = machine.snapshot()
        fork_a, _ = snapshot.fork()
        fork_b, _ = snapshot.fork()
        mem_a, mem_b = fork_a.controller.memory, fork_b.controller.memory
        assert mem_a.is_shared(0) and mem_b.is_shared(0)
        mem_a.write(0, b"DIVERGED!")
        assert mem_a.read(0, 9) == b"DIVERGED!"
        assert mem_b.read(0, 9) == b"seed data"
        assert machine.controller.memory.read(0, 9) == b"seed data"
        assert mem_a.cow_copies == 1 and mem_b.cow_copies == 0

    def test_fork_gc_releases_frame_refs(self):
        machine = Machine(MachineConfig.small(seed=0))
        machine.controller.memory.write(0, b"x")
        snapshot = machine.snapshot()
        frame = snapshot._frames[0]
        base_refs = frame.refs
        fork, _ = snapshot.fork()
        assert frame.refs == base_refs + 1
        del fork
        gc.collect()  # the machine graph is cyclic; force collection
        assert frame.refs == base_refs

    def test_ship_round_trip_of_partially_materialised_store(self):
        machine = Machine(MachineConfig.small(seed=0))
        machine.controller.memory.write(2 * PAGE_SIZE, b"payload")
        snapshot = machine.snapshot()
        clone = MachineSnapshot.from_bytes(snapshot.to_bytes())
        fork, _ = clone.fork()
        memory = fork.controller.memory
        assert memory.materialized_frames() == machine.controller.memory.materialized_frames()
        assert memory.read(2 * PAGE_SIZE, 7) == b"payload"
        memory.write(2 * PAGE_SIZE, b"rewrite")  # CoW privatises, clone unaffected
        sibling, _ = clone.fork()
        assert sibling.controller.memory.read(2 * PAGE_SIZE, 7) == b"payload"


class TestEventCoreIntegration:
    def test_refresh_dispatches_through_dram_queue(self):
        machine = Machine(MachineConfig.small(seed=0))
        refw = machine.controller.effective_refw_ns()
        machine.run_until(3 * refw + 1)
        snap = machine.obs.metrics.snapshot()
        assert snap["sim.events.dispatched{queue=dram}"] >= 3

    def test_scheduler_ticks_through_os_queue(self):
        machine = Machine(MachineConfig.small(seed=0))
        machine.run_until(20 * MS)
        snap = machine.obs.metrics.snapshot()
        assert machine.scheduler.ticks == 20 * MS // machine.scheduler.TIMESLICE_NS
        assert snap["os.sched.ticks"] == machine.scheduler.ticks
        assert snap["sim.events.dispatched{queue=os}"] >= machine.scheduler.ticks

    def test_kswapd_wake_arms_mm_queue_event(self):
        machine = Machine(MachineConfig.small(seed=0))
        zone = next(iter(machine.node.zones.values()))
        machine.kswapd.wake(zone)
        assert machine.events.pending("mm") == 1
        machine.events.dispatch_due("mm")
        assert machine.kswapd.runs == 1
        assert machine.events.pending("mm") == 0
        snap = machine.obs.metrics.snapshot()
        assert snap["sim.events.dispatched{queue=mm}"] == 1

    def test_direct_reclaim_disarms_the_wake_event(self):
        machine = Machine(MachineConfig.small(seed=0))
        zone = next(iter(machine.node.zones.values()))
        machine.kswapd.wake(zone)
        machine.kswapd.run()  # OOM-path direct reclaim, out of band
        machine.events.dispatch_due("mm")
        assert machine.kswapd.runs == 1  # the armed event did not double-run

    def test_watchdog_scans_on_defense_queue(self):
        config = replace(MachineConfig.small(seed=0), watchdog=WatchdogConfig())
        machine = Machine(config)
        machine.run_until(200 * MS)
        snap = machine.obs.metrics.snapshot()
        assert machine.watchdog.scans >= 3
        assert snap["defense.watchdog.scans"] == machine.watchdog.scans
        assert snap["sim.events.dispatched{queue=defense}"] >= machine.watchdog.scans

    def test_syscalls_publish_on_the_bus_and_reach_chaos(self):
        machine = Machine(MachineConfig.small(seed=0))
        engine = ChaosEngine(machine.kernel, chaos_profile("steal"))
        machine.kernel.spawn("victim")
        snap = machine.obs.metrics.snapshot()
        assert snap["sim.bus.published"] >= 1
        assert snap["chaos.pumps"] >= 1
        assert engine is machine.kernel.chaos


@pytest.mark.slow
class TestCampaignForkEquivalence:
    def test_fork_campaign_matches_rebuild_digest(self):
        """The headline claim: forking a warm machine per attempt is
        bit-identical to rebuilding and re-templating per attempt."""
        config = vulnerable_config(seed=7)
        digests = []
        for fork in (False, True):
            campaign = AttackCampaign(
                config, 2, attack_config=FAST, fork_from_template=fork
            )
            result = campaign.run()
            assert result.successes == 2
            digests.append(result.digest())
        assert digests[0] == digests[1]
