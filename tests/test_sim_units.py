"""Units, alignment helpers and formatting."""

import pytest

from repro.sim import units


class TestConstants:
    def test_page_size_is_4k(self):
        assert units.PAGE_SIZE == 4096
        assert 1 << units.PAGE_SHIFT == units.PAGE_SIZE

    def test_binary_prefixes(self):
        assert units.MIB == 1024 * units.KIB
        assert units.GIB == 1024 * units.MIB

    def test_time_units(self):
        assert units.US == 1000
        assert units.MS == 1_000_000


class TestFormatBytes:
    def test_bytes(self):
        assert units.format_bytes(512) == "512 B"

    def test_kib(self):
        assert units.format_bytes(4096) == "4.0 KiB"

    def test_mib(self):
        assert units.format_bytes(3 * units.MIB // 2) == "1.5 MiB"

    def test_gib(self):
        assert units.format_bytes(2 * units.GIB) == "2.0 GiB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.format_bytes(-1)


class TestFormatTime:
    def test_ns(self):
        assert units.format_time_ns(47) == "47 ns"

    def test_us(self):
        assert units.format_time_ns(1500) == "1.5 us"

    def test_ms(self):
        assert units.format_time_ns(64 * units.MS) == "64.0 ms"

    def test_seconds(self):
        assert units.format_time_ns(2_500_000_000) == "2.500 s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.format_time_ns(-5)


class TestAlignment:
    def test_pages_for_bytes_rounds_up(self):
        assert units.pages_for_bytes(1) == 1
        assert units.pages_for_bytes(4096) == 1
        assert units.pages_for_bytes(4097) == 2
        assert units.pages_for_bytes(0) == 0

    def test_pages_for_bytes_negative(self):
        with pytest.raises(ValueError):
            units.pages_for_bytes(-1)

    def test_is_page_aligned(self):
        assert units.is_page_aligned(0)
        assert units.is_page_aligned(8192)
        assert not units.is_page_aligned(8193)

    def test_align_down(self):
        assert units.page_align_down(4097) == 4096
        assert units.page_align_down(4096) == 4096
        assert units.page_align_down(100) == 0

    def test_align_up(self):
        assert units.page_align_up(4097) == 8192
        assert units.page_align_up(4096) == 4096
        assert units.page_align_up(0) == 0

    def test_round_trip(self):
        for addr in (0, 1, 4095, 4096, 123456):
            down = units.page_align_down(addr)
            up = units.page_align_up(addr)
            assert down <= addr <= up
            assert units.is_page_aligned(down)
            assert units.is_page_aligned(up)
