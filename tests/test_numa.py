"""Multi-node NUMA: node-local allocation policy and fallback."""

import pytest

from repro.core import Machine, MachineConfig
from repro.dram.geometry import DRAMGeometry
from repro.mm.allocator import AllocationRequest
from repro.sim.errors import ConfigError, OutOfMemoryError
from repro.sim.units import PAGE_SIZE


@pytest.fixture
def numa_machine():
    """Two nodes, four CPUs: cpus 0-1 on node 0, cpus 2-3 on node 1."""
    return Machine(
        MachineConfig(
            seed=0,
            num_cpus=4,
            num_nodes=2,
            geometry=DRAMGeometry.small(),
        )
    )


class TestConfig:
    def test_cpus_must_divide_over_nodes(self):
        with pytest.raises(ConfigError):
            MachineConfig(num_cpus=3, num_nodes=2)

    def test_positive_nodes(self):
        with pytest.raises(ConfigError):
            MachineConfig(num_nodes=0)


class TestTopology:
    def test_two_nodes_split_memory(self, numa_machine):
        node0, node1 = numa_machine.nodes
        assert node0.total_pages == node1.total_pages
        assert node1.base_pfn == node0.total_pages

    def test_node_ranges_disjoint(self, numa_machine):
        node0, node1 = numa_machine.nodes
        for zone0 in node0.zones.values():
            for zone1 in node1.zones.values():
                assert zone0.end_pfn <= zone1.start_pfn or zone1.end_pfn <= zone0.start_pfn

    def test_cpu_to_node_map(self, numa_machine):
        allocator = numa_machine.allocator
        assert allocator.node_of_cpu(0) is numa_machine.nodes[0]
        assert allocator.node_of_cpu(1) is numa_machine.nodes[0]
        assert allocator.node_of_cpu(2) is numa_machine.nodes[1]
        assert allocator.node_of_cpu(3) is numa_machine.nodes[1]

    def test_node_of_pfn(self, numa_machine):
        allocator = numa_machine.allocator
        assert allocator.node_of_pfn(0) is numa_machine.nodes[0]
        last = allocator.total_pages - 1
        assert allocator.node_of_pfn(last) is numa_machine.nodes[1]

    def test_single_node_machine_has_no_map(self, small_machine):
        assert small_machine.allocator.cpu_to_node is None
        assert len(small_machine.allocator.nodes) == 1


class TestNodeLocalPolicy:
    def test_allocations_are_node_local(self, numa_machine):
        """Paper Section III: memory comes from the CPU's own node."""
        kernel = numa_machine.kernel
        near = kernel.spawn("near", cpu=0)
        far = kernel.spawn("far", cpu=2)
        for task, node in ((near, numa_machine.nodes[0]), (far, numa_machine.nodes[1])):
            va = kernel.sys_mmap(task.pid, 8 * PAGE_SIZE)
            for index in range(8):
                kernel.mem_write(task.pid, va + index * PAGE_SIZE, b"x")
                pfn = kernel.pfn_of(task.pid, va + index * PAGE_SIZE)
                assert numa_machine.allocator.node_of_pfn(pfn) is node

    def test_remote_fallback_when_local_exhausted(self, numa_machine):
        allocator = numa_machine.allocator
        node1 = numa_machine.nodes[1]
        # Exhaust node 1 directly.
        for zone in node1.zones.values():
            try:
                while True:
                    zone.buddy.alloc(10)
            except OutOfMemoryError:
                pass
        pfn = allocator.alloc_pages(AllocationRequest(order=3, cpu=2))
        assert allocator.node_of_pfn(pfn) is numa_machine.nodes[0]
        assert allocator.remote_node_allocs >= 1

    def test_free_returns_to_owning_zone(self, numa_machine):
        allocator = numa_machine.allocator
        pfn = allocator.alloc_pages(AllocationRequest(order=0, cpu=2, use_pcp=False))
        allocator.free_pages(pfn, 0, cpu=2, use_pcp=False)
        zone = allocator.zone_of_pfn(pfn)
        assert zone.contains(pfn)
        assert numa_machine.allocator.node_of_pfn(pfn) is numa_machine.nodes[1]


class TestSteeringAcrossNodes:
    def test_same_cpu_steering_still_works(self, numa_machine):
        """The pcp channel is unchanged on a NUMA machine (same CPU)."""
        kernel = numa_machine.kernel
        attacker = kernel.spawn("attacker", cpu=2)
        victim = kernel.spawn("victim", cpu=2)
        va = kernel.sys_mmap(attacker.pid, PAGE_SIZE)
        kernel.mem_write(attacker.pid, va, b"x")
        staged = kernel.pfn_of(attacker.pid, va)
        kernel.sys_munmap(attacker.pid, va, PAGE_SIZE)
        victim_va = kernel.sys_mmap(victim.pid, PAGE_SIZE)
        kernel.mem_write(victim.pid, victim_va, b"y")
        assert kernel.pfn_of(victim.pid, victim_va) == staged

    def test_cross_node_victim_misses(self, numa_machine):
        """A victim on the other node allocates node-locally elsewhere."""
        kernel = numa_machine.kernel
        attacker = kernel.spawn("attacker", cpu=0)
        victim = kernel.spawn("victim", cpu=2)
        va = kernel.sys_mmap(attacker.pid, PAGE_SIZE)
        kernel.mem_write(attacker.pid, va, b"x")
        staged = kernel.pfn_of(attacker.pid, va)
        kernel.sys_munmap(attacker.pid, va, PAGE_SIZE)
        victim_va = kernel.sys_mmap(victim.pid, PAGE_SIZE)
        kernel.mem_write(victim.pid, victim_va, b"y")
        got = kernel.pfn_of(victim.pid, victim_va)
        assert got != staged
        assert numa_machine.allocator.node_of_pfn(got) is numa_machine.nodes[1]


class TestProcfsPerNode:
    def test_buddyinfo_for_each_node(self, numa_machine):
        from repro.os import procfs

        text0 = procfs.buddyinfo(numa_machine.nodes[0])
        text1 = procfs.buddyinfo(numa_machine.nodes[1])
        assert text0.startswith("Node 0")
        assert text1.startswith("Node 1")
