"""Additional property-based tests over core invariants."""

from hypothesis import given, settings, strategies as st

from repro.ciphers.present import Present, inv_p_layer, p_layer
from repro.defense.watchdog import ActivationLedger
from repro.dram.cache import CpuCache, CpuCacheConfig
from repro.mm.zone import ZoneWatermarks
from repro.pfa.pfa import expected_remaining_candidates
from repro.sim.units import page_align_down, page_align_up


class TestPresentProperties:
    @given(state=st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=100)
    def test_p_layer_bijective(self, state):
        assert inv_p_layer(p_layer(state)) == state

    @given(state=st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=50)
    def test_p_layer_preserves_popcount(self, state):
        assert bin(p_layer(state)).count("1") == bin(state).count("1")

    @given(
        key=st.binary(min_size=10, max_size=10),
        pt=st.binary(min_size=8, max_size=8),
    )
    @settings(max_examples=10, deadline=None)
    def test_present_round_trip_property(self, key, pt):
        cipher = Present(key)
        assert cipher.decrypt_block(cipher.encrypt_block(pt)) == pt


class TestCacheProperties:
    @given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=200))
    @settings(max_examples=50)
    def test_occupancy_never_exceeds_capacity(self, addrs):
        cache = CpuCache(CpuCacheConfig(line_size=64, sets=8, ways=2))
        for addr in addrs:
            cache.access(addr)
        assert cache.occupancy() <= 16

    @given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 16), max_size=100))
    @settings(max_examples=50)
    def test_flush_then_access_always_misses(self, addrs):
        cache = CpuCache(CpuCacheConfig(line_size=64, sets=8, ways=2))
        for addr in addrs:
            cache.access(addr)
            cache.flush(addr)
            assert cache.access(addr) is False
            cache.flush(addr)


class TestWatermarkProperties:
    @given(pages=st.integers(min_value=64, max_value=1 << 22))
    @settings(max_examples=100)
    def test_ordering_holds_at_every_size(self, pages):
        wm = ZoneWatermarks.for_zone_size(pages)
        assert 0 < wm.min_pages <= wm.low_pages <= wm.high_pages
        assert wm.min_pages <= max(pages // 8, 1)


class TestPfaExpectationProperties:
    @given(n=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=100)
    def test_bounded(self, n):
        value = expected_remaining_candidates(n)
        assert 1.0 <= value <= 256.0

    @given(n=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50)
    def test_monotone_nonincreasing(self, n):
        assert expected_remaining_candidates(n + 1) <= expected_remaining_candidates(n)


class TestLedgerProperties:
    @given(
        events=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),  # epoch
                st.integers(min_value=1, max_value=5),  # pid
                st.integers(min_value=0, max_value=1000),  # activations
            ),
            max_size=100,
        )
    )
    @settings(max_examples=50)
    def test_totals_match_event_sum(self, events):
        ledger = ActivationLedger()
        expected: dict[int, int] = {}
        for epoch, pid, activations in events:
            ledger.record(epoch, pid, activations)
            if activations > 0:
                expected[pid] = expected.get(pid, 0) + activations
        assert ledger.totals() == expected

    @given(
        events=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=500),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=50)
    def test_max_per_window_is_a_max(self, events):
        ledger = ActivationLedger()
        per_epoch: dict[int, int] = {}
        for epoch, activations in events:
            ledger.record(epoch, 7, activations)
            if activations > 0:
                per_epoch[epoch] = per_epoch.get(epoch, 0) + activations
        assert ledger.max_per_window(7) == max(per_epoch.values(), default=0)


class TestAlignmentProperties:
    @given(addr=st.integers(min_value=0, max_value=1 << 48))
    @settings(max_examples=100)
    def test_align_idempotent(self, addr):
        assert page_align_down(page_align_down(addr)) == page_align_down(addr)
        assert page_align_up(page_align_up(addr)) == page_align_up(addr)

    @given(addr=st.integers(min_value=0, max_value=1 << 48))
    @settings(max_examples=100)
    def test_bounds(self, addr):
        assert page_align_up(addr) - page_align_down(addr) in (0, 4096)
