"""Hammer primitives: timing-based bank classification, flush necessity."""

import pytest

from repro.attack.hammer import Hammerer
from repro.sim.errors import ConfigError
from repro.sim.units import PAGE_SIZE


@pytest.fixture
def setup(small_machine):
    kernel = small_machine.kernel
    task = kernel.spawn("attacker", cpu=0)
    hammerer = Hammerer(kernel, task.pid, rounds=600_000)
    return small_machine, kernel, task, hammerer


def resident_pair(machine, kernel, task, hammerer, same_bank=True):
    """Map a buffer and find two resident VAs with a known bank relation."""
    va = hammerer.map_buffer(4 * 1024 * 1024)
    hammerer.fill(va, 1024, 0xFF)
    mapping = machine.mapping
    pa0 = kernel.resolve_pa(task.pid, va)
    d0 = mapping.to_dram(pa0)
    for offset in range(PAGE_SIZE, 1024 * PAGE_SIZE, PAGE_SIZE):
        pa = kernel.resolve_pa(task.pid, va + offset)
        d = mapping.to_dram(pa)
        same = d.bank_key() == d0.bank_key() and d.row != d0.row
        if same_bank and same:
            return va, va + offset
        if not same_bank and d.bank_key() != d0.bank_key():
            return va, va + offset
    raise AssertionError("no suitable pair found")


class TestTimingProbe:
    def test_same_bank_pair_detected(self, setup):
        machine, kernel, task, hammerer = setup
        va_a, va_b = resident_pair(machine, kernel, task, hammerer, same_bank=True)
        assert hammerer.is_same_bank_pair(va_a, va_b)

    def test_different_bank_pair_rejected(self, setup):
        machine, kernel, task, hammerer = setup
        va_a, va_b = resident_pair(machine, kernel, task, hammerer, same_bank=False)
        assert not hammerer.is_same_bank_pair(va_a, va_b)

    def test_probe_timing_gap(self, setup):
        machine, kernel, task, hammerer = setup
        same = resident_pair(machine, kernel, task, hammerer, same_bank=True)
        diff = resident_pair(machine, kernel, task, hammerer, same_bank=False)
        assert hammerer.probe_pair_ns(*same) > 2 * hammerer.probe_pair_ns(*diff)

    def test_threshold_between_extremes(self, setup):
        machine, _, _, hammerer = setup
        timing = machine.controller.timing
        threshold = hammerer.row_conflict_threshold_ns()
        assert 2 * timing.t_cas_ns < threshold < 2 * timing.t_rc_ns


class TestFill:
    def test_fill_makes_pages_resident(self, setup):
        _, kernel, task, hammerer = setup
        va = hammerer.map_buffer(8 * PAGE_SIZE)
        hammerer.fill(va, 8, 0xAA)
        assert task.mm.rss_pages == 8
        assert kernel.mem_read(task.pid, va, 4) == b"\xaa" * 4

    def test_pattern_validated(self, setup):
        _, _, _, hammerer = setup
        va = hammerer.map_buffer(PAGE_SIZE)
        with pytest.raises(ConfigError):
            hammerer.fill(va, 1, 256)

    def test_rounds_validated(self, setup):
        _, kernel, task, _ = setup
        with pytest.raises(ConfigError):
            Hammerer(kernel, task.pid, rounds=0)


class TestHammering:
    def test_hammer_pair_accumulates_stats(self, setup):
        machine, kernel, task, hammerer = setup
        va_a, va_b = resident_pair(machine, kernel, task, hammerer, same_bank=True)
        result = hammerer.hammer_pair(va_a, va_b, rounds=10_000)
        assert result.activations == 20_000
        assert hammerer.total_rounds >= 10_000
        assert hammerer.total_activations >= 20_000

    def test_no_flush_defeats_hammering(self, setup):
        """The clflush-free loop never reaches DRAM (negative control)."""
        machine, kernel, task, hammerer = setup
        va_a, va_b = resident_pair(machine, kernel, task, hammerer, same_bank=True)
        result = hammerer.hammer_without_flush(va_a, va_b, rounds=100_000)
        assert result.activations <= 2
        assert result.flips == []

    def test_find_same_bank_pairs_validates_separation(self, setup):
        _, _, _, hammerer = setup
        with pytest.raises(ConfigError):
            hammerer.find_same_bank_pairs(0, 10, separation_bytes=100)
