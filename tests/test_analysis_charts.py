"""ASCII chart rendering."""

import pytest

from repro.analysis.charts import ascii_chart, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_monotone_series_uses_extremes(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8])
        assert line[0] == " "  # lowest bucket
        assert line[-1] == "█"  # highest bucket

    def test_length_preserved(self):
        assert len(sparkline(list(range(17)))) == 17


class TestAsciiChart:
    def test_basic_shape(self):
        chart = ascii_chart([0, 1, 2, 3], [0, 1, 4, 9], width=20, height=5)
        lines = chart.splitlines()
        # height grid rows + axis + x labels
        assert len(lines) == 5 + 2
        assert "*" in chart

    def test_extremes_plotted_at_corners(self):
        chart = ascii_chart([0, 10], [0, 100], width=10, height=4)
        lines = chart.splitlines()
        assert lines[0].rstrip().endswith("*")  # max y at right edge, top row
        assert "*" in lines[3]  # min y on the bottom grid row

    def test_labels_rendered(self):
        chart = ascii_chart([0, 1], [0, 1], y_label="bits", x_label="ciphertexts")
        assert chart.startswith("bits")
        assert chart.rstrip().endswith("ciphertexts")

    def test_axis_annotations(self):
        chart = ascii_chart([5, 25], [2, 8], width=12, height=4)
        assert "8" in chart and "2" in chart
        assert "5" in chart and "25" in chart

    def test_constant_y_does_not_crash(self):
        chart = ascii_chart([0, 1, 2], [7, 7, 7], width=10, height=3)
        assert "*" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart([1], [1, 2])
        with pytest.raises(ValueError):
            ascii_chart([], [])
        with pytest.raises(ValueError):
            ascii_chart([1], [1], width=2)
