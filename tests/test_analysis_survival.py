"""Survival analysis over synthetic AttackRunReport stand-ins."""

from dataclasses import dataclass, field

from repro.analysis.survival import (
    attempts_to_success,
    failure_breakdown,
    mean_attempts,
    survival_rate,
    survival_summary,
    survival_table,
)


@dataclass
class FakeReport:
    success: bool
    failure_classes: list = field(default_factory=list)
    attempts: int = 1
    candidates_tried: int = 1
    recoveries: tuple = ()


WON = FakeReport(True, [], attempts=4)
WON_HARD = FakeReport(True, ["steering-miss"], attempts=9, recoveries=("re-steer",))
LOST = FakeReport(False, ["steering-miss", "budget-exhausted"], attempts=12)


class TestAggregates:
    def test_survival_rate(self):
        assert survival_rate([]) == 0.0
        assert survival_rate([WON, LOST]) == 0.5
        assert survival_rate([WON, WON_HARD]) == 1.0

    def test_failure_breakdown_counts_runs_not_retries(self):
        breakdown = failure_breakdown([WON_HARD, LOST])
        assert breakdown["steering-miss"] == 2
        assert breakdown["budget-exhausted"] == 1

    def test_breakdown_sorted_by_frequency(self):
        keys = list(failure_breakdown([WON_HARD, LOST]).keys())
        assert keys == ["steering-miss", "budget-exhausted"]

    def test_attempts_to_success_only_counts_wins(self):
        assert attempts_to_success([WON, WON_HARD, LOST]) == [4, 9]
        assert mean_attempts([WON, WON_HARD, LOST]) == 6.5
        assert mean_attempts([LOST]) is None

    def test_summary_fields(self):
        summary = survival_summary("steal", [WON, WON_HARD, LOST])
        assert summary["runs"] == 3
        assert summary["recovered"] == 2
        assert summary["survival_rate"] == 2 / 3
        assert summary["total_recoveries"] == 1


class TestTable:
    def test_renders_one_row_per_profile(self):
        table = survival_table({"none": [WON], "steal": [WON_HARD, LOST]})
        assert "none" in table
        assert "steal" in table
        assert "100%" in table
        assert "50%" in table

    def test_no_failures_renders_dash(self):
        table = survival_table({"none": [WON]})
        assert "-" in table
