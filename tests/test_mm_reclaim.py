"""kswapd reclaim over registered reclaimable blocks."""

import pytest

from repro.mm.page import FrameTable, PageFlags
from repro.mm.reclaim import Kswapd
from repro.mm.zone import Zone, ZoneType
from repro.sim.errors import ConfigError


def make_zone(pages=2048):
    table = FrameTable(pages)
    return Zone(ZoneType.NORMAL, table, 0, pages, num_cpus=1)


class TestRegistration:
    def test_register_and_count(self):
        zone = make_zone()
        kswapd = Kswapd()
        pfn = zone.buddy.alloc(3)
        kswapd.register_reclaimable(zone, pfn, 3)
        assert kswapd.reclaimable_pages(zone) == 8

    def test_register_foreign_pfn_rejected(self):
        zone = make_zone()
        kswapd = Kswapd()
        with pytest.raises(ConfigError):
            kswapd.register_reclaimable(zone, 99999, 0)

    def test_unregister(self):
        zone = make_zone()
        kswapd = Kswapd()
        pfn = zone.buddy.alloc(0)
        kswapd.register_reclaimable(zone, pfn, 0)
        assert kswapd.unregister_reclaimable(zone, pfn)
        assert kswapd.reclaimable_pages(zone) == 0

    def test_unregister_missing(self):
        zone = make_zone()
        kswapd = Kswapd()
        assert not kswapd.unregister_reclaimable(zone, 5)


class TestWakeRun:
    def test_wake_is_idempotent(self):
        zone = make_zone()
        kswapd = Kswapd()
        kswapd.wake(zone)
        kswapd.wake(zone)
        assert kswapd.wake_count == 1
        assert kswapd.pending_zones() == [zone.name]

    def test_run_reclaims_until_high(self):
        zone = make_zone()
        kswapd = Kswapd()
        blocks = []
        # Consume the zone below the low watermark, registering everything.
        while zone.buddy.free_pages > zone.watermarks.min_pages + 8:
            pfn = zone.buddy.alloc(3)
            blocks.append(pfn)
            kswapd.register_reclaimable(zone, pfn, 3)
        assert zone.below_low_watermark()
        kswapd.wake(zone)
        reclaimed = kswapd.run()
        assert reclaimed > 0
        assert zone.above_high_watermark()
        assert kswapd.pending_zones() == []

    def test_run_without_pool_is_safe(self):
        zone = make_zone()
        kswapd = Kswapd()
        while zone.buddy.free_pages > zone.watermarks.min_pages + 8:
            zone.buddy.alloc(3)
        kswapd.wake(zone)
        assert kswapd.run() == 0

    def test_reclaim_is_oldest_first(self):
        zone = make_zone()
        kswapd = Kswapd()
        first = zone.buddy.alloc(0)
        second = zone.buddy.alloc(0)
        kswapd.register_reclaimable(zone, first, 0)
        kswapd.register_reclaimable(zone, second, 0)
        # Starve the zone so reclaim definitely triggers.
        while zone.buddy.free_pages > zone.watermarks.min_pages:
            zone.buddy.alloc(0)
        kswapd.wake(zone)
        kswapd.run()
        # The oldest registered block was freed first.
        assert zone.buddy.frames[first].flags is PageFlags.FREE_BUDDY

    def test_counters(self):
        zone = make_zone()
        kswapd = Kswapd()
        kswapd.wake(zone)
        kswapd.run()
        assert kswapd.runs == 1
