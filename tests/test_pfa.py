"""Persistent Fault Analysis: statistics, recovery, schedule inversion."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ciphers.aes import AES, expand_key
from repro.ciphers.aes_tables import AES_SBOX
from repro.ciphers.batch import aes128_encrypt_batch, random_plaintexts
from repro.ciphers.faults import FaultSpec, apply_fault
from repro.pfa.pfa import (
    PfaState,
    ciphertexts_to_unique_key,
    disambiguate_with_known_pair,
    expected_remaining_candidates,
    invert_key_schedule_128,
    recover_k10_known_fault,
    recover_k10_known_faults,
    recover_k10_unknown_fault,
    refine_with_doubled_values,
    saturated_for_faults,
)
from repro.sim.errors import FaultError

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
SPEC = FaultSpec(index=0x42, bit=3)
FAULTY_SBOX = apply_fault(AES_SBOX, SPEC)
V_STAR = AES_SBOX[0x42]


def faulty_batch(n, rng):
    return aes128_encrypt_batch(random_plaintexts(n, rng), KEY, FAULTY_SBOX)


@pytest.fixture(scope="module")
def saturated_state():
    rng = np.random.default_rng(7)
    state = PfaState()
    state.update(faulty_batch(6000, rng))
    return state


class TestPfaState:
    def test_counts_accumulate(self):
        state = PfaState()
        state.update([bytes(16), bytes(16)])
        assert state.total == 2
        assert state.counts[0][0] == 2

    def test_update_empty_list(self):
        state = PfaState()
        state.update([])
        assert state.total == 0

    def test_bad_shape(self):
        with pytest.raises(FaultError):
            PfaState().update(np.zeros((3, 8), dtype=np.uint8))

    def test_missing_values_shrink(self):
        rng = np.random.default_rng(1)
        state = PfaState()
        state.update(faulty_batch(100, rng))
        early = len(state.missing_values(0))
        state.update(faulty_batch(3000, rng))
        assert len(state.missing_values(0)) < early

    def test_structurally_missing_value_never_appears(self, saturated_state):
        k10 = expand_key(KEY)[10]
        for position in range(16):
            assert (V_STAR ^ k10[position]) in saturated_state.missing_values(position)

    def test_unique_after_enough_data(self, saturated_state):
        assert saturated_state.is_unique()
        assert saturated_state.log2_keyspace() == 0.0

    def test_keyspace_full_when_empty(self):
        assert PfaState().log2_keyspace() == 128.0

    def test_doubled_value_is_most_frequent(self, saturated_state):
        k10 = expand_key(KEY)[10]
        v_prime = FAULTY_SBOX[0x42]
        hits = sum(
            saturated_state.most_frequent(position) == (v_prime ^ k10[position])
            for position in range(16)
        )
        assert hits >= 12  # statistics, not exact at 6000 samples


class TestExpectedCurve:
    def test_starts_at_256(self):
        assert expected_remaining_candidates(0) == 256.0

    def test_monotone_decreasing(self):
        values = [expected_remaining_candidates(n) for n in (0, 100, 500, 2000, 5000)]
        assert values == sorted(values, reverse=True)

    def test_limits_to_one(self):
        assert abs(expected_remaining_candidates(50_000) - 1.0) < 1e-6

    def test_negative_rejected(self):
        with pytest.raises(FaultError):
            expected_remaining_candidates(-1)


class TestKnownFaultRecovery:
    def test_recovers_k10(self, saturated_state):
        candidates = recover_k10_known_fault(saturated_state, V_STAR)
        assert [c[0] for c in candidates] == list(expand_key(KEY)[10])

    def test_v_star_range(self, saturated_state):
        with pytest.raises(FaultError):
            recover_k10_known_fault(saturated_state, 256)

    def test_ciphertexts_to_unique(self):
        rng = np.random.default_rng(3)
        consumed, state = ciphertexts_to_unique_key(
            lambda n: faulty_batch(n, rng), V_STAR
        )
        # Zhang et al. report ~2000-2600 on average for t=1.
        assert 1000 < consumed < 6000
        assert state.is_unique()

    def test_ciphertexts_to_unique_limit(self):
        """An unfaulted cipher never saturates — the limit must trip."""
        rng = np.random.default_rng(3)

        def clean_batch(n):
            return aes128_encrypt_batch(random_plaintexts(n, rng), KEY)

        with pytest.raises(FaultError):
            ciphertexts_to_unique_key(clean_batch, V_STAR, limit=3000)


class TestMultiFaultRecovery:
    """t = 2 faults: the ECC-bypass (two flips per word) analysis case."""

    @pytest.fixture(scope="class")
    def double_fault_state(self):
        faulty = apply_fault(apply_fault(AES_SBOX, FaultSpec(0x42, 3)), FaultSpec(0x43, 1))
        rng = np.random.default_rng(2)
        state = PfaState()
        state.update(
            aes128_encrypt_batch(random_plaintexts(8000, rng), KEY, faulty)
        )
        return state, faulty

    def test_saturates_to_two_missing(self, double_fault_state):
        state, _ = double_fault_state
        assert saturated_for_faults(state, 2)
        assert not state.is_unique()  # t=1 criterion never fires

    def test_missing_sets_leave_pairwise_degeneracy(self, double_fault_state):
        state, _ = double_fault_state
        v_stars = [AES_SBOX[0x42], AES_SBOX[0x43]]
        candidates = recover_k10_known_faults(state, v_stars)
        k10 = expand_key(KEY)[10]
        for position in range(16):
            assert len(candidates[position]) == 2
            assert k10[position] in candidates[position]

    def test_doubled_values_break_the_degeneracy(self, double_fault_state):
        state, faulty = double_fault_state
        v_stars = [AES_SBOX[0x42], AES_SBOX[0x43]]
        v_primes = [faulty[0x42], faulty[0x43]]
        candidates = recover_k10_known_faults(state, v_stars)
        refined = refine_with_doubled_values(state, candidates, v_primes)
        assert bytes(c[0] for c in refined) == expand_key(KEY)[10]
        assert all(len(c) == 1 for c in refined)

    def test_single_fault_reduces_to_t1(self, saturated_state):
        candidates = recover_k10_known_faults(saturated_state, [V_STAR])
        assert [c[0] for c in candidates] == list(expand_key(KEY)[10])

    def test_validation(self, saturated_state):
        with pytest.raises(FaultError):
            recover_k10_known_faults(saturated_state, [])
        with pytest.raises(FaultError):
            recover_k10_known_faults(saturated_state, [300])
        with pytest.raises(FaultError):
            saturated_for_faults(saturated_state, 0)
        with pytest.raises(FaultError):
            refine_with_doubled_values(saturated_state, [[0]] * 16, [])

    def test_refinement_returns_subset(self, saturated_state):
        """Refinement only ever narrows the candidate sets."""
        candidates = recover_k10_known_faults(saturated_state, [V_STAR])
        refined = refine_with_doubled_values(saturated_state, candidates, [0x00])
        for position in range(16):
            assert refined[position]
            assert set(refined[position]) <= set(candidates[position])


class TestUnknownFaultRecovery:
    def test_reduces_to_8_bits(self, saturated_state):
        survivors = recover_k10_unknown_fault(saturated_state)
        assert len(survivors) == 256
        k10 = expand_key(KEY)[10]
        assert any(key == k10 for _, key in survivors)

    def test_requires_saturation(self):
        with pytest.raises(FaultError):
            recover_k10_unknown_fault(PfaState())

    def test_disambiguation_with_known_pair(self, saturated_state):
        survivors = recover_k10_unknown_fault(saturated_state)
        pt = bytes(16)
        ct = AES(KEY).encrypt_block(pt)
        v_star, k10 = disambiguate_with_known_pair(survivors, pt, ct)
        assert v_star == V_STAR
        assert k10 == expand_key(KEY)[10]

    def test_disambiguation_returns_none_on_garbage(self):
        assert disambiguate_with_known_pair([(0, bytes(16))], bytes(16), bytes(16)) is None


class TestScheduleInversion:
    def test_known_key(self):
        assert invert_key_schedule_128(expand_key(KEY)[10]) == KEY

    @given(key=st.binary(min_size=16, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_round_trip_property(self, key):
        assert invert_key_schedule_128(expand_key(key)[10]) == key

    def test_length_validated(self):
        with pytest.raises(FaultError):
            invert_key_schedule_128(bytes(8))
