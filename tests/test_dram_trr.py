"""Target Row Refresh: sampler mechanics and attack interaction."""

import pytest

from repro.dram.bank import Bank
from repro.dram.controller import MemoryController
from repro.dram.flipmodel import FlipModelConfig
from repro.dram.geometry import DRAMAddress, DRAMGeometry
from repro.dram.mapping import LinearMapping
from repro.dram.timing import DRAMTiming
from repro.dram.trr import TrrConfig, TrrState
from repro.sim.clock import SimClock
from repro.sim.errors import ConfigError
from repro.sim.rng import RngStreams

GEO = DRAMGeometry.small()

# Weak cells that double-sided hammering flips easily without TRR.
FLIPPY = FlipModelConfig(
    weak_cells_per_row_mean=2.0,
    threshold_mean=100_000,
    threshold_sd=20_000,
    threshold_min=60_000,
)


def make_controller(trr=None, seed=0):
    return MemoryController(
        geometry=GEO,
        mapping=LinearMapping(GEO),
        timing=DRAMTiming(),
        flip_config=FLIPPY,
        rng=RngStreams(seed),
        clock=SimClock(),
        trr_config=trr,
    )


def bank_addrs(controller, rows):
    m = controller.mapping
    return [m.to_phys(DRAMAddress(0, 0, 0, row, 0)) for row in rows]


class TestTrrConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            TrrConfig(enabled=True, tracker_entries=0)
        with pytest.raises(ConfigError):
            TrrConfig(enabled=True, threshold=0)

    def test_state_requires_enabled(self):
        with pytest.raises(ConfigError):
            TrrState(TrrConfig.disabled())

    def test_presets(self):
        assert not TrrConfig.disabled().enabled
        assert TrrConfig.ddr4_like().enabled


class TestSampler:
    def test_tracked_row_clamped(self):
        state = TrrState(TrrConfig.ddr4_like(tracker_entries=2, threshold=100))
        assert state.observe(5, 50) == 50
        assert state.observe(5, 150) == 50
        assert state.neighbor_refreshes == 1

    def test_multiple_crossings(self):
        state = TrrState(TrrConfig.ddr4_like(tracker_entries=1, threshold=100))
        assert state.observe(5, 350) == 50
        assert state.neighbor_refreshes == 3

    def test_hot_row_evicts_cold_entry(self):
        state = TrrState(TrrConfig.ddr4_like(tracker_entries=1, threshold=100))
        state.observe(1, 10)  # cold traffic claims the only entry
        # A hotter row displaces it and gets clamped immediately.
        assert state.observe(2, 500) == 0
        assert state.is_tracked(2)
        assert not state.is_tracked(1)

    def test_colder_row_misses_full_tracker(self):
        state = TrrState(TrrConfig.ddr4_like(tracker_entries=1, threshold=10_000))
        state.observe(1, 5_000)  # hot row holds the entry
        assert state.observe(2, 400) == 400  # colder row passes through raw
        assert state.tracker_misses == 1

    def test_equally_hot_rows_do_not_thrash(self):
        """The many-sided bypass: equal raw counts never displace entries."""
        state = TrrState(TrrConfig.ddr4_like(tracker_entries=2, threshold=1_000))
        state.observe(1, 500)
        state.observe(2, 500)
        assert state.observe(3, 500) == 500  # tracker full, equal heat -> miss
        assert state.tracker_misses == 1
        assert sorted(state.tracked_rows()) == [1, 2]

    def test_window_reset_frees_entries(self):
        state = TrrState(TrrConfig.ddr4_like(tracker_entries=1, threshold=100))
        state.observe(1, 10)
        state.window_reset()
        assert state.tracked_rows() == []
        assert state.observe(2, 10) == 10
        assert state.is_tracked(2)


class TestBankIntegration:
    def test_bank_clamps_tracked_rows(self):
        bank = Bank(64, trr=TrrState(TrrConfig.ddr4_like(tracker_entries=2, threshold=1000)))
        bank.bulk_activate(3, 2500)
        assert bank.activations_in_window(3) == 500
        assert bank.total_activations == 2500  # raw lifetime count

    def test_refresh_resets_sampler(self):
        trr = TrrState(TrrConfig.ddr4_like(tracker_entries=1, threshold=1000))
        bank = Bank(64, trr=trr)
        bank.bulk_activate(3, 10)
        bank.refresh()
        assert trr.tracked_rows() == []


class TestMitigationEffect:
    def test_double_sided_blocked(self):
        """TRR threshold 15k: max double-sided disturbance 30k < 60k cells."""
        protected = make_controller(TrrConfig.ddr4_like(tracker_entries=4, threshold=15_000))
        addrs = bank_addrs(protected, [99, 101])
        result = protected.hammer(addrs, 600_000)
        assert result.flips == []
        assert protected.trr_stats()["neighbor_refreshes"] > 0

    def test_unprotected_module_flips(self):
        bare = make_controller()
        addrs = bank_addrs(bare, [99, 101])
        assert bare.hammer(addrs, 600_000).flips

    def test_many_sided_bypasses_small_tracker(self):
        """More aggressor rows than tracker entries -> TRRespass."""
        trr = TrrConfig.ddr4_like(tracker_entries=2, threshold=15_000)
        protected = make_controller(trr, seed=0)
        # 8 aggressor rows; only 2 get tracked.
        rows = [90, 92, 94, 96, 98, 100, 102, 104]
        result = protected.hammer(bank_addrs(protected, rows), 600_000)
        assert result.flips
        assert protected.trr_stats()["tracker_misses"] > 0

    def test_large_tracker_stops_many_sided(self):
        trr = TrrConfig.ddr4_like(tracker_entries=16, threshold=15_000)
        protected = make_controller(trr, seed=0)
        rows = [90, 92, 94, 96, 98, 100, 102, 104]
        result = protected.hammer(bank_addrs(protected, rows), 600_000)
        assert result.flips == []

    def test_trr_stats_zero_when_disabled(self):
        controller = make_controller()
        controller.access(0)
        assert controller.trr_stats() == {
            "neighbor_refreshes": 0,
            "tracker_misses": 0,
        }
