"""CLI smoke tests (each command exercised through main())."""

import json
import re

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["attack"])
        assert args.seed == 7
        assert args.cipher == "aes"

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        # Loose match: an installed wheel may report its own metadata
        # version rather than the source tree's constant.
        assert re.match(r"repro \d+\.\d+", capsys.readouterr().out)


class TestAttackCommand:
    FAST = ["--buffer-mib", "4"]

    def test_success_exits_zero(self, capsys):
        assert main(["attack", "--seed", "7", *self.FAST]) == 0
        assert "KEY RECOVERED:        True" in capsys.readouterr().out

    def test_failure_exits_nonzero(self, capsys):
        # An invulnerable module: templating finds nothing, recovery fails.
        code = main(
            ["attack", "--seed", "7", "--density", "0.0", "--campaigns", "1",
             "--buffer-mib", "2"]
        )
        assert code == 1
        assert "KEY RECOVERED:        False" in capsys.readouterr().out

    def test_orchestrated_success_exits_zero(self, capsys):
        code = main(["attack", "--seed", "7", "--chaos", "steal", *self.FAST])
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos profile:        steal" in out
        assert "KEY RECOVERED:        True" in out

    def test_orchestrated_failure_exits_nonzero(self, capsys):
        code = main(
            ["attack", "--seed", "7", "--density", "0.0", "--campaigns", "1",
             "--buffer-mib", "2", "--orchestrate"]
        )
        assert code == 1
        assert "templating-exhausted" in capsys.readouterr().out

    def test_json_report(self, capsys):
        code = main(
            ["attack", "--seed", "7", "--chaos", "steal", "--json", *self.FAST]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["success"] is True
        assert report["chaos_profile"] == "steal"

    def test_json_report_carries_metrics(self, capsys):
        code = main(["attack", "--seed", "7", "--json", *self.FAST])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        metrics = report["metrics"]
        assert metrics["dram.hammer.calls"] > 0
        assert metrics["attack.template.campaigns"] >= 1

    def test_trace_file_loads_with_all_layers(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        code = main(
            ["attack", "--seed", "7", "--orchestrate", "--trace", str(trace),
             "--metrics", *self.FAST]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert "dram.hammer.calls" in out  # --metrics table
        doc = json.loads(trace.read_text())
        cats = {event.get("cat") for event in doc["traceEvents"]}
        assert {"dram", "mm", "os", "attack", "chaos"} <= cats

    def test_trace_jsonl_format(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        code = main(
            ["attack", "--seed", "7", "--trace", str(trace),
             "--trace-format", "jsonl", *self.FAST]
        )
        assert code == 0
        lines = [json.loads(line) for line in trace.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        assert any(row["type"] == "span" for row in lines[1:])

    def test_json_mode_keeps_stdout_clean(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        code = main(
            ["attack", "--seed", "7", "--json", "--trace", str(trace), *self.FAST]
        )
        assert code == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout is the report, nothing else
        assert "trace written to" in captured.err

    def test_single_shot_under_chaos_fails(self, capsys):
        code = main(
            ["attack", "--seed", "7", "--chaos", "steal", "--single-shot", *self.FAST]
        )
        assert code == 1
        assert "KEY RECOVERED:        False" in capsys.readouterr().out


class TestModalityOption:
    FAST = ["--buffer-mib", "4"]

    def test_list_modalities_prints_registry_and_exits_zero(self, capsys):
        assert main(["attack", "--list-modalities"]) == 0
        out = capsys.readouterr().out
        assert "explframe" in out
        assert "faultprobe" in out
        assert "FAULT+PROBE" in out  # descriptions ride along

    def test_unknown_modality_exits_two_with_the_available_list(self, capsys):
        assert main(["attack", "--modality", "nope", *self.FAST]) == 2
        err = capsys.readouterr().err
        assert "unknown attack modality 'nope'" in err
        assert "available: evictframe, explframe, faultprobe" in err

    def test_single_shot_is_explframe_only(self, capsys):
        code = main(
            ["attack", "--modality", "faultprobe", "--single-shot", *self.FAST]
        )
        assert code == 2
        assert "--single-shot" in capsys.readouterr().err

    def test_faultprobe_recovers_bits(self, capsys):
        code = main(["attack", "--seed", "7", "--modality", "faultprobe", *self.FAST])
        assert code == 0
        out = capsys.readouterr().out
        assert "modality:             faultprobe" in out
        assert "bits recovered:       4 of 4 targeted" in out
        assert "bit accuracy:         100.00%" in out
        assert "RUN SUCCEEDED:        True" in out

    def test_evictframe_recovers_key(self, capsys):
        code = main(["attack", "--seed", "7", "--modality", "evictframe", *self.FAST])
        assert code == 0
        out = capsys.readouterr().out
        assert "modality:             evictframe" in out
        assert "KEY RECOVERED:        True" in out

    def test_evict_knobs_require_evictframe(self, capsys):
        code = main(["attack", "--evict-slack", "4", *self.FAST])
        assert code == 2
        assert "--modality evictframe" in capsys.readouterr().err
        code = main(
            ["attack", "--modality", "faultprobe", "--evict-pattern", "interleave",
             *self.FAST]
        )
        assert code == 2
        assert "--modality evictframe" in capsys.readouterr().err

    def test_faultprobe_json_report_carries_extra_and_metrics(self, capsys):
        code = main(
            ["attack", "--seed", "7", "--modality", "faultprobe", "--json",
             *self.FAST]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["success"] is True
        assert report["modality"] == "faultprobe"
        assert report["extra"]["bits_recovered"] == 4
        assert report["extra"]["accuracy"] == 1.0
        assert report["metrics"]["attack.faultprobe.probes"] > 0
        assert "attack.pfa.ciphertexts" not in report["metrics"]


class TestScenarioOption:
    FAST = ["--buffer-mib", "4"]

    def test_unknown_preset_exits_two(self, capsys):
        assert main(["attack", "--scenario", "nope", *self.FAST]) == 2
        err = capsys.readouterr().err
        assert "single" in err and "duet" in err and "apartment-8" in err

    def test_malformed_json_file_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x", "target":')
        assert main(["attack", "--scenario", str(bad), *self.FAST]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_unknown_knob_in_file_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps(
                {
                    "name": "x",
                    "target": "a",
                    "tenants": [{"name": "a", "rate_hz": 40.0}],
                }
            )
        )
        assert main(["attack", "--scenario", str(bad), *self.FAST]) == 2
        assert "unknown tenant knob" in capsys.readouterr().err

    def test_unrecoverable_target_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps(
                {
                    "name": "x",
                    "target": "a",
                    "tenants": [{"name": "a", "cipher": "aes", "key_bits": 256}],
                }
            )
        )
        assert main(["attack", "--scenario", str(bad), *self.FAST]) == 2
        assert "PFA cannot recover" in capsys.readouterr().err

    def test_duet_json_report_names_tenants(self, capsys):
        code = main(
            ["attack", "--seed", "3", "--scenario", "duet", "--json", *self.FAST]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["target_tenant"] == "alice"
        assert report["background_tenants"] == 1
        assert report["workload"]["bob"]["role"] == "noise"
        assert report["workload"]["bob"]["served"] > 0


class TestSteerCommand:
    def test_same_cpu(self, capsys):
        assert main(["steer", "--trials", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "steering success: 100%" in out

    def test_cross_cpu(self, capsys):
        assert main(["steer", "--trials", "3", "--cross-cpu"]) == 0
        assert "0%" in capsys.readouterr().out

    def test_noise(self, capsys):
        assert main(["steer", "--trials", "3", "--noise", "16"]) == 0
        assert "noise=16" in capsys.readouterr().out


class TestProcfsCommand:
    @pytest.mark.parametrize(
        "view,needle",
        [
            ("buddyinfo", "zone"),
            ("zoneinfo", "pages free"),
            ("meminfo", "MemTotal"),
            ("maps", "[heap]"),
            ("status", "VmRSS"),
            ("pagetypeinfo", "Free pages count"),
        ],
    )
    def test_views(self, capsys, view, needle):
        assert main(["procfs", "--view", view]) == 0
        assert needle in capsys.readouterr().out


class TestPfaCommand:
    def test_aes(self, capsys):
        assert main(["pfa", "--cipher", "aes", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "correct:              True" in out

    def test_aes_custom_key(self, capsys):
        key = "00112233445566778899aabbccddeeff"
        assert main(["pfa", "--cipher", "aes", "--key", key]) == 0
        assert key in capsys.readouterr().out

    def test_present(self, capsys):
        assert main(["pfa", "--cipher", "present", "--seed", "3"]) == 0
        assert "correct:              True" in capsys.readouterr().out


class TestTemplateCommand:
    def test_survey(self, capsys):
        assert main(["template", "--buffer-mib", "2", "--show", "2", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "flips:" in out
        assert "va=0x" in out
