"""/proc-style views over live machine state."""

import pytest

from repro.os import procfs
from repro.sim.units import PAGE_SIZE


@pytest.fixture
def machine_with_task(small_machine):
    kernel = small_machine.kernel
    task = kernel.spawn("worker", cpu=0)
    va = kernel.sys_mmap(task.pid, 4 * PAGE_SIZE, name="heap")
    kernel.mem_write(task.pid, va, b"data")
    return small_machine, task, va


class TestBuddyinfo:
    def test_one_line_per_zone(self, small_machine):
        text = procfs.buddyinfo(small_machine.node)
        lines = text.splitlines()
        assert len(lines) == 3
        assert any("Normal" in line for line in lines)
        assert all(line.startswith("Node 0, zone") for line in lines)

    def test_counts_reflect_allocations(self, small_machine):
        before = procfs.buddyinfo(small_machine.node)
        zone = small_machine.node.zones[list(small_machine.node.zones)[-1]]
        zone.buddy.alloc(0)
        after = procfs.buddyinfo(small_machine.node)
        assert before != after


class TestZoneinfo:
    def test_contains_watermarks(self, small_machine):
        text = procfs.zoneinfo(small_machine.node)
        for token in ("pages free", "min", "low", "high", "spanned"):
            assert token in text

    def test_pcp_sections_per_cpu(self, small_machine):
        text = procfs.zoneinfo(small_machine.node)
        assert text.count("cpu: 0") == 3  # one per zone
        assert text.count("cpu: 1") == 3

    def test_pcp_count_updates(self, machine_with_task):
        machine, task, va = machine_with_task
        machine.kernel.sys_munmap(task.pid, va, PAGE_SIZE)
        text = procfs.zoneinfo(machine.node)
        assert "count: " in text


class TestMeminfo:
    def test_totals(self, small_machine):
        text = procfs.meminfo(small_machine.node)
        total_kb = small_machine.node.total_pages * 4
        assert f"MemTotal:       {total_kb:10d} kB" in text

    def test_free_shrinks(self, machine_with_task):
        machine, _, _ = machine_with_task
        text = procfs.meminfo(machine.node)
        free_line = [l for l in text.splitlines() if l.startswith("MemFree")][0]
        free_kb = int(free_line.split()[1])
        assert free_kb < machine.node.total_pages * 4


class TestMaps:
    def test_lists_vmas(self, machine_with_task):
        _, task, va = machine_with_task
        text = procfs.maps(task)
        assert f"{va:012x}" in text
        assert "[heap]" in text
        assert "rwxp" not in text  # anon rw mapping is rw-p

    def test_protection_bits(self, small_machine):
        from repro.vm.vma import Protection

        kernel = small_machine.kernel
        task = kernel.spawn("ro", cpu=0)
        kernel.sys_mmap(task.pid, PAGE_SIZE, prot=Protection.READ, name="rodata")
        assert "r--p" in procfs.maps(task)

    def test_empty_address_space(self, small_machine):
        task = small_machine.kernel.spawn("empty", cpu=0)
        assert procfs.maps(task) == ""


class TestStatus:
    def test_memory_lines(self, machine_with_task):
        _, task, _ = machine_with_task
        text = procfs.status_memory(task)
        assert f"Pid:    {task.pid}" in text
        assert "VmSize:         16 kB" in text
        assert "VmRSS:           4 kB" in text


class TestPagetypeinfo:
    def test_renders_all_orders(self, small_machine):
        text = procfs.pagetypeinfo(small_machine.node)
        lines = text.splitlines()
        assert len(lines) == 5  # title + header + 3 zones
        assert "Normal" in text
