"""Machine assembly, config presets and whole-machine determinism."""

import pytest

from repro.core import Machine, MachineConfig
from repro.dram.geometry import DRAMGeometry
from repro.sim.errors import ConfigError
from repro.sim.units import MIB, PAGE_SIZE


class TestConfig:
    def test_defaults(self):
        config = MachineConfig()
        assert config.num_cpus == 2
        assert config.mapping == "xor"

    def test_presets(self):
        assert MachineConfig.small().geometry.total_bytes == 64 * MIB
        assert MachineConfig.vulnerable().flip_model.weak_cells_per_row_mean > 0.1
        assert MachineConfig.invulnerable().flip_model.weak_cells_per_row_mean == 0.0

    def test_with_seed(self):
        config = MachineConfig.small(seed=1).with_seed(99)
        assert config.seed == 99
        assert config.geometry.total_bytes == 64 * MIB

    def test_validation(self):
        with pytest.raises(ConfigError):
            MachineConfig(num_cpus=0)
        with pytest.raises(ConfigError):
            MachineConfig(mapping="weird")


class TestAssembly:
    def test_components_wired(self, small_machine):
        machine = small_machine
        assert machine.kernel.allocator is machine.allocator
        assert machine.kernel.controller is machine.controller
        assert machine.allocator.node is machine.node
        assert machine.controller.memory.total_bytes == machine.config.geometry.total_bytes

    def test_frame_table_covers_memory(self, small_machine):
        expected = small_machine.config.geometry.total_bytes // PAGE_SIZE
        assert len(small_machine.frames) == expected

    def test_num_cpus(self, small_machine):
        assert small_machine.num_cpus == 2
        assert small_machine.scheduler.num_cpus == 2

    def test_stats_sections(self, small_machine):
        stats = small_machine.stats()
        for key in ("dram", "trr", "ecc", "allocator", "cache", "kernel", "clock_ns"):
            assert key in stats
        assert stats["trr"]["neighbor_refreshes"] == 0  # disabled by default
        assert stats["ecc"]["corrected_bits"] == 0

    def test_repr(self, small_machine):
        assert "seed=0" in repr(small_machine)


class TestDeterminism:
    def _trace(self, machine):
        kernel = machine.kernel
        task = kernel.spawn("t", cpu=0)
        va = kernel.sys_mmap(task.pid, 16 * PAGE_SIZE)
        pfns = []
        for index in range(16):
            kernel.mem_write(task.pid, va + index * PAGE_SIZE, bytes([index]))
            pfns.append(kernel.pfn_of(task.pid, va + index * PAGE_SIZE))
        return pfns

    def test_same_seed_same_behaviour(self):
        a = self._trace(Machine(MachineConfig.small(seed=42)))
        b = self._trace(Machine(MachineConfig.small(seed=42)))
        assert a == b

    def test_same_seed_same_weak_cells(self):
        a = Machine(MachineConfig.vulnerable(seed=4, ))
        b = Machine(MachineConfig.vulnerable(seed=4))
        for row in range(50):
            assert a.controller.weak_cells.cells_in_row(0, row) == (
                b.controller.weak_cells.cells_in_row(0, row)
            )

    def test_different_seed_different_weak_cells(self):
        a = Machine(MachineConfig.vulnerable(seed=1))
        b = Machine(MachineConfig.vulnerable(seed=2))
        cells_a = [a.controller.weak_cells.cells_in_row(0, r) for r in range(100)]
        cells_b = [b.controller.weak_cells.cells_in_row(0, r) for r in range(100)]
        assert cells_a != cells_b


class TestMappingChoice:
    def test_linear_mapping_machine_works(self):
        machine = Machine(
            MachineConfig(seed=0, geometry=DRAMGeometry.small(), mapping="linear")
        )
        kernel = machine.kernel
        task = kernel.spawn("t", cpu=0)
        va = kernel.sys_mmap(task.pid, PAGE_SIZE)
        kernel.mem_write(task.pid, va, b"x")
        assert kernel.mem_read(task.pid, va, 1) == b"x"
