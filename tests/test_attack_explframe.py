"""End-to-end ExplFrame and the baseline attacks."""

import pytest

from repro.attack.baselines import PagemapAttack, RandomSprayAttack
from repro.attack.explframe import ExplFrameAttack, ExplFrameConfig
from repro.attack.templating import TemplatorConfig
from repro.ciphers.aes_tables import AES_SBOX
from repro.core import Machine, MachineConfig
from repro.core.results import FlipTemplate
from repro.dram.flipmodel import FlipModelConfig
from repro.dram.geometry import DRAMGeometry
from repro.sim.errors import ConfigError
from repro.sim.units import MIB

FAST_TEMPLATOR = TemplatorConfig(buffer_bytes=4 * MIB, rounds=650_000, batch_pairs=8)


def vulnerable_machine(seed):
    return Machine(
        MachineConfig(
            seed=seed,
            geometry=DRAMGeometry.small(),
            flip_model=FlipModelConfig.highly_vulnerable(),
        )
    )


class TestConfig:
    def test_table_must_fit_page(self):
        with pytest.raises(ConfigError):
            ExplFrameConfig(table_offset=4000)

    def test_pfa_knobs_validated(self):
        with pytest.raises(ConfigError):
            ExplFrameConfig(pfa_batch=0)


class TestUsableTemplates:
    def make_attack(self, seed=0):
        return ExplFrameAttack(
            vulnerable_machine(seed), config=ExplFrameConfig(templator=FAST_TEMPLATOR)
        )

    def template(self, offset, bit, flips_to_one):
        return FlipTemplate(
            page_va=0x5000_0000,
            page_offset=offset,
            bit=bit,
            flips_to_one=flips_to_one,
            aggressor_vas=(0x6000_0000, 0x6004_0000),
        )

    def test_out_of_table_rejected(self):
        attack = self.make_attack()
        assert attack.usable_templates([self.template(0x100, 0, True)]) == []

    def test_direction_compatibility(self):
        attack = self.make_attack()
        offset = attack.config.table_offset  # S-box index 0, value 0x63
        # Bit 0 of 0x63 is 1: only a 1->0 flip is armed there.
        armed = self.template(offset, 0, flips_to_one=False)
        unarmed = self.template(offset, 0, flips_to_one=True)
        assert attack.usable_templates([armed]) == [armed]
        assert attack.usable_templates([unarmed]) == []

    def test_bit_level_check(self):
        attack = self.make_attack()
        offset = attack.config.table_offset
        # Bit 2 of 0x63 is 0: only a 0->1 flip is armed.
        assert AES_SBOX[0] >> 2 & 1 == 0
        armed = self.template(offset, 2, flips_to_one=True)
        assert attack.usable_templates([armed]) == [armed]


class TestEndToEnd:
    def test_full_key_recovery(self):
        attack = ExplFrameAttack(
            vulnerable_machine(seed=7),
            config=ExplFrameConfig(templator=FAST_TEMPLATOR),
        )
        result = attack.run()
        assert result.templated_flips > 0
        assert result.steering_success
        assert result.fault_in_table
        assert result.key_recovered
        assert result.recovered_key == result.true_key
        assert 500 < result.faulty_ciphertexts < 20_000
        assert result.success

    def test_deterministic_given_seed(self):
        first = ExplFrameAttack(
            vulnerable_machine(seed=11), config=ExplFrameConfig(templator=FAST_TEMPLATOR)
        ).run()
        second = ExplFrameAttack(
            vulnerable_machine(seed=11), config=ExplFrameConfig(templator=FAST_TEMPLATOR)
        ).run()
        assert first.true_key == second.true_key
        assert first.key_recovered == second.key_recovered
        assert first.faulty_ciphertexts == second.faulty_ciphertexts

    def test_invulnerable_module_defeats_attack(self, invulnerable_machine):
        attack = ExplFrameAttack(
            invulnerable_machine, config=ExplFrameConfig(templator=FAST_TEMPLATOR)
        )
        result = attack.run()
        assert result.templated_flips == 0
        assert not result.key_recovered
        assert result.recovered_key is None

    def test_explicit_key_honoured(self):
        key = bytes(range(16))
        attack = ExplFrameAttack(
            vulnerable_machine(seed=7),
            key=key,
            config=ExplFrameConfig(templator=FAST_TEMPLATOR),
        )
        result = attack.run()
        assert result.true_key == key
        if result.key_recovered:
            assert result.recovered_key == key


class TestTTableEndToEnd:
    def test_two_frame_steering_recovers_key(self):
        """T-table victim: the flippy frame must be the SECOND allocation."""
        attack = ExplFrameAttack(
            vulnerable_machine(seed=7),
            config=ExplFrameConfig(
                cipher="aes_ttable", templator=FAST_TEMPLATOR
            ),
        )
        result = attack.run()
        assert result.steering_success
        assert result.fault_in_table
        assert result.key_recovered
        assert result.recovered_key == result.true_key

    def test_single_frame_staging_would_miss(self):
        """Control: without the sacrificial frame, the Te page absorbs
        the flippy frame and the S-box page gets a different one."""
        from repro.ciphers.table_memory import CipherVictim
        from repro.sim.units import PAGE_SIZE

        machine = vulnerable_machine(seed=3)
        kernel = machine.kernel
        attacker = kernel.spawn("naive", cpu=0)
        va = kernel.sys_mmap(attacker.pid, 8 * PAGE_SIZE)
        for index in range(8):
            kernel.mem_write(attacker.pid, va + index * PAGE_SIZE, b"\xff")
        staged = kernel.pfn_of(attacker.pid, va)
        kernel.sys_munmap(attacker.pid, va, PAGE_SIZE)
        victim = CipherVictim(kernel, bytes(16), cpu=0, cipher="aes_ttable")
        sbox_pfn = victim.allocate_table_page()
        te_pfn = kernel.pfn_of(victim.pid, victim._te_va)
        assert te_pfn == staged  # the first touch consumed it
        assert sbox_pfn != staged


class TestPresentEndToEnd:
    def test_full_chain_recovers_k32(self):
        """PRESENT victim: steer, fault the nibble table, recover K32."""
        machine = Machine(
            MachineConfig(
                seed=9,
                geometry=DRAMGeometry.small(),
                flip_model=FlipModelConfig(
                    weak_cells_per_row_mean=3.0,
                    threshold_mean=150_000,
                    threshold_sd=50_000,
                    threshold_min=40_000,
                ),
            )
        )
        config = ExplFrameConfig(
            cipher="present",
            templator=TemplatorConfig(
                buffer_bytes=8 * MIB, rounds=650_000, batch_pairs=16
            ),
            max_campaigns=4,
        )
        result = ExplFrameAttack(machine, config=config).run()
        assert result.steering_success
        assert result.fault_in_table
        assert result.key_recovered  # the 64-bit last round key
        assert result.log2_keyspace_after_pfa == 16.0  # schedule residue
        # PRESENT's tiny S-box saturates after very few ciphertexts.
        assert result.faulty_ciphertexts < 1000

    def test_present_nibble_bit_filter(self):
        """High-nibble flips do not fault the cipher and must be filtered."""
        machine = vulnerable_machine(0)
        attack = ExplFrameAttack(
            machine,
            config=ExplFrameConfig(
                cipher="present", templator=FAST_TEMPLATOR, max_campaigns=1
            ),
        )
        offset = attack.config.table_offset
        high_bit = FlipTemplate(
            page_va=0x5000_0000,
            page_offset=offset,
            bit=6,
            flips_to_one=True,
            aggressor_vas=(0x6000_0000, 0x6004_0000),
        )
        assert attack.usable_templates([high_bit]) == []

    def test_invalid_cipher_rejected(self):
        with pytest.raises(ConfigError):
            ExplFrameConfig(cipher="des")

    def test_max_campaigns_validated(self):
        with pytest.raises(ConfigError):
            ExplFrameConfig(max_campaigns=0)


class TestBaselines:
    def test_random_spray_misses_the_table(self):
        machine = vulnerable_machine(seed=3)
        outcome = RandomSprayAttack(
            machine, key=bytes(16), templator_config=FAST_TEMPLATOR
        ).run()
        # The spray flips bits somewhere, but not in the victim's table.
        assert not outcome.fault_in_table

    def test_pagemap_attack_succeeds(self):
        machine = vulnerable_machine(seed=7)
        outcome = PagemapAttack(
            machine, key=bytes(16), templator_config=FAST_TEMPLATOR
        ).run()
        assert outcome.templated_flips > 0
        assert outcome.fault_in_table
        assert outcome.attempts >= 1

    def test_pagemap_attack_validation(self):
        with pytest.raises(ConfigError):
            PagemapAttack(vulnerable_machine(0), key=bytes(16), max_attempts=0)
