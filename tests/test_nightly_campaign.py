"""Nightly wide fan-out smoke: a 10 000-attempt campaign must complete.

Before the CoW snapshot refactor, each attempt deep-copied the whole warm
machine (~170 ms and megabytes of allocation per fork), so wide fan-out
stalled on snapshot cost.  This smoke proves 10 000 forks from one warm
template neither OOM nor stall.  Each attempt runs under a tiny
orchestrator deadline so it fails fast at the budget check — attempt cost
is then dominated by fork cost, which is exactly what the test measures.

Excluded from the default run (``-m "not nightly"`` in addopts); the CI
nightly lane selects it with ``pytest -m nightly``.
"""

import pytest

from repro.attack.explframe import ExplFrameConfig
from repro.attack.orchestrator import AttackCampaign, OrchestratorConfig
from repro.attack.templating import TemplatorConfig
from repro.core import MachineConfig
from repro.dram.flipmodel import FlipModelConfig
from repro.dram.geometry import DRAMGeometry
from repro.sim.units import MIB


@pytest.mark.nightly
class TestWideFanOut:
    def test_10k_attempt_campaign_completes(self):
        config = MachineConfig(
            seed=7,
            geometry=DRAMGeometry.small(),
            flip_model=FlipModelConfig.highly_vulnerable(),
        )
        fast = ExplFrameConfig(
            templator=TemplatorConfig(
                buffer_bytes=4 * MIB, rounds=650_000, batch_pairs=8
            )
        )
        campaign = AttackCampaign(
            config,
            10_000,
            attack_config=fast,
            orchestrator_config=OrchestratorConfig(deadline_ns=1),
            fork_from_template=True,
        )
        result = campaign.run()
        assert len(result.reports) == 10_000

    def test_10k_forks_from_one_snapshot(self):
        machine_config = MachineConfig(
            seed=7,
            geometry=DRAMGeometry.small(),
            flip_model=FlipModelConfig.highly_vulnerable(),
        )
        fast = ExplFrameConfig(
            templator=TemplatorConfig(
                buffer_bytes=4 * MIB, rounds=650_000, batch_pairs=8
            )
        )
        campaign = AttackCampaign(
            machine_config, 1, attack_config=fast, fork_from_template=True
        )
        snapshot = campaign._warm_snapshot()
        for index in range(10_000):
            machine, _ = snapshot.fork(seed=index)
            assert machine.rng.master_seed == index
