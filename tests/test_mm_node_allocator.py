"""NUMA node zonelists and the zoned page frame allocator facade."""

import pytest

from repro.mm.allocator import AllocationRequest, ZonedPageFrameAllocator
from repro.mm.node import NumaNode
from repro.mm.page import FrameTable
from repro.mm.reclaim import Kswapd
from repro.mm.zone import ZoneType
from repro.sim.errors import ConfigError, OutOfMemoryError
from repro.sim.units import MIB, PAGE_SIZE

TOTAL = 64 * MIB


def make_node(cpus=2):
    table = FrameTable(TOTAL // PAGE_SIZE)
    return NumaNode(0, table, TOTAL, num_cpus=cpus)


def make_allocator(cpus=2, kswapd=None):
    return ZonedPageFrameAllocator(make_node(cpus), kswapd)


class TestNode:
    def test_three_zones(self):
        node = make_node()
        assert set(node.zones) == {ZoneType.DMA, ZoneType.DMA32, ZoneType.NORMAL}

    def test_zonelist_order(self):
        node = make_node()
        names = [z.zone_type for z in node.zonelist(ZoneType.NORMAL)]
        assert names == [ZoneType.NORMAL, ZoneType.DMA32, ZoneType.DMA]

    def test_zonelist_never_goes_up(self):
        node = make_node()
        names = [z.zone_type for z in node.zonelist(ZoneType.DMA32)]
        assert names == [ZoneType.DMA32, ZoneType.DMA]

    def test_zone_of_pfn(self):
        node = make_node()
        assert node.zone_of_pfn(0).zone_type is ZoneType.DMA
        last = node.total_pages - 1
        assert node.zone_of_pfn(last).zone_type is ZoneType.NORMAL

    def test_zone_of_bad_pfn(self):
        node = make_node()
        with pytest.raises(ConfigError):
            node.zone_of_pfn(node.total_pages)

    def test_totals(self):
        node = make_node()
        assert node.total_pages == TOTAL // PAGE_SIZE
        assert node.free_pages == node.total_pages

    def test_unknown_zone(self):
        node = make_node()
        with pytest.raises(ConfigError):
            node.zone("Movable")  # type: ignore[arg-type]


class TestAllocatorFastPath:
    def test_order0_goes_through_pcp(self):
        alloc = make_allocator()
        alloc.alloc_page(cpu=0)
        assert alloc.pcp_allocs == 1
        assert alloc.buddy_allocs == 0

    def test_order0_prefers_normal_zone(self):
        alloc = make_allocator()
        pfn = alloc.alloc_page(cpu=0)
        assert alloc.node.zone_of_pfn(pfn).zone_type is ZoneType.NORMAL

    def test_bypass_pcp(self):
        alloc = make_allocator()
        alloc.alloc_pages(AllocationRequest(order=0, cpu=0, use_pcp=False))
        assert alloc.buddy_allocs == 1

    def test_high_order_direct_to_buddy(self):
        alloc = make_allocator()
        pfn = alloc.alloc_pages(AllocationRequest(order=5, cpu=0))
        assert pfn % 32 == 0
        assert alloc.buddy_allocs == 1

    def test_owner_tracking(self):
        alloc = make_allocator()
        pfn = alloc.alloc_page(cpu=0, owner_pid=4242)
        frame = alloc.node.zone_of_pfn(pfn).buddy.frames[pfn]
        assert frame.owner_pid == 4242

    def test_stamps_monotonic(self):
        alloc = make_allocator()
        a = alloc.alloc_page(cpu=0)
        b = alloc.alloc_page(cpu=0)
        frames = alloc.node.zone(ZoneType.NORMAL).buddy.frames
        assert frames[b].alloc_stamp > frames[a].alloc_stamp


class TestFallback:
    def test_falls_back_when_normal_exhausted(self):
        alloc = make_allocator()
        normal = alloc.node.zone(ZoneType.NORMAL)
        # Exhaust NORMAL directly (bypassing watermark accounting).
        try:
            while True:
                normal.buddy.alloc(10)
        except OutOfMemoryError:
            pass
        pfn = alloc.alloc_pages(AllocationRequest(order=10, cpu=0))
        assert alloc.node.zone_of_pfn(pfn).zone_type in (ZoneType.DMA32, ZoneType.DMA)

    def test_total_exhaustion_raises(self):
        alloc = make_allocator()
        with pytest.raises(OutOfMemoryError):
            while True:
                alloc.alloc_pages(AllocationRequest(order=10, cpu=0, use_pcp=False))
        assert alloc.failed_allocs >= 1


class TestFree:
    def test_order0_free_to_pcp(self):
        alloc = make_allocator()
        pfn = alloc.alloc_page(cpu=0)
        alloc.free_pages(pfn, 0, cpu=0)
        zone = alloc.node.zone_of_pfn(pfn)
        assert zone.pcp(0).holds(pfn)

    def test_order0_free_bypass(self):
        alloc = make_allocator()
        pfn = alloc.alloc_page(cpu=0)
        alloc.free_pages(pfn, 0, cpu=0, use_pcp=False)
        zone = alloc.node.zone_of_pfn(pfn)
        assert not zone.pcp(0).holds(pfn)

    def test_high_order_free(self):
        alloc = make_allocator()
        free_before = alloc.node.free_pages
        pfn = alloc.alloc_pages(AllocationRequest(order=6, cpu=0))
        alloc.free_pages(pfn, 6, cpu=0)
        assert alloc.node.free_pages == free_before

    def test_drain_cpu_caches(self):
        alloc = make_allocator()
        pfn = alloc.alloc_page(cpu=1)
        alloc.free_pages(pfn, 0, cpu=1)
        moved = alloc.drain_cpu_caches(1)
        assert moved > 0
        assert not alloc.node.zone_of_pfn(pfn).pcp(1).holds(pfn)


class TestKswapdIntegration:
    def test_kswapd_woken_below_low(self):
        kswapd = Kswapd()
        alloc = make_allocator(kswapd=kswapd)
        normal = alloc.node.zone(ZoneType.NORMAL)
        while normal.buddy.free_pages >= normal.watermarks.low_pages + 32:
            alloc.alloc_pages(AllocationRequest(order=5, cpu=0))
        # Next allocations dip below low and wake kswapd.
        alloc.alloc_pages(AllocationRequest(order=5, cpu=0))
        assert kswapd.wake_count >= 1

    def test_stats_shape(self):
        alloc = make_allocator()
        alloc.alloc_page(cpu=0)
        stats = alloc.stats()
        for key in (
            "pcp_allocs",
            "buddy_allocs",
            "failed_allocs",
            "pcp_served_from_cache",
            "pcp_refills",
            "pcp_spills",
            "free_pages",
        ):
            assert key in stats
