"""Analysis helpers: statistics, sweeps, table rendering."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.stats import binomial_ci, mean_and_ci, summarize_rates
from repro.analysis.sweep import Sweep, SweepPoint
from repro.analysis.tabulate import format_table, write_results
from repro.core import MachineConfig


class TestBinomialCI:
    def test_contains_point_estimate(self):
        low, high = binomial_ci(7, 10)
        assert low <= 0.7 <= high

    def test_bounds_clamped(self):
        low, _ = binomial_ci(0, 10)
        _, high = binomial_ci(10, 10)
        assert low == 0.0
        assert high == 1.0

    def test_zero_successes_interval_nonzero(self):
        """Wilson interval stays informative at the boundary."""
        low, high = binomial_ci(0, 10)
        assert high > 0.0

    def test_narrows_with_trials(self):
        low10, high10 = binomial_ci(5, 10)
        low1000, high1000 = binomial_ci(500, 1000)
        assert (high1000 - low1000) < (high10 - low10)

    def test_validation(self):
        with pytest.raises(ValueError):
            binomial_ci(1, 0)
        with pytest.raises(ValueError):
            binomial_ci(5, 3)

    @given(
        trials=st.integers(min_value=1, max_value=500),
        successes=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=50)
    def test_always_ordered(self, trials, successes):
        if successes > trials:
            return
        low, high = binomial_ci(successes, trials)
        assert 0.0 <= low <= high <= 1.0


class TestMeanCI:
    def test_single_value(self):
        mean, half = mean_and_ci([3.0])
        assert mean == 3.0 and half == 0.0

    def test_mean(self):
        mean, _ = mean_and_ci([1.0, 2.0, 3.0])
        assert mean == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_and_ci([])


class TestRateSummary:
    def test_str(self):
        summary = summarize_rates(9, 10)
        assert "90.00%" in str(summary)
        assert "9/10" in str(summary)


class TestFormatTable:
    def test_aligned_output(self):
        text = format_table(["name", "value"], [["x", 1], ["longer", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_title(self):
        text = format_table(["a"], [[1]], title="T1")
        assert text.startswith("T1\n==")

    def test_row_width_validated(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestWriteResults:
    def test_writes_file(self, capsys):
        path = write_results("selftest", "hello table")
        try:
            with open(path, encoding="utf-8") as handle:
                content = handle.read()
            assert "hello table" in content
            assert "selftest" in content
            assert "hello table" in capsys.readouterr().out
        finally:
            os.unlink(path)


class TestSweep:
    def test_runs_grid(self):
        sweep = Sweep(
            MachineConfig.small(),
            trial_fn=lambda machine, param: machine.config.seed % 2 == 0,
            name="unit",
        )
        points = sweep.run([1, 2], trials=3)
        assert [p.parameter for p in points] == [1, 2]
        assert all(p.trials == 3 for p in points)

    def test_deterministic(self):
        def trial(machine, param):
            return machine.config.seed

        sweep_a = Sweep(MachineConfig.small(seed=5), trial_fn=trial, name="det")
        sweep_b = Sweep(MachineConfig.small(seed=5), trial_fn=trial, name="det")
        assert sweep_a.run_point("x", 3).outcomes == sweep_b.run_point("x", 3).outcomes

    def test_trials_get_distinct_seeds(self):
        sweep = Sweep(
            MachineConfig.small(seed=5),
            trial_fn=lambda machine, param: machine.config.seed,
            name="seeds",
        )
        outcomes = sweep.run_point("x", 4).outcomes
        assert len(set(outcomes)) == 4

    def test_successes_counting(self):
        point = SweepPoint(parameter=0, outcomes=[True, False, True])
        assert point.successes() == 2

    def test_zero_trials_rejected(self):
        sweep = Sweep(MachineConfig.small(), trial_fn=lambda m, p: True)
        with pytest.raises(ValueError):
            sweep.run_point(1, 0)
