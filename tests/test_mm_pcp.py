"""Per-CPU page frame cache: the attack's load-bearing mechanism."""

import pytest

from repro.mm.buddy import BuddyAllocator
from repro.mm.page import FrameTable, PageFlags
from repro.mm.pcp import PcpConfig, PerCpuPageCache
from repro.sim.errors import AllocationError, ConfigError, OutOfMemoryError


def make_pcp(pages=2048, config=None):
    table = FrameTable(pages)
    buddy = BuddyAllocator(table, 0, pages)
    return PerCpuPageCache(buddy, config or PcpConfig()), buddy


class TestConfig:
    def test_defaults(self):
        config = PcpConfig()
        assert config.batch <= config.high
        assert config.discipline == "lifo"

    def test_validation(self):
        with pytest.raises(ConfigError):
            PcpConfig(batch=0)
        with pytest.raises(ConfigError):
            PcpConfig(batch=10, high=5)
        with pytest.raises(ConfigError):
            PcpConfig(discipline="random")


class TestRefill:
    def test_empty_cache_refills_batch(self):
        pcp, buddy = make_pcp()
        pcp.alloc()
        # One frame handed out, batch-1 remain cached.
        assert pcp.count == pcp.config.batch - 1
        assert pcp.refills == 1

    def test_refill_marks_frames(self):
        pcp, buddy = make_pcp()
        pcp.alloc()
        for pfn in pcp.snapshot():
            assert buddy.frames[pfn].flags is PageFlags.ON_PCP

    def test_alloc_marks_allocated(self):
        pcp, buddy = make_pcp()
        pfn = pcp.alloc(owner_pid=9)
        assert buddy.frames[pfn].flags is PageFlags.ALLOCATED
        assert buddy.frames[pfn].owner_pid == 9

    def test_exhausted_buddy_raises(self):
        pcp, buddy = make_pcp(pages=1024)
        while True:
            try:
                buddy.alloc(0)
            except OutOfMemoryError:
                break
        with pytest.raises(OutOfMemoryError):
            pcp.alloc()

    def test_partial_refill_served(self):
        """If the buddy has fewer than batch pages, serve what exists."""
        pcp, buddy = make_pcp(pages=1024, config=PcpConfig(batch=16, high=64))
        # Leave exactly 3 free pages in the buddy.
        while buddy.free_pages > 3:
            buddy.alloc(0)
        assert pcp.alloc() is not None
        assert pcp.count == 2


class TestLifoReuse:
    def test_just_freed_frame_is_next_alloc(self):
        """Paper section V: 'with a probability of almost 1'."""
        pcp, _ = make_pcp()
        pfn = pcp.alloc()
        pcp.free(pfn)
        assert pcp.alloc() == pfn

    def test_stack_order(self):
        pcp, _ = make_pcp()
        a = pcp.alloc()
        b = pcp.alloc()
        pcp.free(a)
        pcp.free(b)
        assert pcp.alloc() == b
        assert pcp.alloc() == a

    def test_peek_hot(self):
        pcp, _ = make_pcp()
        pfn = pcp.alloc()
        pcp.free(pfn)
        assert pcp.peek_hot() == pfn

    def test_peek_empty(self):
        pcp, _ = make_pcp()
        assert pcp.peek_hot() is None

    def test_holds(self):
        pcp, _ = make_pcp()
        pfn = pcp.alloc()
        assert not pcp.holds(pfn)
        pcp.free(pfn)
        assert pcp.holds(pfn)

    def test_served_from_cache_counter(self):
        pcp, _ = make_pcp()
        pcp.alloc()  # refill, not "served from cache"
        pcp.alloc()
        assert pcp.served_from_cache == 1


class TestFifoAblation:
    def test_fifo_defeats_immediate_reuse(self):
        pcp, _ = make_pcp(config=PcpConfig(batch=8, high=32, discipline="fifo"))
        pfn = pcp.alloc()
        pcp.free(pfn)
        # FIFO: the freed frame goes to the back of the queue.
        assert pcp.alloc() != pfn


class TestSpill:
    def test_spill_above_high(self):
        config = PcpConfig(batch=4, high=8)
        pcp, buddy = make_pcp(config=config)
        frames = [buddy.alloc(0) for _ in range(12)]
        for pfn in frames:
            pcp.free(pfn)
        assert pcp.count <= config.high
        assert pcp.spills >= 1

    def test_spill_removes_cold_end(self):
        config = PcpConfig(batch=4, high=8)
        pcp, buddy = make_pcp(config=config)
        frames = [buddy.alloc(0) for _ in range(9)]
        for pfn in frames:
            pcp.free(pfn)
        # The earliest (coldest) frees were spilled, the latest kept.
        assert pcp.holds(frames[-1])
        assert not pcp.holds(frames[0])

    def test_spilled_frames_back_in_buddy(self):
        config = PcpConfig(batch=4, high=8)
        pcp, buddy = make_pcp(config=config)
        before = buddy.free_pages
        frames = [buddy.alloc(0) for _ in range(12)]
        for pfn in frames:
            pcp.free(pfn)
        assert buddy.free_pages == before - 12 + (12 - pcp.count)


class TestDrain:
    def test_drain_empties_cache(self):
        pcp, buddy = make_pcp()
        pfn = pcp.alloc()
        pcp.free(pfn)
        before = buddy.free_pages
        moved = pcp.drain()
        assert pcp.count == 0
        assert moved >= 1
        assert buddy.free_pages == before + moved

    def test_drain_empty_cache(self):
        pcp, _ = make_pcp()
        assert pcp.drain() == 0


class TestFreeValidation:
    def test_free_unallocated_rejected(self):
        pcp, _ = make_pcp()
        with pytest.raises(AllocationError):
            pcp.free(0)  # still FREE_BUDDY

    def test_free_foreign_pfn_rejected(self):
        pcp, buddy = make_pcp(pages=1024)
        pfn = buddy.alloc(0)
        buddy.frames[pfn].mark(PageFlags.ALLOCATED)
        other_table = FrameTable(2048)
        other_buddy = BuddyAllocator(other_table, 0, 1024)
        other_pcp = PerCpuPageCache(other_buddy)
        foreign = other_table[2000]
        foreign.mark(PageFlags.ALLOCATED)
        with pytest.raises(AllocationError):
            other_pcp.free(2000)
