"""Result record behaviour: serialisation, derived properties."""

import json

from hypothesis import given, strategies as st

from repro.core.results import (
    EndToEndResult,
    FlipTemplate,
    SteeringResult,
    TemplatingResult,
)


def make_template(**overrides):
    base = dict(
        page_va=0x7FFE_0000_0000,
        page_offset=0x680,
        bit=3,
        flips_to_one=True,
        aggressor_vas=(0x7FFE_0001_0000, 0x7FFE_0003_0000),
    )
    base.update(overrides)
    return FlipTemplate(**base)


class TestFlipTemplate:
    def test_byte_va(self):
        template = make_template()
        assert template.byte_va == template.page_va + 0x680

    def test_round_trip_dict(self):
        template = make_template()
        assert FlipTemplate.from_dict(template.to_dict()) == template

    def test_dict_is_json_safe(self):
        payload = json.dumps(make_template().to_dict())
        assert FlipTemplate.from_dict(json.loads(payload)) == make_template()

    @given(
        offset=st.integers(min_value=0, max_value=4095),
        bit=st.integers(min_value=0, max_value=7),
        direction=st.booleans(),
    )
    def test_round_trip_property(self, offset, bit, direction):
        template = make_template(page_offset=offset, bit=bit, flips_to_one=direction)
        assert FlipTemplate.from_dict(template.to_dict()) == template


class TestTemplatingResult:
    def test_flip_counters(self):
        result = TemplatingResult(
            buffer_bytes=1 << 30,
            rounds_per_pair=1000,
            pairs_hammered=2,
            templates=[make_template(), make_template(page_offset=1)],
        )
        assert result.flips_found == 2
        assert result.flips_per_gib == 2.0

    def test_zero_buffer(self):
        result = TemplatingResult(buffer_bytes=0, rounds_per_pair=1, pairs_hammered=0)
        assert result.flips_per_gib == 0.0


class TestSteeringResult:
    def test_landing_index(self):
        result = SteeringResult(
            steered_pfn=7,
            victim_pfns=[3, 7, 9],
            success=True,
            victim_request_pages=3,
            same_cpu=True,
        )
        assert result.landing_index == 1

    def test_landing_index_missing(self):
        result = SteeringResult(
            steered_pfn=7,
            victim_pfns=[3, 9],
            success=False,
            victim_request_pages=2,
            same_cpu=True,
        )
        assert result.landing_index is None


class TestEndToEndResult:
    def make(self, **overrides):
        base = dict(
            templated_flips=5,
            steering_success=True,
            fault_in_table=True,
            faulty_ciphertexts=2048,
            key_recovered=True,
            recovered_key=bytes(16),
            true_key=bytes(16),
            hammer_rounds_total=1_000_000,
            syscalls_total=100,
            sim_time_ns=2_500_000_000,
        )
        base.update(overrides)
        return EndToEndResult(**base)

    def test_success_mirrors_key_recovery(self):
        assert self.make().success
        assert not self.make(key_recovered=False).success

    def test_sim_time_seconds(self):
        assert self.make().sim_time_seconds == 2.5
