"""PRESENT-80 persistent fault analysis."""

import random

import pytest

from repro.ciphers.present import PRESENT_SBOX, Present, inv_p_layer, p_layer
from repro.pfa.pfa_present import (
    PresentPfaState,
    ciphertexts_to_unique_k32,
    invert_present80_schedule,
    recover_k32_known_fault,
    recover_present80_key,
)
from repro.sim.errors import FaultError

KEY = bytes(range(10))
FAULT_INDEX = 5
V_STAR = PRESENT_SBOX[FAULT_INDEX]


def faulty_present(key=KEY):
    table = bytearray(PRESENT_SBOX)
    table[FAULT_INDEX] ^= 0b0010
    return Present(key, sbox_provider=lambda: bytes(table))


def random_plaintexts(count, seed=0):
    rng = random.Random(seed)
    return [bytes(rng.randrange(256) for _ in range(8)) for _ in range(count)]


@pytest.fixture(scope="module")
def saturated():
    cipher = faulty_present()
    pts = random_plaintexts(800)
    consumed, state = ciphertexts_to_unique_k32(cipher.encrypt_block, lambda i: pts[i])
    return consumed, state


class TestPermutation:
    def test_p_layer_bijective(self):
        state = 0x0123_4567_89AB_CDEF
        assert inv_p_layer(p_layer(state)) == state

    def test_p_layer_known_bit(self):
        # Bit 1 moves to position 16 (P(i) = 16i mod 63).
        assert p_layer(1 << 1) == 1 << 16

    def test_bit_63_fixed(self):
        assert p_layer(1 << 63) == 1 << 63


class TestState:
    def test_counts_and_total(self):
        state = PresentPfaState()
        state.update([bytes(8)])
        assert state.total == 1
        assert state.counts.sum() == 16

    def test_bad_block_size(self):
        with pytest.raises(FaultError):
            PresentPfaState().update([bytes(4)])

    def test_position_bounds(self):
        with pytest.raises(FaultError):
            PresentPfaState().missing_values(16)

    def test_keyspace_full_when_empty(self):
        assert PresentPfaState().log2_keyspace() == 64.0

    def test_saturates_quickly(self, saturated):
        consumed, state = saturated
        # 16 values per nibble: coupon collector needs only dozens.
        assert consumed < 500
        assert state.is_unique()
        assert state.log2_keyspace() == 0.0

    def test_missing_value_is_structural(self, saturated):
        _, state = saturated
        k32 = Present(KEY).round_keys[31]
        k_prime = inv_p_layer(k32)
        for position in range(16):
            expected_missing = V_STAR ^ ((k_prime >> (4 * position)) & 0xF)
            assert state.missing_values(position) == [expected_missing]


class TestRecovery:
    def test_k32_recovered(self, saturated):
        _, state = saturated
        assert recover_k32_known_fault(state, V_STAR) == Present(KEY).round_keys[31]

    def test_k32_requires_saturation(self):
        with pytest.raises(FaultError):
            recover_k32_known_fault(PresentPfaState(), V_STAR)

    def test_v_star_range(self, saturated):
        _, state = saturated
        with pytest.raises(FaultError):
            recover_k32_known_fault(state, 16)

    def test_unfaulted_cipher_never_saturates(self):
        clean = Present(KEY)
        pts = random_plaintexts(600, seed=1)
        with pytest.raises(FaultError):
            ciphertexts_to_unique_k32(clean.encrypt_block, lambda i: pts[i], limit=600)


class TestScheduleInversion:
    def _register_after_31(self, key):
        register = int.from_bytes(key, "big")
        for round_index in range(1, 32):
            register = ((register << 61) | (register >> 19)) & ((1 << 80) - 1)
            top = PRESENT_SBOX[register >> 76]
            register = (top << 76) | (register & ((1 << 76) - 1))
            register ^= round_index << 15
        return register

    @pytest.mark.parametrize("key", [bytes(10), KEY, bytes([0xFF] * 10)])
    def test_round_trip(self, key):
        register = self._register_after_31(key)
        assert register >> 16 == Present(key).round_keys[31]
        assert invert_present80_schedule(register) == key

    def test_range_validated(self):
        with pytest.raises(FaultError):
            invert_present80_schedule(1 << 80)


class TestMasterKeyRecovery:
    def test_full_key_with_narrowed_search(self, saturated):
        """Full pipeline; the low-16 search is narrowed for test speed."""
        _, state = saturated
        pt = bytes(8)
        ct = Present(KEY).encrypt_block(pt)
        register = self._true_register_low16()
        window = range(max(0, register - 32), register + 32)
        key = recover_present80_key(state, V_STAR, pt, ct, low_bits_candidates=window)
        assert key == KEY

    def _true_register_low16(self):
        register = int.from_bytes(KEY, "big")
        for round_index in range(1, 32):
            register = ((register << 61) | (register >> 19)) & ((1 << 80) - 1)
            top = PRESENT_SBOX[register >> 76]
            register = (top << 76) | (register & ((1 << 76) - 1))
            register ^= round_index << 15
        return register & 0xFFFF

    def test_wrong_window_returns_none(self, saturated):
        _, state = saturated
        pt = bytes(8)
        ct = Present(KEY).encrypt_block(pt)
        true_low = self._true_register_low16()
        window = range((true_low + 100) & 0xFFFF, (true_low + 110) & 0xFFFF)
        assert (
            recover_present80_key(state, V_STAR, pt, ct, low_bits_candidates=window)
            is None
        )
