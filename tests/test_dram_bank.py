"""Bank row-buffer state machine and activation accounting."""

import pytest

from repro.dram.bank import Bank
from repro.sim.errors import ConfigError


class TestAccess:
    def test_first_access_activates(self):
        bank = Bank(rows=64)
        assert bank.access(5) is True
        assert bank.activations_in_window(5) == 1

    def test_repeat_access_is_row_hit(self):
        bank = Bank(rows=64)
        bank.access(5)
        assert bank.access(5) is False
        assert bank.activations_in_window(5) == 1
        assert bank.total_row_hits == 1

    def test_alternation_activates_every_time(self):
        bank = Bank(rows=64)
        for _ in range(10):
            bank.access(3)
            bank.access(4)
        assert bank.activations_in_window(3) == 10
        assert bank.activations_in_window(4) == 10

    def test_open_row_tracked(self):
        bank = Bank(rows=64)
        bank.access(9)
        assert bank.open_row == 9

    def test_row_bounds(self):
        bank = Bank(rows=8)
        with pytest.raises(ConfigError):
            bank.access(8)
        with pytest.raises(ConfigError):
            bank.access(-1)


class TestBulkActivate:
    def test_counts_add_up(self):
        bank = Bank(rows=64)
        bank.bulk_activate(7, 1000)
        bank.bulk_activate(7, 500)
        assert bank.activations_in_window(7) == 1500
        assert bank.total_activations == 1500

    def test_zero_is_noop(self):
        bank = Bank(rows=64)
        bank.bulk_activate(7, 0)
        assert bank.activations_in_window(7) == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            Bank(rows=64).bulk_activate(0, -1)

    def test_sets_open_row(self):
        bank = Bank(rows=64)
        bank.bulk_activate(7, 10)
        assert bank.open_row == 7


class TestRefresh:
    def test_refresh_clears_window_counters(self):
        bank = Bank(rows=64)
        bank.bulk_activate(1, 100)
        bank.refresh()
        assert bank.activations_in_window(1) == 0

    def test_refresh_keeps_lifetime_counters(self):
        bank = Bank(rows=64)
        bank.bulk_activate(1, 100)
        bank.refresh()
        assert bank.total_activations == 100

    def test_refresh_closes_row(self):
        bank = Bank(rows=64)
        bank.access(3)
        bank.refresh()
        assert bank.open_row is None
        # Next access must activate again.
        assert bank.access(3) is True


class TestInspection:
    def test_hammered_rows_sorted(self):
        bank = Bank(rows=64)
        bank.access(9)
        bank.access(2)
        bank.access(9)
        assert bank.hammered_rows() == [2, 9]

    def test_zero_rows_rejected(self):
        with pytest.raises(ConfigError):
            Bank(rows=0)

    def test_repr(self):
        bank = Bank(rows=16)
        bank.access(4)
        assert "open_row=4" in repr(bank)
