"""VMA intervals: validation, splitting, protection."""

import pytest

from repro.sim.errors import ConfigError
from repro.sim.units import PAGE_SIZE
from repro.vm.vma import Protection, VMA, VmaFlags

BASE = 0x1000_0000


def make_vma(pages=4, start=BASE):
    return VMA(start=start, end=start + pages * PAGE_SIZE)


class TestValidation:
    def test_unaligned_rejected(self):
        with pytest.raises(ConfigError):
            VMA(start=BASE + 1, end=BASE + PAGE_SIZE)
        with pytest.raises(ConfigError):
            VMA(start=BASE, end=BASE + PAGE_SIZE + 1)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            VMA(start=BASE, end=BASE)

    def test_inverted_rejected(self):
        with pytest.raises(ConfigError):
            VMA(start=BASE + PAGE_SIZE, end=BASE)


class TestGeometry:
    def test_length_and_pages(self):
        vma = make_vma(4)
        assert vma.length == 4 * PAGE_SIZE
        assert vma.pages == 4

    def test_contains(self):
        vma = make_vma(2)
        assert vma.contains(BASE)
        assert vma.contains(BASE + 2 * PAGE_SIZE - 1)
        assert not vma.contains(BASE + 2 * PAGE_SIZE)
        assert not vma.contains(BASE - 1)

    def test_overlaps(self):
        vma = make_vma(2)
        assert vma.overlaps(BASE + PAGE_SIZE, BASE + 3 * PAGE_SIZE)
        assert not vma.overlaps(BASE + 2 * PAGE_SIZE, BASE + 3 * PAGE_SIZE)

    def test_page_addresses(self):
        vma = make_vma(3)
        assert list(vma.page_addresses()) == [
            BASE,
            BASE + PAGE_SIZE,
            BASE + 2 * PAGE_SIZE,
        ]


class TestSplit:
    def test_cut_middle_leaves_two(self):
        vma = make_vma(4)
        parts = vma.split(BASE + PAGE_SIZE, BASE + 2 * PAGE_SIZE)
        assert [(p.start, p.end) for p in parts] == [
            (BASE, BASE + PAGE_SIZE),
            (BASE + 2 * PAGE_SIZE, BASE + 4 * PAGE_SIZE),
        ]

    def test_cut_head(self):
        vma = make_vma(4)
        (tail,) = vma.split(BASE, BASE + PAGE_SIZE)
        assert (tail.start, tail.end) == (BASE + PAGE_SIZE, BASE + 4 * PAGE_SIZE)

    def test_cut_everything(self):
        vma = make_vma(4)
        assert vma.split(BASE, BASE + 4 * PAGE_SIZE) == []

    def test_cut_outside_returns_self(self):
        vma = make_vma(2)
        assert vma.split(BASE + 4 * PAGE_SIZE, BASE + 5 * PAGE_SIZE) == [vma]

    def test_split_preserves_attributes(self):
        vma = VMA(
            start=BASE,
            end=BASE + 4 * PAGE_SIZE,
            prot=Protection.READ,
            flags=VmaFlags.ANONYMOUS | VmaFlags.POPULATE,
            name="special",
        )
        for part in vma.split(BASE + PAGE_SIZE, BASE + 2 * PAGE_SIZE):
            assert part.prot == Protection.READ
            assert part.flags == vma.flags
            assert part.name == "special"

    def test_unaligned_cut_rejected(self):
        with pytest.raises(ConfigError):
            make_vma(2).split(BASE + 1, BASE + PAGE_SIZE)


class TestProtection:
    def test_rw_shorthand(self):
        prot = Protection.rw()
        assert prot & Protection.READ
        assert prot & Protection.WRITE
        assert not prot & Protection.EXEC

    def test_str_rendering(self):
        vma = VMA(start=BASE, end=BASE + PAGE_SIZE, prot=Protection.READ, name="lib")
        text = str(vma)
        assert "r--" in text and "lib" in text
