"""Determinism and independence of the named RNG streams."""

import pytest

from repro.sim.rng import RngStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "dram") == derive_seed(42, "dram")

    def test_name_sensitivity(self):
        assert derive_seed(42, "dram") != derive_seed(42, "mm")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "dram") != derive_seed(2, "dram")

    def test_64_bit_range(self):
        for seed in (0, 1, 2**63):
            assert 0 <= derive_seed(seed, "x") < 2**64


class TestRngStreams:
    def test_same_seed_same_draws(self):
        a = RngStreams(7).stream("attack")
        b = RngStreams(7).stream("attack")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_streams_are_memoised(self):
        streams = RngStreams(7)
        assert streams.stream("x") is streams.stream("x")
        assert streams.numpy_stream("x") is streams.numpy_stream("x")

    def test_different_names_are_independent(self):
        streams = RngStreams(7)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_consuming_one_stream_does_not_shift_another(self):
        left = RngStreams(7)
        right = RngStreams(7)
        left.stream("noise").random()  # extra consumption on one side only
        assert (
            left.stream("signal").random() == right.stream("signal").random()
        )

    def test_numpy_streams_deterministic(self):
        a = RngStreams(9).numpy_stream("cells").integers(0, 100, size=8)
        b = RngStreams(9).numpy_stream("cells").integers(0, 100, size=8)
        assert list(a) == list(b)

    def test_fresh_numpy_is_pure(self):
        streams = RngStreams(11)
        first = streams.fresh_numpy("dram.cells", 3, 17).integers(0, 1000, size=4)
        second = streams.fresh_numpy("dram.cells", 3, 17).integers(0, 1000, size=4)
        assert list(first) == list(second)

    def test_fresh_numpy_qualifier_sensitivity(self):
        streams = RngStreams(11)
        a = streams.fresh_numpy("dram.cells", 3, 17).integers(0, 1000, size=4)
        b = streams.fresh_numpy("dram.cells", 3, 18).integers(0, 1000, size=4)
        assert list(a) != list(b)

    def test_spawn_derives_child(self):
        parent = RngStreams(5)
        child1 = parent.spawn("trial")
        child2 = parent.spawn("trial")
        assert child1.master_seed == child2.master_seed
        assert child1.master_seed != parent.master_seed

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngStreams("seed")  # type: ignore[arg-type]

    def test_repr_mentions_seed(self):
        assert "123" in repr(RngStreams(123))
