"""Shared fixtures: small, fast machines with known seeds."""

from __future__ import annotations

import pytest

from repro.core import Machine, MachineConfig
from repro.dram.flipmodel import FlipModelConfig
from repro.dram.geometry import DRAMGeometry


@pytest.fixture
def small_machine() -> Machine:
    """64 MiB machine, default flip model, seed 0."""
    return Machine(MachineConfig.small(seed=0))


@pytest.fixture
def vulnerable_machine() -> Machine:
    """64 MiB machine with a dense weak-cell population (fast flips)."""
    return Machine(
        MachineConfig(
            seed=0,
            geometry=DRAMGeometry.small(),
            flip_model=FlipModelConfig.highly_vulnerable(),
        )
    )


@pytest.fixture
def invulnerable_machine() -> Machine:
    """64 MiB machine whose DRAM never flips (negative control)."""
    return Machine(
        MachineConfig(
            seed=0,
            geometry=DRAMGeometry.small(),
            flip_model=FlipModelConfig.invulnerable(),
        )
    )
