"""Cross-stack integration invariants."""

from repro.core import Machine, MachineConfig
from repro.mm.page import PageFlags
from repro.sim.units import PAGE_SIZE


class TestFrameConservation:
    def test_free_plus_allocated_is_total(self, small_machine):
        kernel = small_machine.kernel
        tasks = [kernel.spawn(f"t{i}", cpu=i % 2) for i in range(4)]
        for task in tasks:
            va = kernel.sys_mmap(task.pid, 32 * PAGE_SIZE)
            for index in range(32):
                kernel.mem_write(task.pid, va + index * PAGE_SIZE, b"x")
        node = small_machine.node
        allocated = small_machine.frames.count_state(PageFlags.ALLOCATED)
        assert node.free_pages + allocated == node.total_pages

    def test_exit_restores_everything(self, small_machine):
        kernel = small_machine.kernel
        node = small_machine.node
        before = node.free_pages
        task = kernel.spawn("temp", cpu=0)
        va = kernel.sys_mmap(task.pid, 64 * PAGE_SIZE)
        for index in range(64):
            kernel.mem_write(task.pid, va + index * PAGE_SIZE, b"x")
        kernel.sys_exit(task.pid)
        assert node.free_pages == before

    def test_no_frame_owned_by_two_tasks(self, small_machine):
        kernel = small_machine.kernel
        a = kernel.spawn("a", cpu=0)
        b = kernel.spawn("b", cpu=0)
        pfns = {}
        for task in (a, b):
            va = kernel.sys_mmap(task.pid, 16 * PAGE_SIZE)
            for index in range(16):
                kernel.mem_write(task.pid, va + index * PAGE_SIZE, b"x")
                pfn = kernel.pfn_of(task.pid, va + index * PAGE_SIZE)
                assert pfn not in pfns, "frame double-allocated"
                pfns[pfn] = task.pid


class TestIsolation:
    def test_tasks_cannot_see_each_others_data(self, small_machine):
        kernel = small_machine.kernel
        a = kernel.spawn("a", cpu=0)
        b = kernel.spawn("b", cpu=0)
        va_a = kernel.sys_mmap(a.pid, PAGE_SIZE)
        kernel.mem_write(a.pid, va_a, b"secret")
        # b mapping the same VA range sees its own (zero) pages.
        vb = kernel.sys_mmap(b.pid, PAGE_SIZE, name="own")
        assert kernel.mem_read(b.pid, vb, 6) == bytes(6)

    def test_reallocated_frame_is_zeroed(self, small_machine):
        """Kernel hygiene: a steered frame carries no stale data."""
        kernel = small_machine.kernel
        a = kernel.spawn("a", cpu=0)
        b = kernel.spawn("b", cpu=0)
        va = kernel.sys_mmap(a.pid, PAGE_SIZE)
        kernel.mem_write(a.pid, va, b"confidential")
        pfn = kernel.pfn_of(a.pid, va)
        kernel.sys_munmap(a.pid, va, PAGE_SIZE)
        vb = kernel.sys_mmap(b.pid, PAGE_SIZE)
        kernel.mem_write(b.pid, vb, b"\x00")
        assert kernel.pfn_of(b.pid, vb) == pfn
        assert kernel.mem_read(b.pid, vb, 12) == bytes(12)


class TestClockMonotonicity:
    def test_time_advances_through_workload(self, small_machine):
        kernel = small_machine.kernel
        task = kernel.spawn("t", cpu=0)
        stamps = [small_machine.clock.now_ns]
        va = kernel.sys_mmap(task.pid, 8 * PAGE_SIZE)
        for index in range(8):
            kernel.mem_write(task.pid, va + index * PAGE_SIZE, b"x" * 64)
            stamps.append(small_machine.clock.now_ns)
        assert stamps == sorted(stamps)
        assert stamps[-1] > stamps[0]


class TestWholeMachineDeterminism:
    def test_two_machines_same_flip_log(self):
        def run(seed):
            machine = Machine(MachineConfig.vulnerable(seed=seed))
            kernel = machine.kernel
            task = kernel.spawn("t", cpu=0)
            va = kernel.sys_mmap(task.pid, 2 * 1024 * 1024)
            pages = 512
            from repro.attack.hammer import Hammerer

            hammerer = Hammerer(kernel, task.pid)
            hammerer.fill(va, pages, 0xFF)
            stride = machine.mapping.row_stride()
            hammerer.hammer_pair(va, va + 2 * stride)
            return [
                (e.phys_addr, e.bit_in_byte, e.direction_1_to_0)
                for e in machine.controller.flip_log
            ]

        assert run(13) == run(13)
