"""Worker-pool dispatch: metric merging, snapshot shipping, digest parity.

The contract under test (docs/CAMPAIGNS.md): parallel execution is an
engine choice, never a result choice.  Campaign digests and merged
metrics must be bit-identical for every worker count and pool mode, the
warm snapshot must survive a pickle round-trip without changing fork
behaviour, and merged metric blocks must follow the documented
counter/histogram/gauge semantics.
"""

import pickle

import pytest

from repro.attack.explframe import ExplFrameConfig
from repro.attack.orchestrator import AttackCampaign
from repro.attack.templating import TemplatorConfig
from repro.core import Machine, MachineConfig
from repro.dram.flipmodel import FlipModelConfig
from repro.dram.geometry import DRAMGeometry
from repro.obs import NOOP_OBS
from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    MetricsRegistry,
    MetricStateAccumulator,
    merge_metric_states,
)
from repro.parallel.pool import make_pool_block, register_pool_metrics
from repro.sim.chaos import chaos_plan_for_attempt
from repro.sim.errors import ConfigError
from repro.sim.units import MIB, MS

FAST = ExplFrameConfig(
    templator=TemplatorConfig(buffer_bytes=4 * MIB, rounds=650_000, batch_pairs=8)
)


def vulnerable_config(seed=7):
    return MachineConfig(
        seed=seed,
        geometry=DRAMGeometry.small(),
        flip_model=FlipModelConfig.highly_vulnerable(),
        timed_core="events",
    )


class TestMergeMetricStates:
    def _registry(self, counter=0, gauge=None, observations=()):
        registry = MetricsRegistry(enabled=True)
        if counter:
            registry.counter("t.count", unit="items").inc(counter)
        if gauge is not None:
            registry.gauge("t.level", unit="items").set(gauge)
        histogram = registry.histogram("t.size", buckets=(10, 100), unit="b")
        for value in observations:
            histogram.observe(value)
        return registry

    def test_counters_sum_across_states(self):
        states = [
            self._registry(counter=2).export_state(),
            self._registry(counter=5).export_state(),
        ]
        merged = merge_metric_states(states)
        assert merged["sources"] == 2
        assert merged["families"]["t.count"]["instances"]["t.count"] == 7

    def test_gauges_list_one_value_per_source_in_order(self):
        states = [
            self._registry(gauge=3).export_state(),
            self._registry().export_state(),  # gauge absent here
            self._registry(gauge=9).export_state(),
        ]
        merged = merge_metric_states(states)
        assert merged["families"]["t.level"]["instances"]["t.level"] == [3, None, 9]

    def test_histograms_add_bucket_wise(self):
        states = [
            self._registry(observations=(5, 50)).export_state(),
            self._registry(observations=(500,)).export_state(),
        ]
        value = merge_metric_states(states)["families"]["t.size"]["instances"]["t.size"]
        assert value["count"] == 3
        assert value["sum"] == 555
        assert value["buckets"] == {"le_10": 1, "le_100": 2, "le_inf": 3}

    def test_kind_conflict_is_rejected(self):
        a = MetricsRegistry(enabled=True)
        a.counter("t.mixed").inc()
        b = MetricsRegistry(enabled=True)
        b.gauge("t.mixed").set(1)
        with pytest.raises(ConfigError, match="cannot merge"):
            merge_metric_states([a.export_state(), b.export_state()])

    def test_histogram_bucket_mismatch_is_rejected(self):
        a = MetricsRegistry(enabled=True)
        a.histogram("t.size", buckets=(10, 100)).observe(1)
        b = MetricsRegistry(enabled=True)
        b.histogram("t.size", buckets=(1, 2)).observe(1)
        with pytest.raises(ConfigError, match="bucket bounds differ"):
            merge_metric_states([a.export_state(), b.export_state()])

    def test_merge_matches_single_registry_snapshot_semantics(self):
        """Merging one state renders exactly like the live snapshot."""
        registry = self._registry(counter=3, gauge=4, observations=(5, 500))
        merged = merge_metric_states([registry.export_state()])
        live = registry.snapshot()
        families = merged["families"]
        assert families["t.count"]["instances"]["t.count"] == live["t.count"]
        assert families["t.size"]["instances"]["t.size"] == live["t.size"]

    def test_streaming_accumulator_is_identical_to_batch_merge(self):
        """MetricStateAccumulator folds one-at-a-time to the same block."""
        states = [
            self._registry(counter=2, gauge=1, observations=(5,)).export_state(),
            self._registry(counter=3, observations=(50, 500)).export_state(),
            self._registry(gauge=9).export_state(),
        ]
        accumulator = MetricStateAccumulator()
        for state in states:
            accumulator.add(state)
        assert accumulator.result() == merge_metric_states(states)


class TestSnapshotPickling:
    def test_null_instruments_pickle_as_singletons(self):
        for singleton in (NOOP_OBS, NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM):
            assert pickle.loads(pickle.dumps(singleton)) is singleton

    def test_snapshot_round_trip_preserves_fork_destiny(self):
        from repro.core.machine import MachineSnapshot

        machine = Machine(MachineConfig.small(seed=3))
        machine.run_until(20 * MS)
        snapshot = machine.snapshot()
        rehydrated = MachineSnapshot.from_bytes(snapshot.to_bytes())
        native, _ = snapshot.fork(seed=11)
        shipped, _ = rehydrated.fork(seed=11)
        native.run_until(100 * MS)
        shipped.run_until(100 * MS)
        assert native.stats() == shipped.stats()

    def test_rehydrated_fork_has_live_metrics(self):
        from repro.core.machine import MachineSnapshot

        machine = Machine(MachineConfig.small(seed=3))
        rehydrated = MachineSnapshot.from_bytes(machine.snapshot().to_bytes())
        fork, _ = rehydrated.fork()
        fork.run_until(20 * MS)
        assert fork.obs.metrics.snapshot()["sim.events.dispatched{queue=os}"] > 0


class TestPoolTelemetry:
    def test_register_pool_metrics_covers_the_documented_family(self):
        registry = MetricsRegistry(enabled=True)
        register_pool_metrics(registry)
        assert set(registry.family_names()) == {
            "campaign.pool.workers",
            "campaign.pool.attempts_dispatched",
            "campaign.pool.attempts_completed",
            "campaign.pool.mode",
            "campaign.pool.worker_wall_ns",
        }

    def test_make_pool_block_shape(self):
        block = make_pool_block(
            workers=2, mode="ship", dispatched=4, completed=4,
            worker_wall_ns={0: 10, 1: 20},
        )
        assert block["campaign.pool.workers"] == 2
        assert block["campaign.pool.attempts_dispatched"] == 4
        assert block["campaign.pool.attempts_completed"] == 4
        assert block["campaign.pool.mode{mode=ship}"] == 1
        assert block["campaign.pool.worker_wall_ns{worker=0}"] == 10
        assert block["campaign.pool.worker_wall_ns{worker=1}"] == 20


class TestChaosPlanPerAttempt:
    def test_pure_function_of_profile_seed_intensity(self):
        a = chaos_plan_for_attempt("storm", 1234)
        b = chaos_plan_for_attempt("storm", 1234)
        assert a == b

    def test_different_seeds_jitter_the_skip_counts(self):
        plans = {
            tuple(e.skip for e in chaos_plan_for_attempt("storm", seed).events)
            for seed in range(20)
        }
        assert len(plans) > 1

    def test_none_profile_stays_null(self):
        assert chaos_plan_for_attempt("none", 42).is_null


def _trial_clock(machine, parameter):
    machine.run_until(parameter * MS)
    return machine.clock.now_ns


class TestPooledSweepParity:
    def test_sweep_outcomes_identical_across_worker_counts(self):
        from repro.analysis.sweep import Sweep

        base = MachineConfig.small(seed=5)
        parameters = [5, 10, 15]
        serial = Sweep(base, _trial_clock, name="t").run(parameters, trials=2)
        pooled = Sweep(base, _trial_clock, name="t", workers=2).run(
            parameters, trials=2
        )
        assert [point.outcomes for point in serial] == [
            point.outcomes for point in pooled
        ]
        assert [point.parameter for point in pooled] == parameters


@pytest.mark.slow
class TestPooledCampaignParity:
    def test_worker_count_and_pool_mode_do_not_change_results(self):
        """Digest and merged metrics are identical for workers 1 and 2,
        ship and rewarm — parallelism is an engine choice only."""
        config = vulnerable_config(seed=7)

        def run(**kwargs):
            return AttackCampaign(config, 2, attack_config=FAST, **kwargs).run()

        serial = run()
        ship = run(workers=2, pool_mode="ship")
        rewarm = run(workers=2, pool_mode="rewarm")
        assert serial.digest() == ship.digest() == rewarm.digest()
        assert serial.metrics == ship.metrics == rewarm.metrics
        assert ship.pool["campaign.pool.workers"] == 2
        assert ship.pool["campaign.pool.mode{mode=ship}"] == 1
        assert rewarm.pool["campaign.pool.mode{mode=rewarm}"] == 1
        assert serial.pool["campaign.pool.mode{mode=serial}"] == 1

    def test_chaos_campaign_digest_is_worker_independent(self):
        config = vulnerable_config(seed=7)

        def run(**kwargs):
            return AttackCampaign(
                config, 2, attack_config=FAST, chaos_profile="steal", **kwargs
            ).run()

        serial = run()
        pooled = run(workers=2)
        assert serial.digest() == pooled.digest()
        assert {report.chaos_profile for report in serial.reports} == {"steal"}
        # Per-attempt chaos plans derive from the attempt seed, so the
        # engine is attached (and its forensics present) in every report.
        assert all(
            report.chaos_events is not None for report in serial.reports
        )
