"""Kernel facade: syscalls, demand paging, cache interplay, hammering."""

import pytest

from repro.os.task import TaskState
from repro.sim.errors import ConfigError, FaultError, SegmentationFault
from repro.sim.units import PAGE_SIZE


@pytest.fixture
def kernel(small_machine):
    return small_machine.kernel


@pytest.fixture
def task(kernel):
    return kernel.spawn("proc", cpu=0)


class TestProcessLifecycle:
    def test_spawn_assigns_unique_pids(self, kernel):
        a = kernel.spawn("a")
        b = kernel.spawn("b")
        assert a.pid != b.pid

    def test_spawn_balances_cpus(self, kernel):
        a = kernel.spawn("a")
        b = kernel.spawn("b")
        assert {a.cpu, b.cpu} == {0, 1}

    def test_spawn_pinned(self, kernel):
        task = kernel.spawn("pinned", cpu=1)
        assert task.cpu == 1
        assert task.allowed_cpus == frozenset({1})

    def test_lookup_unknown_pid(self, kernel):
        with pytest.raises(ConfigError):
            kernel.task(9999)

    def test_exit_releases_frames(self, kernel, task):
        va = kernel.sys_mmap(task.pid, 4 * PAGE_SIZE)
        for index in range(4):
            kernel.mem_write(task.pid, va + index * PAGE_SIZE, b"x")
        free_before = kernel.allocator.node.free_pages
        freed = kernel.sys_exit(task.pid)
        assert freed == 4
        assert kernel.allocator.node.free_pages == free_before + 4
        with pytest.raises(ConfigError):
            kernel.task(task.pid)


class TestDemandPaging:
    def test_mmap_allocates_nothing(self, kernel, task):
        faulted_before = kernel.stats.frames_faulted_in
        kernel.sys_mmap(task.pid, 64 * PAGE_SIZE)
        assert kernel.stats.frames_faulted_in == faulted_before

    def test_write_faults_one_page(self, kernel, task):
        va = kernel.sys_mmap(task.pid, 4 * PAGE_SIZE)
        kernel.mem_write(task.pid, va, b"hello")
        assert task.mm.rss_pages == 1
        assert task.minor_faults == 1

    def test_faulted_page_is_zeroed(self, kernel, task):
        va = kernel.sys_mmap(task.pid, PAGE_SIZE)
        kernel.mem_write(task.pid, va + 10, b"z")
        data = kernel.mem_read(task.pid, va, 16)
        assert data == bytes(10) + b"z" + bytes(5)

    def test_read_of_unpopulated_page_returns_zero_without_alloc(self, kernel, task):
        va = kernel.sys_mmap(task.pid, PAGE_SIZE)
        assert kernel.mem_read(task.pid, va, 32) == bytes(32)
        assert task.mm.rss_pages == 0  # shared zero page, no frame

    def test_read_outside_vma_segfaults(self, kernel, task):
        with pytest.raises(SegmentationFault):
            kernel.mem_read(task.pid, 0x1234_0000, 1)

    def test_write_outside_vma_segfaults(self, kernel, task):
        with pytest.raises(SegmentationFault):
            kernel.mem_write(task.pid, 0x1234_0000, b"x")

    def test_populate_faults_eagerly(self, kernel, task):
        kernel.sys_mmap(task.pid, 4 * PAGE_SIZE, populate=True)
        assert task.mm.rss_pages == 4

    def test_write_read_round_trip(self, kernel, task):
        va = kernel.sys_mmap(task.pid, 2 * PAGE_SIZE)
        payload = bytes(range(256)) * 20
        kernel.mem_write(task.pid, va + 100, payload)
        assert kernel.mem_read(task.pid, va + 100, len(payload)) == payload


class TestMunmapToPcp:
    def test_freed_frame_lands_on_pcp_hot_end(self, kernel, task):
        va = kernel.sys_mmap(task.pid, PAGE_SIZE)
        kernel.mem_write(task.pid, va, b"x")
        pfn = kernel.pfn_of(task.pid, va)
        kernel.sys_munmap(task.pid, va, PAGE_SIZE)
        zone = kernel.allocator.node.zone_of_pfn(pfn)
        assert zone.pcp(task.cpu).peek_hot() == pfn

    def test_reuse_by_next_small_alloc(self, kernel):
        attacker = kernel.spawn("att", cpu=0)
        victim = kernel.spawn("vic", cpu=0)
        va = kernel.sys_mmap(attacker.pid, PAGE_SIZE)
        kernel.mem_write(attacker.pid, va, b"x")
        pfn = kernel.pfn_of(attacker.pid, va)
        kernel.sys_munmap(attacker.pid, va, PAGE_SIZE)
        victim_va = kernel.sys_mmap(victim.pid, PAGE_SIZE)
        kernel.mem_write(victim.pid, victim_va, b"y")
        assert kernel.pfn_of(victim.pid, victim_va) == pfn

    def test_frame_owner_tracking(self, kernel, task):
        va = kernel.sys_mmap(task.pid, PAGE_SIZE)
        kernel.mem_write(task.pid, va, b"x")
        assert kernel.frame_owner(kernel.pfn_of(task.pid, va)) == task.pid


class TestSleepDrain:
    def test_sleep_drains_cpu_caches(self, kernel, task):
        va = kernel.sys_mmap(task.pid, PAGE_SIZE)
        kernel.mem_write(task.pid, va, b"x")
        kernel.sys_munmap(task.pid, va, PAGE_SIZE)
        lost = kernel.sys_sleep(task.pid)
        assert lost > 0
        assert task.state is TaskState.SLEEPING

    def test_sleeping_task_cannot_touch_memory(self, kernel, task):
        va = kernel.sys_mmap(task.pid, PAGE_SIZE)
        kernel.sys_sleep(task.pid)
        with pytest.raises(ConfigError):
            kernel.mem_write(task.pid, va, b"x")

    def test_wake_restores(self, kernel, task):
        kernel.sys_sleep(task.pid)
        kernel.sys_wake(task.pid)
        assert task.state is TaskState.RUNNING
        va = kernel.sys_mmap(task.pid, PAGE_SIZE)
        kernel.mem_write(task.pid, va, b"x")

    def test_double_sleep_is_noop(self, kernel, task):
        kernel.sys_sleep(task.pid)
        assert kernel.sys_sleep(task.pid) == 0


class TestAffinity:
    def test_setaffinity_migrates(self, kernel):
        task = kernel.spawn("t", cpu=0, affinity=frozenset({0, 1}))
        kernel.sys_sched_setaffinity(task.pid, frozenset({1}))
        assert task.cpu == 1

    def test_empty_mask_rejected(self, kernel, task):
        with pytest.raises(ConfigError):
            kernel.sys_sched_setaffinity(task.pid, frozenset())


class TestCacheAndFlush:
    def test_repeated_reads_hit_cache(self, kernel, task):
        va = kernel.sys_mmap(task.pid, PAGE_SIZE)
        kernel.mem_write(task.pid, va, b"x" * 64)
        misses_before = kernel.cache.misses
        kernel.mem_read(task.pid, va, 64)
        kernel.mem_read(task.pid, va, 64)
        assert kernel.cache.misses == misses_before
        assert kernel.cache.hits >= 2

    def test_clflush_forces_next_miss(self, kernel, task):
        va = kernel.sys_mmap(task.pid, PAGE_SIZE)
        kernel.mem_write(task.pid, va, b"x" * 64)
        kernel.sys_clflush(task.pid, va, 64)
        misses_before = kernel.cache.misses
        kernel.mem_read(task.pid, va, 1)
        assert kernel.cache.misses == misses_before + 1

    def test_clflush_returns_eviction_count(self, kernel, task):
        va = kernel.sys_mmap(task.pid, PAGE_SIZE)
        kernel.mem_write(task.pid, va, b"x" * 128)
        assert kernel.sys_clflush(task.pid, va, 128) == 2


class TestHammerSyscall:
    def test_requires_resident_target(self, kernel, task):
        va = kernel.sys_mmap(task.pid, PAGE_SIZE)
        with pytest.raises(FaultError):
            kernel.sys_hammer(task.pid, [va], 100)

    def test_hammer_counts_activations(self, kernel, task):
        va = kernel.sys_mmap(task.pid, 256 * PAGE_SIZE)
        stride = kernel.controller.mapping.row_stride()
        kernel.mem_write(task.pid, va, b"a")
        kernel.mem_write(task.pid, va + stride, b"b")
        result = kernel.sys_hammer(task.pid, [va, va + stride], 1000)
        assert result.rounds == 1000

    def test_no_flush_means_no_hammering(self, kernel, task):
        va = kernel.sys_mmap(task.pid, 256 * PAGE_SIZE)
        stride = kernel.controller.mapping.row_stride()
        kernel.mem_write(task.pid, va, b"a")
        kernel.mem_write(task.pid, va + stride, b"b")
        result = kernel.sys_hammer(task.pid, [va, va + stride], 10_000, flush=False)
        assert result.activations <= 2
        assert result.flips == []


class TestChurnAndPagemap:
    def test_churn_conserves_frames(self, kernel, task):
        free_before = kernel.allocator.node.free_pages
        kernel.churn(task.pid, 16)
        assert kernel.allocator.node.free_pages == free_before

    def test_churn_zero_pages(self, kernel, task):
        kernel.churn(task.pid, 0)

    def test_pagemap_uses_reader_caps(self, kernel):
        from repro.os.capabilities import CapabilitySet

        worker = kernel.spawn("worker", cpu=0)
        admin = kernel.spawn("admin", cpu=0, caps=CapabilitySet.root())
        va = kernel.sys_mmap(worker.pid, PAGE_SIZE)
        kernel.mem_write(worker.pid, va, b"x")
        own_view = kernel.pagemap(worker.pid).read(va)
        admin_view = kernel.pagemap(admin.pid, worker.pid).read(va)
        assert not own_view.pfn_visible
        assert admin_view.pfn_visible
        assert admin_view.pfn == kernel.pfn_of(worker.pid, va)

    def test_syscall_counters(self, kernel, task):
        before = kernel.stats.syscalls
        kernel.sys_mmap(task.pid, PAGE_SIZE)
        assert kernel.stats.syscalls == before + 1
        assert kernel.stats.mmap_calls >= 1
