"""MetricsRegistry unit tests plus machine-level integration."""

import pytest

from repro.core import Machine, MachineConfig
from repro.obs import (
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Observability,
)
from repro.sim.errors import ConfigError
from repro.sim.units import PAGE_SIZE


class TestCounter:
    def test_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("x.events", unit="events")
        counter.inc()
        counter.inc(4)
        assert registry.snapshot() == {"x.events": 5}

    def test_same_identity_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigError):
            registry.gauge("x")


class TestLabels:
    def test_labelled_instances_are_distinct(self):
        registry = MetricsRegistry()
        a = registry.counter("sys", labels={"call": "mmap"})
        b = registry.counter("sys", labels={"call": "munmap"})
        assert a is not b
        a.inc(2)
        b.inc(3)
        snap = registry.snapshot()
        assert snap["sys{call=mmap}"] == 2
        assert snap["sys{call=munmap}"] == 3

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        a = registry.counter("m", labels={"b": "2", "a": "1"})
        b = registry.counter("m", labels={"a": "1", "b": "2"})
        assert a is b

    def test_family_names_deduplicate_labels(self):
        registry = MetricsRegistry()
        registry.counter("sys", labels={"call": "mmap"})
        registry.counter("sys", labels={"call": "munmap"})
        assert registry.family_names() == ["sys"]


class TestGauge:
    def test_set(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(42)
        assert registry.snapshot()["depth"] == 42

    def test_collector_runs_at_snapshot(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("sourced")
        source = {"value": 0}
        registry.add_collector(lambda: gauge.set(source["value"]))
        source["value"] = 7
        assert registry.snapshot()["sourced"] == 7


class TestHistogram:
    def test_buckets_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("dur", buckets=(10, 100))
        for value in (1, 5, 50, 500):
            histogram.observe(value)
        snap = registry.snapshot()["dur"]
        assert snap["count"] == 4
        assert snap["sum"] == 556
        assert snap["buckets"] == {"le_10": 2, "le_100": 3, "le_inf": 4}

    def test_buckets_must_ascend(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigError):
            registry.histogram("bad", buckets=(100, 10))


class TestDisabledRegistry:
    def test_returns_null_singletons(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("x") is NULL_COUNTER
        assert registry.gauge("y") is NULL_GAUGE
        assert registry.histogram("z", buckets=(1,)) is NULL_HISTOGRAM

    def test_null_mutators_are_noops(self):
        NULL_COUNTER.inc()
        NULL_GAUGE.set(5)
        NULL_HISTOGRAM.observe(5)

    def test_snapshot_empty(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("x").inc()
        assert registry.snapshot() == {}
        assert registry.render_table() == "(metrics disabled)"


def _small_workload(machine):
    kernel = machine.kernel
    task = kernel.spawn("workload", cpu=0)
    va = kernel.sys_mmap(task.pid, 32 * PAGE_SIZE)
    for index in range(32):
        kernel.mem_write(task.pid, va + index * PAGE_SIZE, b"x")
    kernel.sys_munmap(task.pid, va, 32 * PAGE_SIZE)
    return task


class TestMachineIntegration:
    def test_layers_report(self):
        machine = Machine(MachineConfig.small(seed=3))
        _small_workload(machine)
        snap = machine.obs.metrics.snapshot()
        assert snap["os.syscalls{call=mmap}"] == 1
        assert snap["os.syscalls{call=munmap}"] == 1
        assert snap["os.page_faults"] == 32
        assert snap["mm.pcp.hits"] + snap["mm.pcp.misses"] == 32
        assert snap["dram.activations"] > 0
        assert snap["cpu_cache.misses"] > 0
        assert snap["sim.clock_ns"] == machine.clock.now_ns

    def test_render_table_lists_families(self):
        machine = Machine(MachineConfig.small(seed=3))
        table = machine.obs.metrics.render_table()
        for name in ("dram.activations", "mm.free_pages", "os.page_faults"):
            assert name in table

    def test_disabled_machine_behaves_identically(self):
        on = Machine(MachineConfig.small(seed=5))
        off = Machine(MachineConfig(seed=5, geometry=on.config.geometry,
                                    metrics_enabled=False))
        _small_workload(on)
        _small_workload(off)
        assert off.obs.metrics.snapshot() == {}
        assert vars(on.kernel.stats) == vars(off.kernel.stats)
        assert on.clock.now_ns == off.clock.now_ns
        assert on.controller.total_activations() == off.controller.total_activations()

    def test_default_observability_hub(self):
        obs = Observability()
        assert obs.metrics.enabled
        assert not obs.tracer.enabled
