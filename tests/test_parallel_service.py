"""Campaign service: crash-safe checkpoints, sharding, worker-loss retry.

The contract under test (docs/CAMPAIGNS.md): checkpointing, resuming,
sharding and worker loss are engine events, never result events.  A
service run's digest must equal the in-memory engines' digest for the
same campaign; a ``kill -9`` mid-run, a torn trailing journal record, a
died pool worker or an i/N shard split must all resume/merge back to
that exact digest.  Framing, manifest and config-hash plumbing get unit
tests; the end-to-end crash path runs through the subprocess smoke
driver (scripts/service_smoke.py) against the real CLI.
"""

import json
import os
import subprocess
import sys
import time
import zlib
from pathlib import Path

import pytest

from repro.attack.explframe import ExplFrameConfig
from repro.attack.faultprobe import FaultProbeConfig
from repro.attack.orchestrator import AttackCampaign, AttackRunReport
from repro.attack.templating import TemplatorConfig
from repro.core import MachineConfig
from repro.dram.flipmodel import FlipModelConfig
from repro.dram.geometry import DRAMGeometry
from repro.obs.metrics import MetricsRegistry
from repro.parallel.service import (
    CampaignService,
    Shard,
    campaign_config_hash,
    decode_line,
    encode_record,
    make_service_block,
    merge_shards,
    register_service_metrics,
    scan_journal,
)
from repro.sim.errors import CheckpointError, ConfigError, WorkerLostError
from repro.sim.units import MIB

FAST = ExplFrameConfig(
    templator=TemplatorConfig(buffer_bytes=4 * MIB, rounds=650_000, batch_pairs=8)
)
FAST_PROBE = FaultProbeConfig(
    templator=TemplatorConfig(buffer_bytes=4 * MIB, rounds=650_000, batch_pairs=8)
)


def vulnerable_config(seed=7):
    return MachineConfig(
        seed=seed,
        geometry=DRAMGeometry.small(),
        flip_model=FlipModelConfig.highly_vulnerable(),
        timed_core="events",
    )


def make_campaign(attempts=4, seed=7, **kwargs):
    return AttackCampaign(
        vulnerable_config(seed), attempts, attack_config=FAST, **kwargs
    )


def make_faultprobe_campaign(attempts=4, seed=7, **kwargs):
    return AttackCampaign(
        vulnerable_config(seed), attempts, attack_config=FAST_PROBE,
        modality="faultprobe", **kwargs
    )


# -- sharding ----------------------------------------------------------------------


class TestShard:
    def test_parse_round_trips_spec_and_tag(self):
        shard = Shard.parse("2/4")
        assert (shard.index, shard.count) == (2, 4)
        assert shard.spec == "2/4"
        assert shard.tag == "2of4"

    def test_default_shard_owns_everything(self):
        assert list(Shard().indices(5)) == [0, 1, 2, 3, 4]

    def test_interleaved_indices_tile_the_campaign(self):
        attempts = 10
        tiles = [list(Shard(i, 3).indices(attempts)) for i in range(3)]
        assert tiles[0] == [0, 3, 6, 9]
        assert tiles[1] == [1, 4, 7]
        assert sorted(index for tile in tiles for index in tile) == list(
            range(attempts)
        )

    @pytest.mark.parametrize("spec", ["", "3", "a/b", "1/0", "2/2", "-1/2"])
    def test_bad_specs_are_config_errors(self, spec):
        with pytest.raises(ConfigError):
            Shard.parse(spec)


class TestConfigHash:
    def test_stable_across_equal_campaigns(self):
        assert campaign_config_hash(make_campaign()) == campaign_config_hash(
            make_campaign()
        )

    def test_result_knobs_change_the_hash(self):
        base = campaign_config_hash(make_campaign())
        assert campaign_config_hash(make_campaign(seed=8)) != base
        assert campaign_config_hash(make_campaign(attempts=5)) != base
        assert campaign_config_hash(make_campaign(chaos_profile="steal")) != base

    def test_engine_knobs_do_not_change_the_hash(self):
        base = campaign_config_hash(make_campaign())
        assert campaign_config_hash(make_campaign(workers=4)) == base
        assert campaign_config_hash(make_campaign(pool_mode="rewarm")) == base

    def test_explicit_default_modality_keeps_pre_modality_hashes(self):
        # "explframe" is appended to nothing: checkpoints written before
        # the modality layer existed must stay resumable.
        assert campaign_config_hash(
            make_campaign(modality="explframe")
        ) == campaign_config_hash(make_campaign())

    def test_modality_changes_the_hash(self):
        assert campaign_config_hash(make_faultprobe_campaign()) != (
            campaign_config_hash(make_campaign())
        )

    def test_stable_across_equal_faultprobe_campaigns(self):
        assert campaign_config_hash(make_faultprobe_campaign()) == (
            campaign_config_hash(make_faultprobe_campaign())
        )


# -- journal framing ---------------------------------------------------------------


class TestJournalFraming:
    def test_encode_decode_round_trip(self):
        record = {"index": 3, "report": {"success": True}, "state": {}}
        assert decode_line(encode_record(record)) == record

    def test_length_mismatch_is_rejected(self):
        line = encode_record({"index": 0})
        assert decode_line(line[:-5] + b"\n") is None

    def test_crc_mismatch_is_rejected(self):
        payload = json.dumps({"index": 0}).encode()
        bad = b"%d %08x %s\n" % (len(payload), zlib.crc32(payload) ^ 1, payload)
        assert decode_line(bad) is None

    def test_garbage_line_is_rejected(self):
        assert decode_line(b"not a journal line\n") is None

    def test_scan_maps_indices_to_offsets(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        lines = [encode_record({"index": i}) for i in (0, 2, 4)]
        path.write_bytes(b"".join(lines))
        offsets, valid_end, torn = scan_journal(path)
        assert sorted(offsets) == [0, 2, 4]
        assert offsets[2] == len(lines[0])
        assert valid_end == sum(len(line) for line in lines)
        assert torn == 0

    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        good = encode_record({"index": 0})
        path.write_bytes(good + encode_record({"index": 1})[:-7])
        offsets, valid_end, torn = scan_journal(path)
        assert sorted(offsets) == [0]
        assert valid_end == len(good)
        assert torn == 1

    def test_valid_record_after_corruption_is_fatal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_bytes(
            encode_record({"index": 0})
            + b"corrupted mid-file line\n"
            + encode_record({"index": 2})
        )
        with pytest.raises(CheckpointError, match="damaged beyond a torn tail"):
            scan_journal(path)


# -- telemetry ---------------------------------------------------------------------


class TestServiceTelemetry:
    def test_register_service_metrics_covers_the_documented_family(self):
        registry = MetricsRegistry(enabled=True)
        register_service_metrics(registry)
        names = set(registry.snapshot())
        assert names == {
            "campaign.service.attempts_journaled",
            "campaign.service.attempts_resumed",
            "campaign.service.torn_records_dropped",
            "campaign.service.worker_retries",
            "campaign.service.workers_lost",
            "campaign.service.journal_bytes",
            "campaign.service.inflight_window",
            "campaign.service.shard_attempts",
        }

    def test_make_service_block_shape(self):
        block = make_service_block(
            journaled=3, resumed=1, torn=1, worker_retries=2, workers_lost=1,
            journal_bytes=4096, window=4, shard_attempts=4,
        )
        assert block["campaign.service.attempts_journaled"] == 3
        assert block["campaign.service.attempts_resumed"] == 1
        assert block["campaign.service.torn_records_dropped"] == 1
        assert block["campaign.service.worker_retries"] == 2
        assert block["campaign.service.workers_lost"] == 1
        assert block["campaign.service.journal_bytes"] == 4096
        assert block["campaign.service.inflight_window"] == 4
        assert block["campaign.service.shard_attempts"] == 4


# -- construction validation -------------------------------------------------------


class TestServiceValidation:
    def test_negative_window_is_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="window"):
            CampaignService(make_campaign(), tmp_path, window=-1)

    def test_negative_retry_budget_is_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="worker_retries"):
            CampaignService(make_campaign(), tmp_path, worker_retries=-1)

    def test_merge_of_empty_directory_is_a_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="no shard manifests"):
            merge_shards(tmp_path)


# -- worker death plumbing ---------------------------------------------------------


class CrashingCampaign(AttackCampaign):
    """Campaign whose attempt ``crash_index`` kills its own worker process.

    The fuse file arms exactly one crash: the worker unlinks it and then
    dies with ``os._exit`` (no exception, no cleanup — indistinguishable
    from an OOM kill), so a retry of the same attempt runs normally.
    Only meaningful with ``workers > 1``; crashing the serial path would
    take the test down with it.
    """

    def __init__(self, *args, fuse_path=None, crash_index=1, **kwargs):
        super().__init__(*args, **kwargs)
        self.fuse_path = str(fuse_path)
        self.crash_index = crash_index

    def _run_attempt(self, machine, attack, candidates, index):
        if index == self.crash_index and os.path.exists(self.fuse_path):
            os.unlink(self.fuse_path)
            os._exit(42)
        return super()._run_attempt(machine, attack, candidates, index)


@pytest.mark.slow
class TestWorkerLoss:
    def test_pool_surfaces_worker_death_as_typed_error(self, tmp_path):
        fuse = tmp_path / "fuse"
        fuse.touch()
        campaign = CrashingCampaign(
            vulnerable_config(), 2, attack_config=FAST,
            workers=2, fuse_path=fuse, crash_index=1,
        )
        with pytest.raises(WorkerLostError) as excinfo:
            campaign.run()
        assert excinfo.value.attempt is not None

    def test_service_retries_the_lost_attempt_to_the_exact_digest(self, tmp_path):
        reference = make_campaign(attempts=3).run().digest()
        fuse = tmp_path / "fuse"
        fuse.touch()
        campaign = CrashingCampaign(
            vulnerable_config(), 3, attack_config=FAST,
            workers=2, fuse_path=fuse, crash_index=1,
        )
        result = CampaignService(
            campaign, tmp_path / "ckpt", worker_retries=2
        ).run()
        assert result.digest() == reference
        assert result.service["campaign.service.workers_lost"] >= 1
        assert result.service["campaign.service.worker_retries"] >= 1
        assert not fuse.exists()

    def test_exhausted_retry_budget_raises_with_journal_intact(self, tmp_path):
        # A fuse that re-arms forever: crash_index dies on every try —
        # but slowly, so attempt 0's result lands (and is journaled)
        # before the pool breaks.
        fuse = tmp_path / "fuse"
        fuse.touch()

        class AlwaysCrashing(CrashingCampaign):
            def _run_attempt(self, machine, attack, candidates, index):
                if index == self.crash_index:
                    time.sleep(3)
                    os._exit(42)
                return AttackCampaign._run_attempt(
                    self, machine, attack, candidates, index
                )

        campaign = AlwaysCrashing(
            vulnerable_config(), 2, attack_config=FAST,
            workers=2, fuse_path=fuse, crash_index=1,
        )
        service = CampaignService(campaign, tmp_path / "ckpt", worker_retries=1)
        with pytest.raises(WorkerLostError, match="giving up"):
            service.run()
        # Attempt 0's record survived the failed run and resumes cleanly.
        offsets, _end, torn = scan_journal(service.journal_path)
        assert torn == 0
        assert 0 in offsets


# -- end-to-end parity -------------------------------------------------------------


@pytest.fixture(scope="module")
def reference():
    """One in-memory 4-attempt run shared by every parity test below."""
    result = make_campaign(attempts=4).run()
    return {
        "digest": result.digest(),
        "metrics": result.metrics,
        "successes": result.successes,
    }


@pytest.mark.slow
class TestServiceParity:
    def test_fresh_run_matches_in_memory_digest_and_metrics(
        self, tmp_path, reference
    ):
        result = CampaignService(make_campaign(attempts=4), tmp_path).run()
        assert result.digest() == reference["digest"]
        assert result.metrics == reference["metrics"]
        assert result.attempts == 4
        assert result.successes == reference["successes"]
        assert result.reports == ()  # streaming: reports live in the journal
        assert result.service["campaign.service.attempts_journaled"] == 4
        assert result.service["campaign.service.attempts_resumed"] == 0

    def test_existing_checkpoint_without_resume_is_refused(self, tmp_path):
        CampaignService(make_campaign(attempts=4), tmp_path).run()
        with pytest.raises(CheckpointError, match="resume"):
            CampaignService(make_campaign(attempts=4), tmp_path).run()

    def test_resume_of_a_complete_run_reruns_nothing(self, tmp_path, reference):
        CampaignService(make_campaign(attempts=4), tmp_path).run()
        result = CampaignService(
            make_campaign(attempts=4), tmp_path, resume=True
        ).run()
        assert result.digest() == reference["digest"]
        assert result.metrics == reference["metrics"]
        assert result.service["campaign.service.attempts_journaled"] == 0
        assert result.service["campaign.service.attempts_resumed"] == 4

    def test_torn_tail_is_truncated_and_rerun_to_the_same_digest(
        self, tmp_path, reference
    ):
        service = CampaignService(make_campaign(attempts=4), tmp_path)
        service.run()
        # Tear the final record mid-payload, as a kill -9 during the
        # append would, and mark the manifest as still running.
        journal = service.journal_path
        journal.write_bytes(journal.read_bytes()[:-20])
        manifest = json.loads(service.manifest_path.read_text())
        manifest.update(completed=3, status="running", digest=None)
        service.manifest_path.write_text(json.dumps(manifest))

        resumed = CampaignService(
            make_campaign(attempts=4), tmp_path, resume=True
        ).run()
        assert resumed.digest() == reference["digest"]
        assert resumed.metrics == reference["metrics"]
        assert resumed.service["campaign.service.torn_records_dropped"] == 1
        assert resumed.service["campaign.service.attempts_resumed"] == 3
        assert resumed.service["campaign.service.attempts_journaled"] == 1

    def test_config_hash_mismatch_refuses_to_mix_results(self, tmp_path):
        CampaignService(make_campaign(attempts=4), tmp_path).run()
        with pytest.raises(CheckpointError, match="different campaign config"):
            CampaignService(
                make_campaign(attempts=4, seed=8), tmp_path, resume=True
            ).run()

    def test_cross_modality_resume_is_refused_before_any_work(self, tmp_path):
        # A hand-written manifest stands in for an explframe checkpoint:
        # the mismatch must trip on the config hash alone, before the
        # service warms a machine or journals a single attempt.
        (tmp_path / "manifest-0of1.json").write_text(json.dumps({
            "version": 1,
            "config_hash": campaign_config_hash(make_campaign(attempts=4)),
            "snapshot_digest": None,
            "attempts": 4,
            "mode": "ship",
            "modality": "explframe",
            "shard": "0/1",
            "journal": "journal-0of1.jsonl",
            "completed": 0,
            "status": "running",
            "digest": None,
        }))
        with pytest.raises(CheckpointError, match="different campaign config"):
            CampaignService(
                make_faultprobe_campaign(attempts=4), tmp_path, resume=True
            ).run()

    def test_journal_reports_round_trip_through_from_dict(self, tmp_path):
        service = CampaignService(make_campaign(attempts=2), tmp_path)
        service.run()
        offsets, _end, _torn = scan_journal(service.journal_path)
        with open(service.journal_path, "rb") as fh:
            for offset in offsets.values():
                fh.seek(offset)
                record = decode_line(fh.readline())
                rebuilt = AttackRunReport.from_dict(record["report"])
                assert rebuilt.to_json() == json.dumps(
                    record["report"], sort_keys=True, separators=(",", ":")
                )

    def test_stream_out_carries_every_report_as_json_lines(self, tmp_path):
        stream = tmp_path / "stream.jsonl"
        CampaignService(
            make_campaign(attempts=2), tmp_path / "ckpt", stream_out=stream
        ).run()
        lines = [json.loads(line) for line in stream.read_text().splitlines()]
        assert sorted(line["index"] for line in lines) == [0, 1]
        assert all("report" in line for line in lines)


@pytest.mark.slow
class TestShardMergeParity:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_merge_reproduces_the_serial_digest(
        self, tmp_path, reference, shards
    ):
        for index in range(shards):
            CampaignService(
                make_campaign(attempts=4), tmp_path, shard=Shard(index, shards)
            ).run()
        merged = merge_shards(tmp_path, campaign=make_campaign(attempts=4))
        assert merged.digest() == reference["digest"]
        assert merged.metrics == reference["metrics"]
        assert merged.attempts == 4
        assert merged.successes == reference["successes"]

    def test_missing_shard_blocks_the_merge(self, tmp_path):
        CampaignService(
            make_campaign(attempts=4), tmp_path, shard=Shard(0, 2)
        ).run()
        with pytest.raises(CheckpointError, match="missing shards"):
            merge_shards(tmp_path)


# -- the real CLI under kill -9 ----------------------------------------------------


@pytest.mark.slow
class TestKillResumeSmoke:
    def test_sigkilled_chaos_campaign_resumes_to_the_exact_digest(self, tmp_path):
        proc = subprocess.run(
            [
                sys.executable,
                str(Path(__file__).parent.parent / "scripts" / "service_smoke.py"),
                "kill-resume", "--dir", str(tmp_path), "--attempts", "4",
            ],
            capture_output=True, text=True, timeout=600,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "PASS" in proc.stdout

    def test_sigkilled_faultprobe_campaign_resumes_to_the_exact_digest(
        self, tmp_path
    ):
        proc = subprocess.run(
            [
                sys.executable,
                str(Path(__file__).parent.parent / "scripts" / "service_smoke.py"),
                "kill-resume", "--dir", str(tmp_path), "--attempts", "4",
                "--chaos", "none", "--modality", "faultprobe",
            ],
            capture_output=True, text=True, timeout=600,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "PASS" in proc.stdout
