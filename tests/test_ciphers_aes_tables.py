"""AES constant generation: GF arithmetic, S-box, ShiftRows permutation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ciphers import aes_tables as t

BYTES = st.integers(min_value=0, max_value=255)


class TestGFArithmetic:
    def test_known_products(self):
        assert t.gf_mul(0x57, 0x83) == 0xC1  # FIPS-197 example
        assert t.gf_mul(0x57, 0x13) == 0xFE

    @given(a=BYTES, b=BYTES)
    @settings(max_examples=100)
    def test_commutative(self, a, b):
        assert t.gf_mul(a, b) == t.gf_mul(b, a)

    @given(a=BYTES, b=BYTES, c=BYTES)
    @settings(max_examples=100)
    def test_distributive(self, a, b, c):
        assert t.gf_mul(a, b ^ c) == t.gf_mul(a, b) ^ t.gf_mul(a, c)

    @given(a=BYTES)
    def test_multiplicative_identity(self, a):
        assert t.gf_mul(a, 1) == a

    @given(a=BYTES)
    def test_zero_annihilates(self, a):
        assert t.gf_mul(a, 0) == 0

    @given(a=st.integers(min_value=1, max_value=255))
    @settings(max_examples=100)
    def test_inverse(self, a):
        assert t.gf_mul(a, t.gf_inverse(a)) == 1

    def test_inverse_of_zero(self):
        assert t.gf_inverse(0) == 0

    def test_pow(self):
        assert t.gf_pow(2, 8) == t.gf_mul(t.gf_pow(2, 4), t.gf_pow(2, 4))
        assert t.gf_pow(5, 0) == 1


class TestSbox:
    def test_published_anchors(self):
        assert t.AES_SBOX[0x00] == 0x63
        assert t.AES_SBOX[0x53] == 0xED
        assert t.AES_SBOX[0xFF] == 0x16

    def test_is_bijection(self):
        assert len(set(t.AES_SBOX)) == 256

    def test_no_fixed_points(self):
        assert all(t.AES_SBOX[x] != x for x in range(256))

    def test_inverse_round_trip(self):
        for x in range(256):
            assert t.AES_INV_SBOX[t.AES_SBOX[x]] == x

    def test_invert_requires_bijection(self):
        with pytest.raises(ValueError):
            t.invert_sbox(bytes(256))


class TestRcon:
    def test_first_values(self):
        assert t.AES_RCON[:10] == (1, 2, 4, 8, 16, 32, 64, 128, 0x1B, 0x36)


class TestShiftRows:
    def test_permutation_is_bijection(self):
        assert sorted(t.SHIFT_ROWS_PERM) == list(range(16))

    def test_row_zero_fixed(self):
        # Row 0 (flat indices 0, 4, 8, 12) is not rotated.
        for i in (0, 4, 8, 12):
            assert t.SHIFT_ROWS_PERM[i] == i

    def test_inverse(self):
        for i in range(16):
            assert t.INV_SHIFT_ROWS_PERM[t.SHIFT_ROWS_PERM[i]] == i

    def test_matches_fips_rotation(self):
        """Output state'[r][c] must read state[r][(c + r) % 4]."""
        for i in range(16):
            r, c = i % 4, i // 4
            src = t.SHIFT_ROWS_PERM[i]
            assert src % 4 == r
            assert src // 4 == (c + r) % 4
