"""Orchestrator: config validation, recovery under chaos, determinism."""

import pytest

from repro.attack.explframe import ExplFrameAttack, ExplFrameConfig
from repro.attack.orchestrator import (
    AttackOrchestrator,
    FailureClass,
    OrchestratorConfig,
    RetryPolicy,
)
from repro.attack.templating import TemplatorConfig
from repro.core.machine import Machine, MachineConfig
from repro.dram.flipmodel import FlipModelConfig
from repro.dram.geometry import DRAMGeometry
from repro.sim.chaos import ChaosEngine, chaos_profile
from repro.sim.errors import ConfigError, TemplatingExhaustedError
from repro.sim.units import MIB, MS

FAST = TemplatorConfig(buffer_bytes=4 * MIB, rounds=650_000, batch_pairs=8)


def vulnerable_machine(seed):
    return Machine(
        MachineConfig(
            seed=seed,
            geometry=DRAMGeometry.small(),
            flip_model=FlipModelConfig.highly_vulnerable(),
        )
    )


def make_attack(seed, chaos=None, intensity=1.0):
    m = vulnerable_machine(seed)
    if chaos is not None:
        ChaosEngine(m.kernel, chaos_profile(chaos, intensity))
    return ExplFrameAttack(m, config=ExplFrameConfig(templator=FAST))


class TestPolicyAndConfig:
    def test_backoff_is_exponential(self):
        policy = RetryPolicy(max_attempts=4, backoff_base_ns=10, backoff_factor=3.0)
        assert [policy.backoff_ns(n) for n in range(3)] == [10, 30, 90]

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_base_ns=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_factor=0.5)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            OrchestratorConfig(deadline_ns=0)
        with pytest.raises(ConfigError):
            OrchestratorConfig(activation_budget=-1)
        with pytest.raises(ConfigError):
            OrchestratorConfig(campaign_budget=0)


class TestRecovery:
    def test_clean_run_succeeds_without_failures(self):
        report = AttackOrchestrator(make_attack(7)).run()
        assert report.success
        assert report.failures == ()
        assert report.final_failure is None
        assert report.recovered_key == report.true_key

    def test_recovers_from_stolen_frame(self):
        # steal chaos defeats the single shot...
        single = make_attack(7, chaos="steal").run()
        assert not single.key_recovered
        assert not single.steering_success
        # ...but the orchestrator classifies the miss and re-steers.
        report = AttackOrchestrator(make_attack(7, chaos="steal")).run()
        assert report.success
        assert FailureClass.STEERING_MISS.value in report.failure_classes

    def test_recovers_from_trr_burst(self):
        single = make_attack(7, chaos="trr").run()
        assert not single.key_recovered
        report = AttackOrchestrator(make_attack(7, chaos="trr")).run()
        assert report.success
        assert FailureClass.NON_REPEATABLE_FLIP.value in report.failure_classes

    def test_recovers_from_migration_with_repin(self):
        report = AttackOrchestrator(make_attack(7, chaos="migrate")).run()
        assert report.success
        assert any("repinned" in action for action in report.recoveries)

    def test_every_failure_is_classified(self):
        report = AttackOrchestrator(make_attack(7, chaos="storm")).run()
        for record in report.timeline:
            if record.outcome == "fail":
                assert record.failure is not None
                assert record.failure.failure_class in FailureClass

    def test_deadline_budget_exhaustion(self):
        attack = make_attack(7, chaos="steal")
        config = OrchestratorConfig(deadline_ns=1 * MS)  # less than one campaign
        report = AttackOrchestrator(attack, config).run()
        assert not report.success
        assert report.final_failure is not None
        assert report.final_failure.failure_class is FailureClass.BUDGET_EXHAUSTED

    def test_templating_exhaustion_is_terminal_and_classified(self):
        m = Machine(
            MachineConfig(
                seed=0,
                geometry=DRAMGeometry.small(),
                flip_model=FlipModelConfig.invulnerable(),
            )
        )
        attack = ExplFrameAttack(
            m, config=ExplFrameConfig(templator=FAST, max_campaigns=1)
        )
        config = OrchestratorConfig(campaign_budget=1)
        report = AttackOrchestrator(attack, config).run()
        assert not report.success
        assert report.final_failure.failure_class is FailureClass.TEMPLATING_EXHAUSTED

    def test_report_timeline_is_ordered(self):
        report = AttackOrchestrator(make_attack(7, chaos="steal")).run()
        times = [record.start_ns for record in report.timeline]
        assert times == sorted(times)


class TestDeterminism:
    def test_same_seed_same_profile_byte_identical_report(self):
        first = AttackOrchestrator(make_attack(7, chaos="storm")).run().to_json()
        second = AttackOrchestrator(make_attack(7, chaos="storm")).run().to_json()
        assert first == second


class TestTemplatingExhaustedError:
    def test_raised_with_counts(self):
        m = Machine(
            MachineConfig(
                seed=0,
                geometry=DRAMGeometry.small(),
                flip_model=FlipModelConfig.invulnerable(),
            )
        )
        attack = ExplFrameAttack(
            m, config=ExplFrameConfig(templator=FAST, max_campaigns=2)
        )
        with pytest.raises(TemplatingExhaustedError) as excinfo:
            attack.template_until_usable()
        assert excinfo.value.campaigns == 2
        assert excinfo.value.flips_found == 0
