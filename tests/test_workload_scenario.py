"""Scenario contract: validation, round-trips, and the documented knobs.

The knob spot-check parses the knob table out of docs/SCENARIOS.md and
feeds every documented knob back through ``TenantSpec.from_dict`` — the
doc and the loader cannot drift apart silently.
"""

import json
import re
from pathlib import Path

import pytest

from repro.sim.errors import ConfigError
from repro.workload import (
    PRESET_NAMES,
    Scenario,
    TenantSpec,
    load_scenario,
    scenario_preset,
)

REPO = Path(__file__).resolve().parent.parent
SCENARIOS_DOC = REPO / "docs" / "SCENARIOS.md"


class TestTenantSpecValidation:
    def test_defaults_are_valid(self):
        spec = TenantSpec(name="alice")
        assert spec.cipher == "aes"
        assert spec.resolved_key_bits == 128
        assert spec.key_bytes == 16

    @pytest.mark.parametrize(
        "cipher,default_bits", [("aes", 128), ("aes_ttable", 128), ("present", 80)]
    )
    def test_cipher_default_key_bits(self, cipher, default_bits):
        assert TenantSpec(name="t", cipher=cipher).resolved_key_bits == default_bits

    @pytest.mark.parametrize("bits", [192, 256])
    def test_aes_wide_keys_accepted(self, bits):
        assert TenantSpec(name="t", cipher="aes", key_bits=bits).key_bytes == bits // 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "no spaces"},
            {"name": "t", "cipher": "des"},
            {"name": "t", "cipher": "aes_ttable", "key_bits": 256},
            {"name": "t", "cipher": "present", "key_bits": 128},
            {"name": "t", "key_hex": "zz"},
            {"name": "t", "key_hex": "00" * 8},  # 8 bytes for 128-bit AES
            {"name": "t", "request_rate_hz": 0.0},
            {"name": "t", "request_rate_hz": 2e6},
            {"name": "t", "burst": 0},
            {"name": "t", "jitter": 1.5},
            {"name": "t", "cpu": -1},
            {"name": "t", "scratch_pages": 65},
            {"name": "t", "payload_blocks": 0},
            {"name": "t", "max_queue": 0},
        ],
    )
    def test_invalid_spec_raises(self, kwargs):
        with pytest.raises(ConfigError):
            TenantSpec(**kwargs)

    def test_explicit_key_hex_resolves_verbatim(self):
        key = "2b7e151628aed2a6abf7158809cf4f3c"
        spec = TenantSpec(name="t", key_hex=key)
        assert spec.resolve_key(rng=None) == bytes.fromhex(key)

    def test_mean_interarrival(self):
        assert TenantSpec(name="t", request_rate_hz=1000.0).mean_interarrival_ns == 10**6


class TestScenarioValidation:
    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            Scenario(
                name="s",
                target="a",
                tenants=(TenantSpec(name="a"), TenantSpec(name="a")),
            )

    def test_unknown_target_rejected(self):
        with pytest.raises(ConfigError, match="unknown tenant"):
            Scenario(name="s", target="ghost", tenants=(TenantSpec(name="a"),))

    def test_empty_tenant_list_rejected(self):
        with pytest.raises(ConfigError, match="no tenants"):
            Scenario(name="s", target="a", tenants=())

    def test_unrecoverable_target_rejected(self):
        # AES-256 encrypts fine as background noise, but PFA cannot
        # invert its key schedule — targeting it must fail at load time.
        with pytest.raises(ConfigError, match="PFA cannot recover"):
            Scenario(
                name="s",
                target="a",
                tenants=(TenantSpec(name="a", cipher="aes", key_bits=256),),
            )

    def test_sleeping_target_rejected(self):
        with pytest.raises(ConfigError, match="sleeps"):
            Scenario(
                name="s", target="a", tenants=(TenantSpec(name="a", sleeps=True),)
            )

    def test_background_partition(self):
        scenario = scenario_preset("duet")
        assert scenario.target_spec.name == "alice"
        assert [spec.name for spec in scenario.background] == ["bob"]


class TestRoundTrip:
    @pytest.mark.parametrize("name", PRESET_NAMES)
    def test_presets_round_trip_through_json(self, name):
        scenario = scenario_preset(name)
        again = Scenario.from_json(json.dumps(scenario.to_dict()))
        assert again == scenario

    def test_to_dict_omits_defaults(self):
        data = TenantSpec(name="t").to_dict()
        assert data == {"name": "t", "cipher": "aes"}

    def test_unknown_tenant_knob_rejected(self):
        with pytest.raises(ConfigError, match="unknown tenant knob"):
            TenantSpec.from_dict({"name": "t", "rate_hz": 40.0})

    def test_unknown_scenario_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown scenario key"):
            Scenario.from_dict(
                {"name": "s", "target": "a", "tenants": [{"name": "a"}], "extra": 1}
            )

    @pytest.mark.parametrize("missing", ["name", "target", "tenants"])
    def test_missing_top_level_key_rejected(self, missing):
        data = {"name": "s", "target": "a", "tenants": [{"name": "a"}]}
        del data[missing]
        with pytest.raises(ConfigError, match="missing"):
            Scenario.from_dict(data)

    def test_invalid_json_text_rejected(self):
        with pytest.raises(ConfigError, match="not valid JSON"):
            Scenario.from_json("{not json")


class TestLoadScenario:
    def test_preset_names_resolve(self):
        for name in PRESET_NAMES:
            assert load_scenario(name).name == name

    def test_unknown_ref_lists_presets(self):
        with pytest.raises(ConfigError) as exc:
            load_scenario("nope")
        for name in PRESET_NAMES:
            assert name in str(exc.value)

    def test_json_file_loads(self, tmp_path):
        path = tmp_path / "mix.json"
        path.write_text(json.dumps(scenario_preset("duet").to_dict()))
        assert load_scenario(str(path)) == scenario_preset("duet")

    def test_missing_json_file_raises_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            load_scenario(str(tmp_path / "absent.json"))


class TestDocumentedKnobs:
    """Every knob the doc's table documents must be accepted by the loader."""

    def _documented_knobs(self):
        text = SCENARIOS_DOC.read_text(encoding="utf-8")
        # Rows of the "## Tenant knobs" table: "| `knob` | type | default | ...".
        section = text.split("## Tenant knobs", 1)[1].split("\n## ", 1)[0]
        knobs = {}
        for row in re.findall(r"^\| `(\w+)` \| ([^|]+) \|", section, re.MULTILINE):
            knobs[row[0]] = row[1].strip()
        return knobs

    def test_doc_table_matches_dataclass_fields(self):
        from dataclasses import fields

        documented = set(self._documented_knobs())
        actual = {f.name for f in fields(TenantSpec)}
        assert documented == actual

    def test_every_documented_knob_is_accepted(self):
        sample = {
            "name": "probe",
            "cipher": "present",
            "key_bits": 80,
            "key_hex": "00112233445566778899",
            "request_rate_hz": 12.5,
            "burst": 2,
            "jitter": 0.1,
            "cpu": 0,
            "scratch_pages": 3,
            "payload_blocks": 4,
            "max_queue": 16,
            "sleeps": True,
        }
        assert set(sample) == set(self._documented_knobs()), (
            "update this sample when the knob table changes"
        )
        spec = TenantSpec.from_dict(sample)
        assert spec.request_rate_hz == 12.5
        assert spec.sleeps is True

    def test_documented_presets_exist(self):
        text = SCENARIOS_DOC.read_text(encoding="utf-8")
        for name in PRESET_NAMES:
            assert f"`{name}`" in text
