"""SECDED ECC: single-flip correction and the multi-flip bypass."""

import pytest

from repro.dram.controller import MemoryController
from repro.dram.ecc import EccConfig, EccState
from repro.dram.flipmodel import FlipModelConfig, RowPopulation, WeakCell
from repro.dram.geometry import DRAMAddress, DRAMGeometry
from repro.dram.mapping import LinearMapping
from repro.dram.timing import DRAMTiming
from repro.sim.clock import SimClock
from repro.sim.errors import ConfigError
from repro.sim.rng import RngStreams

GEO = DRAMGeometry.small()


class TestEccConfig:
    def test_word_bytes_power_of_two(self):
        with pytest.raises(ConfigError):
            EccConfig(enabled=True, word_bytes=6)

    def test_state_requires_enabled(self):
        with pytest.raises(ConfigError):
            EccState(EccConfig.disabled())

    def test_presets(self):
        assert EccConfig.secded64().word_bytes == 8
        assert not EccConfig.disabled().enabled


class TestEccState:
    def make(self):
        return EccState(EccConfig.secded64())

    def test_first_flip_suppressed(self):
        state = self.make()
        assert state.register_flip(0x1000, 3) == []
        assert state.corrected_bits == 1
        assert state.pending_words() == 1

    def test_duplicate_flip_ignored(self):
        state = self.make()
        state.register_flip(0x1000, 3)
        assert state.register_flip(0x1000, 3) == []
        assert state.corrected_bits == 1

    def test_second_bit_same_word_materialises_both(self):
        state = self.make()
        state.register_flip(0x1000, 3)
        out = state.register_flip(0x1002, 5)  # same 8-byte word
        assert sorted(out) == [(0x1000, 3), (0x1002, 5)]
        assert state.uncorrectable_events == 1

    def test_different_words_are_independent(self):
        state = self.make()
        state.register_flip(0x1000, 3)
        assert state.register_flip(0x1008, 5) == []  # next word
        assert state.pending_words() == 2

    def test_uncorrectable_word_passes_through(self):
        state = self.make()
        state.register_flip(0x1000, 0)
        state.register_flip(0x1001, 1)
        assert state.register_flip(0x1003, 7) == [(0x1003, 7)]

    def test_rewrite_clears_state(self):
        state = self.make()
        state.register_flip(0x1000, 0)
        state.clear_range(0x1000, 8)
        assert state.pending_words() == 0
        # Fresh again: the same flip is once more corrected.
        assert state.register_flip(0x1000, 0) == []

    def test_clear_range_spanning_words(self):
        state = self.make()
        state.register_flip(0x1000, 0)
        state.register_flip(0x1008, 0)
        state.clear_range(0x1004, 8)  # touches both words
        assert state.pending_words() == 0


def controller_with_cells(cells_by_row, ecc=None):
    """A controller whose weak-cell map is replaced by a fixed dict."""
    controller = MemoryController(
        geometry=GEO,
        mapping=LinearMapping(GEO),
        timing=DRAMTiming(),
        flip_config=FlipModelConfig.invulnerable(),
        rng=RngStreams(0),
        clock=SimClock(),
        ecc_config=ecc,
    )

    class FixedCells:
        config = controller.weak_cells.config

        def cells_in_row(self, flat_bank, row):
            return cells_by_row.get((flat_bank, row), ())

        def row_population(self, flat_bank, row):
            cells = self.cells_in_row(flat_bank, row)
            return RowPopulation(cells) if cells else None

    controller.weak_cells = FixedCells()
    return controller


def hammer_pair(controller, rows=(99, 101), rounds=600_000):
    m = controller.mapping
    pa = [m.to_phys(DRAMAddress(0, 0, 0, row, 0)) for row in rows]
    return controller.hammer(pa, rounds)


class TestControllerIntegration:
    def single_cell(self):
        return {(0, 100): (WeakCell(bit_index=8, threshold=50_000, true_cell=False),)}

    def two_cells_same_word(self):
        return {
            (0, 100): (
                WeakCell(bit_index=8, threshold=50_000, true_cell=False),
                WeakCell(bit_index=20, threshold=60_000, true_cell=False),
            )
        }

    def test_no_ecc_single_flip_lands(self):
        controller = controller_with_cells(self.single_cell())
        result = hammer_pair(controller)
        assert len(result.flips) == 1

    def test_ecc_corrects_single_flip(self):
        controller = controller_with_cells(self.single_cell(), ecc=EccConfig.secded64())
        result = hammer_pair(controller)
        assert result.flips == []
        assert controller.ecc_stats()["corrected_bits"] == 1
        # Memory is clean: the correction hid the disturbance.
        addr = controller.mapping.to_phys(DRAMAddress(0, 0, 0, 100, 1))
        assert controller.memory.read_byte(addr) == 0

    def test_ecc_bypassed_by_two_cells_in_one_word(self):
        controller = controller_with_cells(
            self.two_cells_same_word(), ecc=EccConfig.secded64()
        )
        result = hammer_pair(controller)
        assert len(result.flips) == 2
        assert controller.ecc_stats()["uncorrectable_events"] == 1

    def test_rewrite_rearms_correction(self):
        controller = controller_with_cells(self.single_cell(), ecc=EccConfig.secded64())
        hammer_pair(controller)
        # Victim rewrites its data: the pending correction state resets.
        addr = controller.mapping.to_phys(DRAMAddress(0, 0, 0, 100, 0))
        controller.memory.write(addr, bytes(8))
        assert controller.ecc_stats()["pending_words"] == 0

    def test_ecc_stats_zero_when_disabled(self):
        controller = controller_with_cells(self.single_cell())
        assert controller.ecc_stats() == {
            "corrected_bits": 0,
            "uncorrectable_events": 0,
            "pending_words": 0,
        }
