"""Memory controller: hammering, refresh windows, flip semantics."""

import pytest

from repro.dram.controller import MemoryController
from repro.dram.flipmodel import FlipModelConfig
from repro.dram.geometry import DRAMAddress, DRAMGeometry
from repro.dram.mapping import LinearMapping
from repro.dram.timing import DRAMTiming
from repro.sim.clock import SimClock
from repro.sim.errors import ConfigError
from repro.sim.rng import RngStreams
from repro.sim.units import PAGE_SIZE

GEO = DRAMGeometry.small()


def make_controller(flip_config=None, seed=0, timing=None):
    return MemoryController(
        geometry=GEO,
        mapping=LinearMapping(GEO),
        timing=timing or DRAMTiming(),
        flip_config=flip_config
        or FlipModelConfig(
            weak_cells_per_row_mean=2.0,
            threshold_mean=150_000,
            threshold_sd=30_000,
            threshold_min=50_000,
        ),
        rng=RngStreams(seed),
        clock=SimClock(),
    )


def same_bank_pair(controller, bank=0, rows=(99, 101)):
    m = controller.mapping
    return [
        m.to_phys(DRAMAddress(0, 0, bank, row, 0)) for row in rows
    ]


def arm_row(controller, bank, row, pattern=0xFF):
    """Fill every frame of a row so its true cells are armed."""
    base = controller.mapping.row_base_phys(0, 0, bank, row)
    for offset in range(0, GEO.row_bytes, PAGE_SIZE):
        controller.memory.fill_frame((base + offset) >> 12, pattern)


class TestAccessPath:
    def test_access_advances_clock(self):
        controller = make_controller()
        controller.access(0)
        assert controller.clock.now_ns == controller.timing.t_rc_ns

    def test_row_hit_is_cheaper(self):
        controller = make_controller()
        controller.access(0)
        t0 = controller.clock.now_ns
        controller.access(1)  # same row
        assert controller.clock.now_ns - t0 == controller.timing.t_cas_ns

    def test_activation_reported(self):
        controller = make_controller()
        assert controller.access(0) is True
        assert controller.access(1) is False


class TestHammer:
    def test_same_bank_pair_accumulates(self):
        controller = make_controller()
        result = controller.hammer(same_bank_pair(controller), 1000)
        assert result.activations == 2000
        assert result.accesses == 2000

    def test_different_bank_pair_does_not(self):
        controller = make_controller()
        m = controller.mapping
        pa = [
            m.to_phys(DRAMAddress(0, 0, 0, 50, 0)),
            m.to_phys(DRAMAddress(0, 0, 1, 50, 0)),
        ]
        result = controller.hammer(pa, 1000)
        # Each row opens once and stays open: only the static activations.
        assert result.activations <= 2

    def test_same_row_pair_does_not(self):
        controller = make_controller()
        m = controller.mapping
        pa = [
            m.to_phys(DRAMAddress(0, 0, 0, 50, 0)),
            m.to_phys(DRAMAddress(0, 0, 0, 50, 64)),
        ]
        result = controller.hammer(pa, 1000)
        assert result.activations <= 1

    def test_validation(self):
        controller = make_controller()
        with pytest.raises(ConfigError):
            controller.hammer([], 10)
        with pytest.raises(ConfigError):
            controller.hammer([0], 0)

    def test_elapsed_time_scales_with_rounds(self):
        controller = make_controller()
        r1 = controller.hammer(same_bank_pair(controller), 1000)
        assert r1.elapsed_ns == 1000 * 2 * controller.timing.t_rc_ns


class TestRefreshWindows:
    def test_counters_reset_between_windows(self):
        controller = make_controller(FlipModelConfig.invulnerable())
        pair = same_bank_pair(controller)
        # A hammer run long enough to span several refresh windows.
        max_per_window = controller.timing.max_activations_per_window()
        rounds = max_per_window  # 2 activations per round -> ~2 windows
        controller.hammer(pair, rounds)
        assert controller.refresh_count >= 1
        # Window counters hold only the current window's share.
        bank = controller.bank((0, 0, 0))
        assert bank.activations_in_window(99) < rounds

    def test_refresh_epoch_tracks_clock(self):
        controller = make_controller()
        assert controller.current_refresh_epoch() == 0
        controller.clock.advance(controller.timing.t_refw_ns + 1)
        assert controller.current_refresh_epoch() == 1


class TestFlips:
    def test_hammering_produces_flips(self):
        controller = make_controller()
        arm_row(controller, 0, 100)
        arm_row(controller, 0, 98)
        arm_row(controller, 0, 102)
        result = controller.hammer(same_bank_pair(controller), 600_000)
        assert result.flips
        assert controller.flip_log == result.flips

    def test_no_weak_cells_no_flips(self):
        controller = make_controller(FlipModelConfig.invulnerable())
        arm_row(controller, 0, 100)
        result = controller.hammer(same_bank_pair(controller), 600_000)
        assert result.flips == []

    def test_insufficient_rounds_no_flips(self):
        controller = make_controller()
        arm_row(controller, 0, 100)
        result = controller.hammer(same_bank_pair(controller), 1_000)
        assert result.flips == []

    def test_flips_are_repeatable(self):
        controller = make_controller()
        for row in (98, 100, 102):
            arm_row(controller, 0, row)
        first = controller.hammer(same_bank_pair(controller), 600_000)
        assert first.flips
        # Repair the flipped bits, then hammer again: same cells flip.
        for event in first.flips:
            controller.memory.set_bit(
                event.phys_addr, event.bit_in_byte, 1 if event.direction_1_to_0 else 0
            )
        second = controller.hammer(same_bank_pair(controller), 600_000)
        key = lambda e: (e.phys_addr, e.bit_in_byte)
        assert {key(e) for e in first.flips} == {key(e) for e in second.flips}

    def test_data_pattern_dependence(self):
        """A true cell (1->0) in a zeroed page cannot flip."""
        controller = make_controller()
        for row in (98, 100, 102):
            arm_row(controller, 0, row, pattern=0xFF)
        with_ones = controller.hammer(same_bank_pair(controller), 600_000)
        one_to_zero = [e for e in with_ones.flips if e.direction_1_to_0]
        # Fresh controller, same seed: zero-filled rows instead.
        controller2 = make_controller()
        for row in (98, 100, 102):
            arm_row(controller2, 0, row, pattern=0x00)
        with_zeros = controller2.hammer(same_bank_pair(controller2), 600_000)
        assert all(not e.direction_1_to_0 for e in with_zeros.flips)
        if one_to_zero:
            flipped_addrs = {e.phys_addr for e in with_zeros.flips}
            assert all(e.phys_addr not in flipped_addrs or True for e in one_to_zero)

    def test_flip_changes_memory_contents(self):
        controller = make_controller()
        for row in (98, 100, 102):
            arm_row(controller, 0, row, pattern=0xFF)
        result = controller.hammer(same_bank_pair(controller), 600_000)
        for event in result.flips:
            bit = controller.memory.get_bit(event.phys_addr, event.bit_in_byte)
            assert bit == (0 if event.direction_1_to_0 else 1)

    def test_flip_event_coordinates(self):
        controller = make_controller()
        for row in (98, 100, 102):
            arm_row(controller, 0, row, pattern=0xFF)
        result = controller.hammer(same_bank_pair(controller), 600_000)
        for event in result.flips:
            assert event.bank_key == (0, 0, 0)
            assert event.row in (97, 98, 100, 102, 103)
            assert event.pfn == event.phys_addr >> 12
            assert 0 <= event.page_offset < PAGE_SIZE

    def test_flips_in_pfn_filter(self):
        controller = make_controller()
        for row in (98, 100, 102):
            arm_row(controller, 0, row, pattern=0xFF)
        result = controller.hammer(same_bank_pair(controller), 600_000)
        assert result.flips
        pfn = result.flips[0].pfn
        assert result.flips[0] in controller.flips_in_pfn(pfn)

    def test_double_refresh_rate_suppresses_flips(self):
        """The 2x-refresh mitigation halves the per-window budget."""
        slow = make_controller()
        fast = make_controller(timing=DRAMTiming.fast_refresh_2x())
        for c in (slow, fast):
            for row in (98, 100, 102):
                arm_row(c, 0, row, pattern=0xFF)
        rounds = 400_000
        slow_flips = len(slow.hammer(same_bank_pair(slow), rounds).flips)
        fast_flips = len(fast.hammer(same_bank_pair(fast), rounds).flips)
        assert fast_flips <= slow_flips


class TestStats:
    def test_stats_keys(self):
        controller = make_controller()
        controller.access(0)
        stats = controller.stats()
        for key in ("activations", "row_hits", "flips", "refreshes", "banks_touched"):
            assert key in stats

    def test_mismatched_mapping_rejected(self):
        other_geo = DRAMGeometry.default()
        with pytest.raises(ConfigError):
            MemoryController(
                geometry=GEO,
                mapping=LinearMapping(other_geo),
                timing=DRAMTiming(),
                flip_config=FlipModelConfig(),
                rng=RngStreams(0),
                clock=SimClock(),
            )


class TestVectorScalarEquivalence:
    """The vectorised dense-row evaluation path must flip exactly the
    cells, in exactly the order, that the scalar per-cell loop does."""

    def _flip_trace(self, vector_min_cells):
        dense = FlipModelConfig(
            weak_cells_per_row_mean=24.0,
            threshold_mean=160_000,
            threshold_sd=40_000,
            threshold_min=50_000,
        )
        controller = make_controller(flip_config=dense, seed=7)
        pairs = [
            same_bank_pair(controller, rows=(99, 101)),
            same_bank_pair(controller, rows=(300, 302)),
        ]
        saved = MemoryController._VECTOR_MIN_CELLS
        MemoryController._VECTOR_MIN_CELLS = vector_min_cells
        try:
            for pair in pairs:
                controller.hammer(pair, 600_000)
                controller.hammer(pair, 400_000)
        finally:
            MemoryController._VECTOR_MIN_CELLS = saved
        return [
            (e.time_ns, e.phys_addr, e.bit_in_byte, e.direction_1_to_0, e.bank_key, e.row)
            for e in controller.flip_log
        ]

    def test_dense_rows_flip_identically_on_both_paths(self):
        scalar = self._flip_trace(10**9)  # every row takes the scalar loop
        vector = self._flip_trace(0)      # every row takes the vector path
        assert scalar == vector
        assert scalar  # non-vacuous: the seeded rows really flipped
