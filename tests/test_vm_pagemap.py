"""Pagemap interface and its CAP_SYS_ADMIN gate (the attack's premise)."""

from repro.os.capabilities import CapabilitySet
from repro.sim.units import PAGE_SIZE
from repro.vm.address_space import AddressSpace
from repro.vm.pagemap import Pagemap


def make_mm_with_page(pfn=123):
    mm = AddressSpace()
    vma = mm.mmap(2 * PAGE_SIZE)
    mm.attach_frame(vma.start, pfn)
    return mm, vma.start


class TestPrivilegedReader:
    def test_sees_pfn(self):
        mm, va = make_mm_with_page(pfn=123)
        entry = Pagemap(mm, CapabilitySet.root()).read(va)
        assert entry.present
        assert entry.pfn == 123
        assert entry.pfn_visible

    def test_absent_page(self):
        mm, va = make_mm_with_page()
        entry = Pagemap(mm, CapabilitySet.root()).read(va + PAGE_SIZE)
        assert not entry.present
        assert entry.pfn == 0


class TestUnprivilegedReader:
    def test_pfn_zeroed_since_linux_4_0(self):
        mm, va = make_mm_with_page(pfn=123)
        entry = Pagemap(mm, CapabilitySet.unprivileged()).read(va)
        assert entry.present
        assert entry.pfn == 0
        assert not entry.pfn_visible

    def test_presence_still_visible(self):
        """Unprivileged readers still learn residency, just not location."""
        mm, va = make_mm_with_page()
        pagemap = Pagemap(mm, CapabilitySet.unprivileged())
        assert pagemap.read(va).present
        assert not pagemap.read(va + PAGE_SIZE).present


class TestRangeRead:
    def test_read_range(self):
        mm, va = make_mm_with_page(pfn=9)
        entries = Pagemap(mm, CapabilitySet.root()).read_range(va, 2 * PAGE_SIZE)
        assert len(entries) == 2
        assert entries[0].pfn == 9
        assert not entries[1].present

    def test_range_starts_at_page_boundary(self):
        mm, va = make_mm_with_page(pfn=9)
        entries = Pagemap(mm, CapabilitySet.root()).read_range(va + 100, PAGE_SIZE)
        assert entries[0].pfn == 9
