"""ConfigError validation paths for attack and defense configs."""

import pytest

from repro.attack.explframe import ExplFrameConfig
from repro.defense.watchdog import WatchdogConfig
from repro.sim.errors import ConfigError
from repro.sim.units import PAGE_SIZE


class TestExplFrameConfig:
    def test_bad_cipher_rejected(self):
        with pytest.raises(ConfigError, match="cipher"):
            ExplFrameConfig(cipher="des")

    def test_table_offset_overflow_rejected(self):
        with pytest.raises(ConfigError, match="fit in a page"):
            ExplFrameConfig(table_offset=PAGE_SIZE - 16)

    def test_negative_table_offset_rejected(self):
        with pytest.raises(ConfigError):
            ExplFrameConfig(table_offset=-1)

    def test_present_table_fits_where_aes_does_not(self):
        # PRESENT's table is 16 bytes, so the same offset can be legal.
        config = ExplFrameConfig(cipher="present", table_offset=PAGE_SIZE - 16)
        assert config.table_size == 16

    def test_nonpositive_pfa_budgets_rejected(self):
        with pytest.raises(ConfigError):
            ExplFrameConfig(pfa_batch=0)
        with pytest.raises(ConfigError):
            ExplFrameConfig(pfa_limit=0)
        with pytest.raises(ConfigError):
            ExplFrameConfig(pfa_batch=-5)

    def test_nonpositive_campaigns_rejected(self):
        with pytest.raises(ConfigError):
            ExplFrameConfig(max_campaigns=0)


class TestWatchdogConfig:
    def test_defaults_valid(self):
        config = WatchdogConfig()
        assert config.threshold_per_window > 0

    def test_nonpositive_threshold_rejected(self):
        with pytest.raises(ConfigError):
            WatchdogConfig(threshold_per_window=0)
        with pytest.raises(ConfigError):
            WatchdogConfig(threshold_per_window=-1)

    def test_nonpositive_history_rejected(self):
        with pytest.raises(ConfigError):
            WatchdogConfig(history_windows=0)
