"""DRAM geometry arithmetic and validation."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.geometry import DRAMAddress, DRAMGeometry
from repro.sim.errors import ConfigError
from repro.sim.units import GIB, KIB, MIB


class TestDerivedSizes:
    def test_default_is_256_mib(self):
        assert DRAMGeometry.default().total_bytes == 256 * MIB

    def test_small_is_64_mib(self):
        assert DRAMGeometry.small().total_bytes == 64 * MIB

    def test_ddr3_preset_is_4_gib(self):
        assert DRAMGeometry.ddr3_4gb().total_bytes == 4 * GIB

    def test_bank_bytes(self):
        geo = DRAMGeometry(rows_per_bank=1024, row_bytes=8 * KIB)
        assert geo.bank_bytes == 8 * MIB

    def test_total_banks(self):
        geo = DRAMGeometry(channels=2, ranks_per_channel=2, banks_per_rank=8)
        assert geo.total_banks == 32

    def test_row_bits(self):
        assert DRAMGeometry().row_bits == 8 * KIB * 8


class TestValidation:
    @pytest.mark.parametrize("field", ["channels", "ranks_per_channel", "banks_per_rank", "rows_per_bank", "row_bytes"])
    def test_non_power_of_two_rejected(self, field):
        with pytest.raises(ConfigError):
            DRAMGeometry(**{field: 3 * KIB if field == "row_bytes" else 3})

    def test_zero_rejected(self):
        with pytest.raises(ConfigError):
            DRAMGeometry(banks_per_rank=0)

    def test_tiny_rows_rejected(self):
        with pytest.raises(ConfigError):
            DRAMGeometry(row_bytes=512)

    def test_validate_bank_bounds(self):
        geo = DRAMGeometry()
        geo.validate_bank(0, 0, 7)
        with pytest.raises(ConfigError):
            geo.validate_bank(0, 0, 8)
        with pytest.raises(ConfigError):
            geo.validate_bank(1, 0, 0)

    def test_validate_address(self):
        geo = DRAMGeometry()
        geo.validate_address(DRAMAddress(0, 0, 0, 0, 0))
        with pytest.raises(ConfigError):
            geo.validate_address(DRAMAddress(0, 0, 0, geo.rows_per_bank, 0))
        with pytest.raises(ConfigError):
            geo.validate_address(DRAMAddress(0, 0, 0, 0, geo.row_bytes))


class TestFlatBankIndex:
    def test_round_trip_all(self):
        geo = DRAMGeometry(channels=2, ranks_per_channel=2, banks_per_rank=8)
        seen = set()
        for ch in range(2):
            for rk in range(2):
                for ba in range(8):
                    flat = geo.flat_bank_index(ch, rk, ba)
                    assert geo.unflatten_bank_index(flat) == (ch, rk, ba)
                    seen.add(flat)
        assert seen == set(range(geo.total_banks))

    def test_unflatten_out_of_range(self):
        with pytest.raises(ConfigError):
            DRAMGeometry().unflatten_bank_index(8)

    @given(st.integers(min_value=0, max_value=31))
    def test_unflatten_then_flatten(self, flat):
        geo = DRAMGeometry(channels=2, ranks_per_channel=2, banks_per_rank=8)
        assert geo.flat_bank_index(*geo.unflatten_bank_index(flat)) == flat


class TestDRAMAddress:
    def test_bank_key(self):
        addr = DRAMAddress(1, 0, 3, 100, 5)
        assert addr.bank_key() == (1, 0, 3)

    def test_str_contains_coordinates(self):
        text = str(DRAMAddress(0, 0, 2, 0x10, 0x20))
        assert "ba2" in text and "0x10" in text

    def test_str_of_geometry(self):
        assert "256 MiB" in str(DRAMGeometry.default())
