"""Chaos subsystem: event validation, firing semantics, layer effects."""

import pytest

from repro.core.machine import Machine, MachineConfig
from repro.dram.flipmodel import FlipModelConfig
from repro.dram.geometry import DRAMGeometry
from repro.sim.chaos import (
    CHAOS_PROFILES,
    AllocationPressure,
    ChaosEngine,
    ChaosPlan,
    HammerInterference,
    PagesetDrain,
    RefreshJitter,
    ThresholdDrift,
    chaos_profile,
)
from repro.sim.errors import ConfigError
from repro.sim.units import MS, PAGE_SIZE


def machine(seed=0):
    return Machine(
        MachineConfig(
            seed=seed,
            geometry=DRAMGeometry.small(),
            flip_model=FlipModelConfig.highly_vulnerable(),
        )
    )


def churn_once(kernel, pid):
    """One map-touch-unmap cycle (pumps mmap, munmap-pre and munmap)."""
    va = kernel.sys_mmap(pid, PAGE_SIZE)
    kernel.mem_write(pid, va, b"x")
    kernel.sys_munmap(pid, va, PAGE_SIZE)


class TestEventValidation:
    def test_unknown_hook_rejected(self):
        with pytest.raises(ConfigError):
            PagesetDrain(hook="write-back")

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError):
            PagesetDrain(at_ns=-1)

    def test_zero_times_rejected(self):
        with pytest.raises(ConfigError):
            PagesetDrain(times=0)

    def test_nonpositive_scale_rejected(self):
        with pytest.raises(ConfigError):
            ThresholdDrift(scale=0.0)
        with pytest.raises(ConfigError):
            RefreshJitter(scale=-1.0)

    def test_interference_needs_suppressing_factor(self):
        with pytest.raises(ConfigError):
            HammerInterference(factor=0.5)

    def test_nonpositive_pressure_rejected(self):
        with pytest.raises(ConfigError):
            AllocationPressure(pages=0)

    def test_plan_needs_name(self):
        with pytest.raises(ConfigError):
            ChaosPlan("")


class TestProfiles:
    def test_every_named_profile_builds(self):
        for name in CHAOS_PROFILES:
            plan = chaos_profile(name)
            assert plan.name == name

    def test_none_is_null(self):
        assert chaos_profile("none").is_null
        assert not chaos_profile("steal").is_null

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigError):
            chaos_profile("earthquake")

    def test_bad_intensity_rejected(self):
        with pytest.raises(ConfigError):
            chaos_profile("steal", intensity=0)

    def test_intensity_scales_pressure(self):
        light = chaos_profile("steal", 1.0).events[0]
        heavy = chaos_profile("steal", 4.0).events[0]
        assert heavy.pages > light.pages
        assert heavy.times > light.times


class TestFiringSemantics:
    def test_fires_once_then_exhausts(self):
        m = machine()
        engine = ChaosEngine(m.kernel, ChaosPlan("p", (PagesetDrain(hook="munmap"),)))
        task = m.kernel.spawn("t", cpu=0)
        churn_once(m.kernel, task.pid)
        churn_once(m.kernel, task.pid)
        assert len(engine.records) == 1
        assert engine.pending_events() == 0

    def test_skip_defers_firing(self):
        m = machine()
        engine = ChaosEngine(
            m.kernel, ChaosPlan("p", (PagesetDrain(hook="munmap", skip=1),))
        )
        task = m.kernel.spawn("t", cpu=0)
        churn_once(m.kernel, task.pid)
        assert len(engine.records) == 0
        churn_once(m.kernel, task.pid)
        assert len(engine.records) == 1

    def test_time_gate(self):
        m = machine()
        engine = ChaosEngine(
            m.kernel,
            ChaosPlan("p", (PagesetDrain(hook="munmap", at_ns=10**15),)),
        )
        task = m.kernel.spawn("t", cpu=0)
        churn_once(m.kernel, task.pid)
        assert len(engine.records) == 0
        m.kernel.clock.advance_to(10**15)
        churn_once(m.kernel, task.pid)
        assert len(engine.records) == 1

    def test_hook_mismatch_does_not_fire(self):
        m = machine()
        engine = ChaosEngine(m.kernel, ChaosPlan("p", (PagesetDrain(hook="hammer"),)))
        task = m.kernel.spawn("t", cpu=0)
        churn_once(m.kernel, task.pid)
        assert len(engine.records) == 0

    def test_records_carry_forensics(self):
        m = machine()
        engine = ChaosEngine(m.kernel, chaos_profile("steal"))
        task = m.kernel.spawn("t", cpu=0)
        churn_once(m.kernel, task.pid)
        (record,) = engine.records_as_dicts()
        assert record["event"] == "AllocationPressure"
        assert record["hook"] == "munmap"
        assert record["pid"] == task.pid
        assert "churned" in record["detail"]


class TestLayerEffects:
    def test_threshold_drift_scales_controller(self):
        m = machine()
        ChaosEngine(
            m.kernel, ChaosPlan("p", (ThresholdDrift(hook="munmap", scale=8.0),))
        )
        task = m.kernel.spawn("t", cpu=0)
        churn_once(m.kernel, task.pid)
        assert m.kernel.controller.threshold_scale == 8.0

    def test_windowed_drift_expires(self):
        m = machine()
        ChaosEngine(
            m.kernel,
            ChaosPlan("p", (ThresholdDrift(hook="munmap", scale=8.0, duration_ns=5 * MS),)),
        )
        task = m.kernel.spawn("t", cpu=0)
        churn_once(m.kernel, task.pid)
        assert m.kernel.controller.threshold_scale == 8.0
        m.kernel.clock.advance(6 * MS)
        churn_once(m.kernel, task.pid)  # pump expires the window
        assert m.kernel.controller.threshold_scale == 1.0

    def test_refresh_jitter_shrinks_window(self):
        m = machine()
        base = m.kernel.controller.effective_refw_ns()
        ChaosEngine(
            m.kernel, ChaosPlan("p", (RefreshJitter(hook="munmap", scale=0.5),))
        )
        task = m.kernel.spawn("t", cpu=0)
        churn_once(m.kernel, task.pid)
        assert m.kernel.controller.effective_refw_ns() == base // 2

    def test_migration_moves_attacker(self):
        m = machine()
        ChaosEngine(m.kernel, chaos_profile("migrate"))
        task = m.kernel.spawn("t", cpu=0)
        churn_once(m.kernel, task.pid)
        assert m.kernel.task(task.pid).cpu != 0

    def test_allocation_pressure_steals_staged_frame(self):
        m = machine()
        task = m.kernel.spawn("attacker", cpu=0)
        va = m.kernel.sys_mmap(task.pid, PAGE_SIZE)
        m.kernel.mem_write(task.pid, va, b"x")
        staged_pfn = m.kernel.pfn_of(task.pid, va)
        ChaosEngine(m.kernel, chaos_profile("steal"))
        m.kernel.sys_munmap(task.pid, va, PAGE_SIZE)  # stage + chaos fires
        victim = m.kernel.spawn("victim", cpu=0)
        victim_va = m.kernel.sys_mmap(victim.pid, PAGE_SIZE)
        m.kernel.mem_write(victim.pid, victim_va, b"v")
        assert m.kernel.pfn_of(victim.pid, victim_va) != staged_pfn

    def test_without_chaos_staged_frame_lands(self):
        m = machine()
        task = m.kernel.spawn("attacker", cpu=0)
        va = m.kernel.sys_mmap(task.pid, PAGE_SIZE)
        m.kernel.mem_write(task.pid, va, b"x")
        staged_pfn = m.kernel.pfn_of(task.pid, va)
        m.kernel.sys_munmap(task.pid, va, PAGE_SIZE)
        victim = m.kernel.spawn("victim", cpu=0)
        victim_va = m.kernel.sys_mmap(victim.pid, PAGE_SIZE)
        m.kernel.mem_write(victim.pid, victim_va, b"v")
        assert m.kernel.pfn_of(victim.pid, victim_va) == staged_pfn

    def test_determinism_same_seed_same_records(self):
        def run():
            m = machine(seed=5)
            engine = ChaosEngine(m.kernel, chaos_profile("storm", 2.0))
            task = m.kernel.spawn("t", cpu=0)
            for _ in range(6):
                churn_once(m.kernel, task.pid)
            return engine.records_as_dicts()

        assert run() == run()
