"""Page frame descriptors and the frame table."""

import pytest

from repro.mm.page import FrameTable, PageFlags, PageFrame
from repro.sim.errors import ConfigError


class TestPageFrame:
    def test_defaults(self):
        frame = PageFrame(pfn=7)
        assert frame.flags is PageFlags.FREE_BUDDY
        assert frame.owner_pid is None
        assert frame.is_free

    def test_mark_records_history(self):
        frame = PageFrame(pfn=0)
        frame.mark(PageFlags.ALLOCATED)
        frame.mark(PageFlags.ON_PCP)
        assert frame.flags is PageFlags.ON_PCP
        assert frame.field_history[-2:] == [PageFlags.FREE_BUDDY, PageFlags.ALLOCATED]

    def test_history_bounded(self):
        frame = PageFrame(pfn=0)
        for _ in range(100):
            frame.mark(PageFlags.ALLOCATED)
        assert len(frame.field_history) <= 16

    def test_is_free_states(self):
        frame = PageFrame(pfn=0)
        frame.mark(PageFlags.ON_PCP)
        assert frame.is_free
        frame.mark(PageFlags.ALLOCATED)
        assert not frame.is_free
        frame.mark(PageFlags.RESERVED)
        assert not frame.is_free


class TestFrameTable:
    def test_indexing(self):
        table = FrameTable(16)
        assert table[5].pfn == 5
        assert len(table) == 16

    def test_bounds(self):
        table = FrameTable(16)
        with pytest.raises(ConfigError):
            table[16]
        with pytest.raises(ConfigError):
            table[-1]

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigError):
            FrameTable(0)

    def test_owned_by(self):
        table = FrameTable(8)
        for pfn in (1, 3):
            table[pfn].mark(PageFlags.ALLOCATED)
            table[pfn].owner_pid = 42
        table[5].mark(PageFlags.ALLOCATED)
        table[5].owner_pid = 99
        assert table.owned_by(42) == [1, 3]

    def test_count_state(self):
        table = FrameTable(8)
        table[0].mark(PageFlags.ALLOCATED)
        assert table.count_state(PageFlags.ALLOCATED) == 1
        assert table.count_state(PageFlags.FREE_BUDDY) == 7
