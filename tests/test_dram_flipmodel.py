"""Weak-cell population model: determinism, density, validation."""

import pytest

from repro.dram.flipmodel import FlipModelConfig, WeakCell, WeakCellMap
from repro.dram.geometry import DRAMGeometry
from repro.sim.errors import ConfigError
from repro.sim.rng import RngStreams

GEO = DRAMGeometry.small()


def make_map(config=None, seed=0):
    return WeakCellMap(GEO, config or FlipModelConfig(), RngStreams(seed))


class TestWeakCell:
    def test_byte_and_bit_decomposition(self):
        cell = WeakCell(bit_index=0x123 * 8 + 5, threshold=100_000, true_cell=True)
        assert cell.byte_offset == 0x123
        assert cell.bit_in_byte == 5

    def test_true_cell_direction(self):
        cell = WeakCell(bit_index=0, threshold=1, true_cell=True)
        assert cell.charged_value == 1
        assert cell.flipped_value == 0
        assert "1->0" in str(cell)

    def test_anti_cell_direction(self):
        cell = WeakCell(bit_index=0, threshold=1, true_cell=False)
        assert cell.charged_value == 0
        assert cell.flipped_value == 1


class TestDeterminism:
    def test_same_seed_same_population(self):
        a = make_map(seed=1).cells_in_row(0, 10)
        b = make_map(seed=1).cells_in_row(0, 10)
        assert a == b

    def test_memoised_identity(self):
        cell_map = make_map()
        assert cell_map.cells_in_row(0, 10) is cell_map.cells_in_row(0, 10)

    def test_different_rows_differ(self):
        cell_map = make_map(FlipModelConfig(weak_cells_per_row_mean=5.0), seed=2)
        rows = {cell_map.cells_in_row(0, r) for r in range(20)}
        assert len(rows) > 1

    def test_different_seeds_differ(self):
        config = FlipModelConfig(weak_cells_per_row_mean=5.0)
        total_a = make_map(config, seed=1).count_weak_cells(0, 0, 50)
        cells_a = [make_map(config, seed=1).cells_in_row(0, r) for r in range(50)]
        cells_b = [make_map(config, seed=2).cells_in_row(0, r) for r in range(50)]
        assert cells_a != cells_b
        assert total_a == sum(len(c) for c in cells_a)


class TestDensity:
    def test_invulnerable_has_no_cells(self):
        cell_map = make_map(FlipModelConfig.invulnerable())
        assert cell_map.count_weak_cells(0, 0, 200) == 0

    def test_density_scales(self):
        sparse = make_map(FlipModelConfig(weak_cells_per_row_mean=0.05), seed=3)
        dense = make_map(FlipModelConfig(weak_cells_per_row_mean=2.0), seed=3)
        rows = GEO.rows_per_bank
        assert dense.count_weak_cells(0, 0, rows) > sparse.count_weak_cells(0, 0, rows)

    def test_poisson_mean_roughly_matches(self):
        mean = 1.0
        cell_map = make_map(FlipModelConfig(weak_cells_per_row_mean=mean), seed=4)
        rows = GEO.rows_per_bank
        count = cell_map.count_weak_cells(0, 0, rows)
        assert 0.7 * mean * rows < count < 1.3 * mean * rows


class TestThresholds:
    def test_thresholds_clipped(self):
        config = FlipModelConfig(
            weak_cells_per_row_mean=3.0,
            threshold_mean=100_000,
            threshold_sd=500_000,  # huge spread to force clipping
            threshold_min=60_000,
            threshold_max=200_000,
        )
        cell_map = make_map(config, seed=5)
        for row in range(100):
            for cell in cell_map.cells_in_row(0, row):
                assert 60_000 <= cell.threshold <= 200_000

    def test_weakest_threshold(self):
        cell_map = make_map(FlipModelConfig(weak_cells_per_row_mean=3.0), seed=6)
        for row in range(50):
            cells = cell_map.cells_in_row(0, row)
            weakest = cell_map.weakest_threshold_in_row(0, row)
            if cells:
                assert weakest == min(c.threshold for c in cells)
            else:
                assert weakest is None

    def test_cells_sorted_by_bit_index(self):
        cell_map = make_map(FlipModelConfig(weak_cells_per_row_mean=4.0), seed=7)
        for row in range(30):
            cells = cell_map.cells_in_row(0, row)
            indices = [c.bit_index for c in cells]
            assert indices == sorted(indices)
            assert len(set(indices)) == len(indices)  # no duplicates


class TestValidation:
    def test_negative_density(self):
        with pytest.raises(ConfigError):
            FlipModelConfig(weak_cells_per_row_mean=-1)

    def test_inverted_threshold_bounds(self):
        with pytest.raises(ConfigError):
            FlipModelConfig(threshold_min=100, threshold_max=50)

    def test_bad_fraction(self):
        with pytest.raises(ConfigError):
            FlipModelConfig(true_cell_fraction=1.5)

    def test_d2_coupling_cannot_exceed_adjacent(self):
        with pytest.raises(ConfigError):
            FlipModelConfig(coupling_adjacent=0.1, coupling_distance2=0.5)

    def test_row_bounds(self):
        cell_map = make_map()
        with pytest.raises(ConfigError):
            cell_map.cells_in_row(GEO.total_banks, 0)
        with pytest.raises(ConfigError):
            cell_map.cells_in_row(0, GEO.rows_per_bank)

    def test_inverted_count_range(self):
        with pytest.raises(ConfigError):
            make_map().count_weak_cells(0, 10, 5)


class TestRowPopulation:
    def test_columns_match_cells_on_seeded_rows(self):
        cell_map = make_map(FlipModelConfig.highly_vulnerable(), seed=7)
        populated = 0
        for row in range(300):
            cells = cell_map.cells_in_row(0, row)
            population = cell_map.row_population(0, row)
            if not cells:
                assert population is None
                continue
            populated += 1
            assert population.bit_index.tolist() == [c.bit_index for c in cells]
            assert population.threshold.tolist() == [c.threshold for c in cells]
            assert population.true_cell.tolist() == [c.true_cell for c in cells]
            assert population.byte_offset.tolist() == [c.byte_offset for c in cells]
            assert population.bit_in_byte.tolist() == [c.bit_in_byte for c in cells]
            assert population.charged.tolist() == [c.charged_value for c in cells]
            assert population.min_threshold == min(c.threshold for c in cells)
            assert len(population) == len(cells)
        assert populated > 10  # non-vacuous: the sweep hit real populations

    def test_population_is_memoized(self):
        cell_map = make_map(FlipModelConfig.highly_vulnerable(), seed=7)
        a = cell_map.row_population(0, 5)
        assert cell_map.row_population(0, 5) is a

    def test_memo_caches_dropped_on_pickle(self):
        import pickle

        cell_map = make_map(FlipModelConfig.highly_vulnerable(), seed=7)
        cell_map.cells_in_row(0, 5)
        cell_map.row_population(0, 5)
        clone = pickle.loads(pickle.dumps(cell_map))
        assert clone._memo == {} and clone._pop_memo == {}
        # Regenerated populations are equal: pure function of seed + coords.
        assert clone.cells_in_row(0, 5) == cell_map.cells_in_row(0, 5)
