"""Eviction-based hammering: derivation, the kernel loop, and the modality.

Covers the evictframe contract from docs/ATTACKS.md layer by layer:
cache-set congruence enumeration is mapping-independent (the cache is
physically indexed) while the DRAM rows it lands in are not; a derived
traversal really evicts the aggressor line (``CpuCache.contains``);
``sys_hammer_evict``'s steady-state replay reproduces flips at full
eviction accuracy while an undersized set is the negative control; and
evictframe campaigns keep the engine-independence digest contract.
"""

import pytest

from repro.attack.evictframe import (
    EVICT_PATTERNS,
    EvictFrameAttack,
    EvictFrameConfig,
)
from repro.attack.templating import TemplatorConfig
from repro.core import Machine, MachineConfig
from repro.dram.cache import CpuCache, CpuCacheConfig
from repro.dram.flipmodel import FlipModelConfig
from repro.dram.geometry import DRAMGeometry
from repro.dram.mapping import LinearMapping, XorBankMapping
from repro.sim.errors import ConfigError, FaultError
from repro.sim.units import MIB, PAGE_SIZE


def small_machine(seed=7, **kwargs):
    return Machine(
        MachineConfig(
            seed=seed,
            geometry=DRAMGeometry.small(),
            flip_model=FlipModelConfig.highly_vulnerable(),
            **kwargs,
        )
    )


def fast_config(**kwargs):
    return EvictFrameConfig(
        templator=TemplatorConfig(buffer_bytes=4 * MIB, rounds=650_000, batch_pairs=8),
        **kwargs,
    )


class TestConfig:
    def test_defaults_extend_explframe(self):
        config = EvictFrameConfig()
        assert config.evict_slack == 2
        assert config.evict_pattern == "sequential"
        assert config.cipher == "aes"  # inherited knobs intact

    def test_negative_slack_rejected(self):
        with pytest.raises(ConfigError):
            EvictFrameConfig(evict_slack=-1)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ConfigError):
            EvictFrameConfig(evict_pattern="random")

    def test_patterns_constant_matches_validation(self):
        for pattern in EVICT_PATTERNS:
            assert EvictFrameConfig(evict_pattern=pattern).evict_pattern == pattern

    def test_repr_pins_the_eviction_knobs(self):
        # The campaign config hash relies on repr covering every knob.
        text = repr(EvictFrameConfig(evict_slack=3, evict_pattern="interleave"))
        assert "evict_slack=3" in text
        assert "evict_pattern='interleave'" in text


class TestCongruenceEnumeration:
    """``phys_in_cache_set`` against both address mappings."""

    @pytest.mark.parametrize("mapping_cls", [LinearMapping, XorBankMapping])
    def test_members_share_the_cache_set(self, mapping_cls):
        geometry = DRAMGeometry.small()
        mapping = mapping_cls(geometry)
        cache = CpuCache()
        phys = 3 * PAGE_SIZE + 128
        members = mapping.phys_in_cache_set(
            phys, line_size=cache.config.line_size, sets=cache.config.sets
        )
        assert phys in members
        target = cache.set_index(phys)
        assert all(cache.set_index(member) == target for member in members)

    @pytest.mark.parametrize("mapping_cls", [LinearMapping, XorBankMapping])
    def test_enumeration_spans_the_module(self, mapping_cls):
        geometry = DRAMGeometry.small()
        mapping = mapping_cls(geometry)
        cache = CpuCacheConfig()
        members = mapping.phys_in_cache_set(
            0, line_size=cache.line_size, sets=cache.sets
        )
        assert len(members) == geometry.total_bytes // cache.way_stride
        assert members[-1] < geometry.total_bytes

    def test_congruence_is_mapping_independent_but_rows_are_not(self):
        # Same physical members under both mappings (the cache is
        # physically indexed) — but the DRAM coordinates they activate
        # differ, which is what the wasted-activation accounting is for.
        geometry = DRAMGeometry.small()
        linear, xor = LinearMapping(geometry), XorBankMapping(geometry)
        cache = CpuCacheConfig()
        kwargs = dict(line_size=cache.line_size, sets=cache.sets, max_count=16)
        members_linear = linear.phys_in_cache_set(PAGE_SIZE, **kwargs)
        members_xor = xor.phys_in_cache_set(PAGE_SIZE, **kwargs)
        assert members_linear == members_xor
        banks_linear = [linear.to_dram(m).bank for m in members_linear]
        banks_xor = [xor.to_dram(m).bank for m in members_xor]
        assert banks_linear != banks_xor

    def test_max_count_truncates(self):
        mapping = LinearMapping(DRAMGeometry.small())
        members = mapping.phys_in_cache_set(0, line_size=64, sets=512, max_count=5)
        assert len(members) == 5

    def test_out_of_module_address_rejected(self):
        mapping = LinearMapping(DRAMGeometry.small())
        with pytest.raises(ConfigError):
            mapping.phys_in_cache_set(
                DRAMGeometry.small().total_bytes, line_size=64, sets=512
            )


class TestKernelEvictHammer:
    """``sys_hammer_evict`` through a real machine, no attack on top."""

    WAYS = CpuCacheConfig().ways

    @pytest.fixture
    def rig(self):
        machine = small_machine()
        kernel = machine.kernel
        task = kernel.spawn("evictor", cpu=0)
        stride = kernel.cache.config.way_stride
        pages = (self.WAYS + 4) * stride // PAGE_SIZE
        va = kernel.sys_mmap(task.pid, pages * PAGE_SIZE, name="evict-buffer")
        for index in range(pages):
            kernel.mem_write(task.pid, va + index * PAGE_SIZE, b"\xff" * PAGE_SIZE)
        return machine, kernel, task, va, stride

    def test_full_set_evicts_the_aggressor(self, rig):
        machine, kernel, task, va, stride = rig
        members = [va + k * stride for k in range(1, self.WAYS + 3)]
        result = kernel.sys_hammer_evict(task.pid, [va], [members], rounds=64)
        # Steady state: the traversal pushes the aggressor line out every
        # round, so the access reaches DRAM — full eviction accuracy.
        assert result.eviction_accuracy > 0.95
        assert result.activations > 0
        pa = kernel.resolve_pa(task.pid, va)
        assert not kernel.cache.contains(pa)

    def test_undersized_set_is_the_negative_control(self, rig):
        machine, kernel, task, va, stride = rig
        few = [va + k * stride for k in range(1, self.WAYS - 1)]
        result = kernel.sys_hammer_evict(task.pid, [va], [few], rounds=64)
        # Everything fits in the set's ways: after the cold round all
        # accesses hit, nothing reaches DRAM, and the aggressor stays
        # cached — why the original attack needed clflush.
        assert result.eviction_accuracy < 0.05
        assert result.aggressor_misses <= 1
        pa = kernel.resolve_pa(task.pid, va)
        assert kernel.cache.contains(pa)

    def test_interleave_pattern_runs(self, rig):
        machine, kernel, task, va, stride = rig
        aggressors = [va, va + 64]
        members = [
            [va + k * stride for k in range(1, self.WAYS + 3)],
            [va + 64 + k * stride for k in range(1, self.WAYS + 3)],
        ]
        result = kernel.sys_hammer_evict(
            task.pid, aggressors, members, rounds=32, pattern="interleave"
        )
        assert result.eviction_accuracy > 0.9
        assert result.rounds == 32

    def test_wasted_activations_accounted(self, rig):
        machine, kernel, task, va, stride = rig
        members = [va + k * stride for k in range(1, self.WAYS + 3)]
        result = kernel.sys_hammer_evict(task.pid, [va], [members], rounds=64)
        assert result.wasted_activations > 0
        assert result.wasted_activations < result.activations
        assert result.traversal_accesses == 64 * len(members)

    def test_rounds_and_sets_validated(self, rig):
        machine, kernel, task, va, stride = rig
        with pytest.raises(ConfigError):
            kernel.sys_hammer_evict(task.pid, [va], [[]], rounds=0)
        with pytest.raises(ConfigError):
            kernel.sys_hammer_evict(task.pid, [va], [[], []], rounds=8)
        with pytest.raises(ConfigError):
            kernel.sys_hammer_evict(task.pid, [va], [[]], rounds=8, pattern="zigzag")

    def test_unmapped_target_faults(self, rig):
        machine, kernel, task, va, stride = rig
        kernel.sys_munmap(task.pid, va, PAGE_SIZE)
        with pytest.raises(FaultError):
            kernel.sys_hammer_evict(task.pid, [va], [[]], rounds=8)

    def test_cache_counter_extrapolation_is_linear_in_rounds(self):
        """Rounds 3..N replay round 2's steady state — counters scale linearly.

        Three identical machines run 2, 3, and 34 rounds; the per-round
        steady-state delta measured between 2 and 3 must extrapolate
        exactly to 34 (rounds past the live pair are accounted
        analytically, so any drift would be a modelling bug).
        """
        samples = {}
        for rounds in (2, 3, 34):
            machine = small_machine()
            kernel = machine.kernel
            task = kernel.spawn("evictor", cpu=0)
            stride = kernel.cache.config.way_stride
            pages = (self.WAYS + 4) * stride // PAGE_SIZE
            va = kernel.sys_mmap(task.pid, pages * PAGE_SIZE)
            for index in range(pages):
                kernel.mem_write(
                    task.pid, va + index * PAGE_SIZE, b"\xff" * PAGE_SIZE
                )
            members = [va + k * stride for k in range(1, self.WAYS + 3)]
            before = (kernel.cache.hits, kernel.cache.misses)
            result = kernel.sys_hammer_evict(task.pid, [va], [members], rounds)
            samples[rounds] = (
                result,
                kernel.cache.hits - before[0],
                kernel.cache.misses - before[1],
            )
        (two, hits2, misses2) = samples[2]
        (three, hits3, misses3) = samples[3]
        (many, hits34, misses34) = samples[34]
        per_round = (
            three.aggressor_misses - two.aggressor_misses,
            hits3 - hits2,
            misses3 - misses2,
        )
        assert many.aggressor_misses == two.aggressor_misses + 32 * per_round[0]
        assert hits34 == hits2 + 32 * per_round[1]
        assert misses34 == misses2 + 32 * per_round[2]
        # Activations are NOT asserted linear: the steady tail replays
        # through the controller's batched hammer model (row-buffer
        # semantics differ from per-access simulation by design).
        assert many.activations > two.activations


class TestDerivation:
    """Eviction-set derivation through the attack's own (syscall) surface."""

    @pytest.fixture(scope="class")
    def staged(self):
        """A templated, steered candidate whose aggressors all derive.

        Mirrors the orchestrator: derivation may legitimately fail on a
        candidate (too few congruent resident lines inside the buffer),
        in which case the campaign advances to the next template — so
        the fixture does too.
        """
        machine = small_machine()
        attack = EvictFrameAttack(machine, config=fast_config())
        for template in attack.template_until_usable():
            victim, _, _ = attack.stage_and_steer(template)
            if all(
                attack.derive_eviction_set(va, template) is not None
                for va in template.aggressor_vas
            ):
                return machine, attack, template, victim
        pytest.fail("no template with a fully derivable eviction set")

    def test_derive_returns_verified_congruent_members(self, staged):
        machine, attack, template, victim = staged
        aggressor_va = template.aggressor_vas[0]
        members = attack.derive_eviction_set(aggressor_va, template)
        assert members is not None
        target = machine.cache.config.ways + attack.config.evict_slack
        assert len(members) >= target
        kernel = machine.kernel
        pid = attack.attacker.pid
        aggressor_set = machine.cache.set_index(kernel.resolve_pa(pid, aggressor_va))
        congruent = [
            machine.cache.set_index(kernel.resolve_pa(pid, va)) == aggressor_set
            for va in members
        ]
        # The virtual-stride walk is verified by timing, not trusted: at
        # least the associativity's worth must be physically congruent
        # (or the traversal could never have evicted the aggressor).
        assert sum(congruent) >= machine.cache.config.ways

    def test_traversal_evicts_the_aggressor_line(self, staged):
        machine, attack, template, victim = staged
        kernel = machine.kernel
        pid = attack.attacker.pid
        aggressor_va = template.aggressor_vas[0]
        members = attack.derive_eviction_set(aggressor_va, template)
        pa = kernel.resolve_pa(pid, aggressor_va)
        kernel.mem_read(pid, aggressor_va, 1)
        assert kernel.cache.contains(pa)
        for member in members:
            kernel.mem_read(pid, member, 1)
        assert not kernel.cache.contains(pa)

    def test_members_avoid_the_victim_neighbourhood(self, staged):
        machine, attack, template, victim = staged
        members = attack.derive_eviction_set(template.aggressor_vas[0], template)
        guard = 3 * machine.controller.mapping.row_stride()
        anchors = tuple(template.aggressor_vas) + (template.page_va,)
        for member in members:
            assert all(abs(member - anchor) >= guard for anchor in anchors)

    def test_single_shot_run_is_rejected(self):
        machine = small_machine()
        attack = EvictFrameAttack(machine, config=fast_config())
        with pytest.raises(ConfigError):
            attack.run()

    def test_rehammer_without_derived_sets_is_rejected(self, staged):
        machine, attack, template, victim = staged
        attack._eviction_sets = None
        with pytest.raises(ConfigError):
            attack.rehammer(template, victim)


class TestModalityContract:
    def test_registered(self):
        from repro.attack.registry import get_modality

        modality = get_modality("evictframe")
        assert modality.name == "evictframe"
        assert "cache-eviction" in modality.required_capabilities()

    def test_stage_names_extend_explframe(self):
        machine = small_machine()
        attack = EvictFrameAttack(machine, config=fast_config())
        assert attack.stage_names() == (
            "template", "steer", "evictset", "rehammer", "pfa",
        )
        stages = attack.resolution_stages()
        assert [stage.name for stage in stages] == ["evictset", "rehammer", "pfa"]
        # Policy slots are the fixed OrchestratorConfig trio — the
        # checkpoint config-hash contract forbids new fields.
        assert {stage.policy for stage in stages} <= {"steer", "rehammer", "pfa"}

    def test_failure_classes_add_eviction_set_incomplete(self):
        from repro.attack.base import FailureClass

        machine = small_machine()
        attack = EvictFrameAttack(machine, config=fast_config())
        assert FailureClass.EVICTION_SET_INCOMPLETE in attack.failure_classes()

    def test_evict_metric_family_registered(self):
        machine = small_machine()
        EvictFrameAttack(machine, config=fast_config())
        snapshot = machine.obs.metrics.snapshot()
        families = {name for name in snapshot if name.startswith("attack.evict.")}
        assert families == {
            "attack.evict.sets_derived",
            "attack.evict.set_lines",
            "attack.evict.probe_reads",
            "attack.evict.rounds",
            "attack.evict.aggressor_accesses",
            "attack.evict.aggressor_evictions",
            "attack.evict.wasted_activations",
        }
        # PFA still runs under this modality, so its family stays too.
        assert "attack.pfa.ciphertexts" in snapshot


@pytest.mark.slow
class TestEndToEnd:
    def _campaign(self, **kwargs):
        from repro.attack.orchestrator import AttackCampaign

        return AttackCampaign(
            MachineConfig(
                seed=7,
                geometry=DRAMGeometry.small(),
                flip_model=FlipModelConfig.highly_vulnerable(),
            ),
            2,
            modality="evictframe",
            attack_config=fast_config(),
            fork_from_template=True,
            **kwargs,
        )

    def test_campaign_recovers_keys_and_accounts_accuracy(self):
        result = self._campaign().run()
        assert result.successes == result.attempts
        families = result.metrics["families"]

        def total(name):
            return sum(families[name]["instances"].values())

        accesses = total("attack.evict.aggressor_accesses")
        evictions = total("attack.evict.aggressor_evictions")
        assert accesses > 0
        assert evictions / accesses > 0.95
        assert total("attack.evict.wasted_activations") > 0

    def test_serial_and_pooled_digests_match(self):
        from repro.parallel.pool import run_campaign

        serial = self._campaign().run()
        pooled = run_campaign(self._campaign(workers=2))
        assert serial.digest() == pooled.digest()
        assert pooled.successes == serial.successes
