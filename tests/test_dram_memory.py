"""Physical memory store: lazy frames, copy-on-write sharing, byte/bit access."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.memory import PhysicalMemory
from repro.sim.errors import ConfigError
from repro.sim.units import MIB, PAGE_SIZE


@pytest.fixture
def mem():
    return PhysicalMemory(4 * MIB)


class TestLaziness:
    def test_untouched_memory_reads_zero(self, mem):
        assert mem.read(0, 64) == bytes(64)
        assert mem.materialized_frames() == 0

    def test_write_materializes_one_frame(self, mem):
        mem.write(100, b"hello")
        assert mem.materialized_frames() == 1
        assert mem.is_materialized(0)

    def test_straddling_write_materializes_two(self, mem):
        mem.write(PAGE_SIZE - 2, b"abcd")
        assert mem.materialized_frames() == 2

    def test_clear_frame_drops_storage(self, mem):
        mem.write(0, b"x" * 16)
        mem.clear_frame(0)
        assert not mem.is_materialized(0)
        assert mem.read(0, 16) == bytes(16)


class TestReadWrite:
    def test_round_trip(self, mem):
        mem.write(123, b"payload")
        assert mem.read(123, 7) == b"payload"

    def test_cross_page_round_trip(self, mem):
        data = bytes(range(256)) * 40  # 10240 bytes, > 2 pages
        mem.write(PAGE_SIZE - 100, data)
        assert mem.read(PAGE_SIZE - 100, len(data)) == data

    @given(
        offset=st.integers(min_value=0, max_value=2 * PAGE_SIZE),
        data=st.binary(min_size=1, max_size=300),
    )
    @settings(max_examples=100)
    def test_round_trip_property(self, offset, data):
        memory = PhysicalMemory(16 * PAGE_SIZE)
        memory.write(offset, data)
        assert memory.read(offset, len(data)) == data

    def test_byte_access(self, mem):
        mem.write_byte(5, 0xAB)
        assert mem.read_byte(5) == 0xAB

    def test_byte_value_range(self, mem):
        with pytest.raises(ConfigError):
            mem.write_byte(0, 256)

    def test_out_of_range(self, mem):
        with pytest.raises(ConfigError):
            mem.read(4 * MIB, 1)
        with pytest.raises(ConfigError):
            mem.write(4 * MIB - 1, b"ab")
        with pytest.raises(ConfigError):
            mem.read(0, -1)


class TestBitOps:
    def test_get_set(self, mem):
        mem.set_bit(10, 3, 1)
        assert mem.get_bit(10, 3) == 1
        assert mem.read_byte(10) == 0x08

    def test_set_zero(self, mem):
        mem.write_byte(10, 0xFF)
        mem.set_bit(10, 0, 0)
        assert mem.read_byte(10) == 0xFE

    def test_flip(self, mem):
        assert mem.flip_bit(20, 7) == 1
        assert mem.read_byte(20) == 0x80
        assert mem.flip_bit(20, 7) == 0
        assert mem.read_byte(20) == 0

    def test_bit_index_validated(self, mem):
        with pytest.raises(ConfigError):
            mem.get_bit(0, 8)
        with pytest.raises(ConfigError):
            mem.set_bit(0, 3, 2)


class TestFrames:
    def test_fill_frame(self, mem):
        mem.fill_frame(2, 0xAA)
        assert mem.read(2 * PAGE_SIZE, PAGE_SIZE) == bytes([0xAA]) * PAGE_SIZE

    def test_fill_pattern_validated(self, mem):
        with pytest.raises(ConfigError):
            mem.fill_frame(0, 300)

    def test_snapshot_is_immutable_copy(self, mem):
        mem.write_byte(0, 1)
        snap = mem.frame_snapshot(0)
        mem.write_byte(0, 2)
        assert snap[0] == 1

    def test_snapshot_of_virgin_frame(self, mem):
        assert mem.frame_snapshot(3) == bytes(PAGE_SIZE)

    def test_total_frames(self, mem):
        assert mem.total_frames == 4 * MIB // PAGE_SIZE


class TestCopyOnWrite:
    def test_shared_then_diverge(self):
        a = PhysicalMemory(16 * PAGE_SIZE)
        a.write(0, b"hello")
        b = PhysicalMemory(16 * PAGE_SIZE)
        b._frames = a.share_frames()
        assert a.is_shared(0) and b.is_shared(0)
        assert b.read(0, 5) == b"hello"
        b.write(0, b"HELLO")
        # The writer diverged onto a private frame; the sharer is untouched.
        assert b.read(0, 5) == b"HELLO"
        assert a.read(0, 5) == b"hello"
        assert not a.is_shared(0) and not b.is_shared(0)
        assert b.cow_copies == 1
        assert a.cow_shares == 1 and a.cow_generation == 1

    def test_disturbance_flip_triggers_cow(self):
        a = PhysicalMemory(16 * PAGE_SIZE)
        a.write_byte(10, 0xFF)
        b = PhysicalMemory(16 * PAGE_SIZE)
        b._frames = a.share_frames()
        b.apply_disturbance_flip(10, 0, 0)
        assert b.read_byte(10) == 0xFE
        assert a.read_byte(10) == 0xFF
        assert b.cow_copies == 1

    def test_refcount_release_on_sharer_gc(self):
        a = PhysicalMemory(16 * PAGE_SIZE)
        a.write(0, b"x")
        frames = a.share_frames()
        frame = frames[0]
        assert frame.refs == 2
        b = PhysicalMemory(16 * PAGE_SIZE)
        b._frames = frames
        del b  # the co-owner dies; its claim on every payload is dropped
        assert frame.refs == 1
        a.write(0, b"y")  # sole owner again: writes in place, no copy
        assert a.cow_copies == 0

    def test_clear_frame_releases_shared_payload(self):
        a = PhysicalMemory(16 * PAGE_SIZE)
        a.write(0, b"x")
        b = PhysicalMemory(16 * PAGE_SIZE)
        b._frames = a.share_frames()
        b.clear_frame(0)
        assert not b.is_materialized(0)
        assert a.read(0, 1) == b"x"
        assert not a.is_shared(0)

    def test_pack_unpack_round_trip_of_partial_store(self):
        a = PhysicalMemory(16 * PAGE_SIZE)
        a.write(3 * PAGE_SIZE, b"alpha")
        a.fill_frame(7, 0xAB)
        pfns, payload = PhysicalMemory.pack_frames(a._frames)
        b = PhysicalMemory(16 * PAGE_SIZE)
        b._frames = PhysicalMemory.unpack_frames(pfns, payload)
        assert b.materialized_frames() == 2
        assert b.read(3 * PAGE_SIZE, 5) == b"alpha"
        assert b.read(7 * PAGE_SIZE, PAGE_SIZE) == bytes([0xAB]) * PAGE_SIZE
        assert b.read(0, 8) == bytes(8)  # untouched frames still read zero
        b.write(3 * PAGE_SIZE, b"OMEGA")  # rebuilt frames are writable
        assert b.read(3 * PAGE_SIZE, 5) == b"OMEGA"

    def test_unpack_rejects_mismatched_payload(self):
        with pytest.raises(ConfigError):
            PhysicalMemory.unpack_frames([1, 2], b"short")

    def test_gather_bits_matches_scalar_get_bit(self):
        mem = PhysicalMemory(16 * PAGE_SIZE)
        mem.write(100, bytes(range(1, 17)))
        addrs = np.array([100, 101, 5 * PAGE_SIZE + 3, 110], dtype=np.int64)
        bits = np.array([0, 3, 7, 1], dtype=np.int64)
        got = mem.gather_bits(addrs, bits)
        assert got.tolist() == [
            mem.get_bit(int(a), int(b)) for a, b in zip(addrs, bits)
        ]

    def test_gather_bits_empty(self):
        mem = PhysicalMemory(16 * PAGE_SIZE)
        assert mem.gather_bits(np.array([], dtype=np.int64), np.array([], dtype=np.int64)).size == 0


class TestConstruction:
    def test_unaligned_size_rejected(self):
        with pytest.raises(ConfigError):
            PhysicalMemory(PAGE_SIZE + 1)

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigError):
            PhysicalMemory(0)
