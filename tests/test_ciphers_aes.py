"""AES correctness: FIPS-197 vectors, round trips, fault hooks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ciphers.aes import AES, InvalidKeySize, expand_key
from repro.ciphers.aes_tables import AES_SBOX
from repro.ciphers.faults import FaultSpec, apply_fault

PT = bytes.fromhex("00112233445566778899aabbccddeeff")
KEY128 = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
KEY192 = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
KEY256 = bytes(range(32))


class TestFipsVectors:
    def test_aes128(self):
        assert AES(KEY128).encrypt_block(PT).hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_aes192(self):
        assert AES(KEY192).encrypt_block(PT).hex() == "dda97ca4864cdfe06eaf70a0ec0d7191"

    def test_aes256(self):
        assert AES(KEY256).encrypt_block(PT).hex() == "8ea2b7ca516745bfeafc49904b496089"

    def test_key_expansion_appendix_a(self):
        """FIPS-197 Appendix A.1: last round key of the 128-bit schedule."""
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        round_keys = expand_key(key)
        assert round_keys[10].hex() == "d014f9a8c9ee2589e13f0cc8b6630ca6"

    def test_round_key_count(self):
        assert len(expand_key(KEY128)) == 11
        assert len(expand_key(KEY192)) == 13
        assert len(expand_key(KEY256)) == 15


class TestRoundTrips:
    @given(key=st.binary(min_size=16, max_size=16), pt=st.binary(min_size=16, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_encrypt_decrypt_128(self, key, pt):
        aes = AES(key)
        assert aes.decrypt_block(aes.encrypt_block(pt)) == pt

    @given(key=st.binary(min_size=32, max_size=32), pt=st.binary(min_size=16, max_size=16))
    @settings(max_examples=10, deadline=None)
    def test_encrypt_decrypt_256(self, key, pt):
        aes = AES(key)
        assert aes.decrypt_block(aes.encrypt_block(pt)) == pt

    def test_encrypt_many(self):
        aes = AES(KEY128)
        blocks = [bytes([i]) * 16 for i in range(4)]
        assert aes.encrypt_many(blocks) == [aes.encrypt_block(b) for b in blocks]


class TestValidation:
    def test_bad_key_size(self):
        with pytest.raises(InvalidKeySize):
            AES(b"short")
        with pytest.raises(InvalidKeySize):
            expand_key(bytes(20))

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            AES(KEY128).encrypt_block(b"short")
        with pytest.raises(ValueError):
            AES(KEY128).decrypt_block(b"short")

    def test_bad_sbox_from_provider(self):
        aes = AES(KEY128, sbox_provider=lambda: b"tiny")
        with pytest.raises(ValueError):
            aes.encrypt_block(PT)


class TestFaultySbox:
    def test_faulty_provider_changes_ciphertexts(self):
        faulty = apply_fault(AES_SBOX, FaultSpec(index=0, bit=0))
        clean_ct = AES(KEY128).encrypt_block(PT)
        # The faulty table is consulted every round; most blocks differ.
        faulty_ct = AES(KEY128, sbox_provider=lambda: faulty).encrypt_block(PT)
        assert clean_ct != faulty_ct or True  # may coincide for one block...
        # ...but over many random-ish blocks at least one must differ.
        diffs = 0
        clean_aes = AES(KEY128)
        faulty_aes = AES(KEY128, sbox_provider=lambda: faulty)
        for i in range(32):
            block = bytes([i, 255 - i] * 8)
            if clean_aes.encrypt_block(block) != faulty_aes.encrypt_block(block):
                diffs += 1
        assert diffs > 0

    def test_key_schedule_uses_clean_sbox_by_default(self):
        faulty = apply_fault(AES_SBOX, FaultSpec(index=0x42, bit=3))
        aes = AES(KEY128, sbox_provider=lambda: faulty)
        assert aes.round_keys == expand_key(KEY128)

    def test_provider_reread_every_block(self):
        calls = []

        def provider():
            calls.append(1)
            return AES_SBOX

        aes = AES(KEY128, sbox_provider=provider)
        aes.encrypt_block(PT)
        aes.encrypt_block(PT)
        assert len(calls) == 2


class TestTransientFault:
    def test_fault_changes_exactly_one_byte(self):
        aes = AES(KEY128)
        clean = aes.encrypt_block(PT)
        faulty = aes.encrypt_block(PT, transient_fault=(0, 0x01))
        differing = [i for i in range(16) if clean[i] != faulty[i]]
        assert len(differing) == 1

    def test_zero_mask_is_identity(self):
        aes = AES(KEY128)
        assert aes.encrypt_block(PT, transient_fault=(3, 0)) == aes.encrypt_block(PT)

    def test_position_validated(self):
        with pytest.raises(ValueError):
            AES(KEY128).encrypt_block(PT, transient_fault=(16, 1))
