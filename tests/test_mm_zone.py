"""Zones, watermarks and the zone layout carving."""

import pytest

from repro.mm.page import FrameTable
from repro.mm.zone import Zone, ZoneLayout, ZoneType, ZoneWatermarks, ZONELIST_ORDER
from repro.sim.errors import ConfigError
from repro.sim.units import MIB, PAGE_SIZE


def make_zone(pages=8192, cpus=2):
    table = FrameTable(pages)
    return Zone(ZoneType.NORMAL, table, 0, pages, num_cpus=cpus)


class TestWatermarks:
    def test_ordering_invariant(self):
        for pages in (1024, 8192, 262144):
            wm = ZoneWatermarks.for_zone_size(pages)
            assert 0 < wm.min_pages <= wm.low_pages <= wm.high_pages

    def test_scale_with_zone_size(self):
        small = ZoneWatermarks.for_zone_size(1024)
        large = ZoneWatermarks.for_zone_size(262144)
        assert large.min_pages > small.min_pages

    def test_min_bounded_by_zone_fraction(self):
        wm = ZoneWatermarks.for_zone_size(256)
        assert wm.min_pages <= 256 // 8

    def test_invalid_explicit_watermarks(self):
        with pytest.raises(ConfigError):
            ZoneWatermarks(min_pages=10, low_pages=5, high_pages=20)


class TestZone:
    def test_free_pages_includes_pcp(self):
        zone = make_zone()
        total = zone.total_pages
        assert zone.free_pages == total
        pfn = zone.pcp(0).alloc()
        # One allocated; the rest of the refill batch still counts as free.
        assert zone.free_pages == total - 1
        zone.pcp(0).free(pfn)
        assert zone.free_pages == total

    def test_pcp_per_cpu_distinct(self):
        zone = make_zone(cpus=2)
        assert zone.pcp(0) is not zone.pcp(1)
        with pytest.raises(ConfigError):
            zone.pcp(2)

    def test_contains(self):
        table = FrameTable(8192)
        zone = Zone(ZoneType.DMA32, table, 1024, 4096, num_cpus=1)
        assert zone.contains(1024)
        assert zone.contains(4095)
        assert not zone.contains(4096)
        assert not zone.contains(0)

    def test_watermark_ok(self):
        zone = make_zone(pages=2048)
        assert zone.watermark_ok(0)
        # Drain the zone near empty.
        while zone.buddy.free_pages > zone.watermarks.min_pages:
            zone.buddy.alloc(0)
        assert not zone.watermark_ok(0)

    def test_low_high_watermark_predicates(self):
        zone = make_zone(pages=2048)
        assert not zone.below_low_watermark()
        assert zone.above_high_watermark()
        while zone.buddy.free_pages >= zone.watermarks.low_pages:
            zone.buddy.alloc(0)
        assert zone.below_low_watermark()
        assert not zone.above_high_watermark()

    def test_drain_all_pcp(self):
        zone = make_zone(cpus=2)
        for cpu in (0, 1):
            pfn = zone.pcp(cpu).alloc()
            zone.pcp(cpu).free(pfn)
        moved = zone.drain_all_pcp()
        assert moved > 0
        assert zone.pcp(0).count == 0
        assert zone.pcp(1).count == 0

    def test_name(self):
        assert make_zone().name == "Normal"

    def test_zero_cpus_rejected(self):
        table = FrameTable(2048)
        with pytest.raises(ConfigError):
            Zone(ZoneType.DMA, table, 0, 2048, num_cpus=0)


class TestZoneLayout:
    def test_default_carve_covers_everything(self):
        layout = ZoneLayout()
        triples = layout.carve(256 * MIB)
        assert triples[0][1] == 0
        for (_, _, end), (_, start, _) in zip(triples, triples[1:]):
            assert end == start
        assert triples[-1][2] == 256 * MIB // PAGE_SIZE

    def test_dma_is_16mib(self):
        triples = ZoneLayout().carve(256 * MIB)
        zone_type, start, end = triples[0]
        assert zone_type is ZoneType.DMA
        assert (end - start) * PAGE_SIZE == 16 * MIB

    def test_alignment(self):
        for _, start, end in ZoneLayout().carve(256 * MIB):
            assert start % 1024 == 0  # max-order aligned

    def test_explicit_dma32_size(self):
        layout = ZoneLayout(dma32_bytes=32 * MIB)
        triples = layout.carve(256 * MIB)
        _, start, end = triples[1]
        assert (end - start) * PAGE_SIZE == 32 * MIB

    def test_too_small_memory_rejected(self):
        with pytest.raises(ConfigError):
            ZoneLayout().carve(8 * MIB)

    def test_oversized_layout_rejected(self):
        with pytest.raises(ConfigError):
            ZoneLayout(dma32_bytes=512 * MIB).carve(64 * MIB)


class TestZonelistOrder:
    def test_normal_first(self):
        assert ZONELIST_ORDER[0] is ZoneType.NORMAL
        assert ZONELIST_ORDER[-1] is ZoneType.DMA
